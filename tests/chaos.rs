//! Cross-stack chaos harness: real HTTP servers under concurrent load
//! while faults fire — overload, injected disk errors, corrupt segments.
//!
//! The contract under test, end to end over sockets:
//!
//! - the server **never panics** (`/stats` must report `"panics": 0`);
//! - overload **sheds cleanly**: every refused connection gets a parseable
//!   `503` with `Retry-After`, and service recovers once load drops;
//! - disk faults **degrade, not destroy**: writes answer 503 while reads
//!   keep serving every acked point, the background worker self-heals, and
//!   acked data survives a restart bit-for-bit;
//! - a corrupt segment is **quarantined**, not fatal: the rest of the
//!   store keeps serving.
//!
//! The failpoint registry is process-global, so the fault-driven tests
//! serialize on a static lock and clear the registry on exit.

use neats::ingest::{BackgroundConfig, FsyncPolicy, IngestConfig, Ingestor};
use neats::serve::{ReactorMode, ServeConfig, Server, ServerHandle};
use neats::store::{Store, StoreConfig, StoreWriter};
use neats_core::failpoint;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

static LOCK: Mutex<()> = Mutex::new(());

fn serialized() -> impl Drop {
    struct Guard(#[allow(dead_code)] MutexGuard<'static, ()>);
    impl Drop for Guard {
        fn drop(&mut self) {
            failpoint::clear_all();
        }
    }
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::clear_all();
    Guard(g)
}

/// One parsed HTTP response (connection-per-request, `Connection: close`).
#[derive(Debug)]
struct Resp {
    status: u16,
    retry_after: bool,
    body: String,
}

/// Sends one request on a fresh connection and reads the whole response.
/// `None` when the connection failed or was reset — under deliberate
/// overload a reset is an acceptable outcome, a hang or panic is not.
fn request(addr: SocketAddr, raw: &str) -> Option<Resp> {
    let mut s = TcpStream::connect(addr).ok()?;
    s.set_read_timeout(Some(Duration::from_secs(10))).ok()?;
    s.set_nodelay(true).ok();
    s.write_all(raw.as_bytes()).ok()?;
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).ok()?;
    let text = String::from_utf8_lossy(&buf);
    let (head, body) = text.split_once("\r\n\r\n")?;
    let status: u16 = head.split(' ').nth(1)?.parse().ok()?;
    Some(Resp {
        status,
        retry_after: head.to_ascii_lowercase().contains("retry-after:"),
        body: body.to_string(),
    })
}

fn get(addr: SocketAddr, target: &str) -> Option<Resp> {
    request(
        addr,
        &format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn post_write(addr: SocketAddr, body: &str) -> Option<Resp> {
    request(
        addr,
        &format!(
            "POST /write HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
             Content-Length: {}\r\n\r\n{}",
            body.len(),
            body
        ),
    )
}

/// Extracts an integer counter from the `/stats` JSON. Uses the *last*
/// occurrence: `degraded` appears both as an ingest gauge (boolean) and a
/// connections counter, and the counter renders later.
fn stat(body: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\": ");
    let at = body
        .rfind(&pat)
        .unwrap_or_else(|| panic!("no {key:?} in {body}"));
    body[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("counter")
}

fn assert_no_panics(addr: SocketAddr) {
    let stats = get(addr, "/stats").expect("/stats must answer");
    assert_eq!(stats.status, 200);
    assert_eq!(stat(&stats.body, "panics"), 0, "{}", stats.body);
}

fn demo_pack(series: &[(&str, usize)]) -> Arc<Store> {
    let mut w = StoreWriter::new(StoreConfig {
        segment_points: 64,
        ..Default::default()
    });
    for &(name, n) in series {
        let stamps: Vec<u64> = (0..n as u64).map(|k| 1_000 + k * 7).collect();
        let values: Vec<i64> = (0..n as i64).map(|k| k * k % 97 - 40).collect();
        w.ingest(name, &stamps, &values).unwrap();
    }
    Arc::new(Store::open(w.finish().unwrap()).unwrap())
}

fn run_server(server: Server) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let handle = server.handle();
    let running = std::thread::spawn(move || server.run());
    (handle, running)
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("neats-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Overload chaos: with every admitted slot pinned, a burst of concurrent
/// clients must be shed cleanly — parseable 503 + Retry-After or a reset,
/// never a hang, never a panic — and service must recover when the
/// pinning connections go away.
#[test]
fn overload_sheds_cleanly_and_recovers() {
    // Both serving disciplines must satisfy the same shed contract; the
    // explicit modes keep this coverage even if the Auto default changes.
    overload_chaos(ReactorMode::Threaded);
}

#[test]
#[cfg_attr(not(target_os = "linux"), ignore = "reactor mode requires epoll")]
fn overload_sheds_cleanly_and_recovers_reactor() {
    overload_chaos(ReactorMode::Reactor);
}

fn overload_chaos(reactor: ReactorMode) {
    let _guard = serialized();
    let cfg = ServeConfig {
        threads: 2,
        max_connections: 2,
        queue_watermark: 1000,
        poll_interval: Duration::from_millis(10),
        reactor,
        ..ServeConfig::default()
    };
    let server = Server::bind(demo_pack(&[("cpu", 500)]), "127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();
    let (handle, running) = run_server(server);

    // Pin both admitted slots with idle keep-alive connections.
    let pin = |_: ()| {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /series HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut first = [0u8; 1];
        s.read_exact(&mut first).unwrap(); // response started: slot is held
        s
    };
    let held = [pin(()), pin(())];

    // Chaos burst: 6 threads × 5 connection-per-request queries, all while
    // the server is saturated. Every outcome must be a clean shed.
    let shed = AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..6 {
            s.spawn(|| {
                for _ in 0..5 {
                    match get(addr, "/q/cpu?idx=1") {
                        Some(r) => {
                            assert_eq!(r.status, 503, "saturated server answered {r:?}");
                            assert!(r.retry_after, "503 without Retry-After: {r:?}");
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {} // reset under overload: acceptable
                    }
                }
            });
        }
    });
    assert!(
        shed.load(Ordering::Relaxed) > 0,
        "burst produced no observable shed"
    );

    // Load drops: the server must admit again within a few poll ticks.
    drop(held);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if get(addr, "/q/cpu?idx=1").is_some_and(|r| r.status == 200) {
            break;
        }
        assert!(Instant::now() < deadline, "no recovery after load dropped");
        std::thread::sleep(Duration::from_millis(20));
    }
    let stats = get(addr, "/stats").unwrap();
    assert!(
        stat(&stats.body, "shed") >= shed.load(Ordering::Relaxed),
        "{}",
        stats.body
    );
    assert_no_panics(addr);

    handle.shutdown();
    running.join().unwrap().unwrap();
}

/// Disk-fault chaos: concurrent writers and readers hammer a live server
/// while a WAL fault fires mid-run. Writes during the degraded window get
/// 503s, reads never do, the background worker self-heals, and a restart
/// recovers exactly the acked points.
#[test]
fn disk_fault_degrades_writes_only_then_recovers_across_restart() {
    let _guard = serialized();
    let dir = tmp_dir("degrade");
    let ing = Arc::new(
        Ingestor::open(
            &dir,
            IngestConfig {
                chunk_points: 16,
                seal_points: 1 << 30, // no background seal: the fault under test is wal.append
                fsync: FsyncPolicy::Always,
                ..IngestConfig::default()
            },
        )
        .unwrap(),
    );
    let bg = ing.start_background(BackgroundConfig {
        interval: Duration::from_millis(10),
        retry_base: Duration::from_millis(10),
        retry_cap: Duration::from_millis(50),
    });
    let cfg = ServeConfig {
        threads: 3,
        ..ServeConfig::default()
    };
    let server = Server::bind(Arc::clone(&ing), "127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();
    let (handle, running) = run_server(server);

    // The chaos event, armed up front so it lands deterministically
    // mid-run: the 20th WAL append fails (of 90 the writers will issue),
    // and the first three background repair attempts fail too — the
    // degraded window spans several backoff rounds, so concurrent writers
    // observe it for sure before the worker self-heals on the 4th try.
    failpoint::set("wal.append", "err@20*1").unwrap();
    failpoint::set("wal.repair", "err*3").unwrap();

    const WRITERS: usize = 3;
    const ACKS_PER_WRITER: u64 = 30;
    let rejected = AtomicU64::new(0);
    let writers_done = AtomicU64::new(0);
    std::thread::scope(|s| {
        // Writers: each drives its own series to a fixed number of acked
        // points, retrying through the degraded window.
        for w in 0..WRITERS {
            let rejected = &rejected;
            let writers_done = &writers_done;
            s.spawn(move || {
                let mut acked = 0u64;
                let deadline = Instant::now() + Duration::from_secs(60);
                while acked < ACKS_PER_WRITER {
                    assert!(Instant::now() < deadline, "writer {w} starved");
                    let t = 1_000 + acked; // next timestamp only after an ack
                    let resp = post_write(addr, &format!("w{w} {t} {}\n", acked))
                        .expect("write connection");
                    match resp.status {
                        200 if resp.body.contains("#0 ok 1") => acked += 1,
                        200 | 503 => {
                            // A degraded refusal: whole-request 503 or a
                            // per-batch `#0 err 503` frame. Nothing may be
                            // half-applied, so the same point is retried.
                            assert!(
                                resp.status == 503 || resp.body.contains("#0 err 503"),
                                "writer {w}: unexpected 200 frame {resp:?}"
                            );
                            rejected.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        other => panic!("writer {w}: status {other}: {resp:?}"),
                    }
                }
                writers_done.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Readers: reads must never see a 5xx — degraded mode is
        // read-only, not down. They run until every writer finishes.
        for r in 0..2 {
            let writers_done = &writers_done;
            s.spawn(move || {
                while writers_done.load(Ordering::Relaxed) < WRITERS as u64 {
                    let resp = get(addr, &format!("/q/w{r}?idx=0")).expect("read connection");
                    assert!(
                        matches!(resp.status, 200 | 400 | 404),
                        "reader {r}: {resp:?}"
                    );
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        }
    });

    assert!(
        failpoint::hits("wal.append") >= 20,
        "the armed fault must have fired"
    );
    assert!(
        rejected.load(Ordering::Relaxed) >= 1,
        "no writer observed the degraded window"
    );
    // Self-healed: every writer reached its ack target, so recovery
    // happened without manual intervention.
    assert!(!ing.is_degraded(), "background worker must have recovered");
    assert!(
        ing.background_errors() >= 3,
        "failed repairs must be counted"
    );
    let stats = get(addr, "/stats").unwrap();
    assert!(stat(&stats.body, "degraded") >= 1, "{}", stats.body);
    assert_no_panics(addr);

    handle.shutdown();
    running.join().unwrap().unwrap();
    bg.stop();
    drop(ing);

    // Restart: every acked point — and nothing else — survives.
    let ing = Ingestor::open(&dir, IngestConfig::default()).unwrap();
    for w in 0..WRITERS {
        let name = format!("w{w}");
        assert_eq!(ing.len(&name).unwrap(), ACKS_PER_WRITER as usize, "{name}");
        let mut got = Vec::new();
        ing.range(&name, 0..ACKS_PER_WRITER as usize, &mut got)
            .unwrap();
        let want: Vec<i64> = (0..ACKS_PER_WRITER as i64).collect();
        assert_eq!(got, want, "{name}: acked points lost or reordered");
    }
    drop(ing);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Quarantine chaos: a segment that fails validation on load poisons only
/// itself — queries touching it answer 503, every other segment and
/// series keeps serving, and the failure is visible on `/stats`.
#[test]
fn corrupt_segment_is_quarantined_not_fatal() {
    let _guard = serialized();
    let server = Server::bind(
        demo_pack(&[("a", 300), ("b", 300)]),
        "127.0.0.1:0",
        ServeConfig {
            threads: 2,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let (handle, running) = run_server(server);

    // The next segment open fails validation (as a CRC mismatch would).
    failpoint::set("store.open_segment", "err*1").unwrap();
    let r = get(addr, "/q/a?idx=1").unwrap();
    assert_eq!(r.status, 503, "{r:?}");
    assert!(r.retry_after, "quarantine 503 must carry Retry-After");
    assert!(r.body.contains("quarantined"), "{r:?}");

    // Sticky: the failpoint is exhausted, but the segment stays
    // quarantined — no retry storm against a bad segment.
    let r = get(addr, "/q/a?idx=1").unwrap();
    assert_eq!(r.status, 503, "{r:?}");

    // Isolation: the other segments of `a` and all of `b` keep serving.
    assert_eq!(get(addr, "/q/a?idx=100").unwrap().status, 200);
    assert_eq!(get(addr, "/q/b?idx=1").unwrap().status, 200);
    assert_eq!(get(addr, "/q/b?idx=0..300").unwrap().status, 200);

    let stats = get(addr, "/stats").unwrap();
    assert_eq!(stat(&stats.body, "quarantined"), 1, "{}", stats.body);
    assert_no_panics(addr);

    handle.shutdown();
    running.join().unwrap().unwrap();
}
