//! Smoke test for the umbrella crate's re-export surface: every facade the
//! README promises (`neats::core`, `neats::store`, `neats::serve`,
//! `neats::succinct`, `neats::timeseries`, `neats::lossless`,
//! `neats::lossy`) must be reachable under exactly these paths and usable
//! end-to-end on a 1k-point series.

use neats::core::NeaTS;
use neats::lossless::paper_competitors;
use neats::lossy::Pla;
use neats::serve::{ServeConfig, Server};
use neats::store::{Store, StoreConfig, StoreWriter};
use neats::succinct::{BitVector, EliasFano};
use neats::timeseries::{CompressedSeries, TimeSeries};
use std::io::{Read, Write};
use std::sync::Arc;

/// A 1000-point nonlinear series (trend + seasonality), the README's
/// running example shape.
fn series_1k() -> (Vec<i64>, TimeSeries) {
    let values: Vec<i64> = (1..=1000)
        .map(|x| {
            let x = x as f64;
            (40.0 * (x / 90.0).sin() + x.sqrt() * 3.0) as i64
        })
        .collect();
    let ts = TimeSeries::from_values(values.clone());
    (values, ts)
}

#[test]
fn umbrella_surface_compresses_and_randomly_accesses() {
    let (values, ts) = series_1k();

    // neats::core — the NeaTS compressor itself.
    let compressed = NeaTS::builder().build(&ts);
    assert_eq!(compressed.len(), 1000);
    assert_eq!(compressed.get(0), values[0]);
    assert_eq!(compressed.get(499), values[499]);
    assert_eq!(compressed.get(999), values[999]);
    assert_eq!(compressed.decompress(), values);

    // neats::timeseries — shared types round-trip through the trait surface.
    assert_eq!(ts.len(), 1000);
    assert_eq!(ts.values(), &values[..]);

    // neats::lossless — every paper competitor handles the same series.
    for comp in paper_competitors() {
        let c = comp.compress_boxed(&ts);
        assert_eq!(c.get(777), values[777], "{} random access", comp.name());
        assert_eq!(c.decompress(), values, "{} round-trip", comp.name());
    }

    // neats::lossy — PLA under a bound stays within it.
    let eps = 8;
    let pla = Pla::compress(&ts, eps);
    assert_eq!(pla.len(), 1000);
    assert!(pla.max_error(&ts) <= eps + 1, "PLA bound violated: {}", pla.max_error(&ts));

    // neats::store — the multi-series pack store round-trips the same
    // series and serves it back zero-copy.
    let stamps: Vec<u64> = (0..1000u64).map(|i| 1_000 + i * 7).collect();
    let mut w = StoreWriter::new(StoreConfig { segment_points: 256, ..Default::default() });
    w.ingest("readme", &stamps, &values).unwrap();
    let store = Store::open(w.finish().unwrap()).unwrap();
    assert_eq!(store.get("readme", 499).unwrap(), values[499]);
    assert_eq!(store.at_time("readme", stamps[777]).unwrap(), Some(values[777]));
    let mut window = Vec::new();
    store.range("readme", 250..260, &mut window).unwrap();
    assert_eq!(window, &values[250..260]);

    // neats::serve — the HTTP frontend serves the same pack over loopback.
    let serve_store = Arc::new(Store::open(store.as_bytes().to_vec()).unwrap());
    let server =
        Server::bind(Arc::clone(&serve_store), "127.0.0.1:0", ServeConfig::default()).unwrap();
    let addr = server.local_addr();
    let handle = server.handle();
    let running = std::thread::spawn(move || server.run());
    let mut conn = std::net::TcpStream::connect(addr).unwrap();
    conn.write_all(b"GET /q/readme?idx=499 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    let body = response.split("\r\n\r\n").nth(1).unwrap();
    assert_eq!(body.trim().parse::<i64>().unwrap(), values[499]);
    handle.shutdown();
    running.join().unwrap().unwrap();

    // neats::succinct — the substrate types are directly usable.
    let bools: Vec<bool> = values.iter().map(|v| v % 2 == 0).collect();
    let bv = BitVector::from_bools(&bools);
    assert_eq!(bv.count_ones() + bv.count_zeros(), 1000);
    let monotone: Vec<u64> = (0..1000u64).map(|k| k * 3 + 1).collect();
    let ef = EliasFano::new(&monotone);
    assert_eq!(ef.get(500), 1501);
}
