//! Integration tests for the extension features: persistence, aggregate
//! queries, explicit timestamps, and streaming ingestion — exercised
//! together, the way a storage engine would compose them.

use neats::core::{NeaTS, NeaTSCompressed, NeaTSWriter, TimestampedNeaTS};
use neats::timeseries::{CompressedSeries, Dataset, TimeSeries};

#[test]
fn persist_and_reload_a_dataset() {
    let ts = Dataset::DewpointTemp.generate(20_000);
    let c = NeaTS::compress(&ts);
    let bytes = c.to_bytes();
    // "Write to disk, read back, query" — via a real temp file.
    let dir = std::env::temp_dir().join("neats_persist_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("dp.neats");
    std::fs::write(&path, &bytes).unwrap();
    let loaded = NeaTSCompressed::from_bytes(&std::fs::read(&path).unwrap()).unwrap();
    assert_eq!(loaded.decompress(), ts.values());
    assert_eq!(loaded.get(12_345), ts.values()[12_345]);
    // On-disk size is the compressed size, not the raw size.
    assert!(bytes.len() < ts.uncompressed_bytes() / 3);
}

#[test]
fn aggregates_accelerate_dashboards() {
    let ts = Dataset::AirPressure.generate(50_000);
    let c = NeaTS::compress(&ts);
    // Hourly means over a day, estimated from functions only.
    for hour in 0..24 {
        let start = hour * 2000;
        let est = c.mean_range_estimate(start, 2000);
        let exact: f64 =
            ts.values()[start..start + 2000].iter().map(|&v| v as f64).sum::<f64>() / 2000.0;
        assert!(
            (est.value - exact).abs() <= est.max_error,
            "hour {hour}: {} vs {exact} (bound {})",
            est.value,
            est.max_error
        );
    }
}

#[test]
fn timestamped_pipeline_end_to_end() {
    // Irregular sensor timestamps (gaps, bursts) + NeaTS values.
    let n = 10_000;
    let timestamps: Vec<u64> =
        (0..n as u64).map(|i| 1_700_000_000 + i * 30 + (i % 7) * 2).collect();
    let ts = Dataset::IrBioTemp.generate(n);
    let c = TimestampedNeaTS::compress(&timestamps, &ts, &NeaTS::builder()).unwrap();

    // Point lookup.
    assert_eq!(c.get_at(timestamps[500]), Some(ts.values()[500]));
    // A one-hour window.
    let mut window = Vec::new();
    c.range_by_time(timestamps[100], timestamps[100] + 3600, &mut window);
    assert!(!window.is_empty());
    for (t, v) in &window {
        let i = timestamps.binary_search(t).unwrap();
        assert_eq!(*v, ts.values()[i]);
    }
    // Compressed including the timestamp index.
    assert!(c.size_in_bytes() < ts.uncompressed_bytes());
}

#[test]
fn streaming_ingestion_then_queries() {
    let ts = Dataset::StocksUk.generate(40_000);
    let mut writer = NeaTSWriter::new(NeaTS::builder(), 8192);
    writer.extend(ts.values().iter().copied());
    let chunked = writer.finish();
    assert_eq!(chunked.chunk_count(), 5);
    assert_eq!(chunked.decompress(), ts.values());
    let mut out = Vec::new();
    chunked.scan_range(8000, 500, &mut out); // spans a chunk boundary
    assert_eq!(out, &ts.values()[8000..8500]);
}

#[test]
fn serialized_lossy_tier_archive() {
    // The sensor_monitoring story as a test: archive lossy tiers, reload,
    // verify guarantees still hold.
    let ts = Dataset::CityTemp.generate(10_000);
    for eps in [8u64, 64, 512] {
        let lossy = NeaTS::builder().build_lossy(&ts, eps);
        let reloaded = neats::core::NeaTSLossy::from_bytes(&lossy.to_bytes()).unwrap();
        assert!(reloaded.max_error(&ts) <= eps + 1, "eps {eps}");
        assert_eq!(reloaded.reconstruct(), lossy.reconstruct());
    }
}

#[test]
fn mixed_feature_composition() {
    // Streaming chunks, each serialized and reloaded, then aggregated.
    let values: Vec<i64> = (0..30_000).map(|k| 1000 + k / 3 + (k % 10)).collect();
    let _ts = TimeSeries::from_values(values.clone());
    let mut w = NeaTSWriter::new(NeaTS::builder(), 10_000);
    w.extend(values.iter().copied());
    let chunked = w.finish();
    let mut total = 0i128;
    for i in 0..chunked.chunk_count() {
        let bytes = chunked.chunk(i).to_bytes();
        let reloaded = NeaTSCompressed::from_bytes(&bytes).unwrap();
        total += reloaded.sum_range_exact(0, reloaded.len());
    }
    let expected: i128 = values.iter().map(|&v| v as i128).sum();
    assert_eq!(total, expected);
}
