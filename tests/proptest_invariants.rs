//! Workspace-level property-based tests: the core invariants the paper
//! guarantees, checked on arbitrary inputs.

use neats::core::{Kind, NeaTS, NeaTSLossy, RankMode};
use neats::lossless::paper_competitors;
use neats::timeseries::{CompressedSeries, TimeSeries};
use proptest::prelude::*;

/// Arbitrary "time-series-like" values: random walks with occasional jumps,
/// which exercise fragment boundaries far more than iid noise.
fn walk_strategy(max_len: usize) -> impl Strategy<Value = Vec<i64>> {
    (
        prop::collection::vec((-500i64..500, prop::bool::weighted(0.02)), 0..max_len),
        -1_000_000i64..1_000_000,
    )
        .prop_map(|(steps, start)| {
            let mut v = start;
            steps
                .into_iter()
                .map(|(d, jump)| {
                    v += if jump { d * 1000 } else { d };
                    v
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fundamental guarantee: NeaTS is lossless on any input.
    #[test]
    fn neats_lossless_on_arbitrary_walks(values in walk_strategy(400)) {
        let ts = TimeSeries::from_values(values);
        let c = NeaTS::compress(&ts);
        prop_assert_eq!(c.decompress(), ts.values());
    }

    /// Random access equals decompression at every position.
    #[test]
    fn neats_random_access_consistent(values in walk_strategy(300)) {
        let ts = TimeSeries::from_values(values);
        let c = NeaTS::compress(&ts);
        let dec = c.decompress();
        for (k, &d) in dec.iter().enumerate() {
            prop_assert_eq!(c.get(k), d);
        }
    }

    /// Both rank structures produce identical results.
    #[test]
    fn rank_modes_equivalent(values in walk_strategy(250)) {
        let ts = TimeSeries::from_values(values);
        let ef = NeaTS::builder().rank_mode(RankMode::EliasFano).build(&ts);
        let bv = NeaTS::builder().rank_mode(RankMode::BitVector).build(&ts);
        prop_assert_eq!(ef.decompress(), bv.decompress());
    }

    /// Every scan_range equals the corresponding slice.
    #[test]
    fn scan_matches_slice(values in walk_strategy(300), frac_start in 0.0f64..1.0, frac_len in 0.0f64..1.0) {
        let ts = TimeSeries::from_values(values);
        if ts.is_empty() { return Ok(()); }
        let start = ((ts.len() - 1) as f64 * frac_start) as usize;
        let len = ((ts.len() - start) as f64 * frac_len) as usize;
        let c = NeaTS::compress(&ts);
        let mut out = Vec::new();
        c.scan_range(start, len, &mut out);
        prop_assert_eq!(out, &ts.values()[start..start + len]);
    }

    /// The lossy guarantee: max error never exceeds ε (+1 floor slack).
    #[test]
    fn lossy_error_bounded(values in walk_strategy(300), eps in 0u64..1000) {
        let ts = TimeSeries::from_values(values);
        if ts.is_empty() { return Ok(()); }
        let l = NeaTSLossy::compress(&ts, &Kind::NEATS_DEFAULT, eps);
        prop_assert!(l.max_error(&ts) <= eps + 1);
    }

    /// Every baseline compressor round-trips arbitrary walks.
    #[test]
    fn baselines_lossless_on_arbitrary_walks(values in walk_strategy(220)) {
        let ts = TimeSeries::from_values(values);
        for comp in paper_competitors() {
            let c = comp.compress_boxed(&ts);
            prop_assert_eq!(c.decompress(), ts.values(), "{}", comp.name());
        }
    }

    /// Serialisation round-trips exactly on arbitrary inputs.
    #[test]
    fn wire_format_roundtrip(values in walk_strategy(250)) {
        let ts = TimeSeries::from_values(values);
        let c = NeaTS::compress(&ts);
        let back = neats::core::NeaTSCompressed::from_bytes(&c.to_bytes()).unwrap();
        prop_assert_eq!(back.decompress(), ts.values());
    }

    /// Aggregate estimates always respect their error bounds.
    #[test]
    fn aggregate_bound_holds(values in walk_strategy(300), frac in 0.0f64..1.0) {
        let ts = TimeSeries::from_values(values);
        if ts.is_empty() { return Ok(()); }
        let c = NeaTS::compress(&ts);
        let start = ((ts.len() - 1) as f64 * frac) as usize;
        let count = ts.len() - start;
        let est = c.sum_range_estimate(start, count);
        let exact = c.sum_range_exact(start, count) as f64;
        prop_assert!((est.value - exact).abs() <= est.max_error,
            "est {} exact {exact} bound {}", est.value, est.max_error);
    }

    /// Streaming chunked compression is lossless for any chunk size.
    #[test]
    fn streaming_lossless(values in walk_strategy(300), chunk in 1usize..200) {
        let mut w = neats::core::NeaTSWriter::new(NeaTS::builder(), chunk);
        w.extend(values.iter().copied());
        let c = w.finish();
        prop_assert_eq!(c.decompress(), values);
    }

    /// Restricting the function pool never breaks losslessness.
    #[test]
    fn any_kind_subset_is_lossless(values in walk_strategy(200), mask in 1u16..(1 << 11)) {
        let kinds: Vec<Kind> = Kind::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &k)| k)
            .collect();
        let ts = TimeSeries::from_values(values);
        let c = NeaTS::builder().kinds(&kinds).build(&ts);
        prop_assert_eq!(c.decompress(), ts.values());
    }
}
