//! End-to-end integration tests spanning every crate: datasets → compressors
//! → queries, exercising the full public API the way the benchmark harness
//! and a downstream user would.

use neats::core::{Kind, NeaTS, NeaTSCompressor, RankMode};
use neats::lossless::paper_competitors;
use neats::lossy::{AdaptiveApprox, Pla};
use neats::timeseries::{AnyCompressor, CompressedSeries, Dataset, TimeSeries};

/// All 13 lossless compressors (paper competitors + NeaTS variants).
fn full_roster() -> Vec<Box<dyn AnyCompressor>> {
    let mut v = paper_competitors();
    v.push(Box::new(NeaTSCompressor::neats()));
    v.push(Box::new(NeaTSCompressor::leats()));
    v.push(Box::new(NeaTSCompressor::sneats()));
    v
}

#[test]
fn every_compressor_roundtrips_every_dataset() {
    for ds in Dataset::ALL {
        let ts = ds.generate(3000);
        for comp in full_roster() {
            let c = comp.compress_boxed(&ts);
            assert_eq!(c.decompress(), ts.values(), "{} on {}", comp.name(), ds.abbrev());
        }
    }
}

#[test]
fn random_access_agrees_with_decompression_everywhere() {
    let ts = Dataset::Ecg.generate(5000);
    for comp in full_roster() {
        let c = comp.compress_boxed(&ts);
        let dec = c.decompress();
        for k in (0..ts.len()).step_by(97) {
            assert_eq!(c.get(k), dec[k], "{} get({k})", comp.name());
        }
    }
}

#[test]
fn range_queries_agree_across_all_engines() {
    let ts = Dataset::WindDirection.generate(4000);
    let compressed: Vec<_> = full_roster().iter().map(|c| c.compress_boxed(&ts)).collect();
    for (start, len) in [(0usize, 100usize), (999, 2), (1500, 1000), (3999, 1), (0, 4000)] {
        let expected = &ts.values()[start..start + len];
        for c in &compressed {
            let mut out = Vec::new();
            c.scan_range(start, len, &mut out);
            assert_eq!(out, expected, "range ({start}, {len})");
        }
    }
}

#[test]
fn neats_dominates_xor_family_on_smooth_data() {
    // The paper's headline: learned nonlinear models beat XOR codecs on
    // smooth series by a wide margin.
    let ts = Dataset::AirPressure.generate(20_000);
    let neats = NeaTS::compress(&ts).size_in_bytes();
    for comp in paper_competitors() {
        if ["Gorilla", "Chimp"].contains(&comp.name()) {
            let other = comp.compress_boxed(&ts).size_in_bytes();
            assert!(
                (neats as f64) < 0.5 * other as f64,
                "NeaTS {neats} not ≪ {} {other}",
                comp.name()
            );
        }
    }
}

#[test]
fn lossy_pipeline_matches_lossless_values_within_eps() {
    let ts = Dataset::CityTemp.generate(8000);
    let eps = (ts.delta() / 200).max(1);
    let neats_l = NeaTS::builder().build_lossy(&ts, eps);
    let pla = Pla::compress(&ts, eps);
    let aa = AdaptiveApprox::compress(&ts, eps);
    assert!(neats_l.max_error(&ts) <= eps + 1);
    assert!(pla.max_error(&ts) <= eps + 1);
    assert!(aa.max_error(&ts) <= eps + 1);
    // Table II headline: NeaTS-L at least matches PLA and AA in size.
    assert!(
        neats_l.size_in_bytes() <= pla.size_in_bytes(),
        "NeaTS-L {} > PLA {}",
        neats_l.size_in_bytes(),
        pla.size_in_bytes()
    );
    assert!(
        neats_l.size_in_bytes() <= aa.size_in_bytes(),
        "NeaTS-L {} > AA {}",
        neats_l.size_in_bytes(),
        aa.size_in_bytes()
    );
}

#[test]
fn rank_modes_agree() {
    let ts = Dataset::Pm10Dust.generate(5000);
    let ef = NeaTS::builder().rank_mode(RankMode::EliasFano).build(&ts);
    let bv = NeaTS::builder().rank_mode(RankMode::BitVector).build(&ts);
    for k in (0..ts.len()).step_by(53) {
        assert_eq!(ef.get(k), bv.get(k));
    }
    assert_eq!(ef.decompress(), bv.decompress());
}

#[test]
fn compressor_trait_objects_compose() {
    // A downstream user can hold a heterogeneous engine list and pick the
    // best per series — the "compression advisor" pattern.
    let ts = Dataset::BaselWind.generate(4000);
    let best = full_roster()
        .iter()
        .map(|c| (c.name(), c.compress_boxed(&ts).size_in_bytes()))
        .min_by_key(|&(_, s)| s)
        .expect("non-empty roster");
    assert!(best.1 > 0);
}

#[test]
fn real_file_loading_pipeline() {
    // io::load → compress → query, as a user with on-disk data would.
    let dir = std::env::temp_dir().join("neats_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("data.txt");
    let content: String =
        (0..500).map(|k| format!("{:.2}\n", 20.0 + (k as f64 / 30.0).sin() * 5.0)).collect();
    std::fs::write(&path, content).unwrap();
    let ts = neats::timeseries::io::load_fixed_precision(&path, 2).unwrap();
    assert_eq!(ts.len(), 500);
    let c = NeaTS::compress(&ts);
    assert_eq!(c.decompress(), ts.values());
}

#[test]
fn sorted_integer_data_as_learned_index_substrate() {
    // The paper's future-work ties NeaTS to learned data structures: sorted
    // keys compress extremely well with few fragments.
    let keys: Vec<i64> = (0..50_000).map(|k| 3 * k + (k % 7)).collect();
    let ts = TimeSeries::from_values(keys);
    let c = NeaTS::builder().kinds(&[Kind::Linear]).build(&ts);
    assert!(c.fragment_count() < 50, "too many fragments: {}", c.fragment_count());
    let ratio = c.size_in_bytes() as f64 / ts.uncompressed_bytes() as f64;
    assert!(ratio < 0.10, "ratio {ratio}");
}
