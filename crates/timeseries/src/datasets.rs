//! Synthetic stand-ins for the paper's 16 real-world evaluation datasets.
//!
//! The originals (NEON sensor feeds, INFORE stock ticks, a 12-lead ECG
//! arrhythmia database, Geolife GPS trajectories, Meteoblue Basel weather,
//! InfluxDB sample data) are multi-gigabyte downloads we cannot ship, so each
//! generator reproduces the *compression-relevant* character of its dataset —
//! trend shape, local smoothness, value range, burstiness, and the number of
//! fractional digits the paper scales by (§IV-A1). All generators are
//! deterministic given `(n, seed)`.

use crate::gen::{seasonal, Ar1, Signal};
use crate::types::TimeSeries;

/// The 16 datasets of the paper's evaluation (Table III order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// IR-bio-temp: infrared biological temperature, 2 fractional digits.
    IrBioTemp,
    /// Stocks-USA, 2 fractional digits.
    StocksUsa,
    /// Electrocardiogram signals, 3 fractional digits.
    Ecg,
    /// Wind direction in degrees, 2 fractional digits.
    WindDirection,
    /// Barometric air pressure, 5 fractional digits.
    AirPressure,
    /// Stocks-UK, 1 fractional digit.
    StocksUk,
    /// Stocks-DE (Germany), 3 fractional digits.
    StocksDe,
    /// Geolife latitude, 4 fractional digits.
    GeolifeLat,
    /// Geolife longitude, 4 fractional digits.
    GeolifeLon,
    /// Dew-point temperature, 3 fractional digits.
    DewpointTemp,
    /// City temperature (many cities concatenated), 1 fractional digit.
    CityTemp,
    /// PM10 dust measurements, 3 fractional digits.
    Pm10Dust,
    /// Basel temperature, 9 fractional digits.
    BaselTemp,
    /// Basel wind speed, 7 fractional digits.
    BaselWind,
    /// Bird-migration positions, 5 fractional digits.
    BirdMigration,
    /// Bitcoin price, 4 fractional digits.
    BitcoinPrice,
}

impl Dataset {
    /// All 16 datasets in the paper's Table III order (decreasing size).
    pub const ALL: [Dataset; 16] = [
        Dataset::IrBioTemp,
        Dataset::StocksUsa,
        Dataset::Ecg,
        Dataset::WindDirection,
        Dataset::AirPressure,
        Dataset::StocksUk,
        Dataset::StocksDe,
        Dataset::GeolifeLat,
        Dataset::GeolifeLon,
        Dataset::DewpointTemp,
        Dataset::CityTemp,
        Dataset::Pm10Dust,
        Dataset::BaselTemp,
        Dataset::BaselWind,
        Dataset::BirdMigration,
        Dataset::BitcoinPrice,
    ];

    /// The paper's two-letter abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            Dataset::IrBioTemp => "IT",
            Dataset::StocksUsa => "US",
            Dataset::Ecg => "ECG",
            Dataset::WindDirection => "WD",
            Dataset::AirPressure => "AP",
            Dataset::StocksUk => "UK",
            Dataset::StocksDe => "GE",
            Dataset::GeolifeLat => "LAT",
            Dataset::GeolifeLon => "LON",
            Dataset::DewpointTemp => "DP",
            Dataset::CityTemp => "CT",
            Dataset::Pm10Dust => "DU",
            Dataset::BaselTemp => "BT",
            Dataset::BaselWind => "BW",
            Dataset::BirdMigration => "BM",
            Dataset::BitcoinPrice => "BP",
        }
    }

    /// Human-readable dataset name.
    pub fn full_name(self) -> &'static str {
        match self {
            Dataset::IrBioTemp => "IR-bio-temp",
            Dataset::StocksUsa => "Stocks-USA",
            Dataset::Ecg => "Electrocardiogram",
            Dataset::WindDirection => "Wind-direction",
            Dataset::AirPressure => "Air-pressure",
            Dataset::StocksUk => "Stocks-UK",
            Dataset::StocksDe => "Stocks-DE",
            Dataset::GeolifeLat => "Geolife-latitude",
            Dataset::GeolifeLon => "Geolife-longitude",
            Dataset::DewpointTemp => "Dewpoint-temp",
            Dataset::CityTemp => "City-temp",
            Dataset::Pm10Dust => "PM10-dust",
            Dataset::BaselTemp => "Basel-temp",
            Dataset::BaselWind => "Basel-wind",
            Dataset::BirdMigration => "Bird-migration",
            Dataset::BitcoinPrice => "Bitcoin-price",
        }
    }

    /// Fractional digits the paper multiplies by before integer coding.
    pub fn fractional_digits(self) -> u8 {
        match self {
            Dataset::IrBioTemp => 2,
            Dataset::StocksUsa => 2,
            Dataset::Ecg => 3,
            Dataset::WindDirection => 2,
            Dataset::AirPressure => 5,
            Dataset::StocksUk => 1,
            Dataset::StocksDe => 3,
            Dataset::GeolifeLat => 4,
            Dataset::GeolifeLon => 4,
            Dataset::DewpointTemp => 3,
            Dataset::CityTemp => 1,
            Dataset::Pm10Dust => 3,
            Dataset::BaselTemp => 9,
            Dataset::BaselWind => 7,
            Dataset::BirdMigration => 5,
            Dataset::BitcoinPrice => 4,
        }
    }

    /// Generates `n` points with a per-dataset default seed.
    pub fn generate(self, n: usize) -> TimeSeries {
        self.generate_seeded(n, 0xC0FFEE ^ self as u64)
    }

    /// Generates `n` points from an explicit seed.
    pub fn generate_seeded(self, n: usize, seed: u64) -> TimeSeries {
        let mut sig = Signal::new(seed);
        let raw = match self {
            Dataset::IrBioTemp => ir_bio_temp(n, &mut sig),
            Dataset::StocksUsa => stocks(n, &mut sig, 150.0, 0.0006, 0.0002),
            Dataset::Ecg => ecg(n, &mut sig),
            Dataset::WindDirection => wind_direction(n, &mut sig),
            Dataset::AirPressure => air_pressure(n, &mut sig),
            Dataset::StocksUk => stocks(n, &mut sig, 72.0, 0.0008, 0.0003),
            Dataset::StocksDe => stocks(n, &mut sig, 95.0, 0.0007, 0.00025),
            Dataset::GeolifeLat => geolife(n, &mut sig, 39.9),
            Dataset::GeolifeLon => geolife(n, &mut sig, 116.3),
            Dataset::DewpointTemp => dewpoint(n, &mut sig),
            Dataset::CityTemp => city_temp(n, &mut sig),
            Dataset::Pm10Dust => pm10(n, &mut sig),
            Dataset::BaselTemp => basel_temp(n, &mut sig),
            Dataset::BaselWind => basel_wind(n, &mut sig),
            Dataset::BirdMigration => bird_migration(n, &mut sig),
            Dataset::BitcoinPrice => bitcoin(n, &mut sig),
        };
        TimeSeries::from_f64(&raw, self.fractional_digits())
    }
}

/// Slow seasonal + diurnal cycle + AR(1) sensor noise, ~[-5, 40] °C.
fn ir_bio_temp(n: usize, sig: &mut Signal) -> Vec<f64> {
    let mut noise = Ar1::new(0.95, 0.08);
    (0..n)
        .map(|t| {
            15.0 + seasonal(t, &[(minutes_per_year(), 12.0, 0.3), (1440.0, 6.0, 1.1)]) + noise.step(sig)
        })
        .collect()
}

const fn minutes_per_year() -> f64 {
    525_600.0 // minutes per year; slow seasonal trend at 1-minute cadence
}

/// Geometric random walk with drift, volatility clustering, rare jumps.
fn stocks(n: usize, sig: &mut Signal, start: f64, vol: f64, drift: f64) -> Vec<f64> {
    let mut price = start;
    let mut vol_state = Ar1::new(0.995, 0.05);
    (0..n)
        .map(|_| {
            let local_vol = vol * (1.0 + vol_state.step(sig)).clamp(0.2, 5.0);
            let jump = if sig.bernoulli(2e-5) { sig.gauss_with(0.0, 0.02) } else { 0.0 };
            price *= (drift * 1e-3 + local_vol * sig.gauss() + jump).exp();
            price = price.max(0.01);
            price
        })
        .collect()
}

/// PQRST-like periodic waveform with RR variability and baseline wander, mV.
fn ecg(n: usize, sig: &mut Signal) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    let mut baseline = Ar1::new(0.999, 0.002);
    let mut t_in_beat = 0usize;
    let mut beat_len = 300usize;
    while out.len() < n {
        if t_in_beat >= beat_len {
            t_in_beat = 0;
            beat_len = (280.0 + 40.0 * sig.gauss()).clamp(200.0, 400.0) as usize;
        }
        let phase = t_in_beat as f64 / beat_len as f64;
        // Gaussians at P, Q, R, S, T positions of the beat.
        let pqrst = [
            (0.15, 0.12, 0.03),  // P
            (0.28, -0.10, 0.012), // Q
            (0.31, 1.10, 0.014), // R
            (0.34, -0.22, 0.012), // S
            (0.55, 0.25, 0.05),  // T
        ];
        let wave: f64 = pqrst
            .iter()
            .map(|&(c, a, w)| a * (-((phase - c) * (phase - c)) / (2.0 * w * w)).exp())
            .sum();
        out.push(wave + baseline.step(sig) + 0.004 * sig.gauss());
        t_in_beat += 1;
    }
    out
}

/// Circular random walk on [0, 360) with gusty variance.
fn wind_direction(n: usize, sig: &mut Signal) -> Vec<f64> {
    let mut dir = 180.0f64;
    let mut gust = Ar1::new(0.98, 0.3);
    (0..n)
        .map(|_| {
            let sigma = 1.5 * (1.0 + gust.step(sig).abs());
            dir = (dir + sigma * sig.gauss()).rem_euclid(360.0);
            dir
        })
        .collect()
}

/// Very smooth barometric pressure around 1013 hPa.
fn air_pressure(n: usize, sig: &mut Signal) -> Vec<f64> {
    let mut p = 1013.25;
    let mut trend = Ar1::new(0.9995, 0.0004);
    (0..n)
        .map(|t| {
            p += trend.step(sig) * 0.01;
            p + seasonal(t, &[(1440.0, 0.4, 0.0), (720.0, 0.15, 0.8)]) + 0.0005 * sig.gauss()
        })
        .collect()
}

/// GPS trajectories: movement segments with gentle turning (curved roads),
/// speed drift, and stationary stops, plus receiver jitter.
fn geolife(n: usize, sig: &mut Signal, origin: f64) -> Vec<f64> {
    let mut pos = origin;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let seg = sig.uniform_usize(50, 2000).min(n - out.len());
        let moving = sig.bernoulli(0.6);
        let mut vel = if moving { sig.gauss_with(0.0, 2e-5) } else { 0.0 };
        // Roads curve: the velocity itself drifts within a segment.
        let turn = if moving { sig.gauss_with(0.0, 3e-8) } else { 0.0 };
        for _ in 0..seg {
            vel += turn + if moving { 2e-9 * sig.gauss() } else { 0.0 };
            pos += vel + 2e-6 * sig.gauss(); // GPS jitter
            out.push(pos);
        }
    }
    out
}

/// Dew-point: seasonal + daily cycle + weather-front AR noise.
fn dewpoint(n: usize, sig: &mut Signal) -> Vec<f64> {
    let mut front = Ar1::new(0.998, 0.03);
    (0..n)
        .map(|t| {
            8.0 + seasonal(t, &[(minutes_per_year() / 12.0, 7.0, 0.0), (1440.0, 2.5, 0.4)])
                + front.step(sig)
                + 0.02 * sig.gauss()
        })
        .collect()
}

/// Daily temperatures of ~50 cities concatenated (discontinuous joins).
fn city_temp(n: usize, sig: &mut Signal) -> Vec<f64> {
    let cities = 50usize;
    let per_city = (n / cities).max(1);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let mean = sig.uniform_in(-5.0, 30.0);
        let amp = sig.uniform_in(5.0, 18.0);
        let phase = sig.uniform_in(0.0, std::f64::consts::TAU);
        let mut noise = Ar1::new(0.8, 1.4);
        let m = per_city.min(n - out.len());
        for t in 0..m {
            out.push(mean + amp * (std::f64::consts::TAU * t as f64 / 365.0 + phase).sin() + noise.step(sig));
        }
    }
    out
}

/// PM10: heavy-tailed bursts on a smooth log-scale background.
fn pm10(n: usize, sig: &mut Signal) -> Vec<f64> {
    let mut log_level = Ar1::new(0.995, 0.04);
    (0..n)
        .map(|_| {
            let base = (2.8 + log_level.step(sig)).exp();
            let spike = if sig.bernoulli(0.002) { sig.log_normal(3.0, 0.8) } else { 0.0 };
            (base + spike).min(5000.0)
        })
        .collect()
}

/// Basel temperature: seasonal signal with 9 digits of instrument noise.
fn basel_temp(n: usize, sig: &mut Signal) -> Vec<f64> {
    let mut w = Ar1::new(0.99, 0.2);
    (0..n)
        .map(|t| {
            10.0 + seasonal(t, &[(8760.0, 9.0, 0.0), (24.0, 4.0, 0.7)])
                + w.step(sig)
                + 1e-7 * sig.gauss() // sub-precision noise makes low bits incompressible
        })
        .collect()
}

/// Basel wind speed: non-negative, gusty, 7 digits of precision.
fn basel_wind(n: usize, sig: &mut Signal) -> Vec<f64> {
    let mut g = Ar1::new(0.97, 0.6);
    (0..n)
        .map(|t| {
            let base = 3.5 + seasonal(t, &[(8760.0, 1.0, 0.2), (24.0, 0.8, 1.3)]) + g.step(sig);
            base.max(0.0) + 1e-5 * sig.gauss().abs()
        })
        .collect()
}

/// Bird migration: long smooth great-circle-like arcs with rest periods.
fn bird_migration(n: usize, sig: &mut Signal) -> Vec<f64> {
    let mut lat = 45.0;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let seg = sig.uniform_usize(20, 300).min(n - out.len());
        let migrating = sig.bernoulli(0.4);
        let v = if migrating { sig.gauss_with(-0.01, 0.02) } else { 0.0 };
        let curve = sig.gauss_with(0.0, 1e-4);
        for s in 0..seg {
            lat += v + curve * s as f64 + 5e-4 * sig.gauss();
            out.push(lat.clamp(-60.0, 75.0));
        }
    }
    out
}

/// Bitcoin: high-volatility geometric walk with regime shifts.
fn bitcoin(n: usize, sig: &mut Signal) -> Vec<f64> {
    let mut price = 30_000.0f64;
    let mut regime = Ar1::new(0.999, 0.1);
    (0..n)
        .map(|_| {
            let vol = 0.004 * (1.0 + regime.step(sig).abs());
            price *= (vol * sig.gauss()).exp();
            price = price.clamp(100.0, 500_000.0);
            price
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_generate_requested_length() {
        for ds in Dataset::ALL {
            let ts = ds.generate(1000);
            assert_eq!(ts.len(), 1000, "{}", ds.abbrev());
            assert_eq!(ts.fractional_digits(), ds.fractional_digits());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for ds in Dataset::ALL {
            let a = ds.generate(500);
            let b = ds.generate(500);
            assert_eq!(a, b, "{}", ds.abbrev());
        }
    }

    #[test]
    fn seeds_change_output() {
        let a = Dataset::StocksUsa.generate_seeded(500, 1);
        let b = Dataset::StocksUsa.generate_seeded(500, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn abbreviations_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for ds in Dataset::ALL {
            assert!(seen.insert(ds.abbrev()));
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn value_ranges_are_sane() {
        // Wind direction stays in [0, 360) degrees (scaled by 100).
        let wd = Dataset::WindDirection.generate(5000);
        let (lo, hi) = wd.min_max().unwrap();
        assert!(lo >= 0 && hi < 36_000, "wind range [{lo}, {hi}]");

        // PM10 is non-negative.
        let du = Dataset::Pm10Dust.generate(5000);
        assert!(du.min_max().unwrap().0 >= 0);

        // Stock prices stay positive.
        for ds in [Dataset::StocksUsa, Dataset::StocksUk, Dataset::StocksDe, Dataset::BitcoinPrice] {
            assert!(ds.generate(5000).min_max().unwrap().0 > 0, "{}", ds.abbrev());
        }
    }

    #[test]
    fn smooth_datasets_have_small_consecutive_deltas() {
        // Air pressure must be far smoother than Bitcoin relative to its range.
        fn mean_abs_delta_over_range(ts: &TimeSeries) -> f64 {
            let v = ts.values();
            let d: f64 = v.windows(2).map(|w| (w[1] - w[0]).abs() as f64).sum::<f64>()
                / (v.len() - 1) as f64;
            d / ts.delta() as f64
        }
        let ap = mean_abs_delta_over_range(&Dataset::AirPressure.generate(20_000));
        let bp = mean_abs_delta_over_range(&Dataset::BitcoinPrice.generate(20_000));
        assert!(ap < bp, "air pressure {ap} vs bitcoin {bp}");
    }

    #[test]
    fn ecg_is_periodic_with_tall_r_peaks() {
        let ecg = Dataset::Ecg.generate(10_000);
        let (lo, hi) = ecg.min_max().unwrap();
        // R peak ~1.1 mV, S dip ~-0.25 mV (scaled by 1000)
        assert!(hi > 800, "R peak too small: {hi}");
        assert!(lo < -100, "S dip missing: {lo}");
    }
}
