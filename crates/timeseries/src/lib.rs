//! # timeseries — types, traits, and evaluation datasets
//!
//! Shared foundation of the NeaTS workspace:
//!
//! * [`types::TimeSeries`] — integer time series with implicit timestamps
//!   `1..=n` and decimal-scaling metadata (paper Definition 1).
//! * [`types::Compressor`] / [`types::CompressedSeries`] — the uniform
//!   interface every lossless compressor in the evaluation implements
//!   (compress, decompress, random access, range scan).
//! * [`datasets::Dataset`] — deterministic synthetic stand-ins for the 16
//!   real-world datasets of the paper's evaluation (§IV-A1).
//! * [`io`] — loading real fixed-precision text data with the paper's
//!   `× 10^digits` transform.

#![warn(missing_docs)]
pub mod datasets;
pub mod gen;
pub mod io;
pub mod types;

pub use datasets::Dataset;
pub use types::{
    checked_scale, compression_ratio_pct, mape_pct, AnyCompressor, CompressedSeries, Compressor,
    TimeSeries, ValueError, ValueErrorKind,
};
