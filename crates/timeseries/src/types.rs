//! Core time-series types and the compressor interfaces shared by every
//! crate in the workspace.

/// A time series of integer values with implicit timestamps `1..=n`
/// (paper §III-C: "we focus on the storage of the values y₁, …, yₙ and assume
/// the timestamps are 1, …, n").
///
/// Real-world decimal values are stored as integers scaled by
/// `10^fractional_digits`, following the paper's Definition 1 discussion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimeSeries {
    values: Vec<i64>,
    fractional_digits: u8,
}

impl TimeSeries {
    /// Wraps raw integer values (no decimal scaling).
    pub fn from_values(values: Vec<i64>) -> Self {
        Self { values, fractional_digits: 0 }
    }

    /// Wraps integer values that represent decimals scaled by
    /// `10^fractional_digits`.
    pub fn from_scaled(values: Vec<i64>, fractional_digits: u8) -> Self {
        Self { values, fractional_digits }
    }

    /// Converts floating-point values with a fixed number of fractional
    /// digits into the scaled-integer representation.
    ///
    /// This is the *trusted-input* constructor for values known to be finite
    /// and in range (the synthetic generators, test fixtures). Data crossing
    /// a system boundary — file loaders, ingest endpoints — must go through
    /// [`Self::try_from_f64`] instead, which rejects NaN/infinite and
    /// unrepresentably-large values with a typed error rather than silently
    /// folding them (`NaN as i64` is `0`, overflow saturates).
    ///
    /// # Panics
    /// If any value is non-finite or its scaled magnitude does not fit in
    /// `i64` — a trusted caller handing over such a value is a bug, not an
    /// input error.
    pub fn from_f64(values: &[f64], fractional_digits: u8) -> Self {
        Self::try_from_f64(values, fractional_digits)
            .unwrap_or_else(|e| panic!("TimeSeries::from_f64 on untrusted input: {e}"))
    }

    /// Fallible conversion from floating-point values: every value is
    /// checked through [`checked_scale`] and the first offending one is
    /// reported with its index.
    pub fn try_from_f64(values: &[f64], fractional_digits: u8) -> Result<Self, ValueError> {
        let mut out = Vec::with_capacity(values.len());
        for (index, &v) in values.iter().enumerate() {
            out.push(
                checked_scale(v, fractional_digits)
                    .map_err(|kind| ValueError { index, value: v, kind })?,
            );
        }
        Ok(Self { values: out, fractional_digits })
    }

    /// Number of data points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The integer values.
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// The declared number of fractional digits of the original data.
    pub fn fractional_digits(&self) -> u8 {
        self.fractional_digits
    }

    /// The original floating-point values (`value / 10^digits`).
    pub fn to_f64(&self) -> Vec<f64> {
        let scale = 10f64.powi(self.fractional_digits as i32);
        self.values.iter().map(|&v| v as f64 / scale).collect()
    }

    /// Uncompressed size in bytes (64-bit integers, as in the paper's
    /// compression-ratio denominator).
    pub fn uncompressed_bytes(&self) -> usize {
        self.values.len() * 8
    }

    /// Minimum and maximum value; `None` on an empty series.
    pub fn min_max(&self) -> Option<(i64, i64)> {
        let mut it = self.values.iter();
        let first = *it.next()?;
        let (mut lo, mut hi) = (first, first);
        for &v in it {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }

    /// The paper's Δ: one plus the difference between the maximum and
    /// minimum value (§III-B complexity analysis). Zero for an empty series.
    pub fn delta(&self) -> u64 {
        self.min_max().map_or(0, |(lo, hi)| hi.abs_diff(lo) + 1)
    }
}

/// Why a floating-point input value was rejected by [`checked_scale`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValueErrorKind {
    /// NaN or ±infinity — there is no meaningful scaled integer for it.
    NonFinite,
    /// The scaled magnitude does not fit in `i64` (e.g. `1e300` at any
    /// digit count, or a merely-large value at a high digit count).
    OutOfRange,
}

/// A typed rejection of one floating-point input value, carrying enough
/// context (position and offending value) for an ingest boundary to report
/// precisely what was wrong — instead of the silent `NaN → 0` /
/// saturating-cast corruption an unchecked `as i64` would produce.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ValueError {
    /// 0-based position of the offending value in the input slice.
    pub index: usize,
    /// The offending value itself.
    pub value: f64,
    /// What was wrong with it.
    pub kind: ValueErrorKind,
}

impl std::fmt::Display for ValueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            ValueErrorKind::NonFinite => {
                write!(f, "value {} at index {} is not finite", self.value, self.index)
            }
            ValueErrorKind::OutOfRange => write!(
                f,
                "value {} at index {} does not fit the scaled 64-bit integer domain",
                self.value, self.index
            ),
        }
    }
}

impl std::error::Error for ValueError {}

/// Scales one value by `10^fractional_digits` and rounds to the integer
/// domain, rejecting non-finite input and overflow with a typed error.
///
/// This is the single conversion rule every untrusted-input path shares
/// (file loaders, the CLI's CSV reader, [`TimeSeries::try_from_f64`]), so
/// boundaries cannot drift on what they accept.
pub fn checked_scale(value: f64, fractional_digits: u8) -> Result<i64, ValueErrorKind> {
    if !value.is_finite() {
        return Err(ValueErrorKind::NonFinite);
    }
    let scaled = (value * 10f64.powi(fractional_digits as i32)).round();
    // The exact f64 boundary values: ±2^63 is representable; anything with
    // |scaled| ≥ 2^63 cannot round-trip through i64 (2^63 - 1 itself is not
    // an f64, the nearest are 2^63 - 1024 and 2^63).
    if scaled < -(2f64.powi(63)) || scaled >= 2f64.powi(63) {
        return Err(ValueErrorKind::OutOfRange);
    }
    Ok(scaled as i64)
}

/// A compressed, randomly-accessible representation of a time series.
pub trait CompressedSeries {
    /// Number of data points in the original series.
    fn len(&self) -> usize;

    /// Whether the original series was empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total compressed size in bytes, including all access structures.
    fn size_in_bytes(&self) -> usize;

    /// Decompresses the whole series.
    fn decompress(&self) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.len());
        self.scan_range(0, self.len(), &mut out);
        out
    }

    /// Random access to the `i`-th value (0-based).
    fn get(&self, i: usize) -> i64;

    /// Appends the values in `[start, start + count)` to `out`
    /// (a range query: one random access plus a scan, paper §IV-C4).
    fn scan_range(&self, start: usize, count: usize, out: &mut Vec<i64>) {
        for i in start..start + count {
            out.push(self.get(i));
        }
    }
}

/// A lossless compressor that can be benchmarked uniformly.
pub trait Compressor {
    /// The compressed representation type.
    type Output: CompressedSeries;

    /// Display name used in tables and figures.
    fn name(&self) -> &'static str;

    /// Compresses a time series.
    fn compress(&self, ts: &TimeSeries) -> Self::Output;
}

/// An object-safe view of a [`Compressor`], letting benchmarks hold a
/// heterogeneous collection of compressors uniformly.
pub trait AnyCompressor {
    /// Display name used in tables and figures.
    fn name(&self) -> &'static str;

    /// Compresses into a boxed, dynamically-typed compressed series.
    fn compress_boxed(&self, ts: &TimeSeries) -> Box<dyn CompressedSeries>;
}

impl<T> AnyCompressor for T
where
    T: Compressor,
    T::Output: 'static,
{
    fn name(&self) -> &'static str {
        Compressor::name(self)
    }

    fn compress_boxed(&self, ts: &TimeSeries) -> Box<dyn CompressedSeries> {
        Box::new(self.compress(ts))
    }
}

/// Compression ratio as a percentage of the raw 64-bit representation
/// (paper §IV-B: "the size of the compressed output divided by the size of
/// the original data").
pub fn compression_ratio_pct(compressed_bytes: usize, original: &TimeSeries) -> f64 {
    100.0 * compressed_bytes as f64 / original.uncompressed_bytes() as f64
}

/// Mean Absolute Percentage Error between `original` and a reconstruction,
/// in percent (paper §IV-B).
///
/// Points whose original magnitude is below one *original unit*
/// (`10^fractional_digits` in the scaled-integer domain) are skipped:
/// relative error is ill-defined near zero and a handful of zero-crossing
/// points would otherwise dominate the mean.
pub fn mape_pct(original: &TimeSeries, reconstruction: &[i64]) -> f64 {
    assert_eq!(original.len(), reconstruction.len());
    let floor = 10i64.pow(original.fractional_digits() as u32);
    let mut sum = 0.0;
    let mut count = 0usize;
    for (&v, &r) in original.values().iter().zip(reconstruction) {
        if v.abs() >= floor {
            sum += (v - r).abs() as f64 / v.abs() as f64;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        100.0 * sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_f64_scales() {
        let ts = TimeSeries::from_f64(&[1.25, -3.5, 0.0], 2);
        assert_eq!(ts.values(), &[125, -350, 0]);
        assert_eq!(ts.fractional_digits(), 2);
        assert_eq!(ts.to_f64(), vec![1.25, -3.5, 0.0]);
    }

    #[test]
    fn try_from_f64_rejects_non_finite_with_position() {
        let err = TimeSeries::try_from_f64(&[1.0, f64::NAN, 3.0], 2).unwrap_err();
        assert_eq!(err.index, 1);
        assert_eq!(err.kind, ValueErrorKind::NonFinite);
        assert!(err.value.is_nan());
        let err = TimeSeries::try_from_f64(&[f64::INFINITY], 0).unwrap_err();
        assert_eq!(err.kind, ValueErrorKind::NonFinite);
        let err = TimeSeries::try_from_f64(&[2.0, f64::NEG_INFINITY], 0).unwrap_err();
        assert_eq!((err.index, err.kind), (1, ValueErrorKind::NonFinite));
    }

    #[test]
    fn try_from_f64_rejects_overflow_with_position() {
        // 1e300 overflows at any scale; 1e18 overflows once scaled by 10^2.
        for (vals, digits) in [(vec![1e300], 0u8), (vec![0.5, 9.3e18], 0), (vec![1e18], 2)] {
            let err = TimeSeries::try_from_f64(&vals, digits).unwrap_err();
            assert_eq!(err.kind, ValueErrorKind::OutOfRange, "{vals:?} @ {digits}");
        }
        // The extremes that *do* fit must be accepted, not saturated.
        let max_exact = (i64::MAX as f64 * 0.99).floor();
        let ts = TimeSeries::try_from_f64(&[max_exact, -max_exact], 0).unwrap();
        assert_eq!(ts.values()[0], max_exact as i64);
    }

    #[test]
    fn checked_scale_boundary_values() {
        assert_eq!(checked_scale(1.25, 2), Ok(125));
        assert_eq!(checked_scale(-0.0, 5), Ok(0));
        // Denormals round to zero rather than erroring.
        assert_eq!(checked_scale(f64::MIN_POSITIVE / 4.0, 9), Ok(0));
        assert_eq!(checked_scale(f64::NAN, 0), Err(ValueErrorKind::NonFinite));
        assert_eq!(checked_scale(2f64.powi(63), 0), Err(ValueErrorKind::OutOfRange));
        assert_eq!(checked_scale(-(2f64.powi(63)), 0), Ok(i64::MIN));
    }

    #[test]
    #[should_panic(expected = "untrusted input")]
    fn from_f64_panics_on_nan_instead_of_zeroing() {
        let _ = TimeSeries::from_f64(&[f64::NAN], 0);
    }

    #[test]
    fn min_max_and_delta() {
        let ts = TimeSeries::from_values(vec![3, -2, 10, 7]);
        assert_eq!(ts.min_max(), Some((-2, 10)));
        assert_eq!(ts.delta(), 13);
        assert_eq!(TimeSeries::from_values(vec![]).delta(), 0);
        assert_eq!(TimeSeries::from_values(vec![5]).delta(), 1);
    }

    #[test]
    fn uncompressed_bytes_is_8n() {
        let ts = TimeSeries::from_values(vec![0; 100]);
        assert_eq!(ts.uncompressed_bytes(), 800);
    }

    #[test]
    fn ratio_pct() {
        let ts = TimeSeries::from_values(vec![0; 100]);
        assert!((compression_ratio_pct(80, &ts) - 10.0).abs() < 1e-12);
    }
}
