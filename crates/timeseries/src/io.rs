//! Loading real-world series from text files (one decimal value per line).
//!
//! The paper's datasets ship as textual fixed-precision values; this loader
//! applies the same `× 10^digits` integer transform so real data can be
//! dropped in next to the synthetic generators.

use crate::types::TimeSeries;
use std::io::BufRead;
use std::path::Path;

use crate::types::ValueErrorKind;

/// Errors from [`load_fixed_precision`].
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line that could not be parsed as a decimal number.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// The line's text, for the error message.
        content: String,
    },
    /// A line that parsed as a float but is not storable: NaN/infinite
    /// (Rust's float parser accepts the literals `NaN` and `inf`) or too
    /// large for the scaled 64-bit integer domain. Without this typed
    /// rejection a `NaN` line would silently load as `0`.
    Value {
        /// 1-based line number of the offending line.
        line: usize,
        /// The line's text, for the error message.
        content: String,
        /// Why the value was rejected.
        kind: ValueErrorKind,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Parse { line, content } => {
                write!(f, "line {line}: cannot parse {content:?} as a number")
            }
            LoadError::Value { line, content, kind } => match kind {
                ValueErrorKind::NonFinite => {
                    write!(f, "line {line}: value {content:?} is not finite")
                }
                ValueErrorKind::OutOfRange => write!(
                    f,
                    "line {line}: value {content:?} does not fit the scaled 64-bit integer domain"
                ),
            },
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Loads a one-value-per-line text file, scaling by `10^fractional_digits`.
/// Empty lines are skipped.
pub fn load_fixed_precision(path: &Path, fractional_digits: u8) -> Result<TimeSeries, LoadError> {
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    parse_lines(reader, fractional_digits)
}

/// Parses decimal values from any reader (one per line).
pub fn parse_lines<R: BufRead>(reader: R, fractional_digits: u8) -> Result<TimeSeries, LoadError> {
    let mut values = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let v: f64 = trimmed
            .parse()
            .map_err(|_| LoadError::Parse { line: i + 1, content: trimmed.to_string() })?;
        values.push(crate::types::checked_scale(v, fractional_digits).map_err(|kind| {
            LoadError::Value { line: i + 1, content: trimmed.to_string(), kind }
        })?);
    }
    Ok(TimeSeries::from_scaled(values, fractional_digits))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_values_with_scaling() {
        let input = "1.25\n-3.5\n\n  42 \n";
        let ts = parse_lines(std::io::Cursor::new(input), 2).unwrap();
        assert_eq!(ts.values(), &[125, -350, 4200]);
    }

    #[test]
    fn reports_bad_lines() {
        let input = "1.0\nnot-a-number\n";
        let err = parse_lines(std::io::Cursor::new(input), 0).unwrap_err();
        match err {
            LoadError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn rejects_nan_and_oversized_lines_typed() {
        // Rust's float parser happily accepts "NaN"/"inf"; the loader must
        // reject them instead of storing 0.
        for text in ["1.0\nNaN\n", "1.0\ninf\n", "1.0\n-inf\n"] {
            match parse_lines(std::io::Cursor::new(text), 2).unwrap_err() {
                LoadError::Value { line, kind, .. } => {
                    assert_eq!(line, 2);
                    assert_eq!(kind, ValueErrorKind::NonFinite);
                }
                other => panic!("unexpected error {other}"),
            }
        }
        match parse_lines(std::io::Cursor::new("7e300\n"), 0).unwrap_err() {
            LoadError::Value { line, kind, .. } => {
                assert_eq!(line, 1);
                assert_eq!(kind, ValueErrorKind::OutOfRange);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn load_from_file() {
        let dir = std::env::temp_dir().join("neats_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("series.txt");
        std::fs::write(&path, "10.5\n11.5\n").unwrap();
        let ts = load_fixed_precision(&path, 1).unwrap();
        assert_eq!(ts.values(), &[105, 115]);
    }
}
