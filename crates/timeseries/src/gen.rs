//! Random-signal building blocks used by the dataset generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random source with the distribution helpers the generators need.
pub struct Signal {
    rng: StdRng,
    gauss_spare: Option<f64>,
}

impl Signal {
    /// Creates a deterministic source from a seed.
    pub fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), gauss_spare: None }
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.random::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.random_range(lo..hi)
    }

    /// Standard normal via Box–Muller (rand_distr is not on the allowlist).
    pub fn gauss(&mut self) -> f64 {
        if let Some(v) = self.gauss_spare.take() {
            return v;
        }
        let (u1, u2) = (self.uniform().max(1e-12), self.uniform());
        let r = (-2.0 * u1.ln()).sqrt();
        let (s, c) = (std::f64::consts::TAU * u2).sin_cos();
        self.gauss_spare = Some(r * s);
        r * c
    }

    /// Normal with the given mean and standard deviation.
    pub fn gauss_with(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.gauss()
    }

    /// Log-normal with the given location and scale of the underlying normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.gauss()).exp()
    }

    /// True with probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }
}

/// First-order autoregressive process: `x_{t+1} = φ·x_t + σ·ε`, started at 0.
pub struct Ar1 {
    phi: f64,
    sigma: f64,
    state: f64,
}

impl Ar1 {
    /// Creates the process with persistence `phi` and innovation scale `sigma`.
    pub fn new(phi: f64, sigma: f64) -> Self {
        Self { phi, sigma, state: 0.0 }
    }

    /// Advances one step and returns the new state.
    pub fn step(&mut self, sig: &mut Signal) -> f64 {
        self.state = self.phi * self.state + self.sigma * sig.gauss();
        self.state
    }
}

/// A seasonal component: sum of sinusoids with the given periods, amplitudes
/// and phases, evaluated at integer time `t`.
pub fn seasonal(t: usize, components: &[(f64, f64, f64)]) -> f64 {
    components
        .iter()
        .map(|&(period, amplitude, phase)| {
            amplitude * (std::f64::consts::TAU * t as f64 / period + phase).sin()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Signal::new(7);
        let mut b = Signal::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
            assert_eq!(a.gauss().to_bits(), b.gauss().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Signal::new(1);
        let mut b = Signal::new(2);
        let same = (0..20).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 5);
    }

    #[test]
    fn gauss_moments_roughly_standard() {
        let mut s = Signal::new(42);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| s.gauss()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn ar1_is_stationary_for_phi_below_one() {
        let mut s = Signal::new(9);
        let mut ar = Ar1::new(0.9, 1.0);
        let xs: Vec<f64> = (0..20_000).map(|_| ar.step(&mut s)).collect();
        let max = xs.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        // stationary std ≈ 1/sqrt(1-0.81) ≈ 2.29; excursions beyond ~6σ are absurd
        assert!(max < 15.0, "max {max}");
    }

    #[test]
    fn seasonal_period() {
        let comps = [(100.0, 2.0, 0.0)];
        let a = seasonal(10, &comps);
        let b = seasonal(110, &comps);
        assert!((a - b).abs() < 1e-9);
    }
}
