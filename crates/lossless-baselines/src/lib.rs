//! # lossless-baselines — the paper's lossless competitors, from scratch
//!
//! Every special-purpose compressor of Table III plus the two general-purpose
//! stand-ins, all implementing the workspace's
//! [`timeseries::Compressor`]/[`timeseries::CompressedSeries`] interface:
//!
//! | Module | Compressor | Random access |
//! |---|---|---|
//! | [`gorilla`] | Gorilla XOR (VLDB 2015) | block-wise |
//! | [`chimp`] | Chimp & Chimp128 (VLDB 2022) | block-wise |
//! | [`tsxor`] | TSXor (SPIRE 2021) | block-wise |
//! | [`dac`] | Directly Addressable Codes (IP&M 2013) | native |
//! | [`elf`] | Elf-style erasing compression (VLDB 2023) | block-wise |
//! | [`leco`] | LeCo-style learned compression (SIGMOD 2024) | native |
//! | [`alp`] | ALP-style pseudodecimal (SIGMOD 2024) | native |
//! | [`lz`] | FastLz (Lz4/Snappy class), EntropyLz (Zstd/Xz class) | block-wise |
//!
//! Stream codecs without native random access are lifted with
//! [`stream::Blockwise`], the paper's 1000-value-block protocol (§IV-A2).

#![warn(missing_docs)]
pub mod alp;
pub mod chimp;
pub mod dac;
pub mod elf;
pub mod gorilla;
pub mod huffman;
pub mod leco;
pub mod lz;
pub mod stream;
pub mod tsxor;

pub use alp::Alp;
pub use chimp::{Chimp, Chimp128};
pub use dac::Dac;
pub use elf::Elf;
pub use gorilla::Gorilla;
pub use leco::Leco;
pub use lz::{EntropyLz, FastLz};
pub use stream::{Blockwise, StreamCodec, BLOCK_SIZE};
pub use tsxor::TsXor;

use timeseries::AnyCompressor;

/// Every lossless competitor of the paper's evaluation, in Table III column
/// order, ready for uniform benchmarking. Stream codecs are pre-wrapped in
/// the 1000-value block protocol.
pub fn paper_competitors() -> Vec<Box<dyn AnyCompressor>> {
    vec![
        Box::new(Blockwise::new(EntropyLz::default())), // Xz/Brotli/Zstd class
        Box::new(Blockwise::new(FastLz)),               // Lz4/Snappy class
        Box::new(Blockwise::new(Chimp128)),
        Box::new(Blockwise::new(Chimp)),
        Box::new(Blockwise::new(TsXor)),
        Box::new(Dac::default()),
        Box::new(Blockwise::new(Gorilla)),
        Box::new(Leco),
        Box::new(Alp),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use timeseries::{Dataset, TimeSeries};

    /// Cross-compressor conformance: every competitor round-trips every
    /// dataset generator and supports consistent random access.
    #[test]
    fn all_competitors_roundtrip_all_datasets() {
        for ds in Dataset::ALL {
            let ts = ds.generate(2500);
            for comp in paper_competitors() {
                let c = comp.compress_boxed(&ts);
                assert_eq!(c.len(), ts.len(), "{} on {}", comp.name(), ds.abbrev());
                assert_eq!(
                    c.decompress(),
                    ts.values(),
                    "{} decompress on {}",
                    comp.name(),
                    ds.abbrev()
                );
                for k in [0usize, 1, 999, 1000, 2499] {
                    assert_eq!(c.get(k), ts.values()[k], "{} get({k}) on {}", comp.name(), ds.abbrev());
                }
            }
        }
    }

    #[test]
    fn scan_range_consistency() {
        let ts = Dataset::StocksUsa.generate(3000);
        let mut rng = StdRng::seed_from_u64(1);
        for comp in paper_competitors() {
            let c = comp.compress_boxed(&ts);
            for _ in 0..20 {
                let s = rng.random_range(0..ts.len());
                let l = rng.random_range(0..(ts.len() - s).min(500));
                let mut out = Vec::new();
                c.scan_range(s, l, &mut out);
                assert_eq!(out, &ts.values()[s..s + l], "{} scan", comp.name());
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let comps = paper_competitors();
        let mut names: Vec<&str> = comps.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), comps.len());
    }

    #[test]
    fn sizes_are_positive_and_reported() {
        let ts = TimeSeries::from_values((0..2000).map(|k| k * 7 % 1000).collect());
        for comp in paper_competitors() {
            let c = comp.compress_boxed(&ts);
            assert!(c.size_in_bytes() > 0, "{}", comp.name());
        }
    }
}
