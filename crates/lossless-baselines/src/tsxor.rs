//! TSXor (Bruno et al., SPIRE 2021) — a byte-oriented window XOR codec.
//!
//! Each value is matched against a window of the previous
//! [`TSXOR_WINDOW`] values:
//!
//! * an exact window match emits a single reference byte;
//! * otherwise the value is XORed with the window value sharing the most
//!   bits, and the nonzero "core" of the XOR is emitted byte-aligned with a
//!   2-byte header (reference + offset/length nibble pair);
//! * incompressible values fall back to a 1-byte escape plus the raw 8 bytes.

use crate::stream::StreamCodec;

/// Window size (the paper's 128-value window, minus one for the escape tag).
pub const TSXOR_WINDOW: usize = 127;

const ESCAPE: u8 = 0xFF;
const XOR_BASE: u8 = 0x80; // control bytes 0x80..=0xFE encode XOR references

/// The TSXor codec.
#[derive(Clone, Copy, Debug, Default)]
pub struct TsXor;

impl StreamCodec for TsXor {
    fn name(&self) -> &'static str {
        "TSXor"
    }

    fn wants_float_bits(&self) -> bool {
        true
    }

    #[allow(clippy::needless_range_loop)] // windowed index search is clearer indexed
    fn encode(&self, words: &[u64]) -> Vec<u8> {
        let mut out = Vec::with_capacity(words.len() * 3);
        for (i, &word) in words.iter().enumerate() {
            let lo = i.saturating_sub(TSXOR_WINDOW);
            // Exact match?
            if let Some(j) = (lo..i).rev().find(|&j| words[j] == word) {
                out.push((i - 1 - j) as u8); // 0..=126 < 0x80
                continue;
            }
            // Best XOR candidate: fewest meaningful bytes.
            let mut best: Option<(usize, u64, usize, usize)> = None; // (j, xor, first, len)
            for j in lo..i {
                let xor = words[j] ^ word;
                let lead_bytes = (xor.leading_zeros() / 8) as usize;
                let trail_bytes = (xor.trailing_zeros() / 8) as usize;
                let len = 8 - lead_bytes - trail_bytes;
                if best.is_none_or(|(_, _, _, blen)| len < blen) {
                    best = Some((j, xor, trail_bytes, len));
                }
            }
            match best {
                Some((j, xor, first, len)) if len < 7 && i > lo => {
                    out.push(XOR_BASE + (i - 1 - j) as u8);
                    out.push(((first as u8) << 4) | len as u8);
                    let bytes = xor.to_le_bytes();
                    out.extend_from_slice(&bytes[first..first + len]);
                }
                _ => {
                    out.push(ESCAPE);
                    out.extend_from_slice(&word.to_le_bytes());
                }
            }
        }
        out
    }

    fn decode(&self, data: &[u8], n: usize) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::with_capacity(n);
        let mut p = 0usize;
        for i in 0..n {
            let c = data[p];
            p += 1;
            if c == ESCAPE {
                let word = u64::from_le_bytes(data[p..p + 8].try_into().expect("8 bytes"));
                p += 8;
                out.push(word);
            } else if c >= XOR_BASE {
                let j = i - 1 - (c - XOR_BASE) as usize;
                let hdr = data[p];
                p += 1;
                let first = (hdr >> 4) as usize;
                let len = (hdr & 0xF) as usize;
                let mut bytes = [0u8; 8];
                bytes[first..first + len].copy_from_slice(&data[p..p + len]);
                p += len;
                out.push(out[j] ^ u64::from_le_bytes(bytes));
            } else {
                let j = i - 1 - c as usize;
                out.push(out[j]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn roundtrip(words: &[u64]) {
        let enc = TsXor.encode(words);
        assert_eq!(TsXor.decode(&enc, words.len()), words);
    }

    #[test]
    fn empty_and_single() {
        roundtrip(&[]);
        roundtrip(&[123]);
    }

    #[test]
    fn repeats_cost_one_byte() {
        let words = vec![9.75f64.to_bits(); 500];
        let enc = TsXor.encode(&words);
        assert!(enc.len() <= 9 + 499, "got {}", enc.len());
        roundtrip(&words);
    }

    #[test]
    fn periodic_window_matches() {
        let words: Vec<u64> = (0..1000).map(|k| ((k % 50) as f64).to_bits()).collect();
        let enc = TsXor.encode(&words);
        // after the first period, everything is an exact window match
        assert!(enc.len() < 1000 * 3, "got {}", enc.len());
        roundtrip(&words);
    }

    #[test]
    fn random_words_roundtrip() {
        let mut rng = StdRng::seed_from_u64(5);
        let words: Vec<u64> = (0..1200).map(|_| rng.random()).collect();
        roundtrip(&words);
    }

    #[test]
    fn smooth_series_uses_xor_case() {
        let words: Vec<u64> = (0..800).map(|k| (500.0 + k as f64 * 0.125).to_bits()).collect();
        roundtrip(&words);
        let enc = TsXor.encode(&words);
        assert!(enc.len() < 800 * 9, "no savings");
    }

    #[test]
    fn escape_path_for_alternating_extremes() {
        let words: Vec<u64> = (0..100)
            .map(|k| if k % 2 == 0 { u64::MAX } else { 1u64 << 63 } ^ (k as u64).rotate_left(32))
            .collect();
        roundtrip(&words);
    }
}
