//! Elf-style erasing floating-point compression (Li et al., VLDB 2023).
//!
//! The paper discusses Elf in §V (excluded from its tables because ALP
//! dominates it); we include it for a complete baseline family. The idea:
//! most stored doubles are short decimals, so the low mantissa bits are
//! *redundant* — erasing them (truncating the mantissa) yields XOR residues
//! with long trailing-zero runs that a Gorilla-style coder loves, and the
//! original double is recovered exactly by re-rounding the truncated value
//! to its decimal precision.
//!
//! Per value we emit:
//! * flag `1` + 5-bit decimal-digit count + the XOR-coded *truncated* bits,
//!   when a truncation exists that round-trips through the decimal; or
//! * flag `0` + the XOR-coded raw bits otherwise.
//!
//! The XOR stage is Chimp-style (leading-zero table + centre bits).

use crate::stream::{BitReader, BitWriter, StreamCodec};

/// Maximum decimal digit count probed (f64 can hold ~15-17 significant
/// digits; fixed-precision sensor data uses far fewer).
const MAX_DIGITS: u32 = 17;

/// The Elf-style codec.
#[derive(Clone, Copy, Debug, Default)]
pub struct Elf;

/// Finds the decimal digit count of `x`: the smallest `d` with
/// `round(x·10^d)/10^d == x`. `None` if `x` is not a short decimal.
fn decimal_digits(x: f64) -> Option<u32> {
    if !x.is_finite() {
        return None;
    }
    (0..=MAX_DIGITS).find(|&d| {
        let p = 10f64.powi(d as i32);
        let n = (x * p).round();
        n.abs() < (1u64 << 53) as f64 && n / p == x
    })
}

/// Truncates `x`'s mantissa to leave `keep` significant bits.
#[inline]
fn truncate_mantissa(x: f64, keep: u32) -> f64 {
    debug_assert!(keep <= 52);
    let mask = if keep == 52 { u64::MAX } else { !((1u64 << (52 - keep)) - 1) };
    f64::from_bits(x.to_bits() & mask)
}

/// The erased representation of `x` at decimal precision `d`: the shortest
/// mantissa truncation that still re-rounds to exactly `x`.
fn erase(x: f64, d: u32) -> f64 {
    let p = 10f64.powi(d as i32);
    // Binary search the smallest kept-bit count that round-trips.
    let ok = |keep: u32| {
        let t = truncate_mantissa(x, keep);
        (t * p).round() / p == x
    };
    let mut lo = 0u32;
    let mut hi = 52u32;
    if ok(lo) {
        return truncate_mantissa(x, 0);
    }
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if ok(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    truncate_mantissa(x, hi)
}

/// Restores the exact double from its erased form and digit count.
#[inline]
fn restore(t: f64, d: u32) -> f64 {
    let p = 10f64.powi(d as i32);
    (t * p).round() / p
}

const LEADING_TABLE: [u32; 8] = [0, 8, 12, 16, 18, 20, 22, 24];

#[inline]
fn leading_code(lead: u32) -> u32 {
    LEADING_TABLE.iter().rposition(|&l| l <= lead).expect("table starts at 0") as u32
}

fn write_xor(w: &mut BitWriter, xor: u64) {
    if xor == 0 {
        w.write_bit(false);
        return;
    }
    w.write_bit(true);
    let code = leading_code(xor.leading_zeros());
    let lead = LEADING_TABLE[code as usize];
    let trail = xor.trailing_zeros().min(63 - lead.min(63));
    let center = 64 - lead - trail;
    w.write(code as u64, 3);
    w.write(center as u64 % 64, 6); // 64 encoded as 0 (center ≥ 1)
    w.write(xor >> trail, center as usize);
}

fn read_xor(r: &mut BitReader<'_>) -> u64 {
    if !r.read_bit() {
        return 0;
    }
    let lead = LEADING_TABLE[r.read(3) as usize];
    let mut center = r.read(6) as u32;
    if center == 0 {
        center = 64;
    }
    let trail = 64 - lead - center;
    r.read(center as usize) << trail
}

impl StreamCodec for Elf {
    fn name(&self) -> &'static str {
        "Elf"
    }

    fn wants_float_bits(&self) -> bool {
        true
    }

    fn encode(&self, words: &[u64]) -> Vec<u8> {
        let mut w = BitWriter::new();
        let mut prev = 0u64; // previous *stored* (possibly erased) bits
        for &word in words {
            let x = f64::from_bits(word);
            match decimal_digits(x) {
                Some(d) => {
                    let t = erase(x, d);
                    debug_assert_eq!(restore(t, d).to_bits(), word);
                    w.write_bit(true);
                    w.write(d as u64, 5);
                    write_xor(&mut w, prev ^ t.to_bits());
                    prev = t.to_bits();
                }
                None => {
                    w.write_bit(false);
                    write_xor(&mut w, prev ^ word);
                    prev = word;
                }
            }
        }
        w.finish()
    }

    fn decode(&self, data: &[u8], n: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(n);
        let mut r = BitReader::new(data);
        let mut prev = 0u64;
        for _ in 0..n {
            let erased = r.read_bit();
            let d = if erased { r.read(5) as u32 } else { 0 };
            prev ^= read_xor(&mut r);
            if erased {
                out.push(restore(f64::from_bits(prev), d).to_bits());
            } else {
                out.push(prev);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn roundtrip(words: &[u64]) {
        let enc = Elf.encode(words);
        assert_eq!(Elf.decode(&enc, words.len()), words);
    }

    #[test]
    fn decimal_digit_detection() {
        assert_eq!(decimal_digits(3.0), Some(0));
        assert_eq!(decimal_digits(3.25), Some(2));
        assert_eq!(decimal_digits(0.1), Some(1));
        assert_eq!(decimal_digits(-12.345), Some(3));
        assert_eq!(decimal_digits(f64::NAN), None);
        // π round-trips only at near-full decimal precision (no erasure win,
        // but still valid).
        assert!(decimal_digits(std::f64::consts::PI).is_none_or(|d| d >= 15));
        // Magnitudes beyond 2⁵³ cannot be decimal-verified at any probe.
        assert_eq!(decimal_digits(f64::MAX), None);
    }

    #[test]
    fn erase_restores_exactly() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let d = rng.random_range(0..6u32);
            let x = (rng.random_range(-1_000_000..1_000_000) as f64) / 10f64.powi(d as i32);
            let dd = decimal_digits(x).expect("short decimal");
            let t = erase(x, dd);
            assert_eq!(restore(t, dd).to_bits(), x.to_bits(), "x={x}");
            // erasing must not add mantissa bits
            assert!(t.to_bits().trailing_zeros() >= x.to_bits().trailing_zeros());
        }
    }

    #[test]
    fn erasure_improves_over_no_erasure() {
        // 2-decimal sensor values: erased mantissas make XORs much sparser.
        let mut rng = StdRng::seed_from_u64(2);
        let mut v = 2000i64;
        let words: Vec<u64> = (0..4000)
            .map(|_| {
                v += rng.random_range(-15..16);
                (v as f64 / 100.0).to_bits()
            })
            .collect();
        roundtrip(&words);
        let elf = Elf.encode(&words).len();
        let gorilla = crate::gorilla::Gorilla.encode(&words).len();
        assert!(elf < gorilla, "Elf {elf} !< Gorilla {gorilla}");
    }

    #[test]
    fn mixed_precision_and_specials() {
        let words: Vec<u64> = vec![
            0.0f64.to_bits(),
            (-0.0f64).to_bits(),
            1.5f64.to_bits(),
            std::f64::consts::PI.to_bits(),
            f64::MAX.to_bits(),
            f64::MIN_POSITIVE.to_bits(),
            123.456f64.to_bits(),
        ];
        roundtrip(&words);
    }

    #[test]
    fn random_bits_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let words: Vec<u64> = (0..1500).map(|_| rng.random()).collect();
        roundtrip(&words);
    }

    #[test]
    fn empty_and_repeats() {
        roundtrip(&[]);
        roundtrip(&vec![42.42f64.to_bits(); 500]);
    }
}
