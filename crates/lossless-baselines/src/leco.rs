//! LeCo-style learned compression (Liu, Zeng, Zhang — SIGMOD 2024).
//!
//! LeCo fits a regression model per partition and stores the residuals with
//! a fixed-length code. Partitions are *variable-length*, chosen by a greedy
//! split-then-merge heuristic that merges neighbouring segments whenever the
//! merge improves an estimate of the compressed size — in contrast to NeaTS'
//! error-bounded optimal partitioning (the design difference §V contrasts).
//!
//! This implementation reproduces that pipeline:
//!
//! 1. split into fine-grained mini-segments;
//! 2. greedily merge adjacent segments while the actual encoded cost
//!    (OLS residual width × length + per-segment header) does not grow;
//! 3. bit-pack residuals per segment; random access binary-searches the
//!    segment starts, as the real system does with variable partitions.

use succinct::{bits_for, BitBuf};
use timeseries::{CompressedSeries, Compressor, TimeSeries};

/// Initial mini-segment length for the split phase.
pub const LECO_MINI: usize = 64;
/// Merge passes (each pass scans all adjacent pairs once).
const MERGE_PASSES: usize = 8;
/// Per-segment header cost in bits (start + line + base + width + offset).
const HEADER_BITS: u64 = 8 * 8 * 4;

/// The LeCo-style compressor.
#[derive(Clone, Copy, Debug, Default)]
pub struct Leco;

/// Per-segment metadata.
#[derive(Clone, Copy, Debug)]
struct Segment {
    start: u32,
    slope: f64,
    intercept: f64,
    /// Minimum residual (subtracted before packing).
    base: i64,
    /// Residual bit width.
    width: u8,
    /// Bit offset of this segment's residuals.
    offset: u64,
}

/// A LeCo-compressed series.
#[derive(Clone, Debug)]
pub struct LecoCompressed {
    n: usize,
    segments: Vec<Segment>,
    residuals: BitBuf,
}

/// Prefix-sum accumulators enabling O(1) OLS over any range.
struct OlsSums {
    /// Σ y over prefix.
    sy: Vec<f64>,
    /// Σ i·y over prefix (global index i).
    siy: Vec<f64>,
}

impl OlsSums {
    fn new(values: &[i64]) -> Self {
        let mut sy = Vec::with_capacity(values.len() + 1);
        let mut siy = Vec::with_capacity(values.len() + 1);
        sy.push(0.0);
        siy.push(0.0);
        let (mut a, mut b) = (0.0f64, 0.0f64);
        for (i, &y) in values.iter().enumerate() {
            a += y as f64;
            b += i as f64 * y as f64;
            sy.push(a);
            siy.push(b);
        }
        Self { sy, siy }
    }

    /// OLS line over `[a, b)` in *local* coordinates `x = i − a`.
    fn ols(&self, a: usize, b: usize) -> (f64, f64) {
        let len = (b - a) as f64;
        if b - a == 1 {
            return (0.0, self.sy[b] - self.sy[a]);
        }
        let sum_y = self.sy[b] - self.sy[a];
        let sum_iy = self.siy[b] - self.siy[a];
        let sum_xy = sum_iy - a as f64 * sum_y;
        // Σx and Σx² for x = 0..len−1.
        let sum_x = len * (len - 1.0) / 2.0;
        let sum_xx = (len - 1.0) * len * (2.0 * len - 1.0) / 6.0;
        let denom = len * sum_xx - sum_x * sum_x;
        if denom.abs() < f64::EPSILON {
            return (0.0, sum_y / len);
        }
        let slope = (len * sum_xy - sum_x * sum_y) / denom;
        let intercept = (sum_y - slope * sum_x) / len;
        (slope, intercept)
    }
}

#[inline]
fn predict(slope: f64, intercept: f64, x: usize) -> i64 {
    let p = slope * x as f64 + intercept;
    if p.is_finite() {
        p.floor().clamp(i64::MIN as f64 / 2.0, i64::MAX as f64 / 2.0) as i64
    } else {
        0
    }
}

/// Encoded cost in bits of covering `[a, b)` with one OLS segment, plus the
/// fitted line and residual extrema.
fn segment_cost(values: &[i64], sums: &OlsSums, a: usize, b: usize) -> (u64, f64, f64, i64, u8) {
    let (slope, intercept) = sums.ols(a, b);
    let mut lo = i64::MAX;
    let mut hi = i64::MIN;
    for (x, &y) in values[a..b].iter().enumerate() {
        let r = y - predict(slope, intercept, x);
        lo = lo.min(r);
        hi = hi.max(r);
    }
    let width = bits_for(hi.abs_diff(lo)) as u8;
    let cost = HEADER_BITS + (b - a) as u64 * width as u64;
    (cost, slope, intercept, lo, width)
}

impl Compressor for Leco {
    type Output = LecoCompressed;

    fn name(&self) -> &'static str {
        "LeCo"
    }

    fn compress(&self, ts: &TimeSeries) -> LecoCompressed {
        let values = ts.values();
        if values.is_empty() {
            return LecoCompressed { n: 0, segments: Vec::new(), residuals: BitBuf::new() };
        }
        let sums = OlsSums::new(values);

        // Split phase: mini-segment boundaries.
        let mut bounds: Vec<usize> = (0..values.len()).step_by(LECO_MINI).collect();
        bounds.push(values.len());
        let mut costs: Vec<u64> = bounds
            .windows(2)
            .map(|w| segment_cost(values, &sums, w[0], w[1]).0)
            .collect();

        // Merge phase: greedy pairwise merges while they pay for themselves.
        for _ in 0..MERGE_PASSES {
            let mut merged_any = false;
            let mut new_bounds = vec![bounds[0]];
            let mut new_costs = Vec::new();
            let mut i = 0usize;
            while i < costs.len() {
                if i + 1 < costs.len() {
                    let merged =
                        segment_cost(values, &sums, bounds[i], bounds[i + 2]).0;
                    if merged <= costs[i] + costs[i + 1] {
                        new_bounds.push(bounds[i + 2]);
                        new_costs.push(merged);
                        merged_any = true;
                        i += 2;
                        continue;
                    }
                }
                new_bounds.push(bounds[i + 1]);
                new_costs.push(costs[i]);
                i += 1;
            }
            bounds = new_bounds;
            costs = new_costs;
            if !merged_any {
                break;
            }
        }

        // Encode.
        let mut segments = Vec::with_capacity(costs.len());
        let mut residuals = BitBuf::new();
        for w in bounds.windows(2) {
            let (a, b) = (w[0], w[1]);
            let (_, slope, intercept, base, width) = segment_cost(values, &sums, a, b);
            let offset = residuals.len() as u64;
            for (x, &y) in values[a..b].iter().enumerate() {
                let r = y - predict(slope, intercept, x) - base;
                residuals.push_bits(r as u64, width as usize);
            }
            segments.push(Segment { start: a as u32, slope, intercept, base, width, offset });
        }
        residuals.shrink_to_fit();
        LecoCompressed { n: values.len(), segments, residuals }
    }
}

impl LecoCompressed {
    /// Number of variable-length segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Index of the segment covering `k` (binary search, as in the real
    /// variable-partition layout).
    #[inline]
    fn segment_of(&self, k: usize) -> usize {
        self.segments.partition_point(|s| s.start as usize <= k) - 1
    }

    #[inline]
    fn value_in(&self, si: usize, k: usize) -> i64 {
        let seg = &self.segments[si];
        let x = k - seg.start as usize;
        let r = if seg.width == 0 {
            0
        } else {
            self.residuals
                .get_bits(seg.offset as usize + x * seg.width as usize, seg.width as usize)
                as i64
        };
        predict(seg.slope, seg.intercept, x) + seg.base + r
    }
}

impl CompressedSeries for LecoCompressed {
    fn len(&self) -> usize {
        self.n
    }

    fn size_in_bytes(&self) -> usize {
        16 + self.segments.len() * (HEADER_BITS as usize / 8) + self.residuals.size_in_bytes()
    }

    fn get(&self, k: usize) -> i64 {
        self.value_in(self.segment_of(k), k)
    }

    fn decompress(&self) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.n);
        for (si, seg) in self.segments.iter().enumerate() {
            let end = self
                .segments
                .get(si + 1)
                .map_or(self.n, |next| next.start as usize);
            let w = seg.width as usize;
            let mut o = seg.offset as usize;
            for x in 0..end - seg.start as usize {
                let r = if w == 0 { 0 } else { self.residuals.get_bits(o, w) as i64 };
                o += w;
                out.push(predict(seg.slope, seg.intercept, x) + seg.base + r);
            }
        }
        out
    }

    fn scan_range(&self, start: usize, count: usize, out: &mut Vec<i64>) {
        if count == 0 {
            return;
        }
        let end = start + count;
        let mut si = self.segment_of(start);
        let mut k = start;
        while k < end {
            let seg_end =
                self.segments.get(si + 1).map_or(self.n, |next| next.start as usize);
            let to = seg_end.min(end);
            while k < to {
                out.push(self.value_in(si, k));
                k += 1;
            }
            si += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn roundtrip(values: Vec<i64>) -> LecoCompressed {
        let ts = TimeSeries::from_values(values);
        let c = Leco.compress(&ts);
        assert_eq!(c.decompress(), ts.values());
        for k in (0..ts.len()).step_by(7) {
            assert_eq!(c.get(k), ts.values()[k], "get({k})");
        }
        c
    }

    #[test]
    fn linear_data_merges_to_one_segment() {
        let values: Vec<i64> = (0..5000).map(|k| 3 * k + 11).collect();
        let c = roundtrip(values);
        assert!(c.segment_count() <= 2, "{} segments on a line", c.segment_count());
        let ratio = c.size_in_bytes() as f64 / (5000.0 * 8.0);
        assert!(ratio < 0.05, "linear data ratio {ratio}");
    }

    #[test]
    fn noisy_pieces_stay_separate() {
        // Two regimes with very different residual scales: merging across
        // the boundary would widen all residual cells, so LeCo keeps them
        // apart.
        let mut rng = StdRng::seed_from_u64(1);
        let mut values: Vec<i64> = (0..2048).map(|k| 5 * k + rng.random_range(-2..3)).collect();
        values.extend((0..2048).map(|k| 10_240 - 7 * k + rng.random_range(-4000..4000)));
        let c = roundtrip(values);
        assert!(c.segment_count() >= 2);
    }

    #[test]
    fn random_and_extreme_values() {
        let mut rng = StdRng::seed_from_u64(2);
        roundtrip((0..3000).map(|_| rng.random_range(-1_000_000..1_000_000)).collect());
        roundtrip(vec![i64::MAX / 4, i64::MIN / 4, 0, -1, 1]);
    }

    #[test]
    fn empty_single_and_partial_blocks() {
        roundtrip(vec![]);
        roundtrip(vec![99]);
        let mut rng = StdRng::seed_from_u64(3);
        roundtrip((0..LECO_MINI * 3 + 17).map(|_| rng.random_range(-50..50)).collect());
    }

    #[test]
    fn scan_matches_slice() {
        let mut rng = StdRng::seed_from_u64(4);
        let values: Vec<i64> = (0..4000).map(|k| k / 3 + rng.random_range(-5..5)).collect();
        let ts = TimeSeries::from_values(values);
        let c = Leco.compress(&ts);
        for (s, l) in [(0usize, 100usize), (63, 65), (1000, 2000), (3999, 1)] {
            let mut out = Vec::new();
            c.scan_range(s, l, &mut out);
            assert_eq!(out, &ts.values()[s..s + l]);
        }
    }

    #[test]
    fn ols_prefix_sums_fit_exact_line() {
        let values: Vec<i64> = (0..100).map(|k| 5 * k - 3).collect();
        let sums = OlsSums::new(&values);
        let (m, b) = sums.ols(10, 90);
        assert!((m - 5.0).abs() < 1e-6, "slope {m}");
        // local x at a=10: value = 5(x+10) − 3 = 5x + 47
        assert!((b - 47.0).abs() < 1e-4, "intercept {b}");
    }
}
