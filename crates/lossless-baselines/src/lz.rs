//! LZ77 codecs standing in for the paper's general-purpose compressors.
//!
//! The five general-purpose tools of the evaluation occupy two corners of
//! the ratio/speed trade-off (Figs 2–3): Lz4/Snappy (byte-oriented, very
//! fast, weaker ratio) and Zstd/Brotli/Xz (entropy-coded, slower, stronger
//! ratio). Since none of them is on the offline dependency allowlist, this
//! module implements one representative of each corner from scratch
//! (substitution documented in DESIGN.md §3):
//!
//! * [`FastLz`] — greedy hash-table LZ77 with an LZ4-style token format;
//! * [`EntropyLz`] — hash-chain LZ77 parse entropy-coded with canonical
//!   Huffman tables (deflate-style length/distance bucketing).
//!
//! Both operate on the little-endian byte image of the value stream and are
//! wrapped block-wise for random access, exactly like the real tools in the
//! paper's protocol (§IV-A2).

use crate::huffman::{code_lengths, HuffmanDecoder, HuffmanEncoder};
use crate::stream::{BitReader, BitWriter, StreamCodec};

const MIN_MATCH: usize = 4;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
    (v.wrapping_mul(2654435761) >> 19) as usize // 13-bit table
}

#[inline]
fn words_to_bytes(words: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() * 8);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

#[inline]
fn bytes_to_words(bytes: &[u8], n: usize) -> Vec<u64> {
    (0..n).map(|i| u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().expect("8 bytes"))).collect()
}

/// One token of an LZ77 parse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Token {
    Literal(u8),
    Match { len: usize, dist: usize },
}

/// Greedy single-probe parse (FastLz) or hash-chain parse (EntropyLz).
fn parse(bytes: &[u8], chain_depth: usize) -> Vec<Token> {
    const TABLE: usize = 1 << 13;
    let mut head = vec![usize::MAX; TABLE];
    let mut chain = vec![usize::MAX; bytes.len()];
    let mut tokens = Vec::with_capacity(bytes.len() / 2);
    let mut i = 0usize;
    while i < bytes.len() {
        if i + MIN_MATCH > bytes.len() {
            tokens.push(Token::Literal(bytes[i]));
            i += 1;
            continue;
        }
        let h = hash4(&bytes[i..]);
        // Search the chain for the longest match.
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let mut cand = head[h];
        let mut probes = 0usize;
        while cand != usize::MAX && probes < chain_depth {
            let dist = i - cand;
            if dist > u16::MAX as usize {
                break; // window exceeded; older candidates are further away
            }
            let max = bytes.len() - i;
            let mut l = 0usize;
            while l < max && bytes[cand + l] == bytes[i + l] {
                l += 1;
            }
            if l > best_len {
                best_len = l;
                best_dist = dist;
            }
            cand = chain[cand];
            probes += 1;
        }
        if best_len >= MIN_MATCH {
            tokens.push(Token::Match { len: best_len, dist: best_dist });
            // Insert hash entries for covered positions (sparsely for speed).
            let end = i + best_len;
            while i < end && i + MIN_MATCH <= bytes.len() {
                let h = hash4(&bytes[i..]);
                chain[i] = head[h];
                head[h] = i;
                i += if chain_depth > 1 { 1 } else { 2 };
            }
            i = end;
        } else {
            chain[i] = head[h];
            head[h] = i;
            tokens.push(Token::Literal(bytes[i]));
            i += 1;
        }
    }
    tokens
}

#[cfg(test)]
fn unparse(tokens: &[Token], expected: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(expected);
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let start = out.len() - dist;
                for j in 0..len {
                    let b = out[start + j];
                    out.push(b);
                }
            }
        }
    }
    out
}

/// The LZ4/Snappy-class codec: greedy parse, byte-aligned token format.
#[derive(Clone, Copy, Debug, Default)]
pub struct FastLz;

impl StreamCodec for FastLz {
    fn name(&self) -> &'static str {
        "FastLZ"
    }

    fn encode(&self, words: &[u64]) -> Vec<u8> {
        let bytes = words_to_bytes(words);
        let tokens = parse(&bytes, 1);
        // LZ4-style sequences: token byte (lits:4 | mlen:4), literals,
        // offset u16, with 255-continuation for overflow lengths.
        let mut out = Vec::with_capacity(bytes.len() / 2 + 16);
        let mut lits: Vec<u8> = Vec::new();
        let flush = |out: &mut Vec<u8>, lits: &mut Vec<u8>, m: Option<(usize, usize)>| {
            let lit_len = lits.len();
            let (mlen_code, extra_m) = match m {
                Some((len, _)) => {
                    let adj = len - MIN_MATCH;
                    if adj >= 15 {
                        (15, Some(adj - 15))
                    } else {
                        (adj, None)
                    }
                }
                None => (0, None),
            };
            let lit_code = lit_len.min(15);
            out.push(((lit_code as u8) << 4) | mlen_code as u8);
            if lit_code == 15 {
                let mut rest = lit_len - 15;
                while rest >= 255 {
                    out.push(255);
                    rest -= 255;
                }
                out.push(rest as u8);
            }
            out.extend_from_slice(lits);
            lits.clear();
            if let Some((_, dist)) = m {
                out.extend_from_slice(&(dist as u16).to_le_bytes());
                if let Some(mut rest) = extra_m {
                    while rest >= 255 {
                        out.push(255);
                        rest -= 255;
                    }
                    out.push(rest as u8);
                }
            }
        };
        for t in &tokens {
            match *t {
                Token::Literal(b) => lits.push(b),
                Token::Match { len, dist } => flush(&mut out, &mut lits, Some((len, dist))),
            }
        }
        if !lits.is_empty() {
            flush(&mut out, &mut lits, None);
        }
        out
    }

    fn decode(&self, data: &[u8], n: usize) -> Vec<u64> {
        let expected = n * 8;
        let mut out = Vec::with_capacity(expected);
        let mut p = 0usize;
        while out.len() < expected {
            let token = data[p];
            p += 1;
            let mut lit_len = (token >> 4) as usize;
            if lit_len == 15 {
                loop {
                    let b = data[p];
                    p += 1;
                    lit_len += b as usize;
                    if b != 255 {
                        break;
                    }
                }
            }
            out.extend_from_slice(&data[p..p + lit_len]);
            p += lit_len;
            if out.len() >= expected {
                break;
            }
            let mlen_code = (token & 0xF) as usize;
            // A zero match code can only terminate a literal-only tail;
            // reaching here means a real match follows.
            let dist = u16::from_le_bytes(data[p..p + 2].try_into().expect("2 bytes")) as usize;
            p += 2;
            let mut mlen = mlen_code + MIN_MATCH;
            if mlen_code == 15 {
                loop {
                    let b = data[p];
                    p += 1;
                    mlen += b as usize;
                    if b != 255 {
                        break;
                    }
                }
            }
            let start = out.len() - dist;
            for j in 0..mlen {
                let b = out[start + j];
                out.push(b);
            }
        }
        bytes_to_words(&out, n)
    }
}

/// The Zstd/Brotli/Xz-class codec: deeper parse + canonical Huffman coding.
#[derive(Clone, Copy, Debug)]
pub struct EntropyLz {
    /// Hash-chain probe depth (higher ⇒ better ratio, slower).
    pub chain_depth: usize,
}

impl Default for EntropyLz {
    fn default() -> Self {
        Self { chain_depth: 32 }
    }
}

/// Lit/len alphabet: 0..=255 literals, 256 + bucket for match lengths.
const LEN_BUCKETS: usize = 20;
const LITLEN_ALPHABET: usize = 256 + LEN_BUCKETS;
const DIST_BUCKETS: usize = 17;

/// Bucket for a match length (`len ≥ MIN_MATCH`): exponential, with the
/// bucket index also being the extra-bit count.
#[inline]
fn len_bucket(len: usize) -> (usize, u64, usize) {
    let v = (len - MIN_MATCH + 1) as u64; // ≥ 1
    let bucket = (63 - v.leading_zeros()) as usize; // ⌊log₂ v⌋
    (bucket, v - (1 << bucket), bucket)
}

#[inline]
fn len_unbucket(bucket: usize, extra: u64) -> usize {
    ((1u64 << bucket) + extra) as usize + MIN_MATCH - 1
}

#[inline]
fn dist_bucket(dist: usize) -> (usize, u64, usize) {
    let v = dist as u64; // ≥ 1
    let bucket = (63 - v.leading_zeros()) as usize;
    (bucket, v - (1 << bucket), bucket)
}

#[inline]
fn dist_unbucket(bucket: usize, extra: u64) -> usize {
    ((1u64 << bucket) + extra) as usize
}

impl StreamCodec for EntropyLz {
    fn name(&self) -> &'static str {
        "EntropyLZ"
    }

    fn encode(&self, words: &[u64]) -> Vec<u8> {
        let bytes = words_to_bytes(words);
        let tokens = parse(&bytes, self.chain_depth);
        // Frequencies for the two alphabets.
        let mut lit_freq = vec![0u64; LITLEN_ALPHABET];
        let mut dist_freq = vec![0u64; DIST_BUCKETS];
        for t in &tokens {
            match *t {
                Token::Literal(b) => lit_freq[b as usize] += 1,
                Token::Match { len, dist } => {
                    lit_freq[256 + len_bucket(len).0] += 1;
                    dist_freq[dist_bucket(dist).0] += 1;
                }
            }
        }
        let lit_lengths = code_lengths(&lit_freq);
        let dist_lengths = code_lengths(&dist_freq);
        let lit_enc = HuffmanEncoder::from_lengths(&lit_lengths);
        let dist_enc = HuffmanEncoder::from_lengths(&dist_lengths);
        let mut w = BitWriter::new();
        // Header: code lengths, 6 bits each (depth < 64 guaranteed by the
        // two-queue construction on ≤ block-sized inputs).
        for &l in lit_lengths.iter().chain(dist_lengths.iter()) {
            w.write(l as u64, 6);
        }
        for t in &tokens {
            match *t {
                Token::Literal(b) => lit_enc.write(&mut w, b as usize),
                Token::Match { len, dist } => {
                    let (lb, lextra, lbits) = len_bucket(len);
                    lit_enc.write(&mut w, 256 + lb);
                    w.write(lextra, lbits);
                    let (db, dextra, dbits) = dist_bucket(dist);
                    dist_enc.write(&mut w, db);
                    w.write(dextra, dbits);
                }
            }
        }
        w.finish()
    }

    fn decode(&self, data: &[u8], n: usize) -> Vec<u64> {
        let expected = n * 8;
        let mut r = BitReader::new(data);
        let mut lit_lengths = vec![0u8; LITLEN_ALPHABET];
        let mut dist_lengths = vec![0u8; DIST_BUCKETS];
        for l in lit_lengths.iter_mut() {
            *l = r.read(6) as u8;
        }
        for l in dist_lengths.iter_mut() {
            *l = r.read(6) as u8;
        }
        let lit_dec = HuffmanDecoder::from_lengths(&lit_lengths);
        let dist_dec = HuffmanDecoder::from_lengths(&dist_lengths);
        let mut out: Vec<u8> = Vec::with_capacity(expected);
        while out.len() < expected {
            let sym = lit_dec.read(&mut r) as usize;
            if sym < 256 {
                out.push(sym as u8);
            } else {
                let lb = sym - 256;
                let len = len_unbucket(lb, r.read(lb));
                let db = dist_dec.read(&mut r) as usize;
                let dist = dist_unbucket(db, r.read(db));
                let start = out.len() - dist;
                for j in 0..len {
                    let b = out[start + j];
                    out.push(b);
                }
            }
        }
        bytes_to_words(&out, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn roundtrip_both(words: &[u64]) {
        let enc = FastLz.encode(words);
        assert_eq!(FastLz.decode(&enc, words.len()), words, "FastLz");
        let e = EntropyLz::default();
        let enc = e.encode(words);
        assert_eq!(e.decode(&enc, words.len()), words, "EntropyLz");
    }

    #[test]
    fn empty_single_repeat() {
        roundtrip_both(&[]);
        roundtrip_both(&[12345]);
        roundtrip_both(&vec![0xDEAD_BEEF; 400]);
    }

    #[test]
    fn parse_unparse_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..30 {
            let n = rng.random_range(0..2000);
            let bytes: Vec<u8> = (0..n)
                .map(|_| if rng.random_bool(0.7) { rng.random_range(0..4) } else { rng.random() })
                .collect();
            for depth in [1usize, 8, 32] {
                let tokens = parse(&bytes, depth);
                assert_eq!(unparse(&tokens, bytes.len()), bytes, "depth {depth}");
            }
        }
    }

    #[test]
    fn len_dist_buckets_roundtrip() {
        for len in MIN_MATCH..2000 {
            let (b, e, bits) = len_bucket(len);
            assert!(b < LEN_BUCKETS, "len {len} bucket {b}");
            assert!(e < (1 << bits) || bits == 0 && e == 0);
            assert_eq!(len_unbucket(b, e), len);
        }
        for dist in 1..70_000 {
            let (b, e, _) = dist_bucket(dist);
            assert!(b < DIST_BUCKETS, "dist {dist} bucket {b}");
            assert_eq!(dist_unbucket(b, e), dist);
        }
    }

    #[test]
    fn repetitive_data_compresses_hard() {
        let words: Vec<u64> = (0..2000).map(|k| (k % 16) as u64 * 1000).collect();
        let fast = FastLz.encode(&words).len();
        let entropy = EntropyLz::default().encode(&words).len();
        assert!(fast < 2000 * 8 / 4, "FastLz {fast}");
        assert!(entropy < 2000 * 8 / 4, "EntropyLz {entropy}");
        roundtrip_both(&words);
    }

    #[test]
    fn entropy_coding_beats_fast_lz_on_noisy_walks() {
        // A noisy random walk defeats long matches; the Huffman stage should
        // exploit the skewed byte distribution that byte-aligned tokens
        // cannot (this is the Zstd-vs-Lz4 gap of the paper's Fig. 2).
        let mut rng = StdRng::seed_from_u64(4);
        let mut v = 1_000_000i64;
        let words: Vec<u64> = (0..4000)
            .map(|_| {
                v += rng.random_range(-300..300);
                v as u64
            })
            .collect();
        let fast = FastLz.encode(&words).len();
        let entropy = EntropyLz::default().encode(&words).len();
        assert!(entropy < fast, "EntropyLz {entropy} !< FastLz {fast}");
        roundtrip_both(&words);
    }

    #[test]
    fn incompressible_data_roundtrips() {
        let mut rng = StdRng::seed_from_u64(2);
        let words: Vec<u64> = (0..1000).map(|_| rng.random()).collect();
        roundtrip_both(&words);
    }

    #[test]
    fn smooth_series_bytes_compress() {
        // i64 LE images of a smooth series share 5-6 high bytes per value.
        let words: Vec<u64> = (0..1000u64).map(|k| 1_000_000_000 + k * 3).collect();
        let entropy = EntropyLz::default().encode(&words).len();
        assert!(entropy < 1000 * 4, "EntropyLz {entropy} on smooth data");
        roundtrip_both(&words);
    }

    #[test]
    fn overlapping_match_copy() {
        // RLE-like runs force dist < len (overlapping copies).
        let mut words = vec![7u64; 100];
        words.extend((0..50).map(|k| k as u64));
        words.extend(vec![7u64; 100]);
        roundtrip_both(&words);
    }

    #[test]
    fn long_literal_and_match_extensions() {
        // > 15 literals then > 19-byte matches: exercises 255-continuations.
        let mut rng = StdRng::seed_from_u64(3);
        let mut words: Vec<u64> = (0..300).map(|_| rng.random()).collect();
        words.extend(vec![42u64; 300]);
        let tail: Vec<u64> = words[..200].to_vec();
        words.extend(tail);
        roundtrip_both(&words);
    }
}
