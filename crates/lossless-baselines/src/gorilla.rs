//! Gorilla's XOR floating-point compressor (Pelkonen et al., VLDB 2015).
//!
//! Each value is XORed with its predecessor; the result is encoded with a
//! leading-zeros/meaningful-bits scheme:
//!
//! * xor == 0 → single `0` bit;
//! * `10` → the meaningful bits fit the previous (leading, length) window:
//!   re-use it and emit only the meaningful bits;
//! * `11` → emit 5 bits of leading-zero count, 6 bits of meaningful-bit
//!   length, then the meaningful bits.

use crate::stream::{BitReader, BitWriter, StreamCodec};

/// The Gorilla codec.
#[derive(Clone, Copy, Debug, Default)]
pub struct Gorilla;

impl StreamCodec for Gorilla {
    fn name(&self) -> &'static str {
        "Gorilla"
    }

    fn wants_float_bits(&self) -> bool {
        true
    }

    fn encode(&self, words: &[u64]) -> Vec<u8> {
        let mut w = BitWriter::new();
        let mut prev = 0u64;
        let mut prev_lead = u32::MAX; // invalid: forces a fresh window first
        let mut prev_len = 0u32;
        for (i, &word) in words.iter().enumerate() {
            if i == 0 {
                w.write(word, 64);
                prev = word;
                continue;
            }
            let xor = prev ^ word;
            prev = word;
            if xor == 0 {
                w.write_bit(false);
                continue;
            }
            w.write_bit(true);
            let lead = xor.leading_zeros().min(31);
            let trail = xor.trailing_zeros();
            let len = 64 - lead - trail;
            if prev_lead != u32::MAX && lead >= prev_lead && 64 - prev_lead - prev_len <= trail {
                // Fits the previous window: control '0' after the '1'.
                w.write_bit(false);
                w.write(xor >> (64 - prev_lead - prev_len), prev_len as usize);
            } else {
                w.write_bit(true);
                w.write(lead as u64, 5);
                // 6-bit length; 64 is encoded as 0 (len ≥ 1 always).
                w.write((len % 64) as u64, 6);
                w.write(xor >> trail, len as usize);
                prev_lead = lead;
                prev_len = len;
            }
        }
        w.finish()
    }

    fn decode(&self, data: &[u8], n: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(n);
        if n == 0 {
            return out;
        }
        let mut r = BitReader::new(data);
        let mut prev = r.read(64);
        out.push(prev);
        let mut lead = 0u32;
        let mut len = 0u32;
        for _ in 1..n {
            if !r.read_bit() {
                out.push(prev);
                continue;
            }
            if r.read_bit() {
                lead = r.read(5) as u32;
                len = r.read(6) as u32;
                if len == 0 {
                    len = 64;
                }
            }
            let bits = r.read(len as usize);
            let xor = bits << (64 - lead - len);
            prev ^= xor;
            out.push(prev);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn roundtrip(words: &[u64]) {
        let g = Gorilla;
        let enc = g.encode(words);
        assert_eq!(g.decode(&enc, words.len()), words);
    }

    #[test]
    fn empty_and_single() {
        roundtrip(&[]);
        roundtrip(&[0]);
        roundtrip(&[u64::MAX]);
        roundtrip(&[42.5f64.to_bits()]);
    }

    #[test]
    fn repeated_values_take_one_bit_each() {
        let words = vec![3.25f64.to_bits(); 1000];
        let g = Gorilla;
        let enc = g.encode(&words);
        assert!(enc.len() <= 8 + 1000 / 8 + 2, "got {} bytes", enc.len());
        assert_eq!(g.decode(&enc, 1000), words);
    }

    #[test]
    fn slowly_varying_floats_compress() {
        let words: Vec<u64> = (0..5000).map(|k| (1000.0 + k as f64 * 0.01).to_bits()).collect();
        let g = Gorilla;
        let enc = g.encode(&words);
        assert!(enc.len() < 5000 * 8, "no compression at all");
        assert_eq!(g.decode(&enc, 5000), words);
    }

    #[test]
    fn random_words_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let words: Vec<u64> = (0..2000).map(|_| rng.random()).collect();
        roundtrip(&words);
    }

    #[test]
    fn adversarial_leading_patterns() {
        // Exercise window reuse and reset paths: alternating high/low bits.
        let mut words = vec![0u64];
        for i in 1..500u64 {
            words.push(words[i as usize - 1] ^ (1u64 << (i % 64)));
        }
        roundtrip(&words);
    }

    #[test]
    fn leading_zeros_capped_at_31() {
        // xor with ≥ 32 leading zeros must still roundtrip (cap path).
        let words = vec![0u64, 1, 0, 3, 1];
        roundtrip(&words);
    }
}
