//! The stream-codec interface and the block-wise random-access wrapper.
//!
//! Gorilla, Chimp, TSXor and the LZ codecs compress a whole stream and do
//! not support random access natively. Following the paper's protocol
//! (§IV-A2), the benchmark applies them "to blocks of 1000 consecutive
//! values" and keeps "an array that maps each block index to a pointer
//! referencing the starting byte of the block in the compressed output";
//! random access then decompresses one block.

use timeseries::{CompressedSeries, Compressor, TimeSeries};

/// Number of values per block in the paper's random-access protocol.
pub const BLOCK_SIZE: usize = 1000;

/// A sequential codec over 64-bit words.
pub trait StreamCodec: Clone {
    /// Display name for tables and figures.
    fn name(&self) -> &'static str;

    /// Encodes a word stream.
    fn encode(&self, words: &[u64]) -> Vec<u8>;

    /// Decodes exactly `n` words from `data`.
    fn decode(&self, data: &[u8], n: usize) -> Vec<u64>;

    /// Whether the codec expects IEEE-754 bit patterns (XOR family) rather
    /// than raw two's-complement integers.
    fn wants_float_bits(&self) -> bool {
        false
    }
}

/// How integer values are mapped to the codec's 64-bit words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ValueMode {
    /// `i64` reinterpreted as `u64`.
    RawBits,
    /// Value converted to the original double (`v / 10^digits`) and its IEEE
    /// bits compressed — the representation the float-oriented XOR codecs
    /// are designed for. Falls back to raw bits when a value exceeds 2⁵³.
    F64Bits(u8),
}

impl ValueMode {
    fn choose<C: StreamCodec>(codec: &C, ts: &TimeSeries) -> Self {
        let exact = ts.values().iter().all(|&v| v.unsigned_abs() < (1u64 << 53));
        if codec.wants_float_bits() && exact {
            ValueMode::F64Bits(ts.fractional_digits())
        } else {
            ValueMode::RawBits
        }
    }

    #[inline]
    fn encode_word(self, v: i64) -> u64 {
        match self {
            ValueMode::RawBits => v as u64,
            ValueMode::F64Bits(d) => (v as f64 / 10f64.powi(d as i32)).to_bits(),
        }
    }

    #[inline]
    fn decode_word(self, w: u64) -> i64 {
        match self {
            ValueMode::RawBits => w as i64,
            ValueMode::F64Bits(d) => (f64::from_bits(w) * 10f64.powi(d as i32)).round() as i64,
        }
    }
}

/// A stream codec lifted to a block-wise randomly-accessible compressor.
#[derive(Clone, Debug)]
pub struct Blockwise<C: StreamCodec> {
    codec: C,
    block_size: usize,
}

impl<C: StreamCodec> Blockwise<C> {
    /// Wraps `codec` with the paper's 1000-value blocks.
    pub fn new(codec: C) -> Self {
        Self { codec, block_size: BLOCK_SIZE }
    }

    /// Wraps with a custom block size (for ablations).
    pub fn with_block_size(codec: C, block_size: usize) -> Self {
        assert!(block_size > 0);
        Self { codec, block_size }
    }
}

impl<C: StreamCodec> Compressor for Blockwise<C> {
    type Output = BlockwiseCompressed<C>;

    fn name(&self) -> &'static str {
        self.codec.name()
    }

    fn compress(&self, ts: &TimeSeries) -> BlockwiseCompressed<C> {
        let mode = ValueMode::choose(&self.codec, ts);
        let values = ts.values();
        let mut data = Vec::new();
        let mut offsets = Vec::with_capacity(values.len() / self.block_size + 2);
        offsets.push(0u64);
        let mut words = Vec::with_capacity(self.block_size);
        for block in values.chunks(self.block_size) {
            words.clear();
            words.extend(block.iter().map(|&v| mode.encode_word(v)));
            let enc = self.codec.encode(&words);
            data.extend_from_slice(&enc);
            offsets.push(data.len() as u64);
        }
        data.shrink_to_fit();
        BlockwiseCompressed {
            codec: self.codec.clone(),
            mode,
            n: values.len(),
            block_size: self.block_size,
            data,
            offsets,
        }
    }
}

/// Block-compressed output with a per-block pointer array.
#[derive(Clone, Debug)]
pub struct BlockwiseCompressed<C: StreamCodec> {
    codec: C,
    mode: ValueMode,
    n: usize,
    block_size: usize,
    data: Vec<u8>,
    offsets: Vec<u64>,
}

impl<C: StreamCodec> BlockwiseCompressed<C> {
    fn decode_block(&self, b: usize) -> Vec<i64> {
        let lo = self.offsets[b] as usize;
        let hi = self.offsets[b + 1] as usize;
        let count = (self.n - b * self.block_size).min(self.block_size);
        self.codec
            .decode(&self.data[lo..hi], count)
            .into_iter()
            .map(|w| self.mode.decode_word(w))
            .collect()
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.offsets.len() - 1
    }
}

impl<C: StreamCodec> CompressedSeries for BlockwiseCompressed<C> {
    fn len(&self) -> usize {
        self.n
    }

    fn size_in_bytes(&self) -> usize {
        // payload + block pointer array + header
        self.data.len() + self.offsets.len() * 8 + 16
    }

    fn decompress(&self) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.n);
        for b in 0..self.block_count() {
            out.extend(self.decode_block(b));
        }
        out
    }

    fn get(&self, k: usize) -> i64 {
        debug_assert!(k < self.n);
        let b = k / self.block_size;
        self.decode_block(b)[k % self.block_size]
    }

    fn scan_range(&self, start: usize, count: usize, out: &mut Vec<i64>) {
        if count == 0 {
            return;
        }
        let end = start + count;
        debug_assert!(end <= self.n);
        let first = start / self.block_size;
        let last = (end - 1) / self.block_size;
        for b in first..=last {
            let block = self.decode_block(b);
            let base = b * self.block_size;
            let lo = start.max(base) - base;
            let hi = (end.min(base + block.len())) - base;
            out.extend_from_slice(&block[lo..hi]);
        }
    }
}

/// A sequential bit reader over a byte slice (little-endian within bytes),
/// shared by the bit-oriented codecs.
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize, // bit position
}

impl<'a> BitReader<'a> {
    /// Starts reading at bit 0 of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Reads `width` bits (≤ 64) as the low bits of the result.
    #[inline]
    pub fn read(&mut self, width: usize) -> u64 {
        debug_assert!(width <= 64);
        let mut out = 0u64;
        let mut got = 0usize;
        while got < width {
            let byte = self.data[self.pos / 8];
            let bit = self.pos % 8;
            let avail = 8 - bit;
            let take = avail.min(width - got);
            let chunk = ((byte >> bit) as u64) & ((1u64 << take) - 1);
            out |= chunk << got;
            got += take;
            self.pos += take;
        }
        out
    }

    /// Reads a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> bool {
        let b = (self.data[self.pos / 8] >> (self.pos % 8)) & 1 == 1;
        self.pos += 1;
        b
    }

    /// Current bit position.
    pub fn position(&self) -> usize {
        self.pos
    }
}

/// A bit writer producing a byte vector (little-endian within bytes),
/// shared by the bit-oriented codecs.
#[derive(Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    bit: usize, // bits used in the last byte (0 ⇒ last byte full/absent)
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the low `width` bits of `value` (≤ 64).
    #[inline]
    pub fn write(&mut self, value: u64, width: usize) {
        debug_assert!(width <= 64);
        let mut done = 0usize;
        while done < width {
            if self.bit == 0 {
                self.bytes.push(0);
            }
            let space = 8 - self.bit;
            let take = space.min(width - done);
            let chunk = ((value >> done) & ((1u64 << take) - 1)) as u8;
            *self.bytes.last_mut().expect("pushed above") |= chunk << self.bit;
            self.bit = (self.bit + take) % 8;
            done += take;
        }
    }

    /// Writes a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write(bit as u64, 1);
    }

    /// Finishes and returns the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }

    /// Bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8 - if self.bit == 0 { 0 } else { 8 - self.bit }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial raw codec used to exercise the block-wise machinery.
    #[derive(Clone)]
    struct RawCodec;

    impl StreamCodec for RawCodec {
        fn name(&self) -> &'static str {
            "raw"
        }
        fn encode(&self, words: &[u64]) -> Vec<u8> {
            words.iter().flat_map(|w| w.to_le_bytes()).collect()
        }
        fn decode(&self, data: &[u8], n: usize) -> Vec<u64> {
            (0..n).map(|i| u64::from_le_bytes(data[i * 8..i * 8 + 8].try_into().unwrap())).collect()
        }
    }

    #[test]
    fn blockwise_roundtrip_and_access() {
        let ts = TimeSeries::from_values((0..2500).map(|k| k * 3 - 1000).collect());
        let c = Blockwise::new(RawCodec).compress(&ts);
        assert_eq!(c.block_count(), 3);
        assert_eq!(c.decompress(), ts.values());
        for k in [0usize, 999, 1000, 1001, 2499] {
            assert_eq!(c.get(k), ts.values()[k]);
        }
        let mut out = Vec::new();
        c.scan_range(950, 200, &mut out);
        assert_eq!(out, &ts.values()[950..1150]);
    }

    #[test]
    fn blockwise_empty() {
        let ts = TimeSeries::from_values(vec![]);
        let c = Blockwise::new(RawCodec).compress(&ts);
        assert_eq!(c.len(), 0);
        assert_eq!(c.decompress(), Vec::<i64>::new());
    }

    #[test]
    fn bit_writer_reader_roundtrip() {
        let mut w = BitWriter::new();
        let items: Vec<(u64, usize)> =
            vec![(1, 1), (0b1011, 4), (0xFFFF_FFFF, 32), (0, 7), (u64::MAX, 64), (5, 3)];
        for &(v, width) in &items {
            w.write(v, width);
        }
        let total: usize = items.iter().map(|&(_, w)| w).sum();
        assert_eq!(w.bit_len(), total);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, width) in &items {
            assert_eq!(r.read(width), v & if width == 64 { u64::MAX } else { (1 << width) - 1 });
        }
    }

    #[test]
    fn bit_single_bits() {
        let mut w = BitWriter::new();
        let pattern = [true, true, false, true, false, false, false, true, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), b);
        }
    }
}
