//! ALP-style adaptive lossless floating-point compression
//! (Afroozeh, Kuffo, Boncz — SIGMOD 2024).
//!
//! ALP encodes a double `x` as the pseudodecimal `d = round(x · 10^e)` with
//! one exponent per 1024-value block, bit-packing the integers with a
//! frame-of-reference code; values that do not survive the decimal
//! round-trip are stored verbatim as exceptions. Our input values are
//! fixed-precision decimals (paper §IV-A1), so the scheme applies directly:
//! we search the smallest per-block exponent whose round-trip is exact for
//! almost all values.

use succinct::{bits_for, BitBuf};
use timeseries::{CompressedSeries, Compressor, TimeSeries};

/// Values per ALP block (the paper's vector size).
pub const ALP_BLOCK: usize = 1024;

/// Largest decimal exponent tried.
const MAX_EXPONENT: i32 = 18;

/// The ALP-style compressor.
#[derive(Clone, Copy, Debug, Default)]
pub struct Alp;

/// Per-block metadata.
#[derive(Clone, Copy, Debug)]
struct AlpBlock {
    /// Decimal exponent `e` (`d = round(x · 10^e)`).
    exponent: i32,
    /// Frame-of-reference base subtracted from each `d`.
    base: i64,
    /// Packed width.
    width: u8,
    /// Bit offset into the payload.
    offset: u64,
    /// Index of this block's first exception in the exception arrays.
    first_exception: u32,
}

/// An ALP-compressed series.
#[derive(Clone, Debug)]
pub struct AlpCompressed {
    n: usize,
    /// Scale factor mapping decoded doubles back to the integer domain.
    fractional_digits: u8,
    blocks: Vec<AlpBlock>,
    payload: BitBuf,
    /// Exception positions (absolute index) and raw scaled-integer values.
    ///
    /// Exceptions carry the original `i64`, not IEEE bits: integers beyond
    /// 2^53 have no exact f64, so a float-bits exception would silently
    /// round them (a real corruption this shipped with until the extreme
    /// adversarial shape caught it).
    exc_pos: Vec<u32>,
    exc_val: Vec<i64>,
}

/// End-to-end round-trip test: does packing `d = round(x · 10^e)` and
/// decoding back through `d / 10^e → · 10^digits → round` recover the
/// original scaled integer `v` exactly? Checking the full integer pipeline
/// (rather than only `d / 10^e == x`) is what keeps the codec lossless for
/// values whose `f64` image `x` has already lost precision.
#[inline]
fn survives(v: i64, x: f64, e: i32, scale: f64) -> Option<i64> {
    let scaled = x * 10f64.powi(e);
    if !scaled.is_finite() || scaled.abs() >= (1u64 << 51) as f64 {
        return None;
    }
    let d = scaled.round();
    let back = (d / 10f64.powi(e) * scale).round();
    if back == v as f64 && back as i64 == v {
        Some(d as i64)
    } else {
        None
    }
}

impl Compressor for Alp {
    type Output = AlpCompressed;

    fn name(&self) -> &'static str {
        "ALP"
    }

    fn compress(&self, ts: &TimeSeries) -> AlpCompressed {
        let digits = ts.fractional_digits();
        let scale = 10f64.powi(digits as i32);
        let doubles = ts.to_f64();
        let mut blocks = Vec::with_capacity(doubles.len() / ALP_BLOCK + 1);
        let mut payload = BitBuf::new();
        let mut exc_pos = Vec::new();
        let mut exc_val = Vec::new();
        for (bi, (chunk, raw)) in
            doubles.chunks(ALP_BLOCK).zip(ts.values().chunks(ALP_BLOCK)).enumerate()
        {
            // Pick the exponent with the fewest exceptions, then the
            // smallest packed width (sampling every value is fine at this
            // scale; real ALP samples).
            let mut best: Option<(i32, usize, u64)> = None; // (e, exceptions, spread)
            for e in 0..=MAX_EXPONENT {
                let mut exceptions = 0usize;
                let mut lo = i64::MAX;
                let mut hi = i64::MIN;
                for (&x, &v) in chunk.iter().zip(raw) {
                    match survives(v, x, e, scale) {
                        Some(d) => {
                            lo = lo.min(d);
                            hi = hi.max(d);
                        }
                        None => exceptions += 1,
                    }
                }
                let spread = if lo <= hi { hi.abs_diff(lo) } else { 0 };
                let better = match best {
                    None => true,
                    Some((_, bex, bspread)) => {
                        exceptions < bex || (exceptions == bex && spread < bspread)
                    }
                };
                if better {
                    best = Some((e, exceptions, spread));
                }
                if exceptions == 0 && e as u8 >= digits {
                    // Exact already; larger exponents only widen the packing.
                    break;
                }
            }
            let (e, _, _) = best.expect("at least one exponent tried");
            // Second pass: encode with exponent e.
            let decoded: Vec<Option<i64>> =
                chunk.iter().zip(raw).map(|(&x, &v)| survives(v, x, e, scale)).collect();
            let base = decoded.iter().flatten().copied().min().unwrap_or(0);
            let spread = decoded.iter().flatten().copied().max().unwrap_or(0) - base;
            let width = bits_for(spread as u64) as u8;
            let offset = payload.len() as u64;
            let first_exception = exc_pos.len() as u32;
            for (k, d) in decoded.iter().enumerate() {
                match d {
                    Some(d) => payload.push_bits((d - base) as u64, width as usize),
                    None => {
                        payload.push_bits(0, width as usize);
                        exc_pos.push((bi * ALP_BLOCK + k) as u32);
                        exc_val.push(raw[k]);
                    }
                }
            }
            blocks.push(AlpBlock { exponent: e, base, width, offset, first_exception });
        }
        payload.shrink_to_fit();
        AlpCompressed { n: doubles.len(), fractional_digits: digits, blocks, payload, exc_pos, exc_val }
    }
}

impl AlpCompressed {
    /// Decodes the whole block containing `k` and returns the scaled-integer
    /// values plus the block's base index. Exceptions are patched in the
    /// integer domain, after the float → integer conversion, so they stay
    /// exact even beyond f64's 2^53 integer range.
    ///
    /// Random access deliberately goes through full-block decoding: the real
    /// ALP decodes 1024-value vectors as a unit, and the paper measures it
    /// under the block-wise random-access protocol (§IV-A2, "excluding DAC,
    /// LeCo, and NeaTS" from native access).
    fn decode_block(&self, b: usize) -> (usize, Vec<i64>) {
        let blk = &self.blocks[b];
        let base_idx = b * ALP_BLOCK;
        let count = (self.n - base_idx).min(ALP_BLOCK);
        let pow = 10f64.powi(blk.exponent);
        let scale = 10f64.powi(self.fractional_digits as i32);
        let w = blk.width as usize;
        let mut o = blk.offset as usize;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let d = if w == 0 { 0 } else { self.payload.get_bits(o, w) as i64 };
            o += w;
            out.push(((d + blk.base) as f64 / pow * scale).round() as i64);
        }
        // Patch exceptions for this block.
        let end = self.blocks.get(b + 1).map_or(self.exc_pos.len(), |nb| nb.first_exception as usize);
        for e in blk.first_exception as usize..end {
            out[self.exc_pos[e] as usize - base_idx] = self.exc_val[e];
        }
        (base_idx, out)
    }

    /// Number of exception values stored verbatim.
    pub fn exception_count(&self) -> usize {
        self.exc_pos.len()
    }
}

impl CompressedSeries for AlpCompressed {
    fn len(&self) -> usize {
        self.n
    }

    fn size_in_bytes(&self) -> usize {
        16 + self.blocks.len() * (4 + 8 + 1 + 5 + 4)
            + self.payload.size_in_bytes()
            + self.exc_pos.len() * 4
            + self.exc_val.len() * 8
    }

    fn get(&self, k: usize) -> i64 {
        let (base_idx, block) = self.decode_block(k / ALP_BLOCK);
        block[k - base_idx]
    }

    fn decompress(&self) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.n);
        for b in 0..self.blocks.len() {
            let (_, block) = self.decode_block(b);
            out.extend(block);
        }
        out
    }

    fn scan_range(&self, start: usize, count: usize, out: &mut Vec<i64>) {
        if count == 0 {
            return;
        }
        let end = start + count;
        let mut b = start / ALP_BLOCK;
        while b * ALP_BLOCK < end {
            let (base_idx, block) = self.decode_block(b);
            let lo = start.max(base_idx) - base_idx;
            let hi = end.min(base_idx + block.len()) - base_idx;
            out.extend_from_slice(&block[lo..hi]);
            b += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn roundtrip(ts: &TimeSeries) -> AlpCompressed {
        let c = Alp.compress(ts);
        assert_eq!(c.decompress(), ts.values(), "decompress");
        for k in (0..ts.len()).step_by(13) {
            assert_eq!(c.get(k), ts.values()[k], "get({k})");
        }
        c
    }

    #[test]
    fn fixed_precision_decimals_have_no_exceptions() {
        let mut rng = StdRng::seed_from_u64(1);
        let values: Vec<f64> = (0..3000).map(|_| rng.random_range(-10_000..10_000) as f64 / 100.0).collect();
        let ts = TimeSeries::from_f64(&values, 2);
        let c = roundtrip(&ts);
        assert_eq!(c.exception_count(), 0);
        let ratio = c.size_in_bytes() as f64 / ts.uncompressed_bytes() as f64;
        assert!(ratio < 0.40, "ratio {ratio}");
    }

    #[test]
    fn integers_compress_with_exponent_zero() {
        let values: Vec<i64> = (0..2000).map(|k| k % 500).collect();
        let ts = TimeSeries::from_values(values);
        roundtrip(&ts);
    }

    #[test]
    fn empty_and_single() {
        roundtrip(&TimeSeries::from_values(vec![]));
        roundtrip(&TimeSeries::from_f64(&[3.75], 2));
    }

    #[test]
    fn partial_block() {
        let values: Vec<f64> = (0..ALP_BLOCK + 100).map(|k| k as f64 / 10.0).collect();
        roundtrip(&TimeSeries::from_f64(&values, 1));
    }

    #[test]
    fn huge_magnitudes_become_exceptions() {
        // Values beyond 2⁵¹ cannot be represented as packed pseudodecimals
        // (the round-trip guard rejects them) → exception path.
        let values: Vec<i64> = (0..300).map(|k| (1i64 << 52) + (k << 16)).collect();
        let ts = TimeSeries::from_values(values);
        let c = Alp.compress(&ts);
        assert_eq!(c.decompress(), ts.values());
        assert!(c.exception_count() > 0);
    }

    #[test]
    fn values_beyond_f64_integer_range_stay_exact() {
        // Regression: odd values past 2⁵³ have no exact f64, so exceptions
        // stored as float bits silently rounded them (off-by-2 corruption
        // caught by the extreme adversarial shape). Exceptions now carry
        // the raw i64.
        let values: Vec<i64> =
            (0..2100).map(|k| (3i64 << 53) + 2 * k + 1 - (k % 7) * (1 << 20)).collect();
        assert!(values.iter().any(|&v| v as f64 as i64 != v), "test data must defeat f64");
        let ts = TimeSeries::from_values(values);
        let c = roundtrip(&ts);
        assert!(c.exception_count() > 0);
    }
}
