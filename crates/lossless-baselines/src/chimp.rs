//! Chimp and Chimp128 (Liakos, Papakonstantinopoulou, Kotidis — VLDB 2022).
//!
//! Chimp refines Gorilla's XOR scheme with a 2-bit flag and a rounded
//! leading-zero table:
//!
//! * `00` — xor is 0;
//! * `01` — xor has more than `TRAILING_THRESHOLD` trailing zeros: emit a
//!   3-bit rounded leading-zero code, a 6-bit centre-bit count, and the
//!   centre bits;
//! * `10` — leading zeros match the previous value's: emit `64 − lead` bits;
//! * `11` — emit a new 3-bit leading code and `64 − lead` bits.
//!
//! Chimp128 additionally searches the previous [`CHIMP128_WINDOW`] values
//! for the reference producing the most trailing zeros and emits its index
//! in the `01` branch, which pays off on noisy-mantissa data.

use crate::stream::{BitReader, BitWriter, StreamCodec};

/// Trailing-zero threshold for the `01` branch.
const TRAILING_THRESHOLD: u32 = 6;

/// Rounded leading-zero values, indexed by 3-bit code.
const LEADING_TABLE: [u32; 8] = [0, 8, 12, 16, 18, 20, 22, 24];

/// Maps a leading-zero count to its 3-bit code (round down).
#[inline]
fn leading_code(lead: u32) -> u32 {
    match lead {
        0..=7 => 0,
        8..=11 => 1,
        12..=15 => 2,
        16..=17 => 3,
        18..=19 => 4,
        20..=21 => 5,
        22..=23 => 6,
        _ => 7,
    }
}

/// The Chimp codec (previous-value reference).
#[derive(Clone, Copy, Debug, Default)]
pub struct Chimp;

impl StreamCodec for Chimp {
    fn name(&self) -> &'static str {
        "Chimp"
    }

    fn wants_float_bits(&self) -> bool {
        true
    }

    fn encode(&self, words: &[u64]) -> Vec<u8> {
        let mut w = BitWriter::new();
        let mut prev = 0u64;
        let mut prev_lead = u32::MAX;
        for (i, &word) in words.iter().enumerate() {
            if i == 0 {
                w.write(word, 64);
                prev = word;
                continue;
            }
            let xor = prev ^ word;
            prev = word;
            if xor == 0 {
                w.write(0b00, 2);
                prev_lead = u32::MAX;
                continue;
            }
            let lead_raw = xor.leading_zeros();
            let code = leading_code(lead_raw);
            let lead = LEADING_TABLE[code as usize];
            let trail = xor.trailing_zeros();
            if trail > TRAILING_THRESHOLD {
                w.write(0b01, 2);
                let center = 64 - lead - trail;
                w.write(code as u64, 3);
                w.write(center as u64, 6);
                w.write(xor >> trail, center as usize);
                prev_lead = u32::MAX;
            } else if prev_lead != u32::MAX && lead == prev_lead {
                w.write(0b10, 2);
                w.write(xor, (64 - lead) as usize);
            } else {
                w.write(0b11, 2);
                w.write(code as u64, 3);
                w.write(xor, (64 - lead) as usize);
                prev_lead = lead;
            }
        }
        w.finish()
    }

    fn decode(&self, data: &[u8], n: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(n);
        if n == 0 {
            return out;
        }
        let mut r = BitReader::new(data);
        let mut prev = r.read(64);
        out.push(prev);
        let mut prev_lead = 0u32;
        for _ in 1..n {
            let flag = r.read(2);
            let xor = match flag {
                0b00 => 0,
                0b01 => {
                    let lead = LEADING_TABLE[r.read(3) as usize];
                    let center = r.read(6) as u32;
                    let trail = 64 - lead - center;
                    r.read(center as usize) << trail
                }
                0b10 => r.read((64 - prev_lead) as usize),
                _ => {
                    prev_lead = LEADING_TABLE[r.read(3) as usize];
                    r.read((64 - prev_lead) as usize)
                }
            };
            prev ^= xor;
            out.push(prev);
        }
        out
    }
}

/// Window size for Chimp128's reference search.
pub const CHIMP128_WINDOW: usize = 128;

/// The Chimp128 codec (best-of-window reference).
#[derive(Clone, Copy, Debug, Default)]
pub struct Chimp128;

impl StreamCodec for Chimp128 {
    fn name(&self) -> &'static str {
        "Chimp128"
    }

    fn wants_float_bits(&self) -> bool {
        true
    }

    #[allow(clippy::needless_range_loop)] // windowed index search is clearer indexed
    fn encode(&self, words: &[u64]) -> Vec<u8> {
        let mut w = BitWriter::new();
        let mut prev_lead = u32::MAX;
        for (i, &word) in words.iter().enumerate() {
            if i == 0 {
                w.write(word, 64);
                continue;
            }
            // Find the window value whose XOR has the most trailing zeros.
            let lo = i.saturating_sub(CHIMP128_WINDOW);
            let mut best_j = i - 1;
            let mut best_trail = (words[i - 1] ^ word).trailing_zeros();
            for j in lo..i - 1 {
                let t = (words[j] ^ word).trailing_zeros();
                if t > best_trail {
                    best_trail = t;
                    best_j = j;
                }
            }
            let ref_xor = words[best_j] ^ word;
            if ref_xor == 0 {
                // Exact match in the window: flag 00 + index delta.
                w.write(0b00, 2);
                w.write((i - 1 - best_j) as u64, 7);
                prev_lead = u32::MAX;
                continue;
            }
            if best_trail > TRAILING_THRESHOLD {
                // Windowed reference pays off: flag 01 + index delta.
                w.write(0b01, 2);
                w.write((i - 1 - best_j) as u64, 7);
                let code = leading_code(ref_xor.leading_zeros());
                let lead = LEADING_TABLE[code as usize];
                let center = 64 - lead - best_trail;
                w.write(code as u64, 3);
                w.write(center as u64, 6);
                w.write(ref_xor >> best_trail, center as usize);
                prev_lead = u32::MAX;
                continue;
            }
            // Fall back to previous-value XOR as plain Chimp.
            let xor = words[i - 1] ^ word;
            let code = leading_code(xor.leading_zeros());
            let lead = LEADING_TABLE[code as usize];
            if prev_lead != u32::MAX && lead == prev_lead {
                w.write(0b10, 2);
                w.write(xor, (64 - lead) as usize);
            } else {
                w.write(0b11, 2);
                w.write(code as u64, 3);
                w.write(xor, (64 - lead) as usize);
                prev_lead = lead;
            }
        }
        w.finish()
    }

    fn decode(&self, data: &[u8], n: usize) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::with_capacity(n);
        if n == 0 {
            return out;
        }
        let mut r = BitReader::new(data);
        out.push(r.read(64));
        let mut prev_lead = 0u32;
        for i in 1..n {
            let flag = r.read(2);
            let value = match flag {
                0b00 => {
                    let delta = r.read(7) as usize;
                    out[i - 1 - delta]
                }
                0b01 => {
                    let delta = r.read(7) as usize;
                    let reference = out[i - 1 - delta];
                    let lead = LEADING_TABLE[r.read(3) as usize];
                    let center = r.read(6) as u32;
                    let trail = 64 - lead - center;
                    reference ^ (r.read(center as usize) << trail)
                }
                0b10 => out[i - 1] ^ r.read((64 - prev_lead) as usize),
                _ => {
                    prev_lead = LEADING_TABLE[r.read(3) as usize];
                    out[i - 1] ^ r.read((64 - prev_lead) as usize)
                }
            };
            out.push(value);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn roundtrip_both(words: &[u64]) {
        let enc = Chimp.encode(words);
        assert_eq!(Chimp.decode(&enc, words.len()), words, "Chimp");
        let enc = Chimp128.encode(words);
        assert_eq!(Chimp128.decode(&enc, words.len()), words, "Chimp128");
    }

    #[test]
    fn empty_single_repeat() {
        roundtrip_both(&[]);
        roundtrip_both(&[7.5f64.to_bits()]);
        roundtrip_both(&vec![1.5f64.to_bits(); 300]);
    }

    #[test]
    fn leading_code_table_consistent() {
        for lead in 0..=64u32 {
            let code = leading_code(lead);
            assert!(LEADING_TABLE[code as usize] <= lead, "lead {lead} code {code}");
        }
    }

    #[test]
    fn smooth_float_stream() {
        let words: Vec<u64> =
            (0..3000).map(|k| (20.0 + (k as f64 / 100.0).sin()).to_bits()).collect();
        roundtrip_both(&words);
        let c = Chimp.encode(&words);
        assert!(c.len() < 3000 * 8);
    }

    #[test]
    fn random_words() {
        let mut rng = StdRng::seed_from_u64(9);
        let words: Vec<u64> = (0..1500).map(|_| rng.random()).collect();
        roundtrip_both(&words);
    }

    #[test]
    fn periodic_data_favours_chimp128() {
        // A noisy periodic pattern: window references should help Chimp128.
        let mut rng = StdRng::seed_from_u64(4);
        let base: Vec<f64> = (0..64).map(|k| 100.0 + k as f64).collect();
        let words: Vec<u64> = (0..4096)
            .map(|k| (base[k % 64] + 1e-9 * rng.random_range(0..4) as f64).to_bits())
            .collect();
        roundtrip_both(&words);
        let c1 = Chimp.encode(&words).len();
        let c128 = Chimp128.encode(&words).len();
        assert!(c128 < c1, "chimp128 {c128} !< chimp {c1}");
    }

    #[test]
    fn all_flag_paths_hit() {
        // Build a sequence forcing 00, 01, 10, 11 branches for Chimp.
        let words: Vec<u64> = vec![
            1.0f64.to_bits(),
            1.0f64.to_bits(),               // 00
            (1.0f64 + 2.0).to_bits(),       // big change: 11 or 01
            (1.0f64 + 2.000001).to_bits(),  // small mantissa change
            (1.0f64 + 2.000002).to_bits(),  // same leading → 10
            f64::MAX.to_bits(),
            0u64,
        ];
        roundtrip_both(&words);
    }
}
