//! Canonical Huffman coding, the entropy stage of [`crate::lz::EntropyLz`].
//!
//! Code lengths are produced by the classic two-queue construction and
//! assigned canonically (shorter codes first, ties by symbol), so the
//! decoder only needs the length table. Codes are emitted MSB-first, which
//! lets the decoder consume one bit at a time against the canonical
//! `first_code` boundaries.

use crate::stream::{BitReader, BitWriter};

/// An encoder table: per-symbol code and length.
#[derive(Clone, Debug)]
pub struct HuffmanEncoder {
    codes: Vec<u32>,
    lengths: Vec<u8>,
}

/// A decoder built from canonical code lengths.
#[derive(Clone, Debug)]
pub struct HuffmanDecoder {
    /// `first_code[l]` — canonical code value of the first code of length l.
    first_code: Vec<u32>,
    /// `count[l]` — number of codes of length l.
    count: Vec<u32>,
    /// Symbols sorted by (length, symbol); `offset[l]` indexes the first of
    /// length l.
    symbols: Vec<u16>,
    offset: Vec<u32>,
    max_len: usize,
}

/// Computes canonical code lengths for `freqs` (0 ⇒ symbol unused).
///
/// Uses the standard two-queue method on sorted frequencies. With a single
/// used symbol the code length is 1.
pub fn code_lengths(freqs: &[u64]) -> Vec<u8> {
    let used: Vec<usize> = (0..freqs.len()).filter(|&s| freqs[s] > 0).collect();
    let mut lengths = vec![0u8; freqs.len()];
    match used.len() {
        0 => return lengths,
        1 => {
            lengths[used[0]] = 1;
            return lengths;
        }
        _ => {}
    }
    // Node arena: leaves then internals; track parents to derive depths.
    #[derive(Clone, Copy)]
    struct Node {
        freq: u64,
        parent: usize,
    }
    let mut nodes: Vec<Node> = used.iter().map(|&s| Node { freq: freqs[s], parent: usize::MAX }).collect();
    let mut order: Vec<usize> = (0..nodes.len()).collect();
    order.sort_by_key(|&i| nodes[i].freq);
    // Two queues: sorted leaves and FIFO internals.
    let mut leaf_q = std::collections::VecDeque::from(order);
    let mut int_q: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let take_min = |nodes: &Vec<Node>,
                    leaf_q: &mut std::collections::VecDeque<usize>,
                    int_q: &mut std::collections::VecDeque<usize>| {
        match (leaf_q.front(), int_q.front()) {
            (Some(&l), Some(&i)) => {
                if nodes[l].freq <= nodes[i].freq {
                    leaf_q.pop_front().expect("front exists")
                } else {
                    int_q.pop_front().expect("front exists")
                }
            }
            (Some(_), None) => leaf_q.pop_front().expect("front exists"),
            (None, Some(_)) => int_q.pop_front().expect("front exists"),
            (None, None) => unreachable!("queues exhausted early"),
        }
    };
    while leaf_q.len() + int_q.len() > 1 {
        let a = take_min(&nodes, &mut leaf_q, &mut int_q);
        let b = take_min(&nodes, &mut leaf_q, &mut int_q);
        let parent = nodes.len();
        let freq = nodes[a].freq + nodes[b].freq;
        nodes[a].parent = parent;
        nodes[b].parent = parent;
        nodes.push(Node { freq, parent: usize::MAX });
        int_q.push_back(parent);
    }
    // Depth of each leaf = chain length to the root.
    for (li, &s) in used.iter().enumerate() {
        let mut depth = 0u8;
        let mut i = li;
        while nodes[i].parent != usize::MAX {
            i = nodes[i].parent;
            depth += 1;
        }
        lengths[s] = depth;
    }
    lengths
}

impl HuffmanEncoder {
    /// Builds the canonical encoder from code lengths.
    pub fn from_lengths(lengths: &[u8]) -> Self {
        let max_len = lengths.iter().copied().max().unwrap_or(0) as usize;
        let mut count = vec![0u32; max_len + 1];
        for &l in lengths {
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        let mut next = vec![0u32; max_len + 2];
        let mut code = 0u32;
        for l in 1..=max_len {
            code = (code + count[l - 1]) << 1;
            next[l] = code;
        }
        let mut codes = vec![0u32; lengths.len()];
        for (s, &l) in lengths.iter().enumerate() {
            if l > 0 {
                codes[s] = next[l as usize];
                next[l as usize] += 1;
            }
        }
        Self { codes, lengths: lengths.to_vec() }
    }

    /// Writes the code for `sym` MSB-first.
    #[inline]
    pub fn write(&self, w: &mut BitWriter, sym: usize) {
        let len = self.lengths[sym] as usize;
        debug_assert!(len > 0, "symbol {sym} has no code");
        let code = self.codes[sym];
        for i in (0..len).rev() {
            w.write_bit((code >> i) & 1 == 1);
        }
    }
}

impl HuffmanDecoder {
    /// Builds the canonical decoder from code lengths.
    pub fn from_lengths(lengths: &[u8]) -> Self {
        let max_len = lengths.iter().copied().max().unwrap_or(0) as usize;
        let mut count = vec![0u32; max_len + 1];
        for &l in lengths {
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        // Canonical: first_code[1] = 0, first_code[l] = (first_code[l−1] + count[l−1]) << 1.
        let mut first_code = vec![0u32; max_len + 1];
        let mut c = 0u32;
        for l in 1..=max_len {
            c = if l == 1 { 0 } else { (c + count[l - 1]) << 1 };
            first_code[l] = c;
        }
        let mut offset = vec![0u32; max_len + 2];
        for l in 1..=max_len {
            offset[l + 1] = offset[l] + count[l];
        }
        let mut symbols = vec![0u16; offset[max_len + 1] as usize];
        let mut cursor = offset.clone();
        for (s, &l) in lengths.iter().enumerate() {
            if l > 0 {
                symbols[cursor[l as usize] as usize] = s as u16;
                cursor[l as usize] += 1;
            }
        }
        Self { first_code, count, symbols, offset, max_len }
    }

    /// Decodes one symbol, reading bits MSB-first.
    #[inline]
    pub fn read(&self, r: &mut BitReader<'_>) -> u16 {
        let mut code = 0u32;
        for l in 1..=self.max_len {
            code = (code << 1) | r.read_bit() as u32;
            let c = self.count[l];
            if c > 0 && code >= self.first_code[l] && code - self.first_code[l] < c {
                return self.symbols[(self.offset[l] + code - self.first_code[l]) as usize];
            }
        }
        panic!("invalid Huffman stream");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn roundtrip_symbols(freq_seed: u64, alphabet: usize, n: usize) {
        let mut rng = StdRng::seed_from_u64(freq_seed);
        // skewed symbol stream
        let symbols: Vec<usize> = (0..n)
            .map(|_| {
                let r: f64 = rng.random();
                ((r * r * alphabet as f64) as usize).min(alphabet - 1)
            })
            .collect();
        let mut freqs = vec![0u64; alphabet];
        for &s in &symbols {
            freqs[s] += 1;
        }
        let lengths = code_lengths(&freqs);
        let enc = HuffmanEncoder::from_lengths(&lengths);
        let dec = HuffmanDecoder::from_lengths(&lengths);
        let mut w = BitWriter::new();
        for &s in &symbols {
            enc.write(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &symbols {
            assert_eq!(dec.read(&mut r) as usize, s);
        }
    }

    #[test]
    fn kraft_inequality_holds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let alphabet = rng.random_range(2..300);
            let freqs: Vec<u64> =
                (0..alphabet).map(|_| if rng.random_bool(0.3) { 0 } else { rng.random_range(1..10_000) }).collect();
            if freqs.iter().all(|&f| f == 0) {
                continue;
            }
            let lengths = code_lengths(&freqs);
            let kraft: f64 =
                lengths.iter().filter(|&&l| l > 0).map(|&l| 2f64.powi(-(l as i32))).sum();
            assert!(kraft <= 1.0 + 1e-9, "kraft {kraft}");
            // optimality necessary condition: complete code
            assert!((kraft - 1.0).abs() < 1e-9 || lengths.iter().filter(|&&l| l > 0).count() == 1);
        }
    }

    #[test]
    fn single_symbol() {
        let lengths = code_lengths(&[0, 5, 0]);
        assert_eq!(lengths, vec![0, 1, 0]);
        let enc = HuffmanEncoder::from_lengths(&lengths);
        let dec = HuffmanDecoder::from_lengths(&lengths);
        let mut w = BitWriter::new();
        for _ in 0..10 {
            enc.write(&mut w, 1);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for _ in 0..10 {
            assert_eq!(dec.read(&mut r), 1);
        }
    }

    #[test]
    fn two_symbols_get_one_bit_each() {
        let lengths = code_lengths(&[10, 90]);
        assert_eq!(lengths, vec![1, 1]);
    }

    #[test]
    fn skewed_streams_roundtrip() {
        roundtrip_symbols(1, 2, 500);
        roundtrip_symbols(2, 17, 2000);
        roundtrip_symbols(3, 256, 5000);
        roundtrip_symbols(4, 300, 1000);
    }

    #[test]
    fn compression_beats_fixed_width_on_skew() {
        // Heavily skewed: symbol 0 at 95%.
        let mut freqs = vec![0u64; 16];
        freqs[0] = 9500;
        for (i, f) in freqs.iter_mut().enumerate().skip(1) {
            *f = 500 / 15 + (i as u64 % 3);
        }
        let lengths = code_lengths(&freqs);
        let total_bits: u64 = freqs.iter().zip(&lengths).map(|(&f, &l)| f * l as u64).sum();
        let fixed_bits: u64 = freqs.iter().sum::<u64>() * 4;
        assert!(total_bits < fixed_bits / 2, "{total_bits} vs fixed {fixed_bits}");
    }
}
