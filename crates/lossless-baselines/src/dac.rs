//! Directly Addressable Codes (Brisaboa, Ladra, Navarro — IP&M 2013).
//!
//! DAC splits each integer into fixed-width chunks. Level 0 stores the low
//! chunk of every value plus a bitvector marking which values continue to
//! the next level; level ℓ stores the next chunk of the values that reached
//! it, and so on. `access(i)` walks the levels via `rank1`, giving the very
//! fast native random access the paper measures (fastest random access in
//! Table III, at a mediocre compression ratio).
//!
//! Values are zig-zag transformed first since DAC codes magnitudes.

use succinct::{zigzag_decode, zigzag_encode, BitVector, PackedVec};
use timeseries::{CompressedSeries, Compressor, TimeSeries};

/// The DAC compressor; `chunk_bits` is the per-level chunk width `b`.
#[derive(Clone, Copy, Debug)]
pub struct Dac {
    chunk_bits: usize,
}

impl Default for Dac {
    fn default() -> Self {
        Self { chunk_bits: 8 }
    }
}

impl Dac {
    /// Creates a DAC compressor with the given chunk width (1..=32).
    pub fn new(chunk_bits: usize) -> Self {
        assert!((1..=32).contains(&chunk_bits));
        Self { chunk_bits }
    }
}

/// A DAC-compressed series.
#[derive(Clone, Debug)]
pub struct DacCompressed {
    n: usize,
    chunk_bits: usize,
    /// Chunk payload per level.
    levels: Vec<PackedVec>,
    /// Continuation bitvector per level (absent for the last level).
    continues: Vec<BitVector>,
}

impl Compressor for Dac {
    type Output = DacCompressed;

    fn name(&self) -> &'static str {
        "DAC"
    }

    fn compress(&self, ts: &TimeSeries) -> DacCompressed {
        let b = self.chunk_bits;
        let mask = (1u64 << b) - 1;
        let mut current: Vec<u64> = ts.values().iter().map(|&v| zigzag_encode(v)).collect();
        let mut levels = Vec::new();
        let mut continues = Vec::new();
        while !current.is_empty() {
            let chunks: Vec<u64> = current.iter().map(|&v| v & mask).collect();
            let cont: Vec<bool> = current.iter().map(|&v| v >> b != 0).collect();
            let next: Vec<u64> =
                current.iter().filter(|&&v| v >> b != 0).map(|&v| v >> b).collect();
            levels.push(PackedVec::with_width(&chunks, b));
            if next.is_empty() {
                break;
            }
            continues.push(BitVector::from_bools(&cont));
            current = next;
        }
        DacCompressed { n: ts.len(), chunk_bits: b, levels, continues }
    }
}

impl CompressedSeries for DacCompressed {
    fn len(&self) -> usize {
        self.n
    }

    fn size_in_bytes(&self) -> usize {
        16 + self.levels.iter().map(|l| l.size_in_bytes()).sum::<usize>()
            + self.continues.iter().map(|c| c.size_in_bytes()).sum::<usize>()
    }

    fn get(&self, k: usize) -> i64 {
        let b = self.chunk_bits;
        let mut value = 0u64;
        let mut idx = k;
        let mut shift = 0usize;
        for (lvl, level) in self.levels.iter().enumerate() {
            value |= level.get(idx) << shift;
            match self.continues.get(lvl) {
                Some(cont) if cont.get(idx) => {
                    idx = cont.rank1(idx);
                    shift += b;
                }
                _ => break,
            }
        }
        zigzag_decode(value)
    }

    fn decompress(&self) -> Vec<i64> {
        // Sequential decode: per-level cursors avoid rank queries entirely.
        let mut out = Vec::with_capacity(self.n);
        let mut cursors = vec![0usize; self.levels.len()];
        let b = self.chunk_bits;
        for k in 0..self.n {
            let mut value = self.levels[0].get(k);
            let mut shift = b;
            let mut lvl = 0usize;
            let mut idx = k;
            while lvl < self.continues.len() && self.continues[lvl].get(idx) {
                idx = cursors[lvl + 1];
                cursors[lvl + 1] += 1;
                lvl += 1;
                value |= self.levels[lvl].get(idx) << shift;
                shift += b;
            }
            out.push(zigzag_decode(value));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn roundtrip(values: Vec<i64>, b: usize) {
        let ts = TimeSeries::from_values(values);
        let c = Dac::new(b).compress(&ts);
        assert_eq!(c.decompress(), ts.values(), "decompress b={b}");
        for k in 0..ts.len() {
            assert_eq!(c.get(k), ts.values()[k], "get({k}) b={b}");
        }
    }

    #[test]
    fn small_values_single_level() {
        roundtrip(vec![0, 1, -1, 2, -2, 100, -100], 8);
    }

    #[test]
    fn mixed_magnitudes() {
        roundtrip(vec![0, i64::MAX / 2, -5, i64::MIN / 2, 1 << 40, -(1 << 33)], 8);
    }

    #[test]
    fn various_chunk_widths() {
        let mut rng = StdRng::seed_from_u64(2);
        let values: Vec<i64> = (0..2000).map(|_| rng.random_range(-1_000_000..1_000_000)).collect();
        for b in [4usize, 7, 8, 16] {
            roundtrip(values.clone(), b);
        }
    }

    #[test]
    fn empty_series() {
        let ts = TimeSeries::from_values(vec![]);
        let c = Dac::default().compress(&ts);
        assert_eq!(c.len(), 0);
        assert_eq!(c.decompress(), Vec::<i64>::new());
    }

    #[test]
    fn small_magnitudes_compress_below_raw() {
        let mut rng = StdRng::seed_from_u64(3);
        let values: Vec<i64> = (0..10_000).map(|_| rng.random_range(-100..100)).collect();
        let ts = TimeSeries::from_values(values);
        let c = Dac::default().compress(&ts);
        let ratio = c.size_in_bytes() as f64 / ts.uncompressed_bytes() as f64;
        assert!(ratio < 0.30, "ratio {ratio}");
    }
}
