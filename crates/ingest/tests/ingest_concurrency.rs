//! Concurrency stress: one writer thread streams a predetermined point
//! sequence into live series — with frequent seals, flushes, compactions,
//! and delete churn forcing generation swaps — while 4–8 scoped reader
//! threads hammer point / range / time / aggregate queries.
//!
//! The oracle is **prefix-closedness**: appends only extend a series, so
//! whatever length `L` a reader observes, every answer over `0..L` must
//! equal the predetermined sequence's prefix — regardless of how much is
//! sealed vs in the head at that instant, and across any number of
//! generation swaps mid-flight. Lengths must also be monotone per reader.

use neats_ingest::{BackgroundConfig, FsyncPolicy, IngestConfig, Ingestor};
use neats_store::StoreError;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The full predetermined life of one oracle series.
struct Plan {
    name: String,
    stamps: Vec<u64>,
    values: Vec<i64>,
}

fn plans() -> Vec<Plan> {
    let mk = |name: &str, seed: u64, n: usize| {
        let mut x = seed | 1;
        let mut rng = move || {
            x = x.wrapping_mul(0xD129_0247_3F89_4E1D).wrapping_add(0x9E37_79B9);
            x
        };
        let mut t = 1_000u64 * (seed % 7);
        let mut v = (seed % 100) as i64 - 50;
        let mut stamps = Vec::with_capacity(n);
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            t += 1 + rng() % 13;
            v += (rng() % 61) as i64 - 30;
            stamps.push(t);
            values.push(v);
        }
        Plan { name: name.to_string(), stamps, values }
    };
    vec![
        mk("walk", 1, 6000),
        mk("trend", 2, 6000),
        mk("burst", 3, 6000),
    ]
}

/// Reader loop: random queries against whatever prefix is visible, every
/// answer checked against the plan. Returns the number of checked queries.
fn hammer(ing: &Ingestor, plans: &[Plan], tid: u64, stop: &AtomicBool) -> u64 {
    let mut x = 0x9E37_79B9_7F4A_7C15u64 ^ tid.wrapping_mul(0xA076_1D64_78BD_642F);
    let mut rng = move || {
        x = x.wrapping_mul(0xD129_0247_3F89_4E1D).wrapping_add(0x9E37_79B9);
        x
    };
    let mut checked = 0u64;
    let mut last_len = vec![0usize; plans.len()];
    let mut buf = Vec::new();
    let mut tbuf = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        let pi = (rng() % plans.len() as u64) as usize;
        let p = &plans[pi];
        // The visible prefix: may lag the writer, never exceeds the plan,
        // never shrinks from this reader's perspective.
        let n = match ing.len(&p.name) {
            Ok(n) => n,
            Err(StoreError::UnknownSeries(_)) => continue, // not created yet
            Err(e) => panic!("len({}): {e}", p.name),
        };
        assert!(n <= p.values.len(), "phantom points: {n} > plan");
        assert!(n >= last_len[pi], "length went backwards: {n} < {}", last_len[pi]);
        last_len[pi] = n;
        if n == 0 {
            continue;
        }
        let a = (rng() % n as u64) as usize;
        let len = (rng() % 500).min((n - a) as u64) as usize;
        match rng() % 6 {
            0 => {
                assert_eq!(ing.get(&p.name, a).unwrap(), p.values[a], "get({}, {a})", p.name);
            }
            1 => {
                buf.clear();
                ing.range(&p.name, a..a + len, &mut buf).unwrap();
                assert_eq!(buf, &p.values[a..a + len], "range({}, {a}..+{len})", p.name);
            }
            2 => {
                let want: i128 = p.values[a..a + len].iter().map(|&v| v as i128).sum();
                assert_eq!(ing.sum(&p.name, a..a + len).unwrap(), want, "sum({})", p.name);
            }
            3 => {
                let want = p.values[a..a + len].iter().fold(
                    None,
                    |acc: Option<(i64, i64)>, &v| {
                        Some(acc.map_or((v, v), |(lo, hi)| (lo.min(v), hi.max(v))))
                    },
                );
                assert_eq!(ing.min_max(&p.name, a..a + len).unwrap(), want);
            }
            4 => {
                assert_eq!(ing.timestamp(&p.name, a).unwrap(), p.stamps[a]);
                assert_eq!(ing.at_time(&p.name, p.stamps[a]).unwrap(), Some(p.values[a]));
            }
            _ => {
                // A time window fully inside the visible prefix. The upper
                // bound is exclusive-ish: stop one stamp short of the last
                // visible point so concurrent appends cannot extend it.
                if len == 0 {
                    continue;
                }
                let b = a + len - 1;
                tbuf.clear();
                ing.range_by_time(&p.name, p.stamps[a], p.stamps[b], &mut tbuf).unwrap();
                let want: Vec<(u64, i64)> = (a..=b).map(|k| (p.stamps[k], p.values[k])).collect();
                assert_eq!(tbuf, want, "range_by_time({})", p.name);
            }
        }
        checked += 1;
    }
    checked
}

/// Writer loop: feed the plans in small interleaved batches with explicit
/// seal/flush/compact churn, plus delete/recreate noise on a side series
/// the readers never touch (it gives compaction real dead bytes).
fn write_everything(ing: &Ingestor, plans: &[Plan]) {
    let mut pos = vec![0usize; plans.len()];
    let mut x = 0xA5A5_5A5A_1234_5678u64;
    let mut rng = move || {
        x = x.wrapping_mul(0xD129_0247_3F89_4E1D).wrapping_add(0x9E37_79B9);
        x
    };
    let mut churn_round = 0u64;
    loop {
        let mut progressed = false;
        for (pi, p) in plans.iter().enumerate() {
            if pos[pi] >= p.values.len() {
                continue;
            }
            progressed = true;
            let batch = (1 + rng() % 120).min((p.values.len() - pos[pi]) as u64) as usize;
            let r = pos[pi]..pos[pi] + batch;
            ing.append(&p.name, &p.stamps[r.clone()], &p.values[r]).unwrap();
            pos[pi] += batch;
        }
        if !progressed {
            break;
        }
        match rng() % 10 {
            0 | 1 => {
                ing.seal().unwrap();
            }
            2 => {
                ing.flush().unwrap();
            }
            3 => {
                // Delete churn on the side series: sealed via flush so the
                // delete leaves dead bytes, then compact reclaims them
                // mid-flight.
                churn_round += 1;
                let t0 = churn_round * 1_000_000;
                ing.append("churn", &[t0, t0 + 1, t0 + 2], &[1, 2, 3]).unwrap();
                ing.flush().unwrap();
                ing.delete("churn").unwrap();
                ing.seal().unwrap();
                ing.compact().unwrap();
            }
            _ => {}
        }
    }
    ing.flush().unwrap();
}

#[test]
fn readers_stay_consistent_while_ingesting() {
    let dir: PathBuf = std::env::temp_dir()
        .join(format!("neats-iconc-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let cfg = IngestConfig {
        chunk_points: 256,
        seal_points: 1024,
        fsync: FsyncPolicy::Never, // throughput: this test is about memory safety
        cache_capacity: 4,         // tiny cache → constant eviction churn
        ..IngestConfig::default()
    };
    let plans = plans();
    let ing = Ingestor::open(&dir, cfg.clone()).unwrap();

    for readers in [4usize, 8] {
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| write_everything(&ing, &plans));
            let handles: Vec<_> = (0..readers)
                .map(|tid| {
                    let (ing, plans, stop) = (&ing, &plans, &stop);
                    scope.spawn(move || hammer(ing, plans, tid as u64 + 1, stop))
                })
                .collect();
            writer.join().unwrap();
            stop.store(true, Ordering::Relaxed);
            let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert!(total > 0, "readers must have checked something");
        });
        // Reset for the next round: wipe and re-ingest from scratch.
        if readers == 4 {
            for p in &plans {
                ing.delete(&p.name).unwrap();
            }
            ing.seal().unwrap();
            ing.compact().unwrap();
            assert_eq!(ing.total_points(), 0);
        }
    }

    // Final state equals the full plans — and survives recovery.
    drop(ing);
    let ing = Ingestor::open(&dir, cfg).unwrap();
    for p in &plans {
        assert_eq!(ing.len(&p.name).unwrap(), p.values.len());
        let mut got = Vec::new();
        ing.range(&p.name, 0..p.values.len(), &mut got).unwrap();
        assert_eq!(got, p.values, "{} after recovery", p.name);
    }
    drop(ing);
    fs::remove_dir_all(&dir).unwrap();
}

/// The background sealer running during reads: same prefix-closed oracle,
/// with seals triggered by the worker rather than the writer.
#[test]
fn background_sealer_during_reads() {
    let dir: PathBuf = std::env::temp_dir()
        .join(format!("neats-iconc-bg-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let cfg = IngestConfig {
        chunk_points: 128,
        seal_points: 256,
        fsync: FsyncPolicy::Never,
        compact_dead_ratio: 0.05,
        ..IngestConfig::default()
    };
    let plans = &plans()[..2];
    let ing = Arc::new(Ingestor::open(&dir, cfg).unwrap());
    let handle = ing.start_background(BackgroundConfig { interval: Duration::from_millis(5), ..Default::default() });

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let w = {
            let ing = Arc::clone(&ing);
            scope.spawn(move || {
                let mut pos = 0usize;
                while pos < plans[0].values.len() {
                    let batch = 73.min(plans[0].values.len() - pos);
                    for p in plans {
                        let r = pos..pos + batch;
                        ing.append(&p.name, &p.stamps[r.clone()], &p.values[r]).unwrap();
                    }
                    pos += batch;
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|tid| {
                let (ing, stop) = (&ing, &stop);
                scope.spawn(move || hammer(ing, plans, 100 + tid, stop))
            })
            .collect();
        w.join().unwrap();
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
    });
    handle.stop();
    assert_eq!(ing.background_errors(), 0);
    assert!(ing.epoch() > 0, "the background worker must have sealed");
    for p in plans {
        assert_eq!(ing.len(&p.name).unwrap(), p.values.len());
    }
    drop(ing);
    fs::remove_dir_all(&dir).unwrap();
}
