//! Degraded-mode suite, driven by the shared failpoint registry
//! (`neats_core::failpoint`): disk faults at every step of the write path
//! flip the ingestor into typed read-only degradation instead of
//! corrupting or crashing, reads keep serving the acked state, and
//! recovery — manual or the background worker's backoff retry — restores
//! full service with zero acked-data loss, including across a restart.
//!
//! The registry is process-global, so every test in this binary holds
//! [`serialized`]'s lock and clears the registry on exit.

use neats_core::failpoint;
use neats_ingest::{BackgroundConfig, FsyncPolicy, IngestConfig, Ingestor};
use neats_store::StoreError;
use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

static LOCK: Mutex<()> = Mutex::new(());

/// Serialises registry-touching tests and guarantees a clean registry on
/// both entry and exit (including panicking exits).
fn serialized() -> impl Drop {
    struct Guard(#[allow(dead_code)] MutexGuard<'static, ()>);
    impl Drop for Guard {
        fn drop(&mut self) {
            failpoint::clear_all();
        }
    }
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::clear_all();
    Guard(g)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("neats-idegr-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

fn small_cfg() -> IngestConfig {
    IngestConfig {
        chunk_points: 8,
        seal_points: 16,
        fsync: FsyncPolicy::Always,
        ..IngestConfig::default()
    }
}

/// Asserts the full oracle is served: `len` and `range` agree with `want`.
fn assert_points(ing: &Ingestor, series: &str, want: &[i64]) {
    assert_eq!(ing.len(series).unwrap(), want.len());
    let mut got = Vec::new();
    ing.range(series, 0..want.len(), &mut got).unwrap();
    assert_eq!(got, want);
}

/// ENOSPC (or any I/O error) at *every* step of the seal pipeline: the
/// seal fails, the ingestor degrades — reads keep serving, writes answer
/// the typed degraded error, nothing acked is lost — and once the disk
/// recovers, a retried seal restores full service with all points.
#[test]
fn fault_at_every_seal_step_degrades_then_recovers_with_zero_loss() {
    let _guard = serialized();
    // The seal pipeline in write order; arming any one site must produce
    // the same observable contract. (`wal.sync`/`dir.sync` are armed only
    // after the appends — FsyncPolicy::Always syncs during append too.)
    for site in ["seal.pack", "wal.create", "wal.sync", "manifest.commit", "dir.sync"] {
        let dir = tmp_dir(&format!("seal-{}", site.replace('.', "-")));
        let ing = Ingestor::open(&dir, small_cfg()).unwrap();
        let stamps: Vec<u64> = (1..=40).collect();
        let values: Vec<i64> = (1..=40).map(|k| k * 7 % 23 - 5).collect();
        ing.append("s", &stamps, &values).unwrap();

        failpoint::set(site, "err").unwrap();
        let err = ing.seal().expect_err(site);
        assert!(
            err.to_string().contains("injected failpoint"),
            "{site}: unexpected error {err}"
        );
        assert!(ing.is_degraded(), "{site}: seal fault must degrade");
        assert!(
            ing.degraded_reason().unwrap().contains(site),
            "{site}: reason must name the fault"
        );

        // Degraded is read-only, not down: every acked point still serves.
        assert_points(&ing, "s", &values);
        // Writes are refused with the typed error, and the refusal is
        // cheap — it must not touch the faulted disk again.
        let hits_before = failpoint::hits(site);
        match ing.append("s", &[100], &[1]) {
            Err(StoreError::Degraded { .. }) => {}
            other => panic!("{site}: degraded append answered {other:?}"),
        }
        assert_eq!(failpoint::hits(site), hits_before, "{site}: refused write hit the disk");

        // Disk recovers: one retry re-runs the seal and clears the degrade.
        failpoint::clear(site);
        assert!(ing.try_recover().unwrap(), "{site}: recovery must succeed");
        assert!(!ing.is_degraded());
        assert_eq!(ing.epoch(), 1, "{site}: recovery must complete the seal");
        assert_points(&ing, "s", &values);

        // Full service: appends land and survive a clean reopen.
        ing.append("s", &[1000], &[42]).unwrap();
        drop(ing);
        let ing = Ingestor::open(&dir, small_cfg()).unwrap();
        let mut want = values.clone();
        want.push(42);
        assert_points(&ing, "s", &want);
        drop(ing);
        fs::remove_dir_all(&dir).unwrap();
    }
}

/// A failed WAL append degrades the ingestor but loses nothing acked: the
/// in-memory state still equals the acked prefix (the head is only
/// advanced after the WAL write), recovery truncates the possibly-torn
/// tail (which needs no free space), and the repaired WAL replays the
/// exact acked prefix after a restart.
#[test]
fn wal_append_fault_preserves_acked_prefix_and_repairs() {
    let _guard = serialized();
    let dir = tmp_dir("wal-append");
    let ing = Ingestor::open(&dir, small_cfg()).unwrap();
    ing.append("s", &[1, 2, 3], &[10, 20, 30]).unwrap();

    failpoint::set("wal.append", "err").unwrap();
    let err = ing.append("s", &[4], &[40]).expect_err("armed append");
    assert!(matches!(err, StoreError::Degraded { .. }), "got {err}");
    assert!(ing.is_degraded());
    // The rejected batch is not half-visible anywhere.
    assert_points(&ing, "s", &[10, 20, 30]);

    failpoint::clear("wal.append");
    assert!(ing.try_recover().unwrap());
    assert!(!ing.is_degraded());
    ing.append("s", &[4, 5], &[40, 50]).unwrap();
    assert_points(&ing, "s", &[10, 20, 30, 40, 50]);

    // The repaired WAL replays cleanly: acked state, nothing else.
    drop(ing);
    let ing = Ingestor::open(&dir, small_cfg()).unwrap();
    assert_points(&ing, "s", &[10, 20, 30, 40, 50]);
    drop(ing);
    fs::remove_dir_all(&dir).unwrap();
}

/// A WAL-repair fault keeps the ingestor degraded (recovery is itself
/// retryable) instead of panicking or silently clearing.
#[test]
fn failed_recovery_stays_degraded() {
    let _guard = serialized();
    let dir = tmp_dir("bad-repair");
    let ing = Ingestor::open(&dir, small_cfg()).unwrap();
    ing.append("s", &[1], &[1]).unwrap();

    failpoint::set("wal.append", "err").unwrap();
    assert!(ing.append("s", &[2], &[2]).is_err());
    failpoint::clear("wal.append");

    failpoint::set("wal.repair", "err").unwrap();
    assert!(ing.try_recover().is_err(), "repair fault must surface");
    assert!(ing.is_degraded(), "failed recovery must stay degraded");

    failpoint::clear("wal.repair");
    assert!(ing.try_recover().unwrap());
    assert!(!ing.is_degraded());
    ing.append("s", &[2], &[2]).unwrap();
    assert_points(&ing, "s", &[1, 2]);
    drop(ing);
    fs::remove_dir_all(&dir).unwrap();
}

/// The background worker rides out a transient seal fault on its backoff
/// schedule: the ingestor degrades when the fault fires, keeps serving
/// reads, and self-heals — no restart, no manual recovery — once the
/// fault window (`err*2`: exactly two failures) passes.
#[test]
fn background_retry_auto_recovers_from_transient_seal_fault() {
    let _guard = serialized();
    let dir = tmp_dir("bg-retry");
    let ing = Arc::new(Ingestor::open(&dir, small_cfg()).unwrap());
    // Two failures, then the "disk" heals: attempt 1 (the threshold seal)
    // and attempt 2 (the first recovery retry) fail, attempt 3 succeeds.
    failpoint::set("seal.pack", "err*2").unwrap();

    let bg = ing.start_background(BackgroundConfig {
        interval: Duration::from_millis(10),
        retry_base: Duration::from_millis(10),
        retry_cap: Duration::from_millis(50),
    });
    // Cross the seal threshold (seal_points = 16 chunked points).
    let stamps: Vec<u64> = (1..=64).collect();
    let values: Vec<i64> = (1..=64).map(|k| k % 9 - 4).collect();
    ing.append("s", &stamps, &values).unwrap();

    let deadline = Instant::now() + Duration::from_secs(20);
    while (ing.epoch() == 0 || ing.is_degraded()) && Instant::now() < deadline {
        // Reads must serve throughout the degraded window.
        assert_points(&ing, "s", &values);
        std::thread::sleep(Duration::from_millis(5));
    }
    bg.stop();
    assert_eq!(failpoint::hits("seal.pack"), 3, "two failures + the successful retry");
    assert!(!ing.is_degraded(), "backoff retry must clear the degrade");
    assert!(ing.epoch() >= 1, "the retried seal must commit");
    assert!(ing.background_errors() >= 2, "both failures must be counted");
    assert_points(&ing, "s", &values);
    drop(ing);
    fs::remove_dir_all(&dir).unwrap();
}

/// Satellite: the commit point is the manifest rename. A fault at the
/// rename (or the directory fsync sealing it) aborts the seal with the old
/// generation intact — and a *restart* in that state recovers every acked
/// point from the old WAL, then seals successfully.
#[test]
fn commit_point_survives_manifest_fault_across_restart() {
    let _guard = serialized();
    for site in ["manifest.commit", "dir.sync"] {
        let dir = tmp_dir(&format!("commit-{}", site.replace('.', "-")));
        let stamps: Vec<u64> = (1..=30).collect();
        let values: Vec<i64> = (1..=30).map(|k| k * 11 % 31).collect();
        {
            let ing = Ingestor::open(&dir, small_cfg()).unwrap();
            ing.append("s", &stamps, &values).unwrap();
            failpoint::set(site, "err").unwrap();
            assert!(ing.seal().is_err(), "{site}");
            assert!(ing.is_degraded(), "{site}");
            failpoint::clear(site);
            // Crash here: the process dies while degraded, mid-seal.
        }
        let ing = Ingestor::open(&dir, small_cfg()).unwrap();
        assert_eq!(ing.epoch(), 0, "{site}: failed seal must not commit");
        assert!(!ing.is_degraded(), "{site}: degradation is not persistent state");
        assert_points(&ing, "s", &values);
        assert_eq!(ing.seal().unwrap(), 1, "{site}: reopened directory must seal");
        assert_points(&ing, "s", &values);
        drop(ing);
        fs::remove_dir_all(&dir).unwrap();
    }
}
