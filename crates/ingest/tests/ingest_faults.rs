//! Fault-injection suite: the crash-recovery matrix.
//!
//! Three layers, increasingly end-to-end:
//!
//! 1. A WAL writer driven against [`FailpointFile`] — kill budgets and
//!    dropped fsyncs — with **every** crash image the model admits replayed.
//!    Recovery must be prefix-consistent at record granularity, must keep
//!    every record written before the last effective sync barrier, and must
//!    never invent data.
//! 2. A real on-disk ingest directory whose WAL is cut at **every byte
//!    boundary** before reopening the [`Ingestor`]: each recovered state is
//!    exactly the acked-batch prefix the cut admits, queries agree with the
//!    oracle over that prefix, and under `FsyncPolicy::Always` no cut at or
//!    past an ack point ever loses that batch.
//! 3. Exhaustive single-byte corruption (all 8 bit flips per byte) of a
//!    recorded WAL: every flip is either rejected (header) or truncates
//!    replay cleanly at a record boundary before the flip.
//!
//! Plus the seal/compact commit protocol: stray next-generation files and a
//! stale `MANIFEST.tmp` are swept on open, and a damaged `MANIFEST` is a
//! hard, clean error.

use neats_ingest::wal::{self, encode_record, header_bytes, WalOp, WAL_HEADER_LEN};
use neats_ingest::{FailpointFile, FsyncPolicy, IngestConfig, Ingestor};
use neats_store::StoreError;
use std::fs;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("neats-ifault-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

/// Deterministic op sequence: interleaved appends over two series plus a
/// delete, with irregular stamps and walk values.
fn script() -> Vec<WalOp> {
    let mut x = 0x243F_6A88_85A3_08D3u64;
    let mut rng = move || {
        x = x.wrapping_mul(0xD129_0247_3F89_4E1D).wrapping_add(0x9E37_79B9);
        x
    };
    let mut t = [100u64, 500];
    let mut v = [0i64, -40];
    let mut ops = Vec::new();
    for i in 0..12 {
        if i == 7 {
            ops.push(WalOp::Delete { series: "beta".into() });
            t[1] = 500;
            v[1] = -40;
            continue;
        }
        // First two ops seed both series so the scripted delete has a target.
        let s = if i < 2 { i } else { (rng() % 2) as usize };
        let n = 1 + (rng() % 9) as usize;
        let mut stamps = Vec::with_capacity(n);
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            t[s] += 1 + rng() % 17;
            v[s] += (rng() % 31) as i64 - 15;
            stamps.push(t[s]);
            values.push(v[s]);
        }
        ops.push(WalOp::Append {
            series: if s == 0 { "alpha".into() } else { "beta".into() },
            stamps,
            values,
        });
    }
    ops
}

/// Drives the WAL byte protocol against a [`FailpointFile`] under `policy`:
/// header, then records, with sync barriers where the policy places them.
/// Returns the file and, per op, whether its record was fully written and
/// whether it was "acked durable" (a sync barrier took effect at or after
/// it).
fn drive_wal(mut file: FailpointFile, policy: FsyncPolicy, ops: &[WalOp]) -> (FailpointFile, Vec<bool>) {
    file.write(&header_bytes());
    file.sync();
    let mut durable = vec![false; ops.len()];
    let mut unsynced = 0u64;
    for (i, op) in ops.iter().enumerate() {
        if !file.write(&encode_record(op)) {
            break;
        }
        let written = i + 1;
        unsynced += 1;
        let want_sync = match policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => unsynced >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if want_sync && file.sync() {
            for d in durable.iter_mut().take(written) {
                *d = true;
            }
            unsynced = 0;
        }
    }
    (file, durable)
}

/// Record end offsets of the scripted WAL image (offset after header, then
/// after each record).
fn record_ends(ops: &[WalOp]) -> Vec<usize> {
    let mut ends = vec![WAL_HEADER_LEN];
    for op in ops {
        ends.push(ends.last().unwrap() + encode_record(op).len());
    }
    ends
}

/// Every crash image of a faulted WAL writer recovers a record prefix, keeps
/// everything durable, and invents nothing — across fsync policies and kill
/// budgets landing on and around every record boundary.
#[test]
fn crash_matrix_over_every_budget_and_policy() {
    let ops = script();
    let full_len = *record_ends(&ops).last().unwrap();
    let policies =
        [FsyncPolicy::Always, FsyncPolicy::EveryN(3), FsyncPolicy::Never];
    // Budgets: every record boundary, one byte either side, and a spread of
    // interior cuts — the write that crosses the budget tears mid-record.
    let mut budgets: Vec<usize> = Vec::new();
    for &b in &record_ends(&ops) {
        budgets.extend([b.saturating_sub(1), b, b + 1]);
    }
    budgets.extend((0..full_len).step_by(7));
    budgets.push(full_len + 64);

    for policy in policies {
        for &budget in &budgets {
            let (file, durable) = drive_wal(FailpointFile::kill_after(budget), policy, &ops);
            let ends = record_ends(&ops);
            for image in file.crash_images() {
                let (got, valid) = wal::replay(image).expect("scripted image never has a bad header beyond torn");
                // Prefix-consistent: exactly the records the image contains.
                assert!(got.len() <= ops.len());
                assert_eq!(got, ops[..got.len()], "policy {policy:?} budget {budget}");
                // Truncation lands on a record boundary.
                assert_eq!(valid, if got.is_empty() { if image.len() < WAL_HEADER_LEN { 0 } else { WAL_HEADER_LEN } } else { ends[got.len()] });
                // Durability: every record acked behind an effective sync
                // barrier survives in every admissible image.
                let durable_count = durable.iter().filter(|&&d| d).count();
                assert!(
                    got.len() >= durable_count,
                    "policy {policy:?} budget {budget}: lost a durable record \
                     ({} < {durable_count}) in an image of {} bytes",
                    got.len(),
                    image.len(),
                );
            }
        }
    }
}

/// Dropped fsyncs (a lying disk): nothing past the header barrier is
/// guaranteed, but every admissible image still recovers cleanly.
#[test]
fn dropped_fsyncs_still_recover_every_image() {
    let ops = script();
    let (file, durable) = drive_wal(
        FailpointFile::new().dropping_syncs(),
        FsyncPolicy::Always,
        &ops,
    );
    assert!(durable.iter().all(|&d| !d), "no ack may count as durable");
    assert_eq!(file.synced_len(), 0);
    let mut seen_empty = false;
    let mut seen_all = false;
    for image in file.crash_images() {
        let (got, _) = if image.len() < WAL_HEADER_LEN {
            (Vec::new(), 0)
        } else {
            wal::replay(image).unwrap()
        };
        assert_eq!(got, ops[..got.len()]);
        seen_empty |= got.is_empty();
        seen_all |= got.len() == ops.len();
    }
    assert!(seen_empty && seen_all, "the image sweep must span nothing → everything");
}

/// Oracle for the scripted ops: per-series points after applying a prefix.
fn apply_prefix(ops: &[WalOp]) -> Vec<(String, Vec<(u64, i64)>)> {
    let mut out: Vec<(String, Vec<(u64, i64)>)> = Vec::new();
    for op in ops {
        match op {
            WalOp::Append { series, stamps, values } => {
                let e = match out.iter_mut().find(|(n, _)| n == series) {
                    Some((_, pts)) => pts,
                    None => {
                        out.push((series.clone(), Vec::new()));
                        &mut out.last_mut().unwrap().1
                    }
                };
                e.extend(stamps.iter().zip(values).map(|(&t, &v)| (t, v)));
            }
            WalOp::Delete { series } => out.retain(|(n, _)| n != series),
        }
    }
    out
}

/// End-to-end: a real directory whose WAL is truncated at every byte before
/// reopening. Each reopen recovers exactly the batch prefix the cut admits
/// and answers queries accordingly; an ack under `Always` is never lost at
/// any cut at or past its record end.
#[test]
fn every_wal_cut_reopens_to_the_acked_prefix() {
    let dir = tmp_dir("cuts");
    let ops = script();
    let cfg = IngestConfig { fsync: FsyncPolicy::Always, ..IngestConfig::default() };
    {
        let ing = Ingestor::open(&dir, cfg.clone()).unwrap();
        for op in &ops {
            match op {
                WalOp::Append { series, stamps, values } => {
                    ing.append(series, stamps, values).unwrap()
                }
                WalOp::Delete { series } => ing.delete(series).unwrap(),
            }
        }
    }
    let wal_path = dir.join("wal-000000.log");
    let full = fs::read(&wal_path).unwrap();
    let ends = record_ends(&ops);
    assert_eq!(*ends.last().unwrap(), full.len(), "scripted image must match the real WAL");

    for cut in 0..=full.len() {
        fs::write(&wal_path, &full[..cut]).unwrap();
        let ing = Ingestor::open(&dir, cfg.clone())
            .unwrap_or_else(|e| panic!("cut {cut}: reopen failed: {e}"));
        // A cut inside the header rewrites the WAL: zero records kept.
        let keep = ends.iter().take_while(|&&e| e <= cut).count().saturating_sub(1);
        let oracle = apply_prefix(&ops[..keep]);
        let mut names: Vec<String> = oracle.iter().map(|(n, _)| n.clone()).collect();
        names.sort_unstable();
        assert_eq!(ing.series_names(), names, "cut {cut}");
        for (name, pts) in &oracle {
            assert_eq!(ing.len(name).unwrap(), pts.len(), "cut {cut} len({name})");
            let mut got = Vec::new();
            ing.range(name, 0..pts.len(), &mut got).unwrap();
            let want: Vec<i64> = pts.iter().map(|&(_, v)| v).collect();
            assert_eq!(got, want, "cut {cut} range({name})");
            if let Some(&(t_last, v_last)) = pts.last() {
                assert_eq!(ing.timestamp(name, pts.len() - 1).unwrap(), t_last);
                assert_eq!(ing.at_time(name, t_last).unwrap(), Some(v_last));
            }
        }
        // No phantom series, no phantom points past the oracle.
        assert_eq!(ing.total_points(), oracle.iter().map(|(_, p)| p.len()).sum::<usize>());
    }
    fs::remove_dir_all(&dir).unwrap();
}

/// Satellite: exhaustive per-byte corruption. Every single-byte flip (all 8
/// bits) of a recorded WAL is rejected at replay or truncates at a record
/// boundary strictly before any record containing the flip.
#[test]
fn every_single_byte_flip_rejects_or_truncates_at_a_boundary() {
    let ops = script();
    let mut image = header_bytes().to_vec();
    for op in &ops {
        image.extend_from_slice(&encode_record(op));
    }
    let ends = record_ends(&ops);
    for pos in 0..image.len() {
        for bit in 0..8 {
            let mut bad = image.clone();
            bad[pos] ^= 1 << bit;
            match wal::replay(&bad) {
                Err(StoreError::Corrupt(_)) => {
                    assert!(pos < WAL_HEADER_LEN, "hard rejection outside the header (byte {pos})");
                }
                Err(e) => panic!("unexpected error class at byte {pos} bit {bit}: {e}"),
                Ok((got, valid)) => {
                    // The flip lives in record `hit` (or the header); replay
                    // must stop before consuming it.
                    let hit = ends.iter().take_while(|&&e| e <= pos).count() - 1;
                    assert!(
                        got.len() <= hit,
                        "byte {pos} bit {bit}: replay consumed record {} containing the flip",
                        got.len() - 1,
                    );
                    assert_eq!(got, ops[..got.len()], "byte {pos} bit {bit}: prefix mismatch");
                    assert_eq!(valid, ends[got.len()], "byte {pos} bit {bit}: off-boundary cut");
                }
            }
        }
    }
}

/// The commit protocol's failure windows: stray next-generation files (a
/// seal that died before its manifest rename) and a stale `MANIFEST.tmp`
/// are swept on open; the committed generation is untouched.
#[test]
fn interrupted_seal_leftovers_are_swept() {
    let dir = tmp_dir("sweep");
    let cfg = IngestConfig { chunk_points: 8, ..IngestConfig::default() };
    let stamps: Vec<u64> = (1..=40).collect();
    let values: Vec<i64> = (1..=40).map(|k| k * 3 % 17).collect();
    {
        let ing = Ingestor::open(&dir, cfg.clone()).unwrap();
        ing.append("s", &stamps, &values).unwrap();
        ing.seal().unwrap();
        ing.append("s", &[100, 101], &[7, 8]).unwrap();
    }
    // A crashed follow-up seal: next-generation pack/WAL exist, manifest
    // still names epoch 1. Plus a stale tmp manifest.
    fs::write(dir.join("pack-000002.pack"), b"half-written garbage").unwrap();
    fs::write(dir.join("wal-000002.log"), b"torn").unwrap();
    fs::write(dir.join("MANIFEST.tmp"), b"stale").unwrap();

    let ing = Ingestor::open(&dir, cfg.clone()).unwrap();
    assert_eq!(ing.epoch(), 1);
    assert_eq!(ing.len("s").unwrap(), 42);
    let mut got = Vec::new();
    ing.range("s", 0..42, &mut got).unwrap();
    let mut want = values.clone();
    want.extend([7, 8]);
    assert_eq!(got, want);
    drop(ing);
    assert!(!dir.join("pack-000002.pack").exists(), "stray pack not swept");
    assert!(!dir.join("wal-000002.log").exists(), "stray wal not swept");
    assert!(!dir.join("MANIFEST.tmp").exists(), "stale tmp manifest not swept");
    fs::remove_dir_all(&dir).unwrap();
}

/// A damaged `MANIFEST` is a hard, clean error (the commit protocol never
/// leaves one behind), as is a WAL with a foreign header.
#[test]
fn damaged_manifest_or_foreign_wal_fail_cleanly() {
    let dir = tmp_dir("damaged");
    {
        let ing = Ingestor::open(&dir, IngestConfig::default()).unwrap();
        ing.append("s", &[1, 2, 3], &[9, 9, 9]).unwrap();
    }
    let manifest = dir.join("MANIFEST");
    let good = fs::read(&manifest).unwrap();
    let mut bad = good.clone();
    bad[good.len() / 2] ^= 0x10;
    fs::write(&manifest, &bad).unwrap();
    assert!(matches!(
        Ingestor::open(&dir, IngestConfig::default()),
        Err(StoreError::Corrupt(_))
    ));
    fs::write(&manifest, &good).unwrap();

    // Foreign WAL header: wrong magic is "wrong file", not a torn write.
    let wal_path = dir.join("wal-000000.log");
    let mut wal_bytes = fs::read(&wal_path).unwrap();
    wal_bytes[3] ^= 0xFF;
    fs::write(&wal_path, &wal_bytes).unwrap();
    assert!(matches!(
        Ingestor::open(&dir, IngestConfig::default()),
        Err(StoreError::Corrupt(_))
    ));
    fs::remove_dir_all(&dir).unwrap();
}
