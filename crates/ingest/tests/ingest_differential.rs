//! Differential replay oracle: property-generated interleaved traces of
//! `append` / `delete` / `seal` / `flush` / `compact` run against a live
//! [`Ingestor`] and a trivial `Vec`-backed reference model in lockstep.
//! After every step the full query battery must agree with the model;
//! at the end the directory is reopened (recovery path) and re-verified,
//! then the same battery runs from 1, 2, and 4 concurrent reader threads
//! on the final state — answers must be bit-identical to the model from
//! every thread.

use neats_ingest::{FsyncPolicy, IngestConfig, Ingestor};
use neats_store::StoreError;
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// The reference model: live series in first-append order, each an exact
/// `(stamp, value)` column pair. Deletes remove the series; re-appending
/// re-inserts it at the end — mirroring the ingestor's catalog semantics.
#[derive(Default)]
struct Model {
    series: Vec<(String, Vec<(u64, i64)>)>,
}

impl Model {
    fn entry(&mut self, name: &str) -> &mut Vec<(u64, i64)> {
        if let Some(i) = self.series.iter().position(|(n, _)| n == name) {
            &mut self.series[i].1
        } else {
            self.series.push((name.to_string(), Vec::new()));
            &mut self.series.last_mut().unwrap().1
        }
    }

    fn get(&self, name: &str) -> Option<&Vec<(u64, i64)>> {
        self.series.iter().find(|(n, _)| n == name).map(|(_, p)| p)
    }

    fn last_stamp(&self, name: &str) -> Option<u64> {
        self.get(name).and_then(|p| p.last().map(|&(t, _)| t))
    }
}

/// One generated trace step.
#[derive(Clone, Copy, Debug)]
enum Step {
    /// Append `count` points to series `sid` with stamp gaps seeded by `x`.
    Append { sid: usize, count: usize, x: u64 },
    Delete { sid: usize },
    Seal,
    Flush,
    Compact,
}

fn decode_step(kind: u8, a: u16, x: u64) -> Step {
    let sid = (a % 4) as usize;
    match kind % 12 {
        0..=6 => Step::Append { sid, count: 1 + (a as usize % 40), x },
        7 | 8 => Step::Delete { sid },
        9 => Step::Seal,
        10 => Step::Flush,
        _ => Step::Compact,
    }
}

fn series_name(sid: usize) -> String {
    format!("s{sid}")
}

/// Full query battery: every answer the ingestor gives must equal the
/// model's. `probe` seeds the range/time probes deterministically.
fn check(ing: &Ingestor, model: &Model, probe: u64) {
    let mut names: Vec<String> = model.series.iter().map(|(n, _)| n.clone()).collect();
    names.sort_unstable();
    assert_eq!(ing.series_names(), names, "series_names");
    assert_eq!(ing.series_count(), names.len());
    let mut total = 0usize;
    let mut x = probe | 1;
    let mut rng = move || {
        x = x.wrapping_mul(0xD129_0247_3F89_4E1D).wrapping_add(0x9E37_79B9);
        x
    };
    for (name, pts) in &model.series {
        let n = pts.len();
        total += n;
        assert_eq!(ing.len(name).unwrap(), n, "len({name})");
        // Full columns.
        let mut vals = Vec::new();
        ing.range(name, 0..n, &mut vals).unwrap();
        let want: Vec<i64> = pts.iter().map(|&(_, v)| v).collect();
        assert_eq!(vals, want, "range({name}, full)");
        // Point probes: first, last, and a few interior.
        for _ in 0..4 {
            let k = (rng() % n as u64) as usize;
            assert_eq!(ing.get(name, k).unwrap(), pts[k].1, "get({name}, {k})");
            assert_eq!(ing.timestamp(name, k).unwrap(), pts[k].0, "timestamp({name}, {k})");
            assert_eq!(ing.at_time(name, pts[k].0).unwrap(), Some(pts[k].1));
        }
        assert!(matches!(
            ing.get(name, n),
            Err(StoreError::OutOfRange { .. })
        ));
        // Sub-range aggregates.
        let a = (rng() % (n as u64 + 1)) as usize;
        let b = a + (rng() % (n - a + 1) as u64) as usize;
        let want_sum: i128 = pts[a..b].iter().map(|&(_, v)| v as i128).sum();
        assert_eq!(ing.sum(name, a..b).unwrap(), want_sum, "sum({name}, {a}..{b})");
        let want_mm = pts[a..b].iter().fold(None, |acc: Option<(i64, i64)>, &(_, v)| {
            Some(acc.map_or((v, v), |(lo, hi)| (lo.min(v), hi.max(v))))
        });
        assert_eq!(ing.min_max(name, a..b).unwrap(), want_mm, "min_max({name}, {a}..{b})");
        // Time-window scan spanning the sealed↔head boundary (full span
        // plus a random interior window), and gap probes.
        let mut got = Vec::new();
        ing.range_by_time(name, 0, u64::MAX, &mut got).unwrap();
        assert_eq!(&got, pts, "range_by_time({name}, full)");
        if b > a {
            let (t_lo, t_hi) = (pts[a].0, pts[b - 1].0);
            got.clear();
            ing.range_by_time(name, t_lo, t_hi, &mut got).unwrap();
            assert_eq!(got, pts[a..b], "range_by_time({name}, [{t_lo}, {t_hi}])");
            assert_eq!(
                ing.at_time(name, t_hi + 1).unwrap(),
                pts.iter().find(|&&(t, _)| t == t_hi + 1).map(|&(_, v)| v),
                "at_time gap probe"
            );
        }
    }
    assert_eq!(ing.total_points(), total, "total_points");
    // Unknown series behave identically everywhere.
    assert!(matches!(ing.len("no-such"), Err(StoreError::UnknownSeries(_))));
    assert!(matches!(ing.at_time("no-such", 1), Err(StoreError::UnknownSeries(_))));
}

fn run_trace(steps: &[Step], chunk_points: usize, dir_tag: u64) {
    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "neats-idiff-{dir_tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed),
    ));
    let _ = fs::remove_dir_all(&dir);
    // `Never` keeps the trace fast; durability is the fault suite's topic —
    // here the process stays alive, so replay correctness is unaffected.
    let cfg = IngestConfig {
        chunk_points,
        seal_points: chunk_points * 2,
        fsync: FsyncPolicy::Never,
        ..IngestConfig::default()
    };
    let ing = Ingestor::open(&dir, cfg.clone()).unwrap();
    let mut model = Model::default();

    for (i, step) in steps.iter().enumerate() {
        match *step {
            Step::Append { sid, count, x } => {
                let name = series_name(sid);
                let mut t = model.last_stamp(&name).unwrap_or(1_000 * sid as u64);
                let mut v = (x as i64) % 1000;
                let mut seed = x | 1;
                let mut rng = move || {
                    seed = seed.wrapping_mul(0xD129_0247_3F89_4E1D).wrapping_add(0x9E37_79B9);
                    seed
                };
                let mut stamps = Vec::with_capacity(count);
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    t += 1 + rng() % 9;
                    v += (rng() % 41) as i64 - 20;
                    stamps.push(t);
                    values.push(v);
                }
                ing.append(&name, &stamps, &values).unwrap();
                model.entry(&name).extend(stamps.iter().zip(&values).map(|(&t, &v)| (t, v)));
            }
            Step::Delete { sid } => {
                let name = series_name(sid);
                let known = model.get(&name).is_some();
                let got = ing.delete(&name);
                if known {
                    got.unwrap();
                    model.series.retain(|(n, _)| n != &name);
                } else {
                    assert!(matches!(got, Err(StoreError::UnknownSeries(_))));
                }
            }
            Step::Seal => {
                ing.seal().unwrap();
            }
            Step::Flush => {
                ing.flush().unwrap();
            }
            Step::Compact => {
                ing.compact().unwrap();
            }
        }
        check(&ing, &model, i as u64 + 1);
    }

    // Recovery path: drop and reopen, then verify again.
    drop(ing);
    let ing = Ingestor::open(&dir, cfg).unwrap();
    check(&ing, &model, 0xC0FFEE);

    // Reader-thread fan-out on the final state: 1, 2, and 4 threads run the
    // battery concurrently; every thread must get model-identical answers.
    for threads in [1usize, 2, 4] {
        std::thread::scope(|scope| {
            for tid in 0..threads {
                let ing = &ing;
                let model = &model;
                scope.spawn(move || check(ing, model, 0xBEEF ^ tid as u64));
            }
        });
    }
    drop(ing);
    fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The live ingestor equals the Vec model after every step of a random
    /// interleaved trace, after recovery, and from concurrent readers.
    #[test]
    fn trace_equals_model(
        raw in prop::collection::vec((0u8..=255, 0u16..=999, 1u64..u64::MAX), 5..45),
        chunk_idx in 0usize..3,
    ) {
        let steps: Vec<Step> =
            raw.iter().map(|&(k, a, x)| decode_step(k, a, x)).collect();
        // Tiny chunks exercise chunk rolls and multi-segment seals; the
        // larger size keeps whole traces in the raw tail.
        let chunk_points = [8usize, 32, 512][chunk_idx];
        run_trace(&steps, chunk_points, raw.len() as u64);
    }

    /// Dense mutation mix: short appends with frequent seal/flush/compact,
    /// so generation swaps happen between most steps.
    #[test]
    fn churny_trace_equals_model(
        raw in prop::collection::vec((7u8..=11, 0u16..=99, 1u64..u64::MAX), 8..30),
    ) {
        let steps: Vec<Step> = raw
            .iter()
            .enumerate()
            .map(|(i, &(k, a, x))| {
                if i % 2 == 0 {
                    // Every other step appends so there is data to churn.
                    Step::Append { sid: (a % 3) as usize, count: 1 + (a as usize % 12), x }
                } else {
                    decode_step(k, a, x)
                }
            })
            .collect();
        run_trace(&steps, 8, 0x5EED ^ raw.len() as u64);
    }
}
