//! The `MANIFEST` file: which pack and WAL are live, committed atomically.
//!
//! Layout (wire conventions, then a trailing CRC):
//!
//! ```text
//! u64   magic     "NeaTSMAN"
//! u64   version   1
//! u64   epoch     generation counter, bumped by seal/compact
//! bytes pack      file name of the live pack (length-prefixed UTF-8)
//! bytes wal       file name of the live WAL
//! u64   crc       CRC-64/XZ of all preceding bytes
//! ```
//!
//! [`Manifest::write_to`] writes `MANIFEST.tmp`, syncs it, renames it over
//! `MANIFEST`, and syncs the directory. The rename is the commit point: a
//! crash before it leaves the old manifest (and the old pack + WAL, which
//! are never modified in place); a crash after it leaves the new one. Any
//! other corruption of the manifest is a hard error — unlike a torn WAL
//! tail, a damaged manifest means the commit protocol was violated.

use neats_store::StoreError;
use std::fs::{self, File};
use std::io::Write;
use std::path::Path;
use succinct::{crc64, WireReader, WireWriter};

/// `"NeaTSMAN"` as a little-endian u64.
pub const MANIFEST_MAGIC: u64 = u64::from_le_bytes(*b"NeaTSMAN");
/// Current manifest format version.
pub const MANIFEST_VERSION: u64 = 1;
/// The manifest file name inside an ingest directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
const MANIFEST_TMP: &str = "MANIFEST.tmp";

/// The decoded manifest: the live generation's file names.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Generation counter (fresh directories start at 0).
    pub epoch: u64,
    /// File name of the live pack, relative to the ingest directory.
    pub pack: String,
    /// File name of the live WAL, relative to the ingest directory.
    pub wal: String,
}

/// Canonical pack file name for a generation.
pub fn pack_name(epoch: u64) -> String {
    format!("pack-{epoch:06}.pack")
}

/// Canonical WAL file name for a generation.
pub fn wal_name(epoch: u64) -> String {
    format!("wal-{epoch:06}.log")
}

/// Best-effort `fsync` of a directory so a rename or create is durable.
pub(crate) fn sync_dir(dir: &Path) -> std::io::Result<()> {
    if neats_core::failpoint::triggered("dir.sync") {
        return Err(neats_core::failpoint::io_error("dir.sync"));
    }
    // Directory fsync is a POSIX-ism; *opening* may fail on exotic
    // filesystems, in which case the rename is still ordered by the
    // file-level syncs around it. A failed `sync_all` on an opened
    // directory handle is a real durability fault though — a rename that
    // never reaches the directory block can roll back on power loss — so
    // it must propagate to the caller instead of being swallowed.
    match File::open(dir) {
        Ok(d) => d.sync_all(),
        Err(_) => Ok(()),
    }
}

impl Manifest {
    /// Serialises the manifest (including the trailing CRC).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u64(MANIFEST_MAGIC);
        w.u64(MANIFEST_VERSION);
        w.u64(self.epoch);
        w.bytes(self.pack.as_bytes());
        w.bytes(self.wal.as_bytes());
        let crc = crc64(w.as_slice());
        w.u64(crc);
        w.finish()
    }

    /// Parses and validates a manifest image.
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < 8 {
            return Err(StoreError::Corrupt("manifest: truncated"));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let crc = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
        if crc64(body) != crc {
            return Err(StoreError::Corrupt("manifest: checksum mismatch"));
        }
        let mut r = WireReader::new(body);
        if r.u64()? != MANIFEST_MAGIC {
            return Err(StoreError::Corrupt("manifest: bad magic"));
        }
        if r.u64()? != MANIFEST_VERSION {
            return Err(StoreError::Corrupt("manifest: unsupported version"));
        }
        let epoch = r.u64()?;
        let pack = String::from_utf8(r.bytes()?)
            .map_err(|_| StoreError::Corrupt("manifest: pack name not UTF-8"))?;
        let wal = String::from_utf8(r.bytes()?)
            .map_err(|_| StoreError::Corrupt("manifest: wal name not UTF-8"))?;
        if pack.is_empty() || wal.is_empty() {
            return Err(StoreError::Corrupt("manifest: empty file name"));
        }
        if !r.is_exhausted() {
            return Err(StoreError::Corrupt("manifest: trailing bytes"));
        }
        Ok(Self { epoch, pack, wal })
    }

    /// Atomically installs this manifest in `dir` (tmp + fsync + rename +
    /// directory fsync). On return the new generation is committed.
    pub fn write_to(&self, dir: &Path) -> Result<(), StoreError> {
        if neats_core::failpoint::triggered("manifest.commit") {
            return Err(neats_core::failpoint::io_error("manifest.commit").into());
        }
        let tmp = dir.join(MANIFEST_TMP);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&self.encode())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, dir.join(MANIFEST_FILE))?;
        // The rename is the commit point, but it is only durable once the
        // directory block carrying it is on disk — a swallowed error here
        // would ack a generation that can vanish on power loss.
        sync_dir(dir)?;
        Ok(())
    }

    /// Reads the manifest from `dir`; `None` if the directory has none yet
    /// (a fresh directory). A stale `MANIFEST.tmp` from an interrupted
    /// commit is removed.
    pub fn read_from(dir: &Path) -> Result<Option<Self>, StoreError> {
        let _ = fs::remove_file(dir.join(MANIFEST_TMP));
        let path = dir.join(MANIFEST_FILE);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        Self::decode(&bytes).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_every_byte_flip_rejected() {
        let m = Manifest { epoch: 7, pack: pack_name(7), wal: wal_name(7) };
        let bytes = m.encode();
        assert_eq!(Manifest::decode(&bytes).unwrap(), m);
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[i] ^= 1 << bit;
                assert!(Manifest::decode(&bad).is_err(), "flip at byte {i} bit {bit} accepted");
            }
        }
        for cut in 0..bytes.len() {
            assert!(Manifest::decode(&bytes[..cut]).is_err(), "cut {cut} accepted");
        }
    }

    #[test]
    fn write_read_cycle() {
        let dir =
            std::env::temp_dir().join(format!("neats-manifest-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(Manifest::read_from(&dir).unwrap(), None);
        let m = Manifest { epoch: 1, pack: pack_name(1), wal: wal_name(1) };
        m.write_to(&dir).unwrap();
        assert_eq!(Manifest::read_from(&dir).unwrap(), Some(m.clone()));
        // A later manifest replaces it atomically.
        let m2 = Manifest { epoch: 2, ..m };
        m2.write_to(&dir).unwrap();
        assert_eq!(Manifest::read_from(&dir).unwrap(), Some(m2));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
