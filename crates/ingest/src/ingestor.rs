//! The [`Ingestor`]: live appends through the WAL into per-series heads,
//! generation-swapped sealing and compaction, and the stitched
//! sealed + head query surface.

use crate::head::Head;
use crate::manifest::{self, Manifest};
use crate::wal::{FsyncPolicy, Wal, WalOp};
use neats_core::{AtomicHistogram, NeaTSBuilder};
use neats_store::{
    CacheSharding, CacheStats, Store, StoreConfig, StoreError, StoreMode, StoreOptions, StoreWriter,
};
use std::collections::HashSet;
use std::fs;
use std::io::Write;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};
use timeseries::TimeSeries;

/// Configuration for an [`Ingestor`].
#[derive(Clone, Debug)]
pub struct IngestConfig {
    /// Points per compressed head chunk: the head's raw tail is compressed
    /// with the SNeaTS streaming pipeline whenever it reaches this size.
    pub chunk_points: usize,
    /// Background auto-seal threshold: seal when the compressed (chunked)
    /// head points across all series reach this count.
    pub seal_points: usize,
    /// When WAL appends are forced to disk (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
    /// The compression pipeline for head chunks and sealed segments.
    pub builder: NeaTSBuilder,
    /// Segment-view cache capacity of the sealed [`Store`] (see
    /// [`StoreOptions::cache_capacity`]).
    pub cache_capacity: usize,
    /// Shard policy of the sealed store's segment-view cache (see
    /// [`neats_store::CacheSharding`]): keyed by default; per-thread when
    /// a fixed serving pool should never contend on cache locks.
    pub cache_sharding: CacheSharding,
    /// Background compaction threshold: compact when dead bytes exceed this
    /// fraction of the pack.
    pub compact_dead_ratio: f64,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            chunk_points: 4096,
            seal_points: 16384,
            fsync: FsyncPolicy::Always,
            builder: neats_core::NeaTS::builder(),
            cache_capacity: 256,
            cache_sharding: CacheSharding::ByKey,
            compact_dead_ratio: 0.5,
        }
    }
}

/// Configuration for [`Ingestor::start_background`].
#[derive(Clone, Copy, Debug)]
pub struct BackgroundConfig {
    /// How often the worker checks the seal and compaction thresholds.
    pub interval: Duration,
    /// First retry delay after the ingestor enters degraded mode (the
    /// schedule doubles per failed retry, with jitter).
    pub retry_base: Duration,
    /// Cap on the degraded-mode retry delay.
    pub retry_cap: Duration,
}

impl Default for BackgroundConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(200),
            retry_base: Duration::from_millis(100),
            retry_cap: Duration::from_secs(5),
        }
    }
}

/// What tripped degraded mode — each kind has its own recovery action in
/// [`Ingestor::try_recover`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FaultKind {
    /// A WAL append failed: the file may carry a torn tail past the last
    /// acknowledged record. Recovery truncates it ([`Wal::repair`]) —
    /// which needs no free space, so it works under `ENOSPC` too.
    WalAppend,
    /// A seal (or flush) failed partway: the old generation is still the
    /// committed truth. Recovery retries the seal; its stepwise file
    /// writes recreate any strays from the failed attempt.
    Seal,
}

/// The typed read-only state: why writes are rejected, and what the
/// background worker should retry.
struct DegradedState {
    kind: FaultKind,
    reason: String,
}

/// One sealed generation: the epoch and its immutable pack view.
struct Generation {
    epoch: u64,
    store: Arc<Store>,
}

/// Everything readers snapshot: swapped as a unit under the write lock so
/// one read lock always yields a mutually consistent `(store, heads)`.
struct Shared {
    gen: Generation,
    /// Heads in first-ingest order. Replaced (not mutated in place) at each
    /// seal, so a reader's snapshot stays internally consistent forever.
    heads: Vec<(String, Arc<Mutex<Head>>)>,
    /// Series whose sealed data is hidden pending the next seal.
    tombstones: HashSet<String>,
}

impl Shared {
    fn head(&self, series: &str) -> Option<Arc<Mutex<Head>>> {
        self.heads
            .iter()
            .find(|(n, _)| n == series)
            .map(|(_, h)| h.clone())
    }
}

/// Mutator-side state, serialised by one mutex: the WAL handle and the
/// current generation's file names (for cleanup after a swap).
struct WriterState {
    wal: Wal,
    pack_file: String,
    wal_file: String,
}

fn lockm<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn lockr<'a, T>(l: &'a RwLock<T>) -> RwLockReadGuard<'a, T> {
    l.read().unwrap_or_else(|e| e.into_inner())
}

fn lockw<'a, T>(l: &'a RwLock<T>) -> RwLockWriteGuard<'a, T> {
    l.write().unwrap_or_else(|e| e.into_inner())
}

/// Writes `bytes` to `path` and syncs the file and its directory. The
/// directory sync must succeed for the write to count as durable — a new
/// file whose directory entry never reaches disk vanishes on power loss.
fn write_file_durable(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let mut f = fs::File::create(path)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    if let Some(dir) = path.parent() {
        manifest::sync_dir(dir)?;
    }
    Ok(())
}

/// A catalog-style summary of one live series (sealed + head).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeriesSummary {
    /// The series name.
    pub name: String,
    /// Storage mode of the sealed part ([`StoreMode::Lossless`] for
    /// head-only series — live ingestion is lossless).
    pub mode: StoreMode,
    /// Total points, sealed + head.
    pub points: usize,
    /// Sealed segments plus head chunks (a non-empty raw tail counts as
    /// one).
    pub segments: usize,
    /// First timestamp (0 for an empty series).
    pub t_min: u64,
    /// Last timestamp (0 for an empty series).
    pub t_max: u64,
}

/// Write-path instrumentation handles. The `Arc`s are shared with the WAL
/// (latency sinks) and the metrics registry (samples), so a `/metrics`
/// scrape reads the very atomics the hot path bumps.
#[derive(Default)]
struct IngestMetrics {
    wal_append_ns: Arc<AtomicHistogram>,
    wal_sync_ns: Arc<AtomicHistogram>,
    seal_ns: Arc<AtomicHistogram>,
    seals: Arc<AtomicU64>,
    compactions: Arc<AtomicU64>,
    degraded_transitions: Arc<AtomicU64>,
    replayed_ops: Arc<AtomicU64>,
    repairs: Arc<AtomicU64>,
}

/// A live, crash-safe, concurrently-readable ingestion directory.
///
/// See the crate docs for the architecture. All mutations (`append`,
/// `delete`, `seal`, `flush`, `compact`) serialise on one internal writer
/// mutex; queries never take it and never block on mutations beyond a
/// brief per-series head lock.
pub struct Ingestor {
    dir: PathBuf,
    cfg: IngestConfig,
    /// `cfg.builder` pinned to one thread: chunk compression runs on the
    /// single writer thread (output is thread-count-invariant anyway).
    builder: NeaTSBuilder,
    writer: Mutex<WriterState>,
    shared: RwLock<Shared>,
    background_errors: AtomicU64,
    /// `Some` while in read-only degraded mode (entered on WAL-append or
    /// seal I/O failures, cleared by a successful recovery). The flag
    /// mirrors `is_some()` so the append fast path never takes the lock.
    degraded: Mutex<Option<DegradedState>>,
    degraded_flag: AtomicBool,
    metrics: IngestMetrics,
}

impl Ingestor {
    fn store_cfg(&self) -> StoreConfig {
        StoreConfig {
            segment_points: neats_store::DEFAULT_SEGMENT_POINTS,
            builder: self.cfg.builder.clone(),
            mode: StoreMode::Lossless,
            threads: 1,
        }
    }

    fn store_opts(&self) -> StoreOptions {
        StoreOptions {
            cache_capacity: self.cfg.cache_capacity,
            cache_sharding: self.cfg.cache_sharding,
        }
    }

    /// Opens (or initialises) an ingest directory and recovers its state:
    /// the manifest names the live pack and WAL, the WAL is replayed into
    /// heads (truncating any torn suffix), and stray files from an
    /// interrupted seal are removed.
    pub fn open(dir: impl Into<PathBuf>, cfg: IngestConfig) -> Result<Self, StoreError> {
        assert!(cfg.chunk_points >= 1, "chunk_points must be at least 1");
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let manifest = match Manifest::read_from(&dir)? {
            Some(m) => m,
            None => {
                // Fresh directory: a sealed empty pack, an empty WAL, and
                // the manifest committing them as generation 0.
                let pack_file = manifest::pack_name(0);
                let wal_file = manifest::wal_name(0);
                let empty = StoreWriter::new(StoreConfig::default()).finish()?;
                write_file_durable(&dir.join(&pack_file), &empty)?;
                drop(Wal::create(dir.join(&wal_file), FsyncPolicy::Always)?);
                let m = Manifest {
                    epoch: 0,
                    pack: pack_file,
                    wal: wal_file,
                };
                m.write_to(&dir)?;
                m
            }
        };
        let pack_bytes = fs::read(dir.join(&manifest.pack))?;
        let store = Arc::new(Store::open_with(
            pack_bytes,
            StoreOptions {
                cache_capacity: cfg.cache_capacity,
                cache_sharding: cfg.cache_sharding,
            },
        )?);
        let (mut wal, ops) = Wal::open_replay(dir.join(&manifest.wal), cfg.fsync)?;
        let metrics = IngestMetrics::default();
        metrics
            .replayed_ops
            .store(ops.len() as u64, Ordering::Relaxed);
        wal.instrument(
            Arc::clone(&metrics.wal_append_ns),
            Arc::clone(&metrics.wal_sync_ns),
        );

        // Replay the WAL into heads. Points at or below a series' sealed
        // floor are already in the pack (defensive: the commit protocol
        // rotates the WAL with the pack, so overlap should not occur).
        let mut heads: Vec<(String, Arc<Mutex<Head>>)> = Vec::new();
        let mut tombstones: HashSet<String> = HashSet::new();
        for op in ops {
            match op {
                WalOp::Append {
                    series,
                    stamps,
                    values,
                } => {
                    let arc = match heads.iter().find(|(n, _)| n == &series) {
                        Some((_, h)) => h.clone(),
                        None => {
                            let sealed = (!tombstones.contains(&series))
                                .then(|| store.series(&series))
                                .flatten();
                            let (fi, floor) = sealed
                                .map(|e| (e.len(), Some(e.t_max())))
                                .unwrap_or((0, None));
                            let h = Arc::new(Mutex::new(Head::new(fi, floor)));
                            heads.push((series.clone(), h.clone()));
                            h
                        }
                    };
                    let mut head = lockm(&arc);
                    let from = match head.last_stamp() {
                        Some(f) => stamps.partition_point(|&t| t <= f),
                        None => 0,
                    };
                    if from < stamps.len() {
                        head.append(&stamps[from..], &values[from..]);
                    }
                }
                WalOp::Delete { series } => {
                    heads.retain(|(n, _)| n != &series);
                    if store.series(&series).is_some() {
                        tombstones.insert(series);
                    }
                }
            }
        }

        // Remove generation files the manifest does not name (left by a
        // seal or compact that crashed before its commit point).
        if let Ok(entries) = fs::read_dir(&dir) {
            for e in entries.flatten() {
                let name = e.file_name();
                let Some(name) = name.to_str() else { continue };
                if (name.starts_with("pack-") || name.starts_with("wal-"))
                    && name != manifest.pack
                    && name != manifest.wal
                {
                    let _ = fs::remove_file(e.path());
                }
            }
        }

        let builder = cfg.builder.clone().threads(1);
        let ing = Self {
            dir,
            builder,
            writer: Mutex::new(WriterState {
                wal,
                pack_file: manifest.pack.clone(),
                wal_file: manifest.wal.clone(),
            }),
            shared: RwLock::new(Shared {
                gen: Generation {
                    epoch: manifest.epoch,
                    store,
                },
                heads,
                tombstones,
            }),
            background_errors: AtomicU64::new(0),
            degraded: Mutex::new(None),
            degraded_flag: AtomicBool::new(false),
            metrics,
            cfg,
        };
        // Recovered heads may hold whole chunks' worth of raw points.
        ing.roll_all_heads();
        Ok(ing)
    }

    /// [`Self::open`] with [`IngestConfig::default`].
    pub fn open_default(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Self::open(dir, IngestConfig::default())
    }

    /// The directory this ingestor owns.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configuration the ingestor was opened with.
    pub fn config(&self) -> &IngestConfig {
        &self.cfg
    }

    // ------------------------------------------------------------------
    // Write path
    // ------------------------------------------------------------------

    /// Appends points to `series` (creating it on first sight). Timestamps
    /// must strictly increase within the batch and continue past the
    /// series' last timestamp. On `Ok`, the batch is in the WAL (durably,
    /// under [`FsyncPolicy::Always`]) and visible to queries; the batch is
    /// all-or-nothing. An empty batch is a no-op.
    pub fn append(&self, series: &str, stamps: &[u64], values: &[i64]) -> Result<(), StoreError> {
        if series.is_empty() {
            return Err(StoreError::EmptyName);
        }
        if stamps.len() != values.len() {
            return Err(StoreError::LengthMismatch {
                timestamps: stamps.len(),
                values: values.len(),
            });
        }
        if stamps.is_empty() {
            return Ok(());
        }
        // Fast-fail before any validation work; the authoritative check
        // happens again under the writer lock below.
        if self.degraded_flag.load(Ordering::SeqCst) {
            return Err(self.degraded_error());
        }
        for (i, w) in stamps.windows(2).enumerate() {
            if w[1] <= w[0] {
                return Err(StoreError::TimestampOrder {
                    series: series.to_string(),
                    index: i + 1,
                });
            }
        }

        let mut w = lockm(&self.writer);
        // Degraded mode is entered and cleared under this lock, so this
        // check is the authoritative one: while the mode holds, nothing
        // touches the WAL and acknowledged data cannot be disturbed.
        if self.degraded_flag.load(Ordering::SeqCst) {
            return Err(self.degraded_error());
        }
        // Resolve the ordering floor (and reject lossy sealed series)
        // before logging anything.
        let (existing, fi, floor) = {
            let s = lockr(&self.shared);
            match s.head(series) {
                Some(h) => {
                    let last = lockm(&h).last_stamp();
                    (Some(h), 0, last)
                }
                None => {
                    let sealed = (!s.tombstones.contains(series))
                        .then(|| s.gen.store.series(series))
                        .flatten();
                    if let Some(e) = sealed {
                        if e.mode() != StoreMode::Lossless {
                            return Err(StoreError::ModeMismatch {
                                series: series.to_string(),
                            });
                        }
                        (None, e.len(), Some(e.t_max()))
                    } else {
                        (None, 0, None)
                    }
                }
            }
        };
        if let Some(f) = floor {
            if stamps[0] <= f {
                return Err(StoreError::TimestampOrder {
                    series: series.to_string(),
                    index: 0,
                });
            }
        }

        // The WAL append precedes every head mutation, so a failure here
        // leaves the in-memory state exactly equal to the acknowledged
        // state: flip to degraded (read-only) and reject the batch. The
        // file may carry a torn tail; `try_recover` truncates it.
        if let Err(e) = w.wal.append(&WalOp::Append {
            series: series.to_string(),
            stamps: stamps.to_vec(),
            values: values.to_vec(),
        }) {
            self.enter_degraded(FaultKind::WalAppend, &e);
            return Err(self.degraded_error());
        }

        let arc = match existing {
            Some(h) => {
                lockm(&h).append(stamps, values);
                h
            }
            None => {
                // Build the head fully before publishing it, so readers
                // never observe an empty phantom series.
                let mut head = Head::new(fi, floor);
                head.append(stamps, values);
                let h = Arc::new(Mutex::new(head));
                lockw(&self.shared)
                    .heads
                    .push((series.to_string(), h.clone()));
                h
            }
        };
        self.roll_chunks(&arc);
        Ok(())
    }

    /// Deletes `series`: sealed data becomes invisible immediately (and is
    /// dropped from the pack at the next seal), the head is discarded. A
    /// later [`Self::append`] recreates the series from scratch.
    pub fn delete(&self, series: &str) -> Result<(), StoreError> {
        let mut w = lockm(&self.writer);
        let known = {
            let s = lockr(&self.shared);
            s.head(series).is_some()
                || (!s.tombstones.contains(series) && s.gen.store.series(series).is_some())
        };
        if !known {
            return Err(StoreError::UnknownSeries(series.to_string()));
        }
        if self.degraded_flag.load(Ordering::SeqCst) {
            return Err(self.degraded_error());
        }
        if let Err(e) = w.wal.append(&WalOp::Delete {
            series: series.to_string(),
        }) {
            self.enter_degraded(FaultKind::WalAppend, &e);
            return Err(self.degraded_error());
        }
        let mut s = lockw(&self.shared);
        s.heads.retain(|(n, _)| n != series);
        if s.gen.store.series(series).is_some() {
            s.tombstones.insert(series.to_string());
        }
        Ok(())
    }

    /// Compresses full `chunk_points`-sized slices of `head`'s raw tail into
    /// chunks. Compression runs outside the head lock, so readers are never
    /// blocked behind the compressor.
    fn roll_chunks(&self, head: &Arc<Mutex<Head>>) {
        loop {
            let Some(raw) = lockm(head).tail_prefix(self.cfg.chunk_points) else {
                return;
            };
            let chunk = self.builder.build(&TimeSeries::from_values(raw));
            lockm(head).install_chunk(chunk);
        }
    }

    fn roll_all_heads(&self) {
        let heads: Vec<Arc<Mutex<Head>>> = lockr(&self.shared)
            .heads
            .iter()
            .map(|(_, h)| h.clone())
            .collect();
        for h in &heads {
            self.roll_chunks(h);
        }
    }

    /// Seals every compressed head chunk (and pending deletes) into a new
    /// pack generation: segments move verbatim (no recompression), a
    /// rotated WAL re-logs only the raw tails, the `MANIFEST` rename
    /// commits, and the readers' view swaps. Returns the epoch afterwards
    /// (unchanged if there was nothing to seal).
    pub fn seal(&self) -> Result<u64, StoreError> {
        let mut w = lockm(&self.writer);
        self.seal_locked(&mut w)
            .inspect_err(|e| self.enter_degraded(FaultKind::Seal, e))
    }

    /// Force-compresses every raw tail into a (possibly short) chunk, then
    /// seals — afterwards the WAL is empty and every point is in the pack.
    pub fn flush(&self) -> Result<u64, StoreError> {
        let mut w = lockm(&self.writer);
        let heads: Vec<Arc<Mutex<Head>>> = lockr(&self.shared)
            .heads
            .iter()
            .map(|(_, h)| h.clone())
            .collect();
        for h in &heads {
            self.roll_chunks(h);
            let raw = {
                let g = lockm(h);
                let n = g.tail_len();
                g.tail_prefix(n)
            };
            if let Some(raw) = raw {
                let chunk = self.builder.build(&TimeSeries::from_values(raw));
                lockm(h).install_chunk(chunk);
            }
        }
        self.seal_locked(&mut w)
            .inspect_err(|e| self.enter_degraded(FaultKind::Seal, e))
    }

    fn seal_locked(&self, w: &mut MutexGuard<'_, WriterState>) -> Result<u64, StoreError> {
        let started = Instant::now();
        let (epoch, store, heads, tombstones) = {
            let s = lockr(&self.shared);
            (
                s.gen.epoch,
                s.gen.store.clone(),
                s.heads.clone(),
                s.tombstones.iter().cloned().collect::<Vec<_>>(),
            )
        };
        let has_chunks = heads.iter().any(|(_, h)| lockm(h).chunked_len() > 0);
        if !has_chunks && tombstones.is_empty() {
            return Ok(epoch);
        }

        // Build the successor pack: old pack verbatim, minus tombstones,
        // plus every head chunk as a pre-compressed segment.
        let mut sw = StoreWriter::append_to(store.as_bytes(), self.store_cfg())?;
        for name in &tombstones {
            sw.delete_series(name)?;
        }
        for (name, h) in &heads {
            for (frame, stamps) in lockm(h).sealed_parts() {
                sw.append_compressed_segment(name, &frame, &stamps)?;
            }
        }
        let pack = sw.finish()?;

        let new_epoch = epoch + 1;
        let pack_file = manifest::pack_name(new_epoch);
        let wal_file = manifest::wal_name(new_epoch);
        if neats_core::failpoint::triggered("seal.pack") {
            return Err(neats_core::failpoint::io_error("seal.pack").into());
        }
        write_file_durable(&self.dir.join(&pack_file), &pack)?;

        // The rotated WAL carries exactly the unsealed raw tails.
        let mut new_wal = Wal::create(self.dir.join(&wal_file), self.cfg.fsync)?;
        new_wal.instrument(
            Arc::clone(&self.metrics.wal_append_ns),
            Arc::clone(&self.metrics.wal_sync_ns),
        );
        for (name, h) in &heads {
            let (stamps, values) = lockm(h).tail_parts();
            if !stamps.is_empty() {
                new_wal.append(&WalOp::Append {
                    series: name.clone(),
                    stamps,
                    values,
                })?;
            }
        }
        new_wal.sync()?;

        let new_store = Arc::new(Store::open_with(pack, self.store_opts())?);

        // COMMIT POINT: after this rename the new generation is the truth.
        Manifest {
            epoch: new_epoch,
            pack: pack_file.clone(),
            wal: wal_file.clone(),
        }
        .write_to(&self.dir)?;

        // Swap the readers' view: new store and fresh trimmed heads
        // (copy-on-seal — readers holding the old snapshot keep a
        // consistent old world).
        {
            let mut s = lockw(&self.shared);
            s.gen = Generation {
                epoch: new_epoch,
                store: new_store,
            };
            s.heads = heads
                .iter()
                .filter_map(|(n, h)| {
                    let t = lockm(h).trimmed_after_seal();
                    (!t.is_empty()).then(|| (n.clone(), Arc::new(Mutex::new(t))))
                })
                .collect();
            s.tombstones.clear();
        }
        let old_pack = std::mem::replace(&mut w.pack_file, pack_file);
        let old_wal = std::mem::replace(&mut w.wal_file, wal_file);
        w.wal = new_wal;
        let _ = fs::remove_file(self.dir.join(old_pack));
        let _ = fs::remove_file(self.dir.join(old_wal));
        // A committed seal is a full recovery whatever tripped degraded
        // mode: the WAL was rotated fresh (no torn tail can survive) and
        // every pending chunk and tombstone is now in the pack.
        self.clear_degraded();
        self.metrics
            .seal_ns
            .record(started.elapsed().as_nanos() as u64);
        self.metrics.seals.fetch_add(1, Ordering::Relaxed);
        Ok(new_epoch)
    }

    /// Rewrites the sealed pack dropping dead bytes (see
    /// [`Store::compact`]), committing it as a new generation. Heads, the
    /// WAL, and pending tombstones are untouched. Returns the epoch
    /// afterwards (unchanged when the pack has no dead bytes).
    pub fn compact(&self) -> Result<u64, StoreError> {
        let mut w = lockm(&self.writer);
        let (epoch, store) = {
            let s = lockr(&self.shared);
            (s.gen.epoch, s.gen.store.clone())
        };
        if store.dead_bytes() == 0 {
            return Ok(epoch);
        }
        let bytes = store.compact();
        let new_epoch = epoch + 1;
        let pack_file = manifest::pack_name(new_epoch);
        write_file_durable(&self.dir.join(&pack_file), &bytes)?;
        let new_store = Arc::new(Store::open_with(bytes, self.store_opts())?);
        // COMMIT POINT. The WAL carries over unchanged — its Delete records
        // rebuild pending tombstones if we crash right after this.
        Manifest {
            epoch: new_epoch,
            pack: pack_file.clone(),
            wal: w.wal_file.clone(),
        }
        .write_to(&self.dir)?;
        {
            let mut s = lockw(&self.shared);
            s.gen = Generation {
                epoch: new_epoch,
                store: new_store,
            };
        }
        let old_pack = std::mem::replace(&mut w.pack_file, pack_file);
        let _ = fs::remove_file(self.dir.join(old_pack));
        self.metrics.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(new_epoch)
    }

    // ------------------------------------------------------------------
    // Query path
    // ------------------------------------------------------------------

    /// One consistent `(store, head)` snapshot for a series.
    fn snap(&self, series: &str) -> Result<(Arc<Store>, Option<Arc<Mutex<Head>>>), StoreError> {
        let s = lockr(&self.shared);
        let head = s.head(series);
        let visible = !s.tombstones.contains(series) && s.gen.store.series(series).is_some();
        if head.is_none() && !visible {
            return Err(StoreError::UnknownSeries(series.to_string()));
        }
        Ok((s.gen.store.clone(), head))
    }

    /// Splits `range` against a snapshot: the sealed subrange (to run on
    /// the store) and the head values (copied out under the head lock).
    /// Checks `range` against the total series length.
    #[allow(clippy::type_complexity)]
    fn split_range(
        &self,
        series: &str,
        range: &Range<usize>,
    ) -> Result<(Arc<Store>, Option<Range<usize>>, Vec<i64>), StoreError> {
        let (store, head) = self.snap(series)?;
        let (sealed_len, total, head_vals) = match &head {
            Some(h) => {
                let g = lockm(h);
                let sealed_len = g.first_index;
                let total = sealed_len + g.len();
                if range.start > range.end || range.end > total {
                    return Err(StoreError::BadRange {
                        start: range.start,
                        end: range.end,
                        len: total,
                    });
                }
                let mut vals = Vec::new();
                if range.end > sealed_len {
                    let lo = range.start.max(sealed_len) - sealed_len;
                    g.values_range(lo, range.end - sealed_len, &mut vals);
                }
                (sealed_len, total, vals)
            }
            None => {
                let total = store.series(series).map(|e| e.len()).unwrap_or(0);
                if range.start > range.end || range.end > total {
                    return Err(StoreError::BadRange {
                        start: range.start,
                        end: range.end,
                        len: total,
                    });
                }
                (total, total, Vec::new())
            }
        };
        let _ = total;
        let sealed = (range.start < sealed_len).then(|| range.start..range.end.min(sealed_len));
        Ok((store, sealed, head_vals))
    }

    /// The value at series-global position `idx`.
    pub fn get(&self, series: &str, idx: usize) -> Result<i64, StoreError> {
        let (store, head) = self.snap(series)?;
        match &head {
            Some(h) => {
                let g = lockm(h);
                if idx < g.first_index {
                    drop(g);
                    store.get(series, idx)
                } else if idx - g.first_index < g.len() {
                    Ok(g.value(idx - g.first_index))
                } else {
                    Err(StoreError::OutOfRange {
                        index: idx,
                        len: g.first_index + g.len(),
                    })
                }
            }
            None => store.get(series, idx),
        }
    }

    /// The timestamp of the point at series-global position `idx`.
    pub fn timestamp(&self, series: &str, idx: usize) -> Result<u64, StoreError> {
        let (store, head) = self.snap(series)?;
        match &head {
            Some(h) => {
                let g = lockm(h);
                if idx < g.first_index {
                    drop(g);
                    store.timestamp(series, idx)
                } else if idx - g.first_index < g.len() {
                    Ok(g.stamp(idx - g.first_index))
                } else {
                    Err(StoreError::OutOfRange {
                        index: idx,
                        len: g.first_index + g.len(),
                    })
                }
            }
            None => store.timestamp(series, idx),
        }
    }

    /// Total points in `series`, sealed + head.
    pub fn len(&self, series: &str) -> Result<usize, StoreError> {
        let (store, head) = self.snap(series)?;
        Ok(match &head {
            Some(h) => {
                let g = lockm(h);
                g.first_index + g.len()
            }
            None => store.series(series).map(|e| e.len()).unwrap_or(0),
        })
    }

    /// The value recorded exactly at timestamp `t`, if any.
    pub fn at_time(&self, series: &str, t: u64) -> Result<Option<i64>, StoreError> {
        let (store, head) = self.snap(series)?;
        if let Some(h) = &head {
            let g = lockm(h);
            match g.first_stamp() {
                Some(first) if t >= first => return Ok(g.index_of_time(t).map(|k| g.value(k))),
                _ => {
                    if g.first_index == 0 {
                        // No sealed data visible for this series.
                        return Ok(None);
                    }
                }
            }
        }
        store.at_time(series, t)
    }

    /// Appends the values at series-global positions `range` to `out`.
    pub fn range(
        &self,
        series: &str,
        range: Range<usize>,
        out: &mut Vec<i64>,
    ) -> Result<(), StoreError> {
        self.range_chunks(series, range, |chunk| out.extend_from_slice(chunk))
    }

    /// Streams the values at series-global positions `range` to `f` in
    /// bounded chunks — sealed segments first (via
    /// [`Store::range_chunks`]), then the head part as one chunk.
    pub fn range_chunks(
        &self,
        series: &str,
        range: Range<usize>,
        mut f: impl FnMut(&[i64]),
    ) -> Result<(), StoreError> {
        let (store, sealed, head_vals) = self.split_range(series, &range)?;
        if let Some(r) = sealed {
            store.range_chunks(series, r, &mut f)?;
        }
        if !head_vals.is_empty() {
            f(&head_vals);
        }
        Ok(())
    }

    /// Appends all `(timestamp, value)` pairs with timestamp in
    /// `[t_lo, t_hi]` to `out`.
    pub fn range_by_time(
        &self,
        series: &str,
        t_lo: u64,
        t_hi: u64,
        out: &mut Vec<(u64, i64)>,
    ) -> Result<(), StoreError> {
        self.range_by_time_chunks(series, t_lo, t_hi, |chunk| out.extend_from_slice(chunk))
    }

    /// Streams all `(timestamp, value)` pairs with timestamp in
    /// `[t_lo, t_hi]` to `f` in bounded chunks, sealed part first. Sealed
    /// and head timestamps are disjoint (head stamps are strictly above the
    /// sealed floor), so the concatenation is time-ordered.
    pub fn range_by_time_chunks(
        &self,
        series: &str,
        t_lo: u64,
        t_hi: u64,
        mut f: impl FnMut(&[(u64, i64)]),
    ) -> Result<(), StoreError> {
        let (store, head) = self.snap(series)?;
        if t_hi < t_lo {
            return Ok(());
        }
        let (pairs, sealed_visible) = match &head {
            Some(h) => {
                let g = lockm(h);
                let a = g.lower_bound(t_lo);
                let b = g.count_leq(t_hi);
                let mut vals = Vec::new();
                if b > a {
                    g.values_range(a, b, &mut vals);
                }
                let pairs: Vec<(u64, i64)> = (a..b).map(|k| (g.stamp(k), vals[k - a])).collect();
                (pairs, g.first_index > 0)
            }
            None => (Vec::new(), true),
        };
        if sealed_visible {
            store.range_by_time_chunks(series, t_lo, t_hi, &mut f)?;
        }
        if !pairs.is_empty() {
            f(&pairs);
        }
        Ok(())
    }

    /// Exact sum over `range` (as `i128`), sealed part pushed down to the
    /// store's per-segment aggregates.
    pub fn sum(&self, series: &str, range: Range<usize>) -> Result<i128, StoreError> {
        let (store, sealed, head_vals) = self.split_range(series, &range)?;
        let mut acc = 0i128;
        if let Some(r) = sealed {
            acc += store.sum(series, r)?;
        }
        acc += head_vals.iter().map(|&v| v as i128).sum::<i128>();
        Ok(acc)
    }

    /// Exact minimum and maximum over `range` (`None` for an empty range).
    pub fn min_max(
        &self,
        series: &str,
        range: Range<usize>,
    ) -> Result<Option<(i64, i64)>, StoreError> {
        let (store, sealed, head_vals) = self.split_range(series, &range)?;
        let mut acc: Option<(i64, i64)> = None;
        if let Some(r) = sealed {
            acc = store.min_max(series, r)?;
        }
        for &v in &head_vals {
            acc = Some(match acc {
                Some((lo, hi)) => (lo.min(v), hi.max(v)),
                None => (v, v),
            });
        }
        Ok(acc)
    }

    /// All live series names, sorted. (Sorted rather than catalog order:
    /// a series' catalog position depends on *when* its first chunk was
    /// sealed, so insertion order would not survive recovery; sorted order
    /// is deterministic across seals, compactions, and reopens.)
    pub fn series_names(&self) -> Vec<String> {
        let s = lockr(&self.shared);
        let mut names: Vec<String> = s
            .gen
            .store
            .series_names()
            .into_iter()
            .filter(|n| !s.tombstones.contains(*n))
            .map(str::to_string)
            .collect();
        for (n, _) in &s.heads {
            if !names.iter().any(|x| x == n) {
                names.push(n.clone());
            }
        }
        names.sort_unstable();
        names
    }

    /// Number of live series.
    pub fn series_count(&self) -> usize {
        self.series_names().len()
    }

    /// Catalog-style summaries of every live series, sorted by name (the
    /// same order as [`Self::series_names`]).
    pub fn series_summaries(&self) -> Vec<SeriesSummary> {
        let s = lockr(&self.shared);
        let mut out = Vec::new();
        for e in s.gen.store.entries() {
            if s.tombstones.contains(e.name()) {
                continue;
            }
            let mut sum = SeriesSummary {
                name: e.name().to_string(),
                mode: e.mode(),
                points: e.len(),
                segments: e.segments().len(),
                t_min: e.t_min(),
                t_max: e.t_max(),
            };
            if let Some(h) = s.head(e.name()) {
                let g = lockm(&h);
                sum.points += g.len();
                sum.segments += g.chunk_count() + usize::from(g.tail_len() > 0);
                if !g.is_empty() {
                    sum.t_max = g.stamp(g.len() - 1);
                }
            }
            out.push(sum);
        }
        for (n, h) in &s.heads {
            if out.iter().any(|x| &x.name == n) {
                continue;
            }
            let g = lockm(h);
            let (t_min, t_max) = if g.is_empty() {
                (0, 0)
            } else {
                (g.stamp(0), g.stamp(g.len() - 1))
            };
            out.push(SeriesSummary {
                name: n.clone(),
                mode: StoreMode::Lossless,
                points: g.len(),
                segments: g.chunk_count() + usize::from(g.tail_len() > 0),
                t_min,
                t_max,
            });
        }
        out.sort_unstable_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Total points across all live series, sealed + head.
    pub fn total_points(&self) -> usize {
        self.series_summaries().iter().map(|s| s.points).sum()
    }

    /// Points currently held in heads (not yet sealed).
    pub fn head_points(&self) -> usize {
        let s = lockr(&self.shared);
        s.heads.iter().map(|(_, h)| lockm(h).len()).sum()
    }

    /// The current generation counter.
    pub fn epoch(&self) -> u64 {
        lockr(&self.shared).gen.epoch
    }

    /// Segment-view cache counters of the sealed store.
    pub fn cache_stats(&self) -> CacheStats {
        lockr(&self.shared).gen.store.cache_stats()
    }

    /// Current WAL length in bytes.
    pub fn wal_len(&self) -> u64 {
        lockm(&self.writer).wal.len()
    }

    /// Dead bytes in the sealed pack (reclaimable by [`Self::compact`]).
    pub fn dead_bytes(&self) -> usize {
        lockr(&self.shared).gen.store.dead_bytes()
    }

    /// Errors swallowed by the background worker so far.
    pub fn background_errors(&self) -> u64 {
        self.background_errors.load(Ordering::Relaxed)
    }

    /// Segments of the current sealed generation that failed validation
    /// and are quarantined (see [`StoreError::Quarantined`]).
    pub fn quarantined_count(&self) -> usize {
        lockr(&self.shared).gen.store.quarantined_count()
    }

    /// Times a segment of the current sealed generation was newly
    /// quarantined (validation failures promoted to quarantine). Resets
    /// when a seal or compaction swaps in a fresh generation.
    pub fn quarantine_events(&self) -> u64 {
        lockr(&self.shared).gen.store.quarantine_events()
    }

    /// Registers the ingestor's write-path metric families into `reg`:
    /// WAL append / fsync and seal latency histograms, event counters
    /// (seals, compactions, degraded transitions, replayed ops, repairs),
    /// and scrape-time gauges over live state (head points, epoch, WAL
    /// length, dead bytes, degraded flag). The histograms and counters are
    /// the very atomics the write path bumps — no sampling, no copies. The
    /// registered closures hold an `Arc` to the ingestor, keeping it alive
    /// as long as the registry.
    pub fn register_metrics(self: &Arc<Self>, reg: &neats_core::Registry) {
        let m = &self.metrics;
        reg.histogram_shared(
            "neats_ingest_wal_append_ns",
            "WAL append wall time (encode + write + policy-driven fsync), nanoseconds.",
            &[],
            Arc::clone(&m.wal_append_ns),
        );
        reg.histogram_shared(
            "neats_ingest_wal_sync_ns",
            "WAL fsync time, nanoseconds.",
            &[],
            Arc::clone(&m.wal_sync_ns),
        );
        reg.histogram_shared(
            "neats_ingest_seal_ns",
            "Seal duration, successor-pack build through commit, nanoseconds.",
            &[],
            Arc::clone(&m.seal_ns),
        );
        reg.counter_shared(
            "neats_ingest_seals_total",
            "Committed seals (generation swaps moving head chunks into the pack).",
            &[],
            Arc::clone(&m.seals),
        );
        reg.counter_shared(
            "neats_ingest_compactions_total",
            "Committed compactions (dead bytes dropped from the pack).",
            &[],
            Arc::clone(&m.compactions),
        );
        reg.counter_shared(
            "neats_ingest_degraded_transitions_total",
            "Healthy-to-degraded transitions (I/O faults tripping read-only mode).",
            &[],
            Arc::clone(&m.degraded_transitions),
        );
        reg.counter_shared(
            "neats_ingest_wal_replayed_ops_total",
            "WAL records replayed into heads when the directory was opened.",
            &[],
            Arc::clone(&m.replayed_ops),
        );
        reg.counter_shared(
            "neats_ingest_wal_repairs_total",
            "Torn-tail truncations performed by degraded-mode recovery.",
            &[],
            Arc::clone(&m.repairs),
        );
        let me = Arc::clone(self);
        reg.counter_fn(
            "neats_ingest_background_errors_total",
            "Errors swallowed (and retried) by the background worker.",
            &[],
            move || me.background_errors(),
        );
        let me = Arc::clone(self);
        reg.gauge_fn(
            "neats_ingest_head_points",
            "Points currently held in mutable heads (not yet sealed).",
            &[],
            move || me.head_points() as f64,
        );
        let me = Arc::clone(self);
        reg.gauge_fn(
            "neats_ingest_epoch",
            "Current generation counter.",
            &[],
            move || me.epoch() as f64,
        );
        let me = Arc::clone(self);
        reg.gauge_fn(
            "neats_ingest_wal_bytes",
            "Current WAL length in bytes (header + committed records).",
            &[],
            move || me.wal_len() as f64,
        );
        let me = Arc::clone(self);
        reg.gauge_fn(
            "neats_ingest_pack_dead_bytes",
            "Dead (reclaimable) bytes in the sealed pack.",
            &[],
            move || me.dead_bytes() as f64,
        );
        let me = Arc::clone(self);
        reg.gauge_fn(
            "neats_ingest_degraded",
            "1 while in read-only degraded mode, else 0.",
            &[],
            move || f64::from(me.is_degraded()),
        );
    }

    // ------------------------------------------------------------------
    // Degraded mode
    // ------------------------------------------------------------------

    fn enter_degraded(&self, kind: FaultKind, e: &StoreError) {
        let mut g = lockm(&self.degraded);
        if g.is_none() {
            // Count healthy→degraded edges only; a refreshed reason while
            // already degraded is the same incident.
            self.metrics
                .degraded_transitions
                .fetch_add(1, Ordering::Relaxed);
        }
        *g = Some(DegradedState {
            kind,
            reason: e.to_string(),
        });
        self.degraded_flag.store(true, Ordering::SeqCst);
    }

    fn clear_degraded(&self) {
        *lockm(&self.degraded) = None;
        self.degraded_flag.store(false, Ordering::SeqCst);
    }

    fn degraded_error(&self) -> StoreError {
        StoreError::Degraded {
            reason: lockm(&self.degraded)
                .as_ref()
                .map_or_else(|| "i/o fault".to_string(), |s| s.reason.clone()),
        }
    }

    /// Whether the ingestor is in read-only degraded mode: an I/O fault
    /// (WAL append or seal) was hit, reads keep serving, and
    /// [`Self::append`] / [`Self::delete`] fail with
    /// [`StoreError::Degraded`] until a recovery succeeds.
    pub fn is_degraded(&self) -> bool {
        self.degraded_flag.load(Ordering::SeqCst)
    }

    /// The fault description while degraded, `None` when healthy.
    pub fn degraded_reason(&self) -> Option<String> {
        lockm(&self.degraded).as_ref().map(|s| s.reason.clone())
    }

    /// Attempts to leave degraded mode with the recovery action matching
    /// the recorded fault: truncate the WAL's torn tail after a failed
    /// append, or retry the seal after a failed one. Returns `Ok(true)` on
    /// recovery (or when already healthy); on `Err` the ingestor stays
    /// degraded for the next retry. The background worker calls this on a
    /// capped exponential backoff; it is also safe to call directly.
    pub fn try_recover(&self) -> Result<bool, StoreError> {
        let kind = match *lockm(&self.degraded) {
            Some(ref s) => s.kind,
            None => return Ok(true),
        };
        match kind {
            FaultKind::WalAppend => {
                let mut w = lockm(&self.writer);
                w.wal.repair()?;
                self.metrics.repairs.fetch_add(1, Ordering::Relaxed);
                self.clear_degraded();
                Ok(true)
            }
            FaultKind::Seal => {
                // `seal` re-enters degraded (refreshing the reason) when
                // the retry fails, and clears it at the commit point.
                self.seal()?;
                self.clear_degraded();
                Ok(true)
            }
        }
    }

    // ------------------------------------------------------------------
    // Background worker
    // ------------------------------------------------------------------

    /// Starts a background thread that periodically seals (once chunked
    /// head points reach `cfg.seal_points`, or a delete is pending) and
    /// compacts (once dead bytes exceed `cfg.compact_dead_ratio` of the
    /// pack). While the ingestor is degraded, the worker instead retries
    /// [`Self::try_recover`] on a capped exponential backoff with jitter
    /// (`cfg.retry_base` / `cfg.retry_cap`) — it never dies on an I/O
    /// error, and degraded mode clears automatically once a retry
    /// succeeds. The worker stops when the returned handle drops.
    pub fn start_background(self: &Arc<Self>, cfg: BackgroundConfig) -> BackgroundHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let me = Arc::clone(self);
        let flag = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            let mut backoff = neats_core::Backoff::new(cfg.retry_base, cfg.retry_cap);
            let mut next_retry = Instant::now();
            while !flag.load(Ordering::Relaxed) {
                // Sleep in small quanta so handle drop is prompt.
                let woke = Instant::now();
                while woke.elapsed() < cfg.interval {
                    if flag.load(Ordering::Relaxed) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(10).min(cfg.interval));
                }
                if me.is_degraded() {
                    // Degraded: don't hammer a failing disk — retry
                    // recovery on the backoff schedule only.
                    if Instant::now() >= next_retry {
                        match me.try_recover() {
                            Ok(_) => backoff.reset(),
                            Err(_) => {
                                me.background_errors.fetch_add(1, Ordering::Relaxed);
                                next_retry = Instant::now() + backoff.next_delay();
                            }
                        }
                    }
                    continue;
                }
                backoff.reset();
                let (chunked, pending_delete, dead_ratio) = {
                    let s = lockr(&me.shared);
                    let chunked: usize = s.heads.iter().map(|(_, h)| lockm(h).chunked_len()).sum();
                    let pack_len = s.gen.store.as_bytes().len().max(1);
                    (
                        chunked,
                        !s.tombstones.is_empty(),
                        s.gen.store.dead_bytes() as f64 / pack_len as f64,
                    )
                };
                if (chunked >= me.cfg.seal_points || pending_delete) && me.seal().is_err() {
                    me.background_errors.fetch_add(1, Ordering::Relaxed);
                    // The failed seal tripped degraded mode; schedule the
                    // first recovery retry without delay.
                    next_retry = Instant::now();
                }
                if dead_ratio > me.cfg.compact_dead_ratio && me.compact().is_err() {
                    me.background_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        BackgroundHandle {
            stop,
            thread: Some(thread),
        }
    }
}

/// Stops the background worker when dropped (joining its thread).
pub struct BackgroundHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl BackgroundHandle {
    /// Stops the worker and waits for it to finish.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for BackgroundHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn ingestor_is_send_and_sync() {
        assert_send_sync::<Ingestor>();
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("neats-ingestor-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn small_cfg() -> IngestConfig {
        IngestConfig {
            chunk_points: 64,
            seal_points: 128,
            ..IngestConfig::default()
        }
    }

    #[test]
    fn lifecycle_append_seal_reopen() {
        let dir = tmp_dir("lifecycle");
        let stamps: Vec<u64> = (0..500u64).map(|i| 10 + i * 3).collect();
        let values: Vec<i64> = (0..500).map(|k: i64| k * k % 211 - 40).collect();
        {
            let ing = Ingestor::open(&dir, small_cfg()).unwrap();
            for chunk in 0..10 {
                let r = chunk * 50..(chunk + 1) * 50;
                ing.append("s", &stamps[r.clone()], &values[r]).unwrap();
            }
            assert_eq!(ing.len("s").unwrap(), 500);
            // Everything answers before any seal…
            assert_eq!(ing.get("s", 499).unwrap(), values[499]);
            let e0 = ing.epoch();
            let e1 = ing.seal().unwrap();
            assert_eq!(e1, e0 + 1);
            // …and identically after: 7 full 64-chunks sealed, 52 in head.
            assert_eq!(ing.head_points(), 500 - 448);
            let mut out = Vec::new();
            ing.range("s", 0..500, &mut out).unwrap();
            assert_eq!(out, values);
            assert_eq!(ing.at_time("s", stamps[470]).unwrap(), Some(values[470]));
            assert_eq!(ing.timestamp("s", 460).unwrap(), stamps[460]);
            let want: i128 = values[100..480].iter().map(|&v| v as i128).sum();
            assert_eq!(ing.sum("s", 100..480).unwrap(), want);
        }
        // Reopen: the tail comes back from the WAL.
        let ing = Ingestor::open(&dir, small_cfg()).unwrap();
        assert_eq!(ing.len("s").unwrap(), 500);
        let mut out = Vec::new();
        ing.range("s", 0..500, &mut out).unwrap();
        assert_eq!(out, values);
        drop(ing);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn delete_hides_then_seal_drops() {
        let dir = tmp_dir("delete");
        let ing = Ingestor::open(&dir, small_cfg()).unwrap();
        ing.append("a", &[1, 2, 3], &[10, 20, 30]).unwrap();
        ing.append("b", &[1, 2], &[7, 8]).unwrap();
        ing.flush().unwrap(); // both sealed
        assert_eq!(ing.series_names(), vec!["a", "b"]);
        ing.delete("a").unwrap();
        assert!(matches!(ing.get("a", 0), Err(StoreError::UnknownSeries(_))));
        assert!(matches!(ing.delete("a"), Err(StoreError::UnknownSeries(_))));
        assert_eq!(ing.series_names(), vec!["b"]);
        // Re-ingest from scratch: fresh index space, any timestamps.
        ing.append("a", &[1], &[99]).unwrap();
        assert_eq!(ing.get("a", 0).unwrap(), 99);
        assert_eq!(ing.len("a").unwrap(), 1);
        let epoch = ing.seal().unwrap();
        assert!(epoch >= 2);
        assert_eq!(ing.get("a", 0).unwrap(), 99);
        assert_eq!(ing.get("b", 1).unwrap(), 8);
        drop(ing);
        // Survives reopen.
        let ing = Ingestor::open(&dir, small_cfg()).unwrap();
        assert_eq!(ing.get("a", 0).unwrap(), 99);
        assert_eq!(ing.len("a").unwrap(), 1);
        drop(ing);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_validation() {
        let dir = tmp_dir("validation");
        let ing = Ingestor::open(&dir, small_cfg()).unwrap();
        assert!(matches!(
            ing.append("", &[1], &[1]),
            Err(StoreError::EmptyName)
        ));
        assert!(matches!(
            ing.append("s", &[1, 2], &[1]),
            Err(StoreError::LengthMismatch { .. })
        ));
        assert!(matches!(
            ing.append("s", &[5, 5], &[1, 2]),
            Err(StoreError::TimestampOrder { index: 1, .. })
        ));
        ing.append("s", &[], &[]).unwrap(); // no-op, creates nothing
        assert!(ing.series_names().is_empty());
        ing.append("s", &[10], &[1]).unwrap();
        assert!(matches!(
            ing.append("s", &[10], &[2]),
            Err(StoreError::TimestampOrder { index: 0, .. })
        ));
        // The floor persists across a seal.
        ing.flush().unwrap();
        assert!(matches!(
            ing.append("s", &[10], &[2]),
            Err(StoreError::TimestampOrder { index: 0, .. })
        ));
        ing.append("s", &[11], &[2]).unwrap();
        assert!(matches!(
            ing.get("nope", 0),
            Err(StoreError::UnknownSeries(_))
        ));
        assert!(matches!(
            ing.get("s", 2),
            Err(StoreError::OutOfRange { index: 2, len: 2 })
        ));
        assert!(matches!(
            ing.range("s", 0..3, &mut Vec::new()),
            Err(StoreError::BadRange { .. })
        ));
        drop(ing);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_reclaims_after_delete_seal() {
        let dir = tmp_dir("compact");
        let ing = Ingestor::open(&dir, small_cfg()).unwrap();
        let stamps: Vec<u64> = (0..200).collect();
        let values: Vec<i64> = (0..200).map(|k: i64| k % 31).collect();
        ing.append("keep", &stamps, &values).unwrap();
        ing.append("drop", &stamps, &values).unwrap();
        ing.flush().unwrap();
        ing.delete("drop").unwrap();
        ing.seal().unwrap();
        assert!(ing.dead_bytes() > 0);
        let e = ing.epoch();
        assert_eq!(ing.compact().unwrap(), e + 1);
        assert_eq!(ing.dead_bytes(), 0);
        assert_eq!(ing.compact().unwrap(), e + 1, "no-op when nothing dead");
        let mut out = Vec::new();
        ing.range("keep", 0..200, &mut out).unwrap();
        assert_eq!(out, values);
        drop(ing);
        let ing = Ingestor::open(&dir, small_cfg()).unwrap();
        assert_eq!(ing.series_names(), vec!["keep"]);
        drop(ing);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn background_worker_seals_and_compacts() {
        let dir = tmp_dir("background");
        let cfg = IngestConfig {
            chunk_points: 32,
            seal_points: 64,
            compact_dead_ratio: 0.01,
            ..IngestConfig::default()
        };
        let ing = Arc::new(Ingestor::open(&dir, cfg).unwrap());
        let handle = ing.start_background(BackgroundConfig {
            interval: Duration::from_millis(20),
            ..Default::default()
        });
        let stamps: Vec<u64> = (0..256).collect();
        let values: Vec<i64> = (0..256).map(|k: i64| k * 7 % 97).collect();
        ing.append("s", &stamps, &values).unwrap();
        let t0 = Instant::now();
        while ing.epoch() == 0 && t0.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(ing.epoch() > 0, "background seal never ran");
        let mut out = Vec::new();
        ing.range("s", 0..256, &mut out).unwrap();
        assert_eq!(out, values);
        handle.stop();
        assert_eq!(ing.background_errors(), 0);
        drop(ing);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn summaries_cover_sealed_and_head() {
        let dir = tmp_dir("summaries");
        let ing = Ingestor::open(&dir, small_cfg()).unwrap();
        let stamps: Vec<u64> = (0..100u64).map(|i| 5 + i).collect();
        let values: Vec<i64> = (0..100).collect();
        ing.append("s", &stamps, &values).unwrap();
        ing.seal().unwrap(); // 64 sealed, 36 in head
        let sums = ing.series_summaries();
        assert_eq!(sums.len(), 1);
        assert_eq!(sums[0].points, 100);
        assert_eq!(sums[0].t_min, 5);
        assert_eq!(sums[0].t_max, 104);
        assert_eq!(ing.total_points(), 100);
        assert_eq!(ing.series_count(), 1);
        drop(ing);
        fs::remove_dir_all(&dir).unwrap();
    }
}
