//! The in-memory mutable head of one series: a raw tail plus
//! SNeaTS-compressed chunks, positioned after the sealed pack data.

use neats_core::NeaTSCompressed;
use timeseries::CompressedSeries;

/// Head-local storage for the points of one series that are not yet sealed
/// into the pack. Point `k` (head-local) lives either in a compressed chunk
/// (for `k < chunked_len`) or in the raw tail. `first_index` anchors the
/// head in the series' global index space: global index `first_index + k`
/// is head-local `k`, and the invariant the ingestor maintains is that
/// `first_index` equals the sealed length visible in the *same* snapshot.
pub(crate) struct Head {
    /// Series-global index of the head's first point.
    pub first_index: usize,
    /// Last timestamp sealed into the pack before this head (ordering
    /// floor when the head is empty).
    pub floor: Option<u64>,
    /// Head-local timestamps for every head point (strictly increasing).
    stamps: Vec<u64>,
    /// Compressed chunks, oldest first.
    chunks: Vec<NeaTSCompressed>,
    /// Head-local start index of each chunk.
    chunk_starts: Vec<usize>,
    /// Total points held in `chunks`.
    chunked_len: usize,
    /// Raw values for head-local positions `chunked_len..len()`.
    tail: Vec<i64>,
}

impl Head {
    pub fn new(first_index: usize, floor: Option<u64>) -> Self {
        Self {
            first_index,
            floor,
            stamps: Vec::new(),
            chunks: Vec::new(),
            chunk_starts: Vec::new(),
            chunked_len: 0,
            tail: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.stamps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.stamps.is_empty()
    }

    pub fn chunked_len(&self) -> usize {
        self.chunked_len
    }

    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    pub fn tail_len(&self) -> usize {
        self.tail.len()
    }

    /// The ordering floor for the next append: the last head stamp, or the
    /// last sealed stamp when the head is empty.
    pub fn last_stamp(&self) -> Option<u64> {
        self.stamps.last().copied().or(self.floor)
    }

    pub fn first_stamp(&self) -> Option<u64> {
        self.stamps.first().copied()
    }

    pub fn stamp(&self, k: usize) -> u64 {
        self.stamps[k]
    }

    /// Appends validated points (caller has checked ordering and lengths).
    pub fn append(&mut self, stamps: &[u64], values: &[i64]) {
        debug_assert_eq!(stamps.len(), values.len());
        debug_assert!(self
            .last_stamp()
            .map(|p| stamps.first().map(|&t| t > p).unwrap_or(true))
            .unwrap_or(true));
        self.stamps.extend_from_slice(stamps);
        self.tail.extend_from_slice(values);
    }

    /// The oldest `n` raw tail values, for compression outside the head
    /// lock; `None` if the tail is shorter.
    pub fn tail_prefix(&self, n: usize) -> Option<Vec<i64>> {
        (self.tail.len() >= n && n > 0).then(|| self.tail[..n].to_vec())
    }

    /// Installs a chunk compressed from [`Self::tail_prefix`], draining the
    /// raw values it now covers.
    pub fn install_chunk(&mut self, chunk: NeaTSCompressed) {
        let n = chunk.len();
        debug_assert!(n > 0 && n <= self.tail.len());
        self.chunk_starts.push(self.chunked_len);
        self.chunked_len += n;
        self.chunks.push(chunk);
        self.tail.drain(..n);
    }

    /// The value at head-local position `k` (caller checks `k < len()`).
    pub fn value(&self, k: usize) -> i64 {
        if k < self.chunked_len {
            let ci = self.chunk_starts.partition_point(|&s| s <= k) - 1;
            self.chunks[ci].get(k - self.chunk_starts[ci])
        } else {
            self.tail[k - self.chunked_len]
        }
    }

    /// Appends the values at head-local positions `lo..hi` to `out`.
    pub fn values_range(&self, lo: usize, hi: usize, out: &mut Vec<i64>) {
        debug_assert!(lo <= hi && hi <= self.len());
        let mut k = lo;
        while k < hi.min(self.chunked_len) {
            let ci = self.chunk_starts.partition_point(|&s| s <= k) - 1;
            let start = self.chunk_starts[ci];
            let to = (start + self.chunks[ci].len()).min(hi);
            self.chunks[ci].scan_range(k - start, to - k, out);
            k = to;
        }
        if hi > self.chunked_len {
            let from = k.max(self.chunked_len) - self.chunked_len;
            out.extend_from_slice(&self.tail[from..hi - self.chunked_len]);
        }
    }

    /// First head-local index with stamp ≥ `t`.
    pub fn lower_bound(&self, t: u64) -> usize {
        self.stamps.partition_point(|&s| s < t)
    }

    /// Number of head points with stamp ≤ `t`.
    pub fn count_leq(&self, t: u64) -> usize {
        self.stamps.partition_point(|&s| s <= t)
    }

    /// Head-local index of the point stamped exactly `t`, if any.
    pub fn index_of_time(&self, t: u64) -> Option<usize> {
        match self.stamps.binary_search(&t) {
            Ok(i) => Some(i),
            Err(_) => None,
        }
    }

    /// Serialises every compressed chunk with its stamps — what a seal
    /// moves into the pack.
    pub fn sealed_parts(&self) -> Vec<(Vec<u8>, Vec<u64>)> {
        self.chunks
            .iter()
            .zip(&self.chunk_starts)
            .map(|(c, &start)| (c.to_bytes(), self.stamps[start..start + c.len()].to_vec()))
            .collect()
    }

    /// The raw tail with its stamps — what a seal re-logs into the rotated
    /// WAL.
    pub fn tail_parts(&self) -> (Vec<u64>, Vec<i64>) {
        (self.stamps[self.chunked_len..].to_vec(), self.tail.clone())
    }

    /// The head as it continues after its chunks were sealed: same tail,
    /// `first_index` advanced past the sealed points, floor at the last
    /// sealed stamp.
    pub fn trimmed_after_seal(&self) -> Head {
        let floor = if self.chunked_len > 0 {
            Some(self.stamps[self.chunked_len - 1])
        } else {
            self.floor
        };
        Head {
            first_index: self.first_index + self.chunked_len,
            floor,
            stamps: self.stamps[self.chunked_len..].to_vec(),
            chunks: Vec::new(),
            chunk_starts: Vec::new(),
            chunked_len: 0,
            tail: self.tail.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neats_core::NeaTS;
    use timeseries::TimeSeries;

    fn compress(values: &[i64]) -> NeaTSCompressed {
        NeaTS::builder().threads(1).build(&TimeSeries::from_values(values.to_vec()))
    }

    #[test]
    fn mixed_chunked_and_tail_reads() {
        let mut h = Head::new(100, Some(50));
        let stamps: Vec<u64> = (0..300u64).map(|i| 51 + i * 2).collect();
        let values: Vec<i64> = (0..300).map(|k: i64| k * k % 173 - 40).collect();
        h.append(&stamps, &values);
        assert_eq!(h.last_stamp(), stamps.last().copied());

        // Roll two chunks of 128, leaving 44 in the tail.
        for _ in 0..2 {
            let raw = h.tail_prefix(128).unwrap();
            h.install_chunk(compress(&raw));
        }
        assert_eq!(h.chunked_len(), 256);
        assert_eq!(h.tail_len(), 44);
        assert_eq!(h.len(), 300);

        for k in [0usize, 127, 128, 255, 256, 299] {
            assert_eq!(h.value(k), values[k], "value({k})");
        }
        let mut out = Vec::new();
        h.values_range(100, 280, &mut out);
        assert_eq!(out, &values[100..280]);

        // Time lookups.
        assert_eq!(h.index_of_time(stamps[37]), Some(37));
        assert_eq!(h.index_of_time(stamps[37] + 1), None);
        assert_eq!(h.lower_bound(stamps[10]), 10);
        assert_eq!(h.count_leq(stamps[10]), 11);

        // Seal parts cover exactly the chunks; the trimmed head keeps the
        // tail and advances its anchor.
        let parts = h.sealed_parts();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].1, &stamps[..128]);
        let t = h.trimmed_after_seal();
        assert_eq!(t.first_index, 356);
        assert_eq!(t.len(), 44);
        assert_eq!(t.floor, Some(stamps[255]));
        assert_eq!(t.value(0), values[256]);
        let (ts, vs) = h.tail_parts();
        assert_eq!(ts, &stamps[256..]);
        assert_eq!(vs, &values[256..]);
    }

    #[test]
    fn empty_head_floor() {
        let h = Head::new(0, None);
        assert!(h.is_empty());
        assert_eq!(h.last_stamp(), None);
        let t = h.trimmed_after_seal();
        assert_eq!(t.first_index, 0);
        assert_eq!(t.floor, None);
    }
}
