//! Fault-injection support, re-exported from [`neats_core::failpoint`].
//!
//! The in-memory crash-consistency file model used by this crate's fault
//! matrix started here and moved to `neats-core` so the store and serve
//! layers can share it (together with the process-global failpoint
//! registry, `neats_core::failpoint::triggered` and friends). The
//! historical `neats_ingest::FailpointFile` path keeps working.

pub use neats_core::failpoint::FailpointFile;
