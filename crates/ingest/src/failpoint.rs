//! Fault-injection support: a file model that records writes and sync
//! barriers, kills writes after a byte budget, and can drop fsyncs.
//!
//! This is **test support**, exported so the fault-injection suites (and
//! downstream users writing their own) can drive the crash-recovery matrix
//! without touching a real disk. The model is the standard crash-consistency
//! one: bytes written before the last effective sync barrier are durable;
//! bytes after it may survive in full, in part, or not at all. A "crash
//! image" is therefore any prefix of the written bytes that is at least as
//! long as the synced length.

/// An in-memory file with write/sync recording and injectable faults.
#[derive(Clone, Debug)]
pub struct FailpointFile {
    data: Vec<u8>,
    synced_len: usize,
    /// Remaining write budget; once exhausted, writes are (partially)
    /// dropped and the file is `killed`.
    budget: Option<usize>,
    drop_syncs: bool,
    killed: bool,
}

impl Default for FailpointFile {
    fn default() -> Self {
        Self::new()
    }
}

impl FailpointFile {
    /// A file with no fault injected.
    pub fn new() -> Self {
        Self { data: Vec::new(), synced_len: 0, budget: None, drop_syncs: false, killed: false }
    }

    /// A file that accepts exactly `budget` more bytes; the write that
    /// crosses the budget is applied partially and the file dies.
    pub fn kill_after(budget: usize) -> Self {
        Self { budget: Some(budget), ..Self::new() }
    }

    /// Makes every subsequent sync a silent no-op (a misbehaving disk, or a
    /// writer configured with `FsyncPolicy::Never`).
    pub fn dropping_syncs(mut self) -> Self {
        self.drop_syncs = true;
        self
    }

    /// Appends bytes, honouring the kill budget. Returns `false` once the
    /// file has died (the write was dropped or only partially applied).
    pub fn write(&mut self, bytes: &[u8]) -> bool {
        if self.killed {
            return false;
        }
        match self.budget {
            Some(b) if b < bytes.len() => {
                self.data.extend_from_slice(&bytes[..b]);
                self.budget = Some(0);
                self.killed = true;
                false
            }
            Some(b) => {
                self.data.extend_from_slice(bytes);
                self.budget = Some(b - bytes.len());
                true
            }
            None => {
                self.data.extend_from_slice(bytes);
                true
            }
        }
    }

    /// A sync barrier: everything written so far becomes durable — unless
    /// syncs are being dropped or the file has died. Returns whether the
    /// barrier took effect.
    pub fn sync(&mut self) -> bool {
        if self.killed || self.drop_syncs {
            return false;
        }
        self.synced_len = self.data.len();
        true
    }

    /// Everything written so far (the most optimistic crash image).
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Bytes guaranteed durable.
    pub fn synced_len(&self) -> usize {
        self.synced_len
    }

    /// Whether the kill budget has been exhausted.
    pub fn is_killed(&self) -> bool {
        self.killed
    }

    /// Every crash image consistent with the model: each prefix cut from
    /// `synced_len` (nothing past the barrier survived) to the full length
    /// (everything survived).
    pub fn crash_images(&self) -> impl Iterator<Item = &[u8]> {
        (self.synced_len..=self.data.len()).map(move |cut| &self.data[..cut])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_kills_mid_write() {
        let mut f = FailpointFile::kill_after(5);
        assert!(f.write(b"abc"));
        assert!(f.sync());
        assert!(!f.write(b"defg")); // only "de" lands
        assert_eq!(f.data(), b"abcde");
        assert!(f.is_killed());
        assert!(!f.sync(), "a dead file cannot sync");
        assert_eq!(f.synced_len(), 3);
        assert!(!f.write(b"x"), "writes after death are dropped");
        assert_eq!(f.data(), b"abcde");
        let images: Vec<&[u8]> = f.crash_images().collect();
        assert_eq!(images, vec![&b"abc"[..], b"abcd", b"abcde"]);
    }

    #[test]
    fn dropped_syncs_leave_nothing_durable() {
        let mut f = FailpointFile::new().dropping_syncs();
        f.write(b"hello");
        assert!(!f.sync());
        assert_eq!(f.synced_len(), 0);
        assert_eq!(f.crash_images().count(), 6); // cuts 0..=5
    }
}
