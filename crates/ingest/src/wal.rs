//! The write-ahead log: byte layout, append handle, and torn-write replay.
//!
//! ## File layout
//!
//! ```text
//! offset  size  field
//! 0       8     magic   "NeaTSWAL" (little-endian u64)
//! 8       8     version 1
//! 16      …     records, back to back
//! ```
//!
//! Each record:
//!
//! ```text
//! offset  size  field
//! 0       4     len      payload length (little-endian u32, 1 ≤ len ≤ 2^28)
//! 4       8     crc      CRC-64/XZ of the payload bytes
//! 12      len   payload
//! ```
//!
//! The payload is wire-encoded (`succinct::WireWriter` conventions):
//!
//! ```text
//! u8   kind                      1 = append, 2 = delete
//! …    kind 1: bytes series      length-prefixed UTF-8 name
//!              u64s  stamps      length-prefixed, strictly increasing
//!              u64s  values      length-prefixed, i64 two's-complement
//!      kind 2: bytes series      length-prefixed UTF-8 name
//! ```
//!
//! ## Recovery contract
//!
//! [`replay`] scans records in order and stops at the **first** record that
//! is torn (runs past end of file), fails its CRC, or decodes to invalid
//! content (unknown kind, empty name, non-UTF-8 name, mismatched column
//! lengths, non-increasing stamps, trailing payload bytes). Everything
//! before that point is returned; everything from that record's first byte
//! on is reported for truncation. A file too short to hold the 16-byte
//! header is treated as a torn header: no records, rewrite from scratch. A
//! full-size header with the wrong magic or version is *rejected* (that is
//! not a torn write — it is the wrong file).

use crate::manifest::sync_dir;
use neats_core::AtomicHistogram;
use neats_store::StoreError;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use succinct::{crc64, WireReader, WireWriter};

/// `"NeaTSWAL"` as a little-endian u64.
pub const WAL_MAGIC: u64 = u64::from_le_bytes(*b"NeaTSWAL");
/// Current WAL format version.
pub const WAL_VERSION: u64 = 1;
/// Bytes before the first record.
pub const WAL_HEADER_LEN: usize = 16;
/// Per-record framing bytes (`u32` length + `u64` CRC).
pub const RECORD_OVERHEAD: usize = 12;
/// Upper bound on a record payload; a declared length beyond this is treated
/// as corruption rather than an allocation request.
pub const MAX_PAYLOAD: usize = 1 << 28;

/// One logical WAL operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalOp {
    /// Points appended to one series (columns have equal, non-zero length;
    /// stamps strictly increase within the record).
    Append {
        /// The series name (non-empty UTF-8).
        series: String,
        /// Per-point timestamps.
        stamps: Vec<u64>,
        /// Per-point values.
        values: Vec<i64>,
    },
    /// The series was deleted (sealed data becomes invisible, the head is
    /// dropped; a later `Append` recreates it from scratch).
    Delete {
        /// The series name.
        series: String,
    },
}

/// When `append` pushes bytes to the OS, when does it force them to disk?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record — an acknowledged append survives a crash.
    Always,
    /// `fsync` every N records (and on seal/rotation). Bounded loss window.
    EveryN(u64),
    /// Never `fsync` from the append path; only seals and rotations sync.
    Never,
}

/// The 16 header bytes of a fresh WAL.
pub fn header_bytes() -> [u8; WAL_HEADER_LEN] {
    let mut h = [0u8; WAL_HEADER_LEN];
    h[..8].copy_from_slice(&WAL_MAGIC.to_le_bytes());
    h[8..].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h
}

/// Encodes one record (framing + payload) ready to append to a WAL.
pub fn encode_record(op: &WalOp) -> Vec<u8> {
    let mut w = WireWriter::new();
    match op {
        WalOp::Append { series, stamps, values } => {
            w.u8(1);
            w.bytes(series.as_bytes());
            w.u64_slice(stamps);
            let as_u64: Vec<u64> = values.iter().map(|&v| v as u64).collect();
            w.u64_slice(&as_u64);
        }
        WalOp::Delete { series } => {
            w.u8(2);
            w.bytes(series.as_bytes());
        }
    }
    let payload = w.finish();
    debug_assert!(!payload.is_empty() && payload.len() <= MAX_PAYLOAD);
    let mut rec = Vec::with_capacity(RECORD_OVERHEAD + payload.len());
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&crc64(&payload).to_le_bytes());
    rec.extend_from_slice(&payload);
    rec
}

/// Decodes and validates one payload. Any deviation from the grammar is an
/// error (the caller treats it as the truncation point).
fn decode_payload(payload: &[u8]) -> Result<WalOp, ()> {
    let mut r = WireReader::new(payload);
    let kind = r.u8().map_err(|_| ())?;
    let op = match kind {
        1 => {
            let name = r.bytes_ref().map_err(|_| ())?;
            let series = std::str::from_utf8(name).map_err(|_| ())?.to_string();
            let stamps = r.u64_vec().map_err(|_| ())?;
            let values: Vec<i64> =
                r.u64s_ref().map_err(|_| ())?.iter().map(|v| v as i64).collect();
            if series.is_empty()
                || stamps.is_empty()
                || stamps.len() != values.len()
                || stamps.windows(2).any(|w| w[1] <= w[0])
            {
                return Err(());
            }
            WalOp::Append { series, stamps, values }
        }
        2 => {
            let name = r.bytes_ref().map_err(|_| ())?;
            let series = std::str::from_utf8(name).map_err(|_| ())?.to_string();
            if series.is_empty() {
                return Err(());
            }
            WalOp::Delete { series }
        }
        _ => return Err(()),
    };
    if !r.is_exhausted() {
        return Err(());
    }
    Ok(op)
}

/// Replays a WAL image: returns the decoded operations and the number of
/// leading bytes that are valid (the prefix a recovering ingestor keeps).
///
/// * shorter than the header → `(no ops, 0)`: torn header, rewrite;
/// * wrong magic/version → [`StoreError::Corrupt`] (not recoverable);
/// * otherwise ops up to the first torn/corrupt/invalid record, with
///   `valid_len` pointing at that record's first byte.
pub fn replay(bytes: &[u8]) -> Result<(Vec<WalOp>, usize), StoreError> {
    if bytes.len() < WAL_HEADER_LEN {
        return Ok((Vec::new(), 0));
    }
    let magic = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
    let version = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    if magic != WAL_MAGIC {
        return Err(StoreError::Corrupt("wal: bad magic"));
    }
    if version != WAL_VERSION {
        return Err(StoreError::Corrupt("wal: unsupported version"));
    }
    let mut ops = Vec::new();
    let mut pos = WAL_HEADER_LEN;
    loop {
        let Some(frame) = bytes.get(pos..pos + RECORD_OVERHEAD) else { break };
        let len = u32::from_le_bytes(frame[..4].try_into().expect("4 bytes")) as usize;
        let crc = u64::from_le_bytes(frame[4..12].try_into().expect("8 bytes"));
        if len == 0 || len > MAX_PAYLOAD {
            break;
        }
        let Some(payload) = bytes.get(pos + RECORD_OVERHEAD..pos + RECORD_OVERHEAD + len) else {
            break;
        };
        if crc64(payload) != crc {
            break;
        }
        let Ok(op) = decode_payload(payload) else { break };
        ops.push(op);
        pos += RECORD_OVERHEAD + len;
    }
    Ok((ops, pos))
}

/// An append handle over a WAL file, applying an [`FsyncPolicy`].
pub struct Wal {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    len: u64,
    /// Records appended since the last sync (drives `EveryN`).
    unsynced: u64,
    /// Latency sinks installed by [`Self::instrument`] (nanoseconds);
    /// `None` keeps the hot path untimed.
    append_ns: Option<Arc<AtomicHistogram>>,
    sync_ns: Option<Arc<AtomicHistogram>>,
}

impl Wal {
    /// Creates (truncating) a fresh WAL at `path`: header written and
    /// synced, along with the containing directory.
    pub fn create(path: impl Into<PathBuf>, policy: FsyncPolicy) -> Result<Self, StoreError> {
        if neats_core::failpoint::triggered("wal.create") {
            return Err(neats_core::failpoint::io_error("wal.create").into());
        }
        let path = path.into();
        let mut file =
            OpenOptions::new().create(true).write(true).truncate(true).open(&path)?;
        file.write_all(&header_bytes())?;
        file.sync_all()?;
        if let Some(dir) = path.parent() {
            sync_dir(dir)?;
        }
        Ok(Self {
            file,
            path,
            policy,
            len: WAL_HEADER_LEN as u64,
            unsynced: 0,
            append_ns: None,
            sync_ns: None,
        })
    }

    /// Opens an existing WAL, replays it, truncates any torn suffix (or
    /// rewrites a torn header), and positions the handle for appends.
    pub fn open_replay(
        path: impl Into<PathBuf>,
        policy: FsyncPolicy,
    ) -> Result<(Self, Vec<WalOp>), StoreError> {
        let path = path.into();
        let bytes = std::fs::read(&path)?;
        let (ops, valid_len) = replay(&bytes)?;
        if valid_len < WAL_HEADER_LEN {
            // Torn header: nothing recoverable, start the file over.
            let wal = Self::create(path, policy)?;
            return Ok((wal, ops));
        }
        let file = OpenOptions::new().write(true).open(&path)?;
        if (valid_len as u64) < bytes.len() as u64 {
            file.set_len(valid_len as u64)?;
            file.sync_all()?;
        }
        let mut wal = Self {
            file,
            path,
            policy,
            len: valid_len as u64,
            unsynced: 0,
            append_ns: None,
            sync_ns: None,
        };
        use std::io::Seek;
        wal.file.seek(std::io::SeekFrom::Start(wal.len))?;
        Ok((wal, ops))
    }

    /// Installs latency sinks: every [`Self::append`] records its wall
    /// time (encode + write + any policy-driven sync) into `append_ns`,
    /// and every [`Self::sync`] records the `fsync` time into `sync_ns`.
    /// Nanosecond units. Uninstrumented handles pay nothing.
    pub fn instrument(
        &mut self,
        append_ns: Arc<AtomicHistogram>,
        sync_ns: Arc<AtomicHistogram>,
    ) {
        self.append_ns = Some(append_ns);
        self.sync_ns = Some(sync_ns);
    }

    /// Appends one record, then syncs according to the policy. On success
    /// the operation is in the OS (and, under `Always`, on disk).
    pub fn append(&mut self, op: &WalOp) -> Result<(), StoreError> {
        if neats_core::failpoint::triggered("wal.append") {
            return Err(neats_core::failpoint::io_error("wal.append").into());
        }
        // The write stage of a request trace: WAL time (encode + write +
        // policy-driven fsync) on the serving thread. No-op off-request.
        let _write = neats_core::obs::stage(neats_core::obs::Stage::Write);
        let started = self.append_ns.is_some().then(std::time::Instant::now);
        let rec = encode_record(op);
        self.file.write_all(&rec)?;
        self.len += rec.len() as u64;
        self.unsynced += 1;
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        if let (Some(h), Some(t)) = (&self.append_ns, started) {
            h.record(t.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    /// Forces everything appended so far to disk.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if neats_core::failpoint::triggered("wal.sync") {
            return Err(neats_core::failpoint::io_error("wal.sync").into());
        }
        let started = self.sync_ns.is_some().then(std::time::Instant::now);
        self.file.sync_all()?;
        self.unsynced = 0;
        if let (Some(h), Some(t)) = (&self.sync_ns, started) {
            h.record(t.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    /// Repairs the file after a failed [`Self::append`]: truncates any
    /// partially written tail back to the last acknowledged record and
    /// re-syncs. `self.len` only advances after a fully successful write,
    /// so truncating to it is always safe — and because truncation needs
    /// no free space, this works even when the failure was `ENOSPC`.
    pub fn repair(&mut self) -> Result<(), StoreError> {
        if neats_core::failpoint::triggered("wal.repair") {
            return Err(neats_core::failpoint::io_error("wal.repair").into());
        }
        self.file.set_len(self.len)?;
        use std::io::Seek;
        self.file.seek(std::io::SeekFrom::Start(self.len))?;
        self.file.sync_all()?;
        self.unsynced = 0;
        Ok(())
    }

    /// Current file length in bytes (header + committed records).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the WAL holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == WAL_HEADER_LEN as u64
    }

    /// The file path this handle appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::Append {
                series: "cpu".into(),
                stamps: vec![1, 5, 9],
                values: vec![-3, 0, 7],
            },
            WalOp::Delete { series: "cpu".into() },
            WalOp::Append { series: "mem".into(), stamps: vec![2], values: vec![i64::MIN] },
        ]
    }

    fn image(ops: &[WalOp]) -> Vec<u8> {
        let mut bytes = header_bytes().to_vec();
        for op in ops {
            bytes.extend_from_slice(&encode_record(op));
        }
        bytes
    }

    #[test]
    fn roundtrip_and_full_consumption() {
        let ops = sample_ops();
        let bytes = image(&ops);
        let (got, valid) = replay(&bytes).unwrap();
        assert_eq!(got, ops);
        assert_eq!(valid, bytes.len());
    }

    #[test]
    fn every_truncation_recovers_a_record_prefix() {
        let ops = sample_ops();
        let bytes = image(&ops);
        // Record boundaries in the image.
        let mut boundaries = vec![WAL_HEADER_LEN];
        for op in &ops {
            boundaries.push(boundaries.last().unwrap() + encode_record(op).len());
        }
        for cut in 0..=bytes.len() {
            let (got, valid) = replay(&bytes[..cut]).unwrap();
            if cut < WAL_HEADER_LEN {
                assert_eq!(valid, 0, "cut {cut}");
                assert!(got.is_empty());
            } else {
                let keep = boundaries.iter().take_while(|&&b| b <= cut).count() - 1;
                assert_eq!(got, ops[..keep], "cut {cut}");
                assert_eq!(valid, boundaries[keep], "cut {cut}");
            }
        }
    }

    #[test]
    fn bad_header_is_rejected_not_truncated() {
        let mut bytes = image(&sample_ops());
        bytes[0] ^= 1;
        assert!(matches!(replay(&bytes), Err(StoreError::Corrupt(_))));
        let mut bytes = image(&sample_ops());
        bytes[8] = 9; // version
        assert!(matches!(replay(&bytes), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn invalid_content_truncates_even_with_a_valid_crc() {
        // A record whose payload decodes but violates the grammar (stamps
        // not increasing) must stop replay at its start.
        let good = WalOp::Append { series: "s".into(), stamps: vec![1], values: vec![1] };
        let mut w = WireWriter::new();
        w.u8(1);
        w.bytes(b"s");
        w.u64_slice(&[5, 5]);
        w.u64_slice(&[1, 2]);
        let payload = w.finish();
        let mut bytes = image(std::slice::from_ref(&good));
        let start = bytes.len();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc64(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let (got, valid) = replay(&bytes).unwrap();
        assert_eq!(got, vec![good]);
        assert_eq!(valid, start);
    }

    #[test]
    fn file_handle_replays_its_own_appends() {
        let dir = std::env::temp_dir().join(format!("neats-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.log");
        let ops = sample_ops();
        {
            let mut wal = Wal::create(&path, FsyncPolicy::Always).unwrap();
            for op in &ops {
                wal.append(op).unwrap();
            }
            assert!(!wal.is_empty());
        }
        // Reopen replays everything; a torn tail byte is truncated away.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xAB, 0x01]).unwrap();
        }
        let (wal, got) = Wal::open_replay(&path, FsyncPolicy::Always).unwrap();
        assert_eq!(got, ops);
        assert_eq!(wal.len(), std::fs::metadata(&path).unwrap().len());
        drop(wal);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
