//! # neats-ingest — the live write path for NeaTS packs
//!
//! `neats-store` builds packs offline and serves them immutably; this crate
//! adds the missing half of the system: **live ingestion** with crash
//! safety, implementing the ingestion scenario the paper sketches in §IV-C1
//! (a lightweight path when points first arrive, NeaTS compression running
//! in the background).
//!
//! An [`Ingestor`] owns a directory with three kinds of files:
//!
//! * a **pack** (`pack-NNNNNN.pack`) — an ordinary `neats_store` packfile
//!   holding everything sealed so far, served zero-copy through an
//!   [`Arc<Store>`](neats_store::Store);
//! * a **write-ahead log** (`wal-NNNNNN.log`) — length-prefixed, CRC-64'd
//!   records of every accepted append/delete since the pack was written
//!   (see [`wal`] for the byte layout and the torn-write recovery rules);
//! * a **`MANIFEST`** — a tiny checksummed file naming the live pack and
//!   WAL. Replacing it via atomic rename is the *single commit point* for
//!   sealing and compaction: a crash on either side of the rename recovers
//!   a consistent generation.
//!
//! In memory, each series keeps a mutable **head**: recent points held as a
//! raw tail plus SNeaTS-compressed chunks (the
//! [`neats_core::NeaTSWriter`] streaming layout). When enough chunks
//! accumulate, [`Ingestor::seal`] folds them into the pack as
//! pre-compressed segments — no recompression — writes a rotated WAL
//! carrying only the unsealed tails, commits the new generation, and swaps
//! the readers' view. Readers never block on any of this: a query takes one
//! brief read-lock to snapshot `(store, head)` and then runs entirely on
//! that snapshot, so concurrent queries see a consistent sealed+head world
//! even while a seal or [`Ingestor::compact`] replaces the generation
//! underneath them.
//!
//! Errors are [`neats_store::StoreError`] throughout — the ingestor extends
//! the store's query surface, so it reuses its error contract (and the
//! serving layer's status mapping) rather than inventing a parallel one.
//!
//! ```
//! use neats_ingest::{Ingestor, IngestConfig};
//!
//! let dir = std::env::temp_dir().join(format!("neats-ingest-doc-{}", std::process::id()));
//! let ing = Ingestor::open(&dir, IngestConfig::default()).unwrap();
//! ing.append("cpu", &[1000, 1001, 1002], &[5, 6, 7]).unwrap();
//! assert_eq!(ing.get("cpu", 2).unwrap(), 7);
//! ing.seal().unwrap();                       // fold full chunks into the pack
//! assert_eq!(ing.get("cpu", 2).unwrap(), 7); // answers are unchanged
//! # drop(ing); std::fs::remove_dir_all(&dir).unwrap();
//! ```
//!
//! Live ingestion is **lossless-only**: the WAL stores exact points, heads
//! store exact points, and sealed segments are exact. Lossy compression
//! remains an offline choice (`neats store build --eps …`); appending to a
//! lossy series in an adopted pack is a
//! [`ModeMismatch`](neats_store::StoreError::ModeMismatch) error.

#![warn(missing_docs)]

pub mod failpoint;
mod head;
pub mod manifest;
mod ingestor;
pub mod wal;

pub use failpoint::FailpointFile;
pub use ingestor::{BackgroundConfig, BackgroundHandle, IngestConfig, Ingestor, SeriesSummary};
pub use wal::{FsyncPolicy, WalOp};
