//! # neats-serve — the HTTP query server over the pack store
//!
//! The paper's headline feature — random access into learned-compressed
//! series — pays off at system scale when queries are served concurrently
//! over the wire. This crate is that serving frontend: a std-only (zero
//! dependencies beyond the workspace) TCP server — an epoll readiness
//! reactor on Linux, a thread-per-connection pool elsewhere — that mounts
//! a packfile via [`neats_store::Store`] and speaks a minimal HTTP/1.1
//! subset:
//!
//! | Endpoint | Answer |
//! |---|---|
//! | `GET /series` | the catalog, as JSON |
//! | `GET /q/<series>?idx=K` \| `?idx=A..B` \| `?t=T` \| `?t=A..B` | one query, plain text |
//! | `POST /q` | many queries (one per body line), one framed response |
//! | `POST /write` | live point ingestion (one `<series> <t> <v>` per line) |
//! | `GET /stats` | cache hit rate + per-endpoint latency percentiles, JSON |
//! | `GET /metrics` | every counter, Prometheus text exposition (0.0.4) |
//! | `GET /debug/requests` | recent requests with per-stage timings, JSON |
//!
//! The server mounts a [`Source`]: either a read-only packfile
//! ([`neats_store::Store`], the original mode — `POST /write` answers 405)
//! or a live ingestion directory ([`neats_ingest::Ingestor`]), where
//! queries span sealed + head state and writes are crash-safe through the
//! WAL.
//!
//! The exact request/response grammar, status codes, and batch frame format
//! are specified in `docs/PROTOCOL.md` at the repository root, with `curl`
//! examples mirrored by the loopback integration test; the system-level
//! picture (how this layer sits on `store` → `neats-core` → `succinct`)
//! is in `ARCHITECTURE.md`.
//!
//! ## Design
//!
//! * **Two serving disciplines behind one switch** —
//!   [`ServeConfig::reactor`] selects between an epoll readiness reactor
//!   (the Linux default under [`ReactorMode::Auto`]; `NEATS_SERVE_REACTOR`
//!   overrides) and a thread-per-connection worker pool (the portable
//!   fallback). Both speak the same strict HTTP subset through the same
//!   parser and handler; every integration suite runs against both.
//! * **The reactor** — the accept loop round-robins admitted connections
//!   into per-shard inboxes; each of [`ServeConfig::shards`] reactor
//!   threads multiplexes *all* of its connections over one epoll instance
//!   (the std-only `polling` shim in `vendor/`). Per connection: a
//!   slab-indexed non-blocking state machine, a write buffer that
//!   re-registers for writability when the socket backs up, and idle /
//!   request / write deadlines on a timer wheel — an idle keep-alive
//!   connection costs a slab entry, never a thread, and a stalled reader
//!   is disconnected at the write deadline.
//! * **The threaded fallback** — [`Server::run`] feeds a closeable queue
//!   drained by `threads` workers ([`neats_core::parallel::Queue`]); one
//!   worker owns a connection for its keep-alive lifetime. Thread counts
//!   resolve from the explicit knob, else `NEATS_SERVE_THREADS`, else all
//!   cores.
//! * **Zero-copy serving** — every shard/worker borrows the one
//!   `Arc<Store>`; responses are rendered straight from the store's
//!   zero-copy [`neats_core::ArchiveView`]s via
//!   [`neats_store::Store::range_chunks`], so *decode* buffers are bounded
//!   by one segment regardless of range length (the rendered text body is
//!   still accumulated in full for `Content-Length` framing). With
//!   `CacheSharding::ByThread` on the store, each shard additionally owns
//!   a private slice of the segment-view cache — no cross-shard locks on
//!   the hot path.
//! * **Keep-alive & pipelining** — connections serve any number of
//!   requests; buffered pipelined requests are handled in order.
//! * **Graceful shutdown** — [`ServerHandle::shutdown`] (the
//!   SIGTERM-equivalent hook) stops the accept loop, drains accepted
//!   connections, finishes in-flight requests (a half-received request is
//!   answered 408), then [`Server::run`] returns with the open-connection
//!   counter at exactly zero.
//! * **Observability** — every counter lives in one
//!   [`neats_core::Registry`] built at [`Server::bind`]: per-endpoint
//!   request/error counters and latency histograms
//!   ([`neats_core::AtomicHistogram`]), connection/byte counters, the
//!   store's cache counters, and — on a live source — the ingest
//!   write-path families (WAL append/fsync latency, seal durations,
//!   degraded transitions). `/stats` renders them as JSON, `GET /metrics`
//!   as Prometheus text, both reading the same atomics. Each request is
//!   traced through stage spans (parse → route → cache → decode → render →
//!   write) into a fixed-size lock-free ring served at
//!   `GET /debug/requests`; requests over the slow-query threshold
//!   ([`ServeConfig::slow_query_us`], env [`SLOW_QUERY_ENV`]) are counted,
//!   flagged in the ring, and logged to stderr.
//!
//! ## Ingest → serve → query roundtrip
//!
//! ```
//! use neats_serve::{ServeConfig, Server};
//! use neats_store::{Store, StoreConfig, StoreWriter};
//! use std::io::{Read, Write};
//! use std::sync::Arc;
//!
//! // Ingest: build a pack with one series.
//! let mut w = StoreWriter::new(StoreConfig::default());
//! let stamps: Vec<u64> = (0..100).map(|i| 1_000 + i * 60).collect();
//! let values: Vec<i64> = (0..100).map(|k: i64| k * k % 83).collect();
//! w.ingest("cpu", &stamps, &values).unwrap();
//! let store = Arc::new(Store::open(w.finish().unwrap()).unwrap());
//!
//! // Serve: bind an ephemeral port and run the server on its own thread.
//! let server = Server::bind(Arc::clone(&store), "127.0.0.1:0", ServeConfig::default()).unwrap();
//! let addr = server.local_addr();
//! let handle = server.handle();
//! let running = std::thread::spawn(move || server.run());
//!
//! // Query: a point lookup over plain HTTP/1.1.
//! let mut conn = std::net::TcpStream::connect(addr).unwrap();
//! conn.write_all(b"GET /q/cpu?idx=42 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
//! let mut response = String::new();
//! conn.read_to_string(&mut response).unwrap();
//! let body = response.split("\r\n\r\n").nth(1).unwrap();
//! assert_eq!(body.trim().parse::<i64>().unwrap(), store.get("cpu", 42).unwrap());
//!
//! // Shut down gracefully; run() returns after the drain.
//! handle.shutdown();
//! running.join().unwrap().unwrap();
//! ```

#![warn(missing_docs)]

mod handler;
mod http;
mod reactor;
mod server;
mod source;
mod stats;

pub use http::{Limits, Method, Request, Response};
pub use server::{
    ReactorMode, ServeConfig, Server, ServerHandle, MAX_CONNS_ENV, REACTOR_ENV, SHARDS_ENV,
    SHED_WATERMARK_ENV, SLOW_QUERY_ENV, THREADS_ENV, TRACE_RING_ENV,
};
pub use source::Source;
pub use stats::{Endpoint, EndpointStats, ServerStats};
