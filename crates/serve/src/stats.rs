//! Per-endpoint request counters and latency histograms, rendered by
//! `GET /stats`.

use neats_core::AtomicHistogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The endpoints the server tracks separately.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /series`.
    Series,
    /// `GET /q/<series>` — single queries.
    Query,
    /// `POST /q` — batched queries.
    Batch,
    /// `POST /write` — live ingestion (live sources only).
    Write,
    /// `GET /stats`.
    Stats,
}

impl Endpoint {
    /// All endpoints, in `/stats` render order.
    pub const ALL: [Endpoint; 5] = [
        Endpoint::Series,
        Endpoint::Query,
        Endpoint::Batch,
        Endpoint::Write,
        Endpoint::Stats,
    ];

    /// The key this endpoint renders under in the `/stats` JSON.
    pub fn key(self) -> &'static str {
        match self {
            Endpoint::Series => "series",
            Endpoint::Query => "query",
            Endpoint::Batch => "batch",
            Endpoint::Write => "write",
            Endpoint::Stats => "stats",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Series => 0,
            Endpoint::Query => 1,
            Endpoint::Batch => 2,
            Endpoint::Write => 3,
            Endpoint::Stats => 4,
        }
    }
}

/// One endpoint's counters.
#[derive(Default)]
pub struct EndpointStats {
    /// Requests routed to the endpoint (including those answered 4xx).
    pub requests: AtomicU64,
    /// Requests answered with a 4xx/5xx status.
    pub errors: AtomicU64,
    /// Wall-clock handling latency, nanoseconds (excludes socket I/O of the
    /// response write).
    pub latency_ns: AtomicHistogram,
}

impl EndpointStats {
    fn new() -> Self {
        Self {
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            latency_ns: AtomicHistogram::new(),
        }
    }
}

impl Default for ServerStats {
    fn default() -> Self {
        Self::new()
    }
}

/// All counters one server instance exposes on `/stats`.
pub struct ServerStats {
    started: Instant,
    /// Connections accepted since start.
    pub accepted: AtomicU64,
    /// Connections currently being served.
    pub active: AtomicU64,
    /// Requests that failed HTTP parsing before reaching any endpoint
    /// (malformed heads, limit violations, timeouts).
    pub protocol_errors: AtomicU64,
    /// Requests for paths that route nowhere (404/405 before an endpoint).
    pub unrouted: AtomicU64,
    /// Handler panics converted to 500s — the severest failure class must
    /// be visible on `/stats`, and a panicking handler never reaches the
    /// per-endpoint recording path.
    pub panics: AtomicU64,
    /// Connections shed at accept time (connection cap or worker-queue
    /// watermark exceeded) with a canned `503 + Retry-After`.
    pub shed: AtomicU64,
    /// Requests answered 408: header/body slow-drip or idle keep-alive
    /// deadlines (the slowloris defenses).
    pub timeouts: AtomicU64,
    /// Requests answered 503 by a handler — the source was degraded
    /// (read-only ingest) or quarantined when the request arrived.
    pub degraded: AtomicU64,
    endpoints: [EndpointStats; 5],
}

impl ServerStats {
    /// Fresh counters; the uptime clock starts now.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            accepted: AtomicU64::new(0),
            active: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            unrouted: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            endpoints: [
                EndpointStats::new(),
                EndpointStats::new(),
                EndpointStats::new(),
                EndpointStats::new(),
                EndpointStats::new(),
            ],
        }
    }

    /// The counters of `e`.
    pub fn endpoint(&self, e: Endpoint) -> &EndpointStats {
        &self.endpoints[e.index()]
    }

    /// Records one handled request on `e`.
    pub fn record(&self, e: Endpoint, status: u16, elapsed_ns: u64) {
        let s = self.endpoint(e);
        s.requests.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            s.errors.fetch_add(1, Ordering::Relaxed);
        }
        s.latency_ns.record(elapsed_ns);
    }

    /// Seconds since the server started.
    pub fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}
