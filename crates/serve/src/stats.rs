//! Per-endpoint request counters and latency histograms, rendered by
//! `GET /stats` — plus the serve-layer observability bundle ([`Obs`]).
//!
//! Every counter is an `Arc`'d atomic so it can be registered into the
//! workspace metrics [`Registry`] ([`ServerStats::register`]): `/stats` and
//! `GET /metrics` then read the *same* memory — one source of truth, no
//! sampling skew between the two surfaces.

use neats_core::{AtomicHistogram, Registry, TraceRing};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The endpoints the server tracks separately.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /series`.
    Series,
    /// `GET /q/<series>` — single queries.
    Query,
    /// `POST /q` — batched queries.
    Batch,
    /// `POST /write` — live ingestion (live sources only).
    Write,
    /// `GET /stats`.
    Stats,
    /// `GET /metrics` — Prometheus text exposition.
    Metrics,
    /// `GET /debug/requests` — the recent-request trace ring.
    Debug,
}

impl Endpoint {
    /// All endpoints, in `/stats` render order.
    pub const ALL: [Endpoint; 7] = [
        Endpoint::Series,
        Endpoint::Query,
        Endpoint::Batch,
        Endpoint::Write,
        Endpoint::Stats,
        Endpoint::Metrics,
        Endpoint::Debug,
    ];

    /// The key this endpoint renders under in the `/stats` JSON (and the
    /// `endpoint` label value on `/metrics`).
    pub fn key(self) -> &'static str {
        match self {
            Endpoint::Series => "series",
            Endpoint::Query => "query",
            Endpoint::Batch => "batch",
            Endpoint::Write => "write",
            Endpoint::Stats => "stats",
            Endpoint::Metrics => "metrics",
            Endpoint::Debug => "debug",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Series => 0,
            Endpoint::Query => 1,
            Endpoint::Batch => 2,
            Endpoint::Write => 3,
            Endpoint::Stats => 4,
            Endpoint::Metrics => 5,
            Endpoint::Debug => 6,
        }
    }
}

/// One endpoint's counters (shared handles — see the module docs).
pub struct EndpointStats {
    /// Requests routed to the endpoint (including those answered 4xx).
    pub requests: Arc<AtomicU64>,
    /// Requests answered with a 4xx/5xx status.
    pub errors: Arc<AtomicU64>,
    /// Wall-clock handling latency, nanoseconds (excludes socket I/O of the
    /// response write).
    pub latency_ns: Arc<AtomicHistogram>,
}

impl Default for EndpointStats {
    fn default() -> Self {
        Self::new()
    }
}

impl EndpointStats {
    fn new() -> Self {
        Self {
            requests: Arc::new(AtomicU64::new(0)),
            errors: Arc::new(AtomicU64::new(0)),
            latency_ns: Arc::new(AtomicHistogram::new()),
        }
    }
}

impl Default for ServerStats {
    fn default() -> Self {
        Self::new()
    }
}

/// All counters one server instance exposes on `/stats`.
pub struct ServerStats {
    started: Instant,
    /// Connections accepted since start.
    pub accepted: Arc<AtomicU64>,
    /// Connections currently being served.
    pub active: Arc<AtomicU64>,
    /// Requests that failed HTTP parsing before reaching any endpoint
    /// (malformed heads, limit violations, timeouts).
    pub protocol_errors: Arc<AtomicU64>,
    /// Requests for paths that route nowhere (404/405 before an endpoint).
    pub unrouted: Arc<AtomicU64>,
    /// Handler panics converted to 500s — the severest failure class must
    /// be visible on `/stats`, and a panicking handler never reaches the
    /// per-endpoint recording path.
    pub panics: Arc<AtomicU64>,
    /// Connections shed at accept time (connection cap or worker-queue
    /// watermark exceeded) with a canned `503 + Retry-After`.
    pub shed: Arc<AtomicU64>,
    /// Requests answered 408: header/body slow-drip or idle keep-alive
    /// deadlines (the slowloris defenses).
    pub timeouts: Arc<AtomicU64>,
    /// Requests answered 503 by a handler — the source was degraded
    /// (read-only ingest) or quarantined when the request arrived.
    pub degraded: Arc<AtomicU64>,
    /// Requests that crossed the slow-query threshold (see
    /// [`crate::SLOW_QUERY_ENV`]); 0 while the log is disabled.
    pub slow_queries: Arc<AtomicU64>,
    /// Request bytes received (head + body of parsed requests).
    pub bytes_in: Arc<AtomicU64>,
    /// Response bytes written to sockets.
    pub bytes_out: Arc<AtomicU64>,
    endpoints: [EndpointStats; 7],
}

impl ServerStats {
    /// Fresh counters; the uptime clock starts now.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            accepted: Arc::new(AtomicU64::new(0)),
            active: Arc::new(AtomicU64::new(0)),
            protocol_errors: Arc::new(AtomicU64::new(0)),
            unrouted: Arc::new(AtomicU64::new(0)),
            panics: Arc::new(AtomicU64::new(0)),
            shed: Arc::new(AtomicU64::new(0)),
            timeouts: Arc::new(AtomicU64::new(0)),
            degraded: Arc::new(AtomicU64::new(0)),
            slow_queries: Arc::new(AtomicU64::new(0)),
            bytes_in: Arc::new(AtomicU64::new(0)),
            bytes_out: Arc::new(AtomicU64::new(0)),
            endpoints: std::array::from_fn(|_| EndpointStats::new()),
        }
    }

    /// The counters of `e`.
    pub fn endpoint(&self, e: Endpoint) -> &EndpointStats {
        &self.endpoints[e.index()]
    }

    /// Records one handled request on `e`.
    pub fn record(&self, e: Endpoint, status: u16, elapsed_ns: u64) {
        let s = self.endpoint(e);
        s.requests.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            s.errors.fetch_add(1, Ordering::Relaxed);
        }
        s.latency_ns.record(elapsed_ns);
    }

    /// Seconds since the server started.
    pub fn uptime_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Registers every counter into `reg` as shared samples — the atomics
    /// behind `/metrics` are the ones [`Self::record`] and the serving
    /// loops bump, so the two exposition surfaces can never disagree.
    pub fn register(&self, reg: &Registry) {
        let t0 = self.started;
        reg.gauge_fn(
            "neats_serve_uptime_seconds",
            "Seconds since the server started.",
            &[],
            move || t0.elapsed().as_secs_f64(),
        );
        reg.counter_shared(
            "neats_serve_connections_accepted_total",
            "Connections accepted since start.",
            &[],
            Arc::clone(&self.accepted),
        );
        reg.gauge_shared(
            "neats_serve_connections_active",
            "Connections currently being served.",
            &[],
            Arc::clone(&self.active),
        );
        reg.counter_shared(
            "neats_serve_protocol_errors_total",
            "Requests that failed HTTP parsing before reaching any endpoint.",
            &[],
            Arc::clone(&self.protocol_errors),
        );
        reg.counter_shared(
            "neats_serve_unrouted_total",
            "Requests for paths that route nowhere (404/405).",
            &[],
            Arc::clone(&self.unrouted),
        );
        reg.counter_shared(
            "neats_serve_panics_total",
            "Handler panics converted to 500 responses.",
            &[],
            Arc::clone(&self.panics),
        );
        reg.counter_shared(
            "neats_serve_shed_total",
            "Connections shed at accept time with a canned 503.",
            &[],
            Arc::clone(&self.shed),
        );
        reg.counter_shared(
            "neats_serve_timeouts_total",
            "Requests answered 408 (slow-drip or idle deadlines).",
            &[],
            Arc::clone(&self.timeouts),
        );
        reg.counter_shared(
            "neats_serve_degraded_responses_total",
            "Requests answered 503 by a handler (degraded or quarantined source).",
            &[],
            Arc::clone(&self.degraded),
        );
        reg.counter_shared(
            "neats_serve_slow_queries_total",
            "Requests that crossed the slow-query threshold.",
            &[],
            Arc::clone(&self.slow_queries),
        );
        reg.counter_shared(
            "neats_serve_bytes_in_total",
            "Request bytes received (head + body of parsed requests).",
            &[],
            Arc::clone(&self.bytes_in),
        );
        reg.counter_shared(
            "neats_serve_bytes_out_total",
            "Response bytes written to sockets.",
            &[],
            Arc::clone(&self.bytes_out),
        );
        for e in Endpoint::ALL {
            let s = self.endpoint(e);
            let labels = [("endpoint", e.key())];
            reg.counter_shared(
                "neats_serve_requests_total",
                "Requests routed per endpoint (including those answered 4xx).",
                &labels,
                Arc::clone(&s.requests),
            );
            reg.counter_shared(
                "neats_serve_errors_total",
                "Requests answered 4xx/5xx per endpoint.",
                &labels,
                Arc::clone(&s.errors),
            );
            reg.histogram_shared(
                "neats_serve_request_ns",
                "Request handling latency per endpoint, nanoseconds.",
                &labels,
                Arc::clone(&s.latency_ns),
            );
        }
    }
}

/// The serve-layer observability bundle, created at [`crate::Server::bind`]
/// and threaded to the handler through the shared server state: the metric
/// registry `/metrics` renders, the recent-request trace ring behind
/// `/debug/requests`, the slow-query threshold, and the serving metadata
/// `/stats` reports (source label, resolved mode, shard count).
pub(crate) struct Obs {
    pub(crate) registry: Arc<Registry>,
    pub(crate) ring: TraceRing,
    /// Slow-query threshold in microseconds; `0` disables the log.
    pub(crate) slow_query_us: u64,
    /// Per-shard registered-connection gauges (reactor mode; empty when
    /// threaded).
    pub(crate) shard_depths: Vec<Arc<AtomicU64>>,
    /// What the server is serving (pack path or ingest directory).
    pub(crate) source_label: String,
    /// The resolved serving discipline (`"reactor"` / `"threaded"`).
    pub(crate) mode: &'static str,
    /// Resolved reactor shard count (the threaded pool size when threaded).
    pub(crate) shards: usize,
}

impl Obs {
    /// An inert bundle for direct `handler::handle` calls in tests: empty
    /// registry, disabled ring, slow-query log off.
    #[cfg(test)]
    pub(crate) fn disabled() -> Self {
        Self {
            registry: Arc::new(Registry::new()),
            ring: TraceRing::new(0),
            slow_query_us: 0,
            shard_depths: Vec::new(),
            source_label: String::new(),
            mode: "threaded",
            shards: 1,
        }
    }
}
