//! The data source behind the server: an immutable pack or a live
//! ingestion directory.
//!
//! Every endpoint is written against [`Source`], which delegates each
//! query to either a [`Store`] (read-only packfile, the original serving
//! mode) or an [`Ingestor`] (live directory: sealed pack + mutable heads,
//! see [`neats_ingest`]). The two backends share the query surface and the
//! [`StoreError`] contract, so the grammar, status codes, and rendering
//! code are identical in both modes; the only live-only endpoint is
//! `POST /write`, which answers `405` on a pack.

use neats_ingest::{Ingestor, SeriesSummary};
use neats_store::{CacheStats, Store, StoreError, StoreMode};
use std::ops::Range;
use std::sync::Arc;

/// What the server serves: a sealed pack or a live ingestion directory.
/// Cloning is cheap (an `Arc` bump) — metric scrape closures hold clones.
#[derive(Clone)]
pub enum Source {
    /// An immutable packfile, served zero-copy. Writes are rejected.
    Pack(Arc<Store>),
    /// A live ingestion directory: queries span sealed + head state, and
    /// `POST /write` appends.
    Live(Arc<Ingestor>),
}

impl From<Arc<Store>> for Source {
    fn from(store: Arc<Store>) -> Self {
        Source::Pack(store)
    }
}

impl From<Store> for Source {
    fn from(store: Store) -> Self {
        Source::Pack(Arc::new(store))
    }
}

impl From<Arc<Ingestor>> for Source {
    fn from(ing: Arc<Ingestor>) -> Self {
        Source::Live(ing)
    }
}

impl From<Ingestor> for Source {
    fn from(ing: Ingestor) -> Self {
        Source::Live(Arc::new(ing))
    }
}

impl Source {
    /// The live ingestor, when serving one (`None` for a pack).
    pub fn live(&self) -> Option<&Arc<Ingestor>> {
        match self {
            Source::Pack(_) => None,
            Source::Live(ing) => Some(ing),
        }
    }

    /// Whether this source accepts writes.
    pub fn is_live(&self) -> bool {
        matches!(self, Source::Live(_))
    }

    /// The value at `idx`.
    pub fn get(&self, series: &str, idx: usize) -> Result<i64, StoreError> {
        match self {
            Source::Pack(s) => s.get(series, idx),
            Source::Live(i) => i.get(series, idx),
        }
    }

    /// The value whose timestamp is exactly `t`, if any.
    pub fn at_time(&self, series: &str, t: u64) -> Result<Option<i64>, StoreError> {
        match self {
            Source::Pack(s) => s.at_time(series, t),
            Source::Live(i) => i.at_time(series, t),
        }
    }

    /// Streams the values at positions `range` in bounded chunks.
    pub fn range_chunks(
        &self,
        series: &str,
        range: Range<usize>,
        f: impl FnMut(&[i64]),
    ) -> Result<(), StoreError> {
        match self {
            Source::Pack(s) => s.range_chunks(series, range, f),
            Source::Live(i) => i.range_chunks(series, range, f),
        }
    }

    /// Streams all `(timestamp, value)` pairs with timestamp in
    /// `[t_lo, t_hi]` in bounded chunks.
    pub fn range_by_time_chunks(
        &self,
        series: &str,
        t_lo: u64,
        t_hi: u64,
        f: impl FnMut(&[(u64, i64)]),
    ) -> Result<(), StoreError> {
        match self {
            Source::Pack(s) => s.range_by_time_chunks(series, t_lo, t_hi, f),
            Source::Live(i) => i.range_by_time_chunks(series, t_lo, t_hi, f),
        }
    }

    /// Catalog summaries: pack entries in catalog order, or the live view
    /// (sealed + head, name-sorted — live catalog positions depend on seal
    /// timing and would not be stable across recovery).
    pub fn summaries(&self) -> Vec<SeriesSummary> {
        match self {
            Source::Pack(s) => s
                .entries()
                .iter()
                .map(|e| SeriesSummary {
                    name: e.name().to_string(),
                    mode: e.mode(),
                    points: e.len(),
                    segments: e.segments().len(),
                    t_min: e.t_min(),
                    t_max: e.t_max(),
                })
                .collect(),
            Source::Live(i) => i.series_summaries(),
        }
    }

    /// Number of live series.
    pub fn series_count(&self) -> usize {
        match self {
            Source::Pack(s) => s.series_count(),
            Source::Live(i) => i.series_count(),
        }
    }

    /// Total points across all series.
    pub fn total_points(&self) -> usize {
        match self {
            Source::Pack(s) => s.total_points(),
            Source::Live(i) => i.total_points(),
        }
    }

    /// Segment-view cache counters of the current generation.
    pub fn cache_stats(&self) -> CacheStats {
        match self {
            Source::Pack(s) => s.cache_stats(),
            Source::Live(i) => i.cache_stats(),
        }
    }

    /// Number of quarantined segments (failed validation on load; isolated
    /// so the rest of the store keeps serving).
    pub fn quarantined_count(&self) -> usize {
        match self {
            Source::Pack(s) => s.quarantined_count(),
            Source::Live(i) => i.quarantined_count(),
        }
    }

    /// Total quarantine insertions observed (monotone per store generation;
    /// a live source's counter restarts when a seal swaps generations).
    pub fn quarantine_events(&self) -> u64 {
        match self {
            Source::Pack(s) => s.quarantine_events(),
            Source::Live(i) => i.quarantine_events(),
        }
    }

    /// Registers the source's counters into `reg` as scrape-time closures
    /// (each holds a clone of this source). A live source additionally
    /// registers the full ingest write-path families — see
    /// [`Ingestor::register_metrics`].
    pub fn register_metrics(&self, reg: &neats_core::Registry) {
        let s = self.clone();
        reg.counter_fn(
            "neats_store_cache_hits_total",
            "Segment-view cache lookups served from an open view (current generation).",
            &[],
            move || s.cache_stats().hits,
        );
        let s = self.clone();
        reg.counter_fn(
            "neats_store_cache_misses_total",
            "Segment-view cache lookups that had to open the segment (current generation).",
            &[],
            move || s.cache_stats().misses,
        );
        let s = self.clone();
        reg.counter_fn(
            "neats_store_cache_evictions_total",
            "Segment views evicted to make room (LRU per shard, current generation).",
            &[],
            move || s.cache_stats().evictions,
        );
        let s = self.clone();
        reg.gauge_fn(
            "neats_store_cache_entries",
            "Segment views currently cached.",
            &[],
            move || s.cache_stats().entries as f64,
        );
        let s = self.clone();
        reg.gauge_fn(
            "neats_store_quarantined_segments",
            "Segments currently quarantined (failed validation; isolated from serving).",
            &[],
            move || s.quarantined_count() as f64,
        );
        let s = self.clone();
        reg.counter_fn(
            "neats_store_quarantine_events_total",
            "Quarantine insertions observed (current store generation).",
            &[],
            move || s.quarantine_events(),
        );
        let s = self.clone();
        reg.gauge_fn("neats_store_series", "Live series count.", &[], move || {
            s.series_count() as f64
        });
        let s = self.clone();
        reg.gauge_fn(
            "neats_store_points",
            "Total points across all series (sealed + heads on a live source).",
            &[],
            move || s.total_points() as f64,
        );
        if let Source::Live(ing) = self {
            ing.register_metrics(reg);
        }
    }
}

/// Used by `/series` to render the `eps` field.
pub(crate) fn mode_eps(mode: StoreMode) -> u64 {
    match mode {
        StoreMode::Lossless => 0,
        StoreMode::Lossy { eps } => eps,
    }
}
