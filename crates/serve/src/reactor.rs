//! The epoll readiness reactor: shard-per-core event-driven serving.
//!
//! This is the C10K answer to the thread-per-connection capacity bug: a
//! worker that *owns* a keep-alive connection is held hostage by an idle
//! client, so W idle clients (W = pool size) make the server unreachable.
//! Here no thread owns a connection. The accept loop deals admitted
//! connections round-robin to `shards` event-loop threads; each shard owns
//! an epoll [`Poller`] (via the `vendor/polling` syscall shim), a slab of
//! non-blocking connections, and a timer wheel of idle/request/write
//! deadlines. An idle connection costs one slab slot and one wheel entry —
//! ten thousand of them leave every shard free to answer the next request
//! the moment its bytes arrive.
//!
//! ## Per-connection state machine
//!
//! Readiness events drive the same strict parser as the blocking path
//! (`http::find_head_end` / `http::parse_head` — both written to take a
//! byte slice precisely so the two paths cannot diverge): bytes accumulate
//! in a read buffer, complete heads are parsed, bodies waited for, and
//! every complete request is dispatched inline through `handler::handle`
//! (wrapped in `catch_unwind` — a panicking handler answers 500 and closes,
//! same as the threaded path). Responses serialize into a per-connection
//! write buffer flushed opportunistically; when the socket's send buffer
//! fills (a slow or stalled reader), the remainder waits for
//! write-readiness — the shard moves on instead of blocking.
//!
//! ## Deadlines
//!
//! The 50 ms read-timeout poll tick of the blocking path is replaced by a
//! timer wheel (coarse slots, lazy re-check on fire): between requests a
//! connection carries the idle deadline (408 on expiry), a started request
//! must complete within the request timeout (408 — progress does not
//! extend it, so slow-drip clients still lose), and buffered response
//! bytes must drain within the request timeout or the connection is
//! dropped (the write-side slowloris defense the blocking path can only
//! approximate with per-syscall timeouts).
//!
//! ## Shutdown
//!
//! Graceful drain preserves the PR 5–7 contract: in-flight and
//! fully-buffered pipelined requests are answered with
//! `Connection: close`; idle connections close immediately; a request
//! caught half-sent is answered 408 like the blocking path. The shard
//! exits once its slab is empty.

use crate::handler;
use crate::http::{self, HttpError, Limits, Method, Request, Response};
use crate::server::{shed_connection, ServeConfig, Shared};
use crate::source::Source;
use neats_core::parallel::Queue;
use polling::{Event, Events, Poller};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Upper bound on one `Poller::wait`, so a shard re-checks the shutdown
/// flag even if the wake-up notify is somehow lost.
const MAX_WAIT: Duration = Duration::from_millis(500);

/// Bytes read from one connection per readiness event before yielding to
/// the rest of the shard — fairness against a fast bulk sender.
const READ_BUDGET: usize = 64 * 1024;

/// Compact a partially flushed write buffer once the flushed prefix
/// exceeds this many bytes (amortizes the memmove).
const WRITE_COMPACT: usize = 64 * 1024;

/// One accepted connection handed to a shard but not yet registered.
type Inbox = Queue<TcpStream>;

struct ReactorShard {
    poller: Poller,
    inbox: Inbox,
}

/// Runs the reactor until shutdown: the calling thread accepts, `shards`
/// scoped threads run event loops. Fails with `Unsupported` *before*
/// touching the listener when the platform has no epoll, so the caller can
/// fall back to the threaded path.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run(
    listener: &TcpListener,
    source: &Source,
    shared: &Arc<Shared>,
    cfg: &ServeConfig,
    limits: &Limits,
    shards: usize,
    max_conns: u64,
    watermark: u64,
) -> std::io::Result<()> {
    // Probe epoll first: every shard gets its own poller, and a platform
    // without epoll fails here with the listener untouched.
    let shards: Vec<ReactorShard> = (0..shards.max(1))
        .map(|_| {
            Ok(ReactorShard {
                poller: Poller::new()?,
                inbox: Inbox::new(),
            })
        })
        .collect::<std::io::Result<_>>()?;
    std::thread::scope(|s| {
        for (idx, shard) in shards.iter().enumerate() {
            let n = shards.len();
            s.spawn(move || shard_loop(shard, idx, source, shared, limits, n));
        }
        // The accept loop mirrors the threaded path: non-blocking accept
        // with a short tick so shutdown is observed even if the wake-up
        // connect never lands, and admission control sheds past the
        // connection cap (or an inbox backlog past the watermark — only
        // possible when the event loops themselves have stalled).
        let accept_tick = Duration::from_millis(2).min(cfg.poll_interval);
        let nonblocking = listener.set_nonblocking(true).is_ok();
        let mut next_shard = 0usize;
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((conn, _peer)) => {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break; // likely the wake-up connection; drop it
                    }
                    if conn.set_nonblocking(true).is_err() {
                        continue;
                    }
                    if shared.open_conns.load(Ordering::Relaxed) >= max_conns
                        || shared.queued.load(Ordering::Relaxed) >= watermark
                    {
                        shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                        shed_connection(conn);
                        continue;
                    }
                    shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                    shared.open_conns.fetch_add(1, Ordering::Relaxed);
                    shared.queued.fetch_add(1, Ordering::Relaxed);
                    let shard = &shards[next_shard % shards.len()];
                    next_shard = next_shard.wrapping_add(1);
                    if !shard.inbox.push(conn) {
                        // Closed between the shutdown check and the push:
                        // the connection was dropped, never registered.
                        // Undo the optimistic accounting or /stats lies for
                        // the whole drain.
                        shared.stats.accepted.fetch_sub(1, Ordering::Relaxed);
                        shared.open_conns.fetch_sub(1, Ordering::Relaxed);
                        shared.queued.fetch_sub(1, Ordering::Relaxed);
                        break;
                    }
                    let _ = shard.poller.notify();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock && nonblocking => {
                    std::thread::sleep(accept_tick);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    // Transient accept failure (e.g. fd exhaustion): back
                    // off briefly instead of spinning.
                    std::thread::sleep(cfg.poll_interval);
                }
            }
        }
        shared.accept_exited.store(true, Ordering::SeqCst);
        for shard in &shards {
            shard.inbox.close();
            let _ = shard.poller.notify();
        }
    });
    Ok(())
}

/// What a connection is waiting to read.
struct PendingBody {
    method: Method,
    path: String,
    query: String,
    keep_alive: bool,
    /// Body bytes still expected (`Content-Length`).
    need: usize,
    /// Size of the already-drained head, for the `bytes_in` counter.
    head_bytes: usize,
}

/// One registered connection's full state.
struct ConnState {
    stream: TcpStream,
    /// Received, not-yet-parsed bytes (keep-alive pipelining keeps later
    /// requests here across dispatches).
    rbuf: Vec<u8>,
    /// Serialized responses not yet accepted by the socket.
    wbuf: Vec<u8>,
    /// Flushed prefix of `wbuf`.
    wpos: usize,
    /// A parsed head waiting for its body.
    pending_body: Option<PendingBody>,
    /// Idle deadline between requests, request deadline once one started.
    read_deadline: Instant,
    read_deadline_is_idle: bool,
    /// Armed while `wbuf` has unflushed bytes: the stalled-reader cutoff.
    write_deadline: Option<Instant>,
    /// Close once `wbuf` drains (error responses, `Connection: close`).
    close_after_flush: bool,
    /// Peer half-closed its send direction; no more bytes will arrive.
    eof: bool,
    /// Unrecoverable socket error; close immediately.
    dead: bool,
    /// A request completed during the current pass (resets the request
    /// deadline for a pipelined successor, matching the blocking path's
    /// per-`read_request` timer).
    completed_this_pass: bool,
    /// Tick of this connection's earliest live wheel entry (`u64::MAX`
    /// when none) — wheel entries are hints, re-checked on fire.
    wheel_tick: u64,
    /// Bumped when the slot is reused, killing stale wheel entries.
    gen: u64,
}

impl ConnState {
    fn new(stream: TcpStream, now: Instant, limits: &Limits, gen: u64) -> Self {
        Self {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            pending_body: None,
            read_deadline: now + limits.idle_timeout,
            read_deadline_is_idle: true,
            write_deadline: None,
            close_after_flush: false,
            eof: false,
            dead: false,
            completed_this_pass: false,
            wheel_tick: u64::MAX,
            gen,
        }
    }

    /// Unflushed response bytes remain.
    fn write_pending(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// A request has started but not finished arriving.
    fn mid_request(&self) -> bool {
        self.pending_body.is_some() || !self.rbuf.is_empty()
    }

    /// The earliest armed deadline.
    fn next_deadline(&self) -> Instant {
        match self.write_deadline {
            Some(w) => w.min(self.read_deadline),
            None => self.read_deadline,
        }
    }
}

/// A slab of connections: stable `usize` keys (the epoll registration
/// keys), O(1) insert/remove, freed slots reused with a bumped generation.
struct Slab {
    slots: Vec<Option<ConnState>>,
    free: Vec<usize>,
    live: usize,
    next_gen: u64,
}

impl Slab {
    fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            next_gen: 0,
        }
    }

    fn insert(&mut self, stream: TcpStream, now: Instant, limits: &Limits) -> usize {
        self.live += 1;
        self.next_gen += 1;
        let conn = ConnState::new(stream, now, limits, self.next_gen);
        match self.free.pop() {
            Some(key) => {
                self.slots[key] = Some(conn);
                key
            }
            None => {
                self.slots.push(Some(conn));
                self.slots.len() - 1
            }
        }
    }

    fn get_mut(&mut self, key: usize) -> Option<&mut ConnState> {
        self.slots.get_mut(key).and_then(|s| s.as_mut())
    }

    fn remove(&mut self, key: usize) -> Option<ConnState> {
        let conn = self.slots.get_mut(key).and_then(|s| s.take());
        if conn.is_some() {
            self.live -= 1;
            self.free.push(key);
        }
        conn
    }

    fn keys(&self) -> Vec<usize> {
        (0..self.slots.len())
            .filter(|&k| self.slots[k].is_some())
            .collect()
    }
}

/// A coarse hashed timer wheel. Entries are *hints*: on fire, the
/// connection's actual deadlines decide; a not-yet-due connection is
/// lazily re-inserted at its real deadline. Insertion is suppressed when
/// an earlier live entry already covers the connection
/// ([`ConnState::wheel_tick`]), so a busy keep-alive connection costs ~one
/// entry, not one per request.
struct TimerWheel {
    /// `slots[tick % len]` holds `(key, gen, tick)` hints.
    slots: Vec<Vec<(usize, u64, u64)>>,
    granularity: Duration,
    start: Instant,
    /// Last processed tick.
    cursor: u64,
    /// Earliest tick of any live entry (`u64::MAX` when empty); recomputed
    /// lazily when crossed.
    nearest: u64,
}

impl TimerWheel {
    fn new(granularity: Duration, slots: usize, now: Instant) -> Self {
        Self {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            granularity,
            start: now,
            cursor: 0,
            nearest: u64::MAX,
        }
    }

    /// The tick that covers `t` (rounded up: an entry never fires early).
    fn tick_of(&self, t: Instant) -> u64 {
        let nanos = t.saturating_duration_since(self.start).as_nanos();
        (nanos / self.granularity.as_nanos()) as u64 + 1
    }

    fn insert(&mut self, key: usize, gen: u64, deadline: Instant) -> u64 {
        let tick = self.tick_of(deadline).max(self.cursor + 1);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push((key, gen, tick));
        self.nearest = self.nearest.min(tick);
        tick
    }

    /// Drains every entry due by `now` into `due` as `(key, gen)` pairs.
    fn advance(&mut self, now: Instant, due: &mut Vec<(usize, u64)>) {
        let target = self.tick_of(now).saturating_sub(1); // ticks fully in the past
        let mut recompute_nearest = false;
        while self.cursor < target {
            // Jump straight to the next tick that can hold a due entry —
            // with a 10k-connection slab the wheel is consulted on every
            // poll wake-up, and walking 100 empty ticks each time would
            // cost more than the timers themselves.
            if self.nearest > target {
                self.cursor = target;
                break;
            }
            self.cursor = self.cursor.max(self.nearest - 1) + 1;
            if self.cursor >= self.nearest {
                recompute_nearest = true;
            }
            let slot = (self.cursor % self.slots.len() as u64) as usize;
            let entries = &mut self.slots[slot];
            let mut i = 0;
            while i < entries.len() {
                if entries[i].2 <= self.cursor {
                    let (key, gen, _) = entries.swap_remove(i);
                    due.push((key, gen));
                } else {
                    i += 1;
                }
            }
        }
        if recompute_nearest {
            self.nearest = self
                .slots
                .iter()
                .flat_map(|s| s.iter().map(|&(_, _, tick)| tick))
                .min()
                .unwrap_or(u64::MAX);
        }
    }

    /// When the next entry could fire (`None` when the wheel is empty).
    fn next_wakeup(&self) -> Option<Instant> {
        if self.nearest == u64::MAX {
            return None;
        }
        Some(self.start + self.granularity * self.nearest as u32)
    }
}

/// Everything a shard loop needs, bundled so the helpers stay callable
/// without threading eight arguments through every function.
struct ShardCtx<'a> {
    poller: &'a Poller,
    source: &'a Source,
    shared: &'a Shared,
    limits: &'a Limits,
    /// Reported as the concurrency on `/stats` (shard count).
    threads: usize,
    conns: Slab,
    wheel: TimerWheel,
}

/// One shard's event loop: drain the inbox, service readiness events,
/// expire deadlines, and — once shutdown starts — drain connections per
/// the graceful contract.
fn shard_loop(
    shard: &ReactorShard,
    idx: usize,
    source: &Source,
    shared: &Arc<Shared>,
    limits: &Limits,
    threads: usize,
) {
    let depth_gauge = shared.obs.shard_depths.get(idx);
    let now = Instant::now();
    let mut ctx = ShardCtx {
        poller: &shard.poller,
        source,
        shared,
        limits,
        threads,
        conns: Slab::new(),
        // 10 ms slots: deadline slop stays well under the second-scale
        // timeouts, and one revolution of 256 slots covers 2.56 s — longer
        // deadlines just re-check lazily a handful of times.
        wheel: TimerWheel::new(Duration::from_millis(10), 256, now),
    };
    let mut events = Events::new();
    let mut due: Vec<(usize, u64)> = Vec::new();
    loop {
        // Exit only once the accept loop has closed the inbox: a connection
        // could otherwise be pushed (and counted) right after this shard
        // checked emptiness, and leak. After close() no push can succeed.
        if shared.shutdown.load(Ordering::SeqCst)
            && ctx.conns.live == 0
            && shard.inbox.is_closed()
            && shard.inbox.is_empty()
        {
            break;
        }
        let timeout = ctx
            .wheel
            .next_wakeup()
            .map(|t| t.saturating_duration_since(Instant::now()))
            .unwrap_or(MAX_WAIT)
            .min(MAX_WAIT);
        if shard.poller.wait(&mut events, Some(timeout)).is_err() {
            // Only pathological states (e.g. EBADF after fd corruption)
            // land here; back off so a persistent failure cannot burn the
            // core, and keep serving — deadlines and the inbox still work.
            std::thread::sleep(Duration::from_millis(10));
        }
        let now = Instant::now();
        // New connections first: they may already carry a full request.
        while let Some(stream) = shard.inbox.try_pop() {
            shared.queued.fetch_sub(1, Ordering::Relaxed);
            register(&mut ctx, stream, now);
        }
        // Published once per wake-up: exact enough for a scrape, free for
        // the hot path.
        if let Some(g) = depth_gauge {
            g.store(ctx.conns.live as u64, Ordering::Relaxed);
        }
        for ev in events.iter() {
            handle_event(&mut ctx, ev.key, ev.readable, ev.writable);
        }
        due.clear();
        ctx.wheel.advance(Instant::now(), &mut due);
        for &(key, gen) in &due {
            handle_deadline(&mut ctx, key, gen);
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            drain_pass(&mut ctx);
        }
    }
}

/// Registers a fresh connection with the poller and the idle deadline.
fn register(ctx: &mut ShardCtx<'_>, stream: TcpStream, now: Instant) {
    let _ = stream.set_nodelay(true);
    ctx.shared.stats.active.fetch_add(1, Ordering::Relaxed);
    let key = ctx.conns.insert(stream, now, ctx.limits);
    let conn = ctx.conns.get_mut(key).expect("just inserted");
    if ctx.poller.add(&conn.stream, Event::readable(key)).is_err() {
        // Registration failed (fd exhaustion inside epoll): nothing can be
        // served; undo and drop.
        let _ = ctx.conns.remove(key);
        ctx.shared.stats.active.fetch_sub(1, Ordering::Relaxed);
        ctx.shared.open_conns.fetch_sub(1, Ordering::Relaxed);
        return;
    }
    let (gen, deadline) = (conn.gen, conn.next_deadline());
    let tick = ctx.wheel.insert(key, gen, deadline);
    if let Some(conn) = ctx.conns.get_mut(key) {
        conn.wheel_tick = tick;
    }
    // A connection may arrive with its first request already in the socket
    // buffer; serve it now rather than waiting for an edge.
    handle_event(ctx, key, true, false);
}

/// Removes a connection entirely.
fn close(ctx: &mut ShardCtx<'_>, key: usize) {
    if let Some(conn) = ctx.conns.remove(key) {
        let _ = ctx.poller.delete(&conn.stream);
        ctx.shared.stats.active.fetch_sub(1, Ordering::Relaxed);
        ctx.shared.open_conns.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Appends an error response, counts it, and marks the connection for
/// close-after-flush — the reactor's equivalent of the blocking path's
/// "answer the `HttpError`, then close".
fn fail(ctx: &mut ShardCtx<'_>, key: usize, status: u16, reason: &str) {
    let Some(conn) = ctx.conns.get_mut(key) else {
        return;
    };
    ctx.shared
        .stats
        .protocol_errors
        .fetch_add(1, Ordering::Relaxed);
    if status == 408 {
        ctx.shared.stats.timeouts.fetch_add(1, Ordering::Relaxed);
    }
    http::append_response(&mut conn.wbuf, &Response::error(status, reason), false);
    conn.close_after_flush = true;
    conn.rbuf.clear();
    conn.pending_body = None;
}

/// Services one readiness event (also the entry point for a just-registered
/// connection): flush → read → parse/dispatch → flush → re-arm.
fn handle_event(ctx: &mut ShardCtx<'_>, key: usize, readable: bool, writable: bool) {
    if ctx.conns.get_mut(key).is_none() {
        return; // closed earlier in this batch
    }
    if writable {
        flush(ctx, key);
    }
    if readable {
        do_read(ctx, key);
        process_buffer(ctx, key);
    }
    flush(ctx, key);
    finish(ctx, key);
}

/// Non-blocking read up to the fairness budget.
fn do_read(ctx: &mut ShardCtx<'_>, key: usize) {
    let Some(conn) = ctx.conns.get_mut(key) else {
        return;
    };
    if conn.close_after_flush || conn.eof || conn.dead {
        return;
    }
    let mut total = 0usize;
    let mut chunk = [0u8; 4096];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.eof = true;
                return;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&chunk[..n]);
                total += n;
                if total >= READ_BUDGET {
                    return; // interest re-arms; epoll re-fires for the rest
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// Parses and dispatches every complete request in the read buffer — the
/// non-blocking mirror of the blocking path's `read_request` loop,
/// including pipelining.
fn process_buffer(ctx: &mut ShardCtx<'_>, key: usize) {
    loop {
        let Some(conn) = ctx.conns.get_mut(key) else {
            return;
        };
        if conn.close_after_flush || conn.dead {
            return;
        }
        // Body phase: wait for Content-Length bytes, then dispatch.
        if let Some(pb) = conn.pending_body.take() {
            if conn.rbuf.len() < pb.need {
                let truncated = conn.eof;
                conn.pending_body = Some(pb);
                if truncated {
                    // The peer half-closed; this body can never complete.
                    fail(ctx, key, 400, "truncated request body");
                }
                return;
            }
            let body: Vec<u8> = conn.rbuf[..pb.need].to_vec();
            conn.rbuf.drain(..pb.need);
            let wire_bytes = pb.head_bytes + body.len();
            let req = Request {
                method: pb.method,
                path: pb.path,
                query: pb.query,
                keep_alive: pb.keep_alive,
                body,
                wire_bytes,
            };
            dispatch(ctx, key, req);
            continue;
        }
        // Head phase: find and parse a complete head.
        match http::find_head_end(&conn.rbuf) {
            None => {
                if conn.rbuf.len() > ctx.limits.max_header_bytes {
                    fail(ctx, key, 431, "request head too large");
                } else if conn.eof && !conn.rbuf.is_empty() {
                    fail(ctx, key, 400, "truncated request head");
                }
                return;
            }
            Some(end) => {
                if end > ctx.limits.max_header_bytes {
                    fail(ctx, key, 431, "request head too large");
                    return;
                }
                // Arm the request trace at head parse. If this request's
                // body completes in a later event, another connection's
                // parse may re-arm the span in between and this request
                // loses its parse time — a bounded inaccuracy the
                // single-threaded-per-shard design accepts.
                neats_core::obs::span_begin();
                let parsed = {
                    let _parse = neats_core::obs::stage(neats_core::obs::Stage::Parse);
                    http::parse_head(&conn.rbuf[..end])
                };
                // Drain the head even when parsing fails, so a pipelined
                // follow-up can't replay it (the connection closes anyway).
                conn.rbuf.drain(..end);
                match parsed {
                    Err(HttpError { status, reason }) => {
                        fail(ctx, key, status, &reason);
                        return;
                    }
                    Ok((method, path, query, keep_alive, content_length, expects_continue)) => {
                        if content_length > ctx.limits.max_body_bytes {
                            fail(ctx, key, 413, "body too large");
                            return;
                        }
                        if expects_continue && content_length > 0 {
                            // Minimal 100-continue support, via the write
                            // buffer like everything else.
                            conn.wbuf
                                .extend_from_slice(b"HTTP/1.1 100 Continue\r\n\r\n");
                        }
                        conn.pending_body = Some(PendingBody {
                            method,
                            path,
                            query,
                            keep_alive,
                            need: content_length,
                            head_bytes: end,
                        });
                    }
                }
            }
        }
    }
}

/// Runs the handler for one complete request and buffers its response.
fn dispatch(ctx: &mut ShardCtx<'_>, key: usize, req: Request) {
    // A handler panic must not take down the shard (its whole slab of
    // connections would die with it); the panicking request gets a 500 and
    // its connection closes — identical to the threaded path.
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        handler::handle(
            ctx.source,
            &ctx.shared.stats,
            &ctx.shared.obs,
            ctx.threads,
            &req,
        )
    }));
    let (resp, close_after) = match result {
        Ok(resp) => (resp, false),
        Err(_) => {
            ctx.shared.stats.panics.fetch_add(1, Ordering::Relaxed);
            (Response::error(500, "internal error"), true)
        }
    };
    let shutting_down = ctx.shared.shutdown.load(Ordering::SeqCst);
    let Some(conn) = ctx.conns.get_mut(key) else {
        return;
    };
    // On shutdown, drain: requests the client already pipelined in full
    // are still answered before the close.
    let keep = req.keep_alive
        && !close_after
        && (!shutting_down || http::find_head_end(&conn.rbuf).is_some());
    http::append_response(&mut conn.wbuf, &resp, keep);
    conn.completed_this_pass = true;
    if !keep {
        conn.close_after_flush = true;
        conn.rbuf.clear();
    }
}

/// Writes as much buffered response as the socket accepts right now.
fn flush(ctx: &mut ShardCtx<'_>, key: usize) {
    let Some(conn) = ctx.conns.get_mut(key) else {
        return;
    };
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => {
                conn.wpos += n;
                ctx.shared.stats.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    if conn.wpos >= conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
    } else if conn.wpos > WRITE_COMPACT {
        conn.wbuf.drain(..conn.wpos);
        conn.wpos = 0;
    }
}

/// The per-event epilogue: close when finished or dead, otherwise re-arm
/// deadlines and epoll interest.
fn finish(ctx: &mut ShardCtx<'_>, key: usize) {
    let now = Instant::now();
    let Some(conn) = ctx.conns.get_mut(key) else {
        return;
    };
    if conn.dead {
        close(ctx, key);
        return;
    }
    let write_pending = conn.write_pending();
    if !write_pending && conn.close_after_flush {
        close(ctx, key);
        return;
    }
    if conn.eof && !write_pending && !conn.close_after_flush {
        // Peer half-closed and everything it fully sent is answered
        // (truncated partials were failed in process_buffer): nothing
        // left to do on this connection.
        close(ctx, key);
        return;
    }
    // Read deadline: idle between requests, request deadline once one
    // starts. Progress never extends a running request deadline, but a
    // *completed* request hands its pipelined successor a fresh window
    // (the blocking path starts a fresh timer per read_request call).
    let mid = conn.mid_request();
    if mid && (conn.read_deadline_is_idle || conn.completed_this_pass) {
        conn.read_deadline = now + ctx.limits.request_timeout;
        conn.read_deadline_is_idle = false;
    } else if !mid && !conn.read_deadline_is_idle {
        conn.read_deadline = now + ctx.limits.idle_timeout;
        conn.read_deadline_is_idle = true;
    }
    conn.completed_this_pass = false;
    // Write deadline: armed while response bytes are stuck in the buffer
    // (a reader that stalls past it is disconnected), cleared on drain.
    if write_pending {
        if conn.write_deadline.is_none() {
            conn.write_deadline = Some(now + ctx.limits.request_timeout);
        }
    } else {
        conn.write_deadline = None;
    }
    // Re-arm epoll interest (registrations are oneshot).
    let want_read = !conn.eof && !conn.close_after_flush;
    let interest = Event {
        key,
        readable: want_read,
        writable: write_pending,
    };
    if ctx.poller.modify(&conn.stream, interest).is_err() {
        close(ctx, key);
        return;
    }
    // Arm the wheel only when no earlier live entry already covers us.
    let (gen, deadline, armed) = (conn.gen, conn.next_deadline(), conn.wheel_tick);
    let tick = ctx.wheel.tick_of(deadline);
    if tick < armed {
        let tick = ctx.wheel.insert(key, gen, deadline);
        if let Some(conn) = ctx.conns.get_mut(key) {
            conn.wheel_tick = tick;
        }
    }
}

/// A wheel entry fired: act if the connection's real deadline passed,
/// else lazily re-arm at the real deadline.
fn handle_deadline(ctx: &mut ShardCtx<'_>, key: usize, gen: u64) {
    let now = Instant::now();
    let Some(conn) = ctx.conns.get_mut(key) else {
        return;
    };
    if conn.gen != gen {
        return; // stale hint for a recycled slot
    }
    conn.wheel_tick = u64::MAX; // this entry is consumed
    if conn.write_deadline.is_some_and(|w| w <= now) {
        // Stalled reader: the buffered response cannot be delivered within
        // the deadline — drop the connection (there is no point writing a
        // 408 to a peer that does not read).
        ctx.shared.stats.timeouts.fetch_add(1, Ordering::Relaxed);
        close(ctx, key);
        return;
    }
    if conn.read_deadline <= now {
        let (status, reason) = if conn.read_deadline_is_idle {
            (408, "idle connection timed out")
        } else {
            (408, "request timed out")
        };
        fail(ctx, key, status, reason);
        flush(ctx, key);
        finish(ctx, key); // closes now or waits for write readiness
        return;
    }
    // Not actually due (the deadline moved later since this hint was
    // inserted): re-arm at the real deadline.
    let (gen, deadline) = (conn.gen, conn.next_deadline());
    let tick = ctx.wheel.insert(key, gen, deadline);
    if let Some(conn) = ctx.conns.get_mut(key) {
        conn.wheel_tick = tick;
    }
}

/// One shutdown-drain sweep: answer what was fully sent, close what is
/// idle, 408 what is half-sent — the same contract as the blocking path's
/// `should_abort` checks, applied eagerly.
fn drain_pass(ctx: &mut ShardCtx<'_>) {
    for key in ctx.conns.keys() {
        let Some(conn) = ctx.conns.get_mut(key) else {
            continue;
        };
        if conn.close_after_flush || conn.write_pending() {
            continue; // already flushing out; write deadline bounds it
        }
        if conn.mid_request() {
            // A request caught half-sent cannot be waited for.
            fail(ctx, key, 408, "server shutting down");
            flush(ctx, key);
            finish(ctx, key);
        } else {
            // Idle between requests: close immediately.
            close(ctx, key);
        }
    }
}
