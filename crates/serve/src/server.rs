//! The server: a bound listener, an accept loop, and a fixed worker pool
//! draining a [`Queue`] of accepted connections.
//!
//! ## Threading model
//!
//! [`Server::run`] blocks the calling thread on `accept()` and spawns
//! `threads` scoped workers (resolved like every other knob in this
//! workspace: explicit value, else `NEATS_SERVE_THREADS`, else all cores).
//! Accepted connections are pushed onto a closeable blocking queue
//! ([`neats_core::parallel::Queue`]); each worker pops one connection and
//! owns it for its whole keep-alive lifetime — requests on one connection
//! are handled serially (HTTP/1.1 semantics), requests on different
//! connections in parallel. The [`Store`] is shared behind an `Arc` and is
//! `Send + Sync`; queries run zero-copy against the shared pack bytes, so
//! workers never copy archive data.
//!
//! ## Shutdown
//!
//! [`ServerHandle::shutdown`] is the SIGTERM-equivalent: it sets the
//! shutdown flag and wakes the accept loop with a loopback connection. The
//! accept loop stops accepting and closes the queue; workers drain already
//! accepted connections, finish the request in flight (plus any pipelined
//! requests the client already sent in full), answer them with
//! `Connection: close`, and exit. `run` returns once every worker has
//! joined.

use crate::http::{Conn, HttpError, Limits, ReadOutcome, Response};
use crate::source::Source;
use crate::stats::ServerStats;
use crate::{handler, http};
use neats_core::parallel::{effective_threads_env, Queue};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Environment variable naming the default worker-thread count.
pub const THREADS_ENV: &str = "NEATS_SERVE_THREADS";

/// Server tuning knobs. `Default` matches the documented configuration
/// table in the README.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads (`0` = automatic: [`THREADS_ENV`], else all cores).
    pub threads: usize,
    /// Maximum request-head bytes before a 431.
    pub max_header_bytes: usize,
    /// Maximum request-body bytes before a 413.
    pub max_body_bytes: usize,
    /// Maximum time a started request may take to arrive before a 408.
    pub request_timeout: Duration,
    /// Poll tick at which blocked reads re-check the shutdown flag; bounds
    /// how long shutdown waits for idle keep-alive connections.
    pub poll_interval: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            max_header_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
            request_timeout: Duration::from_secs(5),
            poll_interval: Duration::from_millis(50),
        }
    }
}

struct Shared {
    shutdown: AtomicBool,
    stats: ServerStats,
}

/// A bound, not-yet-running server. [`Server::run`] serves until a
/// [`ServerHandle::shutdown`]; the handle is obtained *before* `run` and is
/// cheap to clone across threads.
pub struct Server {
    listener: TcpListener,
    source: Source,
    shared: Arc<Shared>,
    addr: SocketAddr,
    threads: usize,
    cfg: ServeConfig,
}

/// A clonable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Requests graceful shutdown: stop accepting, drain accepted
    /// connections, finish in-flight requests, then let [`Server::run`]
    /// return. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Best-effort prompt wake of the accept loop with a throwaway
        // connection (the loop also polls the flag, so a failed connect —
        // full backlog, wildcard-bind quirks — only delays shutdown by one
        // poll tick, never hangs it). An unspecified bind address is not
        // connectable; aim at loopback on the same port instead.
        let mut target = self.addr;
        if target.ip().is_unspecified() {
            match &mut target {
                SocketAddr::V4(a) => a.set_ip(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(a) => a.set_ip(std::net::Ipv6Addr::LOCALHOST),
            }
        }
        let _ = TcpStream::connect_timeout(&target, Duration::from_millis(100));
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// The address the server is bound to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Server {
    /// Binds a listener on `addr` (use port 0 for an ephemeral port) over
    /// `source` — an `Arc<Store>` (read-only pack) or an
    /// `Arc<neats_ingest::Ingestor>` (live directory; enables
    /// `POST /write`). The worker count is resolved at [`Self::run`].
    pub fn bind(
        source: impl Into<Source>,
        addr: impl ToSocketAddrs,
        mut cfg: ServeConfig,
    ) -> std::io::Result<Server> {
        // A zero poll interval would make set_read_timeout fail (leaving
        // sockets blocking, which breaks shutdown) and turn the accept
        // loop into a busy spin — clamp it to something meaningful.
        cfg.poll_interval = cfg.poll_interval.max(Duration::from_millis(1));
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let threads = effective_threads_env(cfg.threads, THREADS_ENV);
        Ok(Server {
            listener,
            source: source.into(),
            shared: Arc::new(Shared { shutdown: AtomicBool::new(false), stats: ServerStats::new() }),
            addr,
            threads,
            cfg,
        })
    }

    /// The bound address (the actual port when bound with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The resolved worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A shutdown handle; obtain it before calling [`Self::run`].
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared), addr: self.addr }
    }

    /// Serves until shutdown: the calling thread runs the accept loop, the
    /// worker pool handles connections. Returns after the drain completes.
    pub fn run(self) -> std::io::Result<()> {
        let Server { listener, source, shared, addr: _, threads, cfg } = self;
        let queue: Queue<TcpStream> = Queue::new();
        let limits = Limits {
            max_header_bytes: cfg.max_header_bytes,
            max_body_bytes: cfg.max_body_bytes,
            request_timeout: cfg.request_timeout,
        };
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    while let Some(conn) = queue.pop() {
                        serve_connection(&source, &shared, &cfg, &limits, threads, conn);
                    }
                });
            }
            // Non-blocking accept with a short idle sleep: the loop
            // observes the shutdown flag even if the wake-up connect in
            // ServerHandle::shutdown never lands (wildcard binds, full
            // backlog), so run() can never hang on accept(). The tick is
            // deliberately much shorter than poll_interval — it bounds
            // *accept latency* for every new connection, not just shutdown
            // responsiveness.
            let accept_tick = Duration::from_millis(2).min(cfg.poll_interval);
            let nonblocking = listener.set_nonblocking(true).is_ok();
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((conn, _peer)) => {
                        if shared.shutdown.load(Ordering::SeqCst) {
                            break; // likely the wake-up connection; drop it
                        }
                        // Workers rely on read timeouts, which need a
                        // blocking socket (some platforms inherit the
                        // listener's non-blocking flag).
                        if conn.set_nonblocking(false).is_err() {
                            continue;
                        }
                        shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                        if !queue.push(conn) {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock && nonblocking => {
                        std::thread::sleep(accept_tick);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        // Transient accept failure (e.g. fd exhaustion):
                        // back off briefly instead of spinning.
                        std::thread::sleep(cfg.poll_interval);
                    }
                }
            }
            queue.close();
        });
        Ok(())
    }
}

/// Serves one connection for its whole keep-alive lifetime.
fn serve_connection(
    source: &Source,
    shared: &Shared,
    cfg: &ServeConfig,
    limits: &Limits,
    threads: usize,
    stream: TcpStream,
) {
    shared.stats.active.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nodelay(true);
    // The read timeout is the poll tick: blocked reads wake this often to
    // re-check the shutdown flag.
    let _ = stream.set_read_timeout(Some(cfg.poll_interval));
    let mut conn = Conn::new(stream);
    let should_abort = || shared.shutdown.load(Ordering::SeqCst);
    loop {
        match conn.read_request(limits, &should_abort) {
            Ok(ReadOutcome::Request(req)) => {
                // A handler panic must not take down the worker (the pool is
                // fixed — a dead worker would shrink capacity forever); the
                // panicking request gets a 500 and its connection closes.
                let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    handler::handle(source, &shared.stats, threads, &req)
                }));
                let (resp, close_after) = match result {
                    Ok(resp) => (resp, false),
                    Err(_) => {
                        shared.stats.panics.fetch_add(1, Ordering::Relaxed);
                        (Response::error(500, "internal error"), true)
                    }
                };
                // On shutdown, drain: requests the client already pipelined
                // in full are still answered before the close.
                let keep = req.keep_alive
                    && !close_after
                    && (!should_abort() || conn.has_buffered_request());
                if http::write_response(conn.stream(), &resp, keep).is_err() || !keep {
                    break;
                }
            }
            Ok(ReadOutcome::Closed) => break,
            Err(HttpError { status, reason }) => {
                shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = http::write_response(
                    conn.stream(),
                    &Response::error(status, &reason),
                    false,
                );
                break;
            }
        }
    }
    shared.stats.active.fetch_sub(1, Ordering::Relaxed);
}
