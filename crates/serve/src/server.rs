//! The server: a bound listener, an accept loop, and one of two serving
//! disciplines behind it.
//!
//! ## Threading model
//!
//! [`Server::run`] blocks the calling thread on `accept()` and serves
//! connections in one of two modes, selected by [`ServeConfig::reactor`]
//! (default [`ReactorMode::Auto`]: the reactor wherever epoll exists,
//! i.e. Linux):
//!
//! * **Reactor (default on Linux)** — `shards` event-loop threads (the
//!   `crate::reactor` module), each owning an epoll poller, a slab of
//!   non-blocking connections, and a timer wheel for idle/request/write
//!   deadlines. A shard multiplexes thousands of mostly-idle keep-alive
//!   connections; an idle client costs a slab entry, never a thread.
//! * **Thread-per-connection (fallback)** — accepted connections are pushed
//!   onto a closeable blocking queue ([`neats_core::parallel::Queue`]);
//!   each of `threads` workers pops one connection and owns it for its
//!   whole keep-alive lifetime. Simple and portable, but W idle keep-alive
//!   clients occupy all W workers.
//!
//! In both modes requests on one connection are handled serially (HTTP/1.1
//! semantics), requests on different connections in parallel, and the
//! [`Store`] is shared behind an `Arc`: queries run zero-copy against the
//! shared pack bytes, so serving threads never copy archive data.
//!
//! ## Shutdown
//!
//! [`ServerHandle::shutdown`] is the SIGTERM-equivalent: it sets the
//! shutdown flag and wakes the accept loop with a loopback connection. The
//! accept loop stops accepting; both modes then drain — already accepted
//! connections finish the request in flight (plus any pipelined requests
//! the client already sent in full), answer them with `Connection: close`,
//! and close. `run` returns once the drain completes.

use crate::http::{Conn, HttpError, Limits, ReadOutcome, Response};
use crate::source::Source;
use crate::stats::{Obs, ServerStats};
use crate::{handler, http, reactor};
use neats_core::parallel::{effective_threads_env, Queue};
use neats_core::{Registry, TraceRing};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Environment variable naming the default worker-thread count.
pub const THREADS_ENV: &str = "NEATS_SERVE_THREADS";
/// Environment variable naming the default connection cap.
pub const MAX_CONNS_ENV: &str = "NEATS_SERVE_MAX_CONNS";
/// Environment variable naming the default worker-queue shed watermark.
pub const SHED_WATERMARK_ENV: &str = "NEATS_SERVE_SHED_WATERMARK";
/// Environment variable selecting the serving mode when
/// [`ServeConfig::reactor`] is [`ReactorMode::Auto`]: `on`/`reactor`/`1`
/// forces the epoll reactor, `off`/`threaded`/`0` forces
/// thread-per-connection, anything else keeps automatic detection.
pub const REACTOR_ENV: &str = "NEATS_SERVE_REACTOR";
/// Environment variable naming the default reactor shard count.
pub const SHARDS_ENV: &str = "NEATS_SERVE_SHARDS";
/// Environment variable naming the default slow-query threshold in
/// microseconds (requests at or above it are logged to stderr and flagged
/// in `/debug/requests`); `0` or unset disables the log.
pub const SLOW_QUERY_ENV: &str = "NEATS_SLOW_QUERY_US";
/// Environment variable naming the default trace-ring capacity (recent
/// requests kept for `GET /debug/requests`); `0` disables tracing.
pub const TRACE_RING_ENV: &str = "NEATS_TRACE_RING";

/// How [`Server::run`] multiplexes connections.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ReactorMode {
    /// Use the epoll readiness reactor where the platform supports it
    /// (Linux), else fall back to thread-per-connection. [`REACTOR_ENV`]
    /// overrides the detection.
    #[default]
    Auto,
    /// Require the reactor: [`Server::run`] fails with
    /// [`std::io::ErrorKind::Unsupported`] on platforms without epoll.
    Reactor,
    /// Force the blocking thread-per-connection path (one worker owns each
    /// connection for its whole keep-alive lifetime).
    Threaded,
}

/// Server tuning knobs. `Default` matches the documented configuration
/// table in the README.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads (`0` = automatic: [`THREADS_ENV`], else all cores).
    pub threads: usize,
    /// Maximum request-head bytes before a 431.
    pub max_header_bytes: usize,
    /// Maximum request-body bytes before a 413.
    pub max_body_bytes: usize,
    /// Maximum time a started request may take to arrive before a 408.
    pub request_timeout: Duration,
    /// Poll tick at which blocked reads re-check the shutdown flag; bounds
    /// how long shutdown waits for idle keep-alive connections.
    pub poll_interval: Duration,
    /// Maximum time a keep-alive connection may sit idle between requests
    /// before it is closed with a 408.
    pub idle_timeout: Duration,
    /// Maximum connections held open at once (`0` = automatic:
    /// [`MAX_CONNS_ENV`], else 1024). Connections beyond the cap are shed
    /// at accept time with a canned `503 + Retry-After`.
    pub max_connections: usize,
    /// Worker-queue depth above which new connections are shed (`0` =
    /// automatic: [`SHED_WATERMARK_ENV`], else `4 × threads`, capped at
    /// 64). A deep queue means every worker is busy and new arrivals would
    /// only wait — shedding keeps latency flat for admitted requests. In
    /// reactor mode the watermark bounds the not-yet-registered shard
    /// inbox backlog instead (shards drain their inboxes within one poll
    /// wake-up, so it only trips when the event loops themselves stall).
    pub queue_watermark: usize,
    /// Serving discipline: epoll reactor, thread-per-connection, or
    /// automatic platform detection (the default; [`REACTOR_ENV`]
    /// overrides).
    pub reactor: ReactorMode,
    /// Reactor event-loop shards (`0` = automatic: [`SHARDS_ENV`], else
    /// the resolved `threads` count). Each shard runs one event loop and —
    /// when the store is opened with thread-sharded caching — owns its own
    /// slice of the segment-view cache. Ignored in threaded mode.
    pub shards: usize,
    /// Slow-query threshold in microseconds: a request whose traced total
    /// reaches it is logged to stderr and flagged in `/debug/requests`.
    /// `None` = automatic ([`SLOW_QUERY_ENV`], else off); `Some(0)` = off.
    pub slow_query_us: Option<u64>,
    /// Recent requests kept in the trace ring behind `GET /debug/requests`.
    /// `None` = automatic ([`TRACE_RING_ENV`], else 256); `Some(0)`
    /// disables tracing.
    pub trace_ring: Option<usize>,
    /// What this server serves, for `/stats` and the `neats_build_info`
    /// metric — conventionally the pack path or ingest directory. Purely
    /// informational; empty renders as `""`.
    pub source_label: String,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            max_header_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
            request_timeout: Duration::from_secs(5),
            poll_interval: Duration::from_millis(50),
            idle_timeout: Duration::from_secs(60),
            max_connections: 0,
            queue_watermark: 0,
            reactor: ReactorMode::Auto,
            shards: 0,
            slow_query_us: None,
            trace_ring: None,
            source_label: String::new(),
        }
    }
}

/// Applies the [`REACTOR_ENV`] override to an [`ReactorMode::Auto`]
/// configuration; explicit modes win over the environment.
fn resolve_mode(configured: ReactorMode) -> ReactorMode {
    match configured {
        ReactorMode::Auto => match std::env::var(REACTOR_ENV).ok().as_deref().map(str::trim) {
            Some("on") | Some("reactor") | Some("1") => ReactorMode::Reactor,
            Some("off") | Some("threaded") | Some("0") => ReactorMode::Threaded,
            _ => ReactorMode::Auto,
        },
        explicit => explicit,
    }
}

/// `None` means automatic: the environment variable, else `fallback`
/// (unlike [`resolve_knob`], an explicit or environment `0` is meaningful —
/// it disables the feature).
fn resolve_opt_knob<T: Copy + std::str::FromStr>(
    configured: Option<T>,
    env: &str,
    fallback: T,
) -> T {
    configured.unwrap_or_else(|| {
        std::env::var(env)
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(fallback)
    })
}

/// `0` means automatic: the environment variable, else `fallback`.
fn resolve_knob(configured: usize, env: &str, fallback: usize) -> usize {
    if configured != 0 {
        return configured;
    }
    std::env::var(env)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n != 0)
        .unwrap_or(fallback)
}

/// Assembles the observability bundle at bind time: creates the metrics
/// registry, registers every serve/store/ingest family, and resolves the
/// tracing knobs. Registration order here is `/metrics` render order.
fn build_obs(
    source: &Source,
    stats: &ServerStats,
    cfg: &ServeConfig,
    threads: usize,
    shards: usize,
) -> Obs {
    let registry = Arc::new(Registry::new());
    let mode = match resolve_mode(cfg.reactor) {
        ReactorMode::Auto if cfg!(target_os = "linux") => "reactor",
        ReactorMode::Reactor => "reactor",
        ReactorMode::Auto | ReactorMode::Threaded => "threaded",
    };
    let source_label = cfg.source_label.clone();
    registry.gauge_fn(
        "neats_build_info",
        "Serving metadata as labels; the value is always 1.",
        &[
            ("version", env!("CARGO_PKG_VERSION")),
            ("mode", mode),
            ("source", &source_label),
        ],
        || 1.0,
    );
    registry
        .gauge(
            "neats_serve_threads",
            "Resolved worker-thread count (the threaded pool size).",
            &[],
        )
        .store(threads as u64, Ordering::Relaxed);
    registry
        .gauge("neats_serve_shards", "Resolved reactor shard count.", &[])
        .store(shards as u64, Ordering::Relaxed);
    stats.register(&registry);
    source.register_metrics(&registry);
    let shard_depths: Vec<Arc<AtomicU64>> = if mode == "reactor" {
        (0..shards)
            .map(|i| {
                let idx = i.to_string();
                registry.gauge(
                    "neats_serve_shard_connections",
                    "Connections currently registered with each reactor shard.",
                    &[("shard", idx.as_str())],
                )
            })
            .collect()
    } else {
        Vec::new()
    };
    Obs {
        registry,
        ring: TraceRing::new(resolve_opt_knob(cfg.trace_ring, TRACE_RING_ENV, 256)),
        slow_query_us: resolve_opt_knob(cfg.slow_query_us, SLOW_QUERY_ENV, 0),
        shard_depths,
        source_label,
        mode,
        shards,
    }
}

pub(crate) struct Shared {
    pub(crate) shutdown: AtomicBool,
    /// Set by the accept loop on exit; [`ServerHandle::shutdown`] retries
    /// its wake-up connect until this flips (a single connect can race the
    /// loop and be missed).
    pub(crate) accept_exited: AtomicBool,
    /// Connections currently owned by the server (queued or being served).
    pub(crate) open_conns: AtomicU64,
    /// Connections accepted but not yet popped by a worker (threaded mode)
    /// or not yet registered by their shard (reactor mode).
    pub(crate) queued: AtomicU64,
    pub(crate) stats: ServerStats,
    pub(crate) obs: Obs,
}

/// A bound, not-yet-running server. [`Server::run`] serves until a
/// [`ServerHandle::shutdown`]; the handle is obtained *before* `run` and is
/// cheap to clone across threads.
pub struct Server {
    listener: TcpListener,
    source: Source,
    shared: Arc<Shared>,
    addr: SocketAddr,
    threads: usize,
    shards: usize,
    cfg: ServeConfig,
}

/// A clonable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Requests graceful shutdown: stop accepting, drain accepted
    /// connections, finish in-flight requests, then let [`Server::run`]
    /// return. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection. A single
        // connect can be missed — the loop may accept it *before* it
        // observes the flag (dropping it as a regular connection) and then
        // block again — so retry with backoff until the loop confirms it
        // exited. The loop also polls the flag on a short tick, so the
        // bounded retry window is belt-and-braces, never a hang.
        let mut target = self.addr;
        if target.ip().is_unspecified() {
            match &mut target {
                SocketAddr::V4(a) => a.set_ip(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(a) => a.set_ip(std::net::Ipv6Addr::LOCALHOST),
            }
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        let mut pause = Duration::from_millis(1);
        while !self.shared.accept_exited.load(Ordering::SeqCst)
            && std::time::Instant::now() < deadline
        {
            let _ = TcpStream::connect_timeout(&target, Duration::from_millis(100));
            std::thread::sleep(pause);
            pause = (pause * 2).min(Duration::from_millis(50));
        }
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Connections the server currently owns (queued, registered with a
    /// reactor shard, or being served by a worker). Drains to zero once a
    /// graceful shutdown completes — the graceful-drain tests assert
    /// exactly that, guarding the accept-path counter bookkeeping.
    pub fn open_connections(&self) -> u64 {
        self.shared.open_conns.load(Ordering::SeqCst)
    }

    /// The address the server is bound to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Server {
    /// Binds a listener on `addr` (use port 0 for an ephemeral port) over
    /// `source` — an `Arc<Store>` (read-only pack) or an
    /// `Arc<neats_ingest::Ingestor>` (live directory; enables
    /// `POST /write`). The worker count is resolved at [`Self::run`].
    pub fn bind(
        source: impl Into<Source>,
        addr: impl ToSocketAddrs,
        mut cfg: ServeConfig,
    ) -> std::io::Result<Server> {
        // A zero poll interval would make set_read_timeout fail (leaving
        // sockets blocking, which breaks shutdown) and turn the accept
        // loop into a busy spin — clamp it to something meaningful.
        cfg.poll_interval = cfg.poll_interval.max(Duration::from_millis(1));
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let threads = effective_threads_env(cfg.threads, THREADS_ENV);
        let shards = resolve_knob(cfg.shards, SHARDS_ENV, threads);
        let source = source.into();
        let stats = ServerStats::new();
        let obs = build_obs(&source, &stats, &cfg, threads, shards);
        Ok(Server {
            listener,
            source,
            shared: Arc::new(Shared {
                shutdown: AtomicBool::new(false),
                accept_exited: AtomicBool::new(false),
                open_conns: AtomicU64::new(0),
                queued: AtomicU64::new(0),
                stats,
                obs,
            }),
            addr,
            threads,
            shards,
            cfg,
        })
    }

    /// The bound address (the actual port when bound with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The resolved worker-thread count (threaded mode's pool size).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The resolved reactor shard count (reactor mode's event-loop count).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The serving discipline [`Self::run`] will use, after applying the
    /// [`REACTOR_ENV`] override and platform detection — never
    /// [`ReactorMode::Auto`]. (If epoll unexpectedly fails at runtime on a
    /// platform that compiles with it, `run` under `Auto` still falls back
    /// to the threaded path even though this reported the reactor.)
    pub fn mode(&self) -> ReactorMode {
        match resolve_mode(self.cfg.reactor) {
            ReactorMode::Auto if cfg!(target_os = "linux") => ReactorMode::Reactor,
            ReactorMode::Auto => ReactorMode::Threaded,
            explicit => explicit,
        }
    }

    /// A shutdown handle; obtain it before calling [`Self::run`].
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
            addr: self.addr,
        }
    }

    /// Serves until shutdown: the calling thread runs the accept loop; the
    /// reactor shards or the worker pool handle connections (per
    /// [`ServeConfig::reactor`]). Returns after the drain completes.
    pub fn run(self) -> std::io::Result<()> {
        let Server {
            listener,
            source,
            shared,
            addr: _,
            threads,
            shards,
            cfg,
        } = self;
        let limits = Limits {
            max_header_bytes: cfg.max_header_bytes,
            max_body_bytes: cfg.max_body_bytes,
            request_timeout: cfg.request_timeout,
            idle_timeout: cfg.idle_timeout,
        };
        let max_conns = resolve_knob(cfg.max_connections, MAX_CONNS_ENV, 1024) as u64;
        let watermark = resolve_knob(
            cfg.queue_watermark,
            SHED_WATERMARK_ENV,
            (4 * threads).min(64),
        ) as u64;
        let mode = resolve_mode(cfg.reactor);
        if mode != ReactorMode::Threaded {
            match reactor::run(
                &listener, &source, &shared, &cfg, &limits, shards, max_conns, watermark,
            ) {
                // No epoll on this platform: Auto falls back to the
                // threaded path below (the listener is untouched — the
                // reactor probes its pollers before accepting anything).
                Err(e)
                    if e.kind() == std::io::ErrorKind::Unsupported && mode == ReactorMode::Auto => {
                }
                served => return served,
            }
        }
        run_threaded(
            listener, source, &shared, &cfg, &limits, threads, max_conns, watermark,
        );
        Ok(())
    }
}

/// The blocking fallback: a fixed worker pool draining a closeable queue
/// of accepted connections, each worker owning one connection at a time.
#[allow(clippy::too_many_arguments)]
fn run_threaded(
    listener: TcpListener,
    source: Source,
    shared: &Arc<Shared>,
    cfg: &ServeConfig,
    limits: &Limits,
    threads: usize,
    max_conns: u64,
    watermark: u64,
) {
    let queue: Queue<TcpStream> = Queue::new();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                while let Some(conn) = queue.pop() {
                    shared.queued.fetch_sub(1, Ordering::Relaxed);
                    serve_connection(&source, shared, cfg, limits, threads, conn);
                }
            });
        }
        // Non-blocking accept with a short idle sleep: the loop
        // observes the shutdown flag even if the wake-up connect in
        // ServerHandle::shutdown never lands (wildcard binds, full
        // backlog), so run() can never hang on accept(). The tick is
        // deliberately much shorter than poll_interval — it bounds
        // *accept latency* for every new connection, not just shutdown
        // responsiveness.
        let accept_tick = Duration::from_millis(2).min(cfg.poll_interval);
        let nonblocking = listener.set_nonblocking(true).is_ok();
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((conn, _peer)) => {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break; // likely the wake-up connection; drop it
                    }
                    // Workers rely on read timeouts, which need a
                    // blocking socket (some platforms inherit the
                    // listener's non-blocking flag).
                    if conn.set_nonblocking(false).is_err() {
                        continue;
                    }
                    // Admission control: past the connection cap or the
                    // queue watermark, every worker is saturated and an
                    // admitted connection would only queue — answer a
                    // canned 503 now so the client can back off, and
                    // admitted requests keep their flat latency.
                    if shared.open_conns.load(Ordering::Relaxed) >= max_conns
                        || shared.queued.load(Ordering::Relaxed) >= watermark
                    {
                        shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                        shed_connection(conn);
                        continue;
                    }
                    shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                    shared.open_conns.fetch_add(1, Ordering::Relaxed);
                    shared.queued.fetch_add(1, Ordering::Relaxed);
                    if !queue.push(conn) {
                        // The queue closed between the shutdown check
                        // and the push: the connection was dropped, not
                        // queued. Undo the optimistic accounting above
                        // or /stats lies for the whole drain (and
                        // open_conns never returns to zero).
                        shared.stats.accepted.fetch_sub(1, Ordering::Relaxed);
                        shared.open_conns.fetch_sub(1, Ordering::Relaxed);
                        shared.queued.fetch_sub(1, Ordering::Relaxed);
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock && nonblocking => {
                    std::thread::sleep(accept_tick);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // Transient accept failure (e.g. fd exhaustion):
                    // back off briefly instead of spinning.
                    std::thread::sleep(cfg.poll_interval);
                }
            }
        }
        shared.accept_exited.store(true, Ordering::SeqCst);
        queue.close();
    });
}

/// Sheds one connection at accept time with a canned raw `503` (no parsing,
/// no allocation beyond the accepted socket — shedding must stay cheap under
/// exactly the load that triggers it). Strictly non-blocking best-effort:
/// this runs on the accept thread under precisely the load that triggers
/// shedding, so it must never wait on a peer — not even for a write
/// timeout, which would serialize sheds and stall accepts behind every
/// slow-to-read shed client. The 131-byte response virtually always fits
/// the empty send buffer of a fresh connection; a peer whose buffer cannot
/// take it is already misbehaving and just gets the close.
pub(crate) fn shed_connection(conn: TcpStream) {
    const SHED_RESPONSE: &[u8] = b"HTTP/1.1 503 Service Unavailable\r\n\
        Content-Type: text/plain\r\n\
        Content-Length: 9\r\n\
        Retry-After: 1\r\n\
        Connection: close\r\n\
        \r\n\
        overload\n";
    let mut conn = conn;
    if conn.set_nonblocking(true).is_err() {
        return; // can't make it safe to touch; just close
    }
    let _ = conn.write(SHED_RESPONSE);
    // Drain whatever request bytes already arrived (one non-blocking read).
    // Closing a socket with unread data sends an RST that can discard the
    // 503 before the client reads it; the drain makes the common case — a
    // small request that landed before accept — deliver the response
    // cleanly.
    let mut sink = [0u8; 4096];
    let _ = std::io::Read::read(&mut conn, &mut sink);
}

/// Serves one connection for its whole keep-alive lifetime.
fn serve_connection(
    source: &Source,
    shared: &Shared,
    cfg: &ServeConfig,
    limits: &Limits,
    threads: usize,
    stream: TcpStream,
) {
    shared.stats.active.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nodelay(true);
    // The read timeout is the poll tick: blocked reads wake this often to
    // re-check the shutdown flag.
    let _ = stream.set_read_timeout(Some(cfg.poll_interval));
    // The write deadline is the write-side slowloris defense: a client that
    // stops *reading* while a response is in flight fails the stalled
    // write_all and loses the connection, instead of pinning this worker
    // forever. (Per-syscall, so a trickle-reader can stretch a single large
    // response further — the reactor's wall-clock write deadline is the
    // strict version.)
    let _ = stream.set_write_timeout(Some(cfg.request_timeout));
    let mut conn = Conn::new(stream);
    let should_abort = || shared.shutdown.load(Ordering::SeqCst);
    loop {
        // Arm the request trace before reading: the parse stage runs inside
        // read_request. Only stage-guarded code accumulates, so time blocked
        // waiting for the next keep-alive request attributes nowhere.
        neats_core::obs::span_begin();
        match conn.read_request(limits, &should_abort) {
            Ok(ReadOutcome::Request(req)) => {
                // A handler panic must not take down the worker (the pool is
                // fixed — a dead worker would shrink capacity forever); the
                // panicking request gets a 500 and its connection closes.
                let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    handler::handle(source, &shared.stats, &shared.obs, threads, &req)
                }));
                let (resp, close_after) = match result {
                    Ok(resp) => (resp, false),
                    Err(_) => {
                        shared.stats.panics.fetch_add(1, Ordering::Relaxed);
                        (Response::error(500, "internal error"), true)
                    }
                };
                // On shutdown, drain: requests the client already pipelined
                // in full are still answered before the close.
                let keep = req.keep_alive
                    && !close_after
                    && (!should_abort() || conn.has_buffered_request());
                match http::write_response(conn.stream(), &resp, keep) {
                    Ok(n) => {
                        shared.stats.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
                        if !keep {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
            Ok(ReadOutcome::Closed) => break,
            Err(HttpError { status, reason }) => {
                shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                if status == 408 {
                    // Slow-drip or idle deadline — the slowloris defenses.
                    shared.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                }
                if let Ok(n) =
                    http::write_response(conn.stream(), &Response::error(status, &reason), false)
                {
                    shared.stats.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
                }
                break;
            }
        }
    }
    // Discard any span left armed by a request that never reached the
    // handler — this worker thread is pooled.
    let _ = neats_core::obs::span_take();
    shared.stats.active.fetch_sub(1, Ordering::Relaxed);
    shared.open_conns.fetch_sub(1, Ordering::Relaxed);
}
