//! The server: a bound listener, an accept loop, and a fixed worker pool
//! draining a [`Queue`] of accepted connections.
//!
//! ## Threading model
//!
//! [`Server::run`] blocks the calling thread on `accept()` and spawns
//! `threads` scoped workers (resolved like every other knob in this
//! workspace: explicit value, else `NEATS_SERVE_THREADS`, else all cores).
//! Accepted connections are pushed onto a closeable blocking queue
//! ([`neats_core::parallel::Queue`]); each worker pops one connection and
//! owns it for its whole keep-alive lifetime — requests on one connection
//! are handled serially (HTTP/1.1 semantics), requests on different
//! connections in parallel. The [`Store`] is shared behind an `Arc` and is
//! `Send + Sync`; queries run zero-copy against the shared pack bytes, so
//! workers never copy archive data.
//!
//! ## Shutdown
//!
//! [`ServerHandle::shutdown`] is the SIGTERM-equivalent: it sets the
//! shutdown flag and wakes the accept loop with a loopback connection. The
//! accept loop stops accepting and closes the queue; workers drain already
//! accepted connections, finish the request in flight (plus any pipelined
//! requests the client already sent in full), answer them with
//! `Connection: close`, and exit. `run` returns once every worker has
//! joined.

use crate::http::{Conn, HttpError, Limits, ReadOutcome, Response};
use crate::source::Source;
use crate::stats::ServerStats;
use crate::{handler, http};
use neats_core::parallel::{effective_threads_env, Queue};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Environment variable naming the default worker-thread count.
pub const THREADS_ENV: &str = "NEATS_SERVE_THREADS";
/// Environment variable naming the default connection cap.
pub const MAX_CONNS_ENV: &str = "NEATS_SERVE_MAX_CONNS";
/// Environment variable naming the default worker-queue shed watermark.
pub const SHED_WATERMARK_ENV: &str = "NEATS_SERVE_SHED_WATERMARK";

/// Server tuning knobs. `Default` matches the documented configuration
/// table in the README.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads (`0` = automatic: [`THREADS_ENV`], else all cores).
    pub threads: usize,
    /// Maximum request-head bytes before a 431.
    pub max_header_bytes: usize,
    /// Maximum request-body bytes before a 413.
    pub max_body_bytes: usize,
    /// Maximum time a started request may take to arrive before a 408.
    pub request_timeout: Duration,
    /// Poll tick at which blocked reads re-check the shutdown flag; bounds
    /// how long shutdown waits for idle keep-alive connections.
    pub poll_interval: Duration,
    /// Maximum time a keep-alive connection may sit idle between requests
    /// before it is closed with a 408.
    pub idle_timeout: Duration,
    /// Maximum connections held open at once (`0` = automatic:
    /// [`MAX_CONNS_ENV`], else 1024). Connections beyond the cap are shed
    /// at accept time with a canned `503 + Retry-After`.
    pub max_connections: usize,
    /// Worker-queue depth above which new connections are shed (`0` =
    /// automatic: [`SHED_WATERMARK_ENV`], else `4 × threads`, capped at
    /// 64). A deep queue means every worker is busy and new arrivals would
    /// only wait — shedding keeps latency flat for admitted requests.
    pub queue_watermark: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            max_header_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
            request_timeout: Duration::from_secs(5),
            poll_interval: Duration::from_millis(50),
            idle_timeout: Duration::from_secs(60),
            max_connections: 0,
            queue_watermark: 0,
        }
    }
}

/// `0` means automatic: the environment variable, else `fallback`.
fn resolve_knob(configured: usize, env: &str, fallback: usize) -> usize {
    if configured != 0 {
        return configured;
    }
    std::env::var(env)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n != 0)
        .unwrap_or(fallback)
}

struct Shared {
    shutdown: AtomicBool,
    /// Set by the accept loop on exit; [`ServerHandle::shutdown`] retries
    /// its wake-up connect until this flips (a single connect can race the
    /// loop and be missed).
    accept_exited: AtomicBool,
    /// Connections currently owned by the server (queued or being served).
    open_conns: AtomicU64,
    /// Connections accepted but not yet popped by a worker.
    queued: AtomicU64,
    stats: ServerStats,
}

/// A bound, not-yet-running server. [`Server::run`] serves until a
/// [`ServerHandle::shutdown`]; the handle is obtained *before* `run` and is
/// cheap to clone across threads.
pub struct Server {
    listener: TcpListener,
    source: Source,
    shared: Arc<Shared>,
    addr: SocketAddr,
    threads: usize,
    cfg: ServeConfig,
}

/// A clonable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Requests graceful shutdown: stop accepting, drain accepted
    /// connections, finish in-flight requests, then let [`Server::run`]
    /// return. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection. A single
        // connect can be missed — the loop may accept it *before* it
        // observes the flag (dropping it as a regular connection) and then
        // block again — so retry with backoff until the loop confirms it
        // exited. The loop also polls the flag on a short tick, so the
        // bounded retry window is belt-and-braces, never a hang.
        let mut target = self.addr;
        if target.ip().is_unspecified() {
            match &mut target {
                SocketAddr::V4(a) => a.set_ip(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(a) => a.set_ip(std::net::Ipv6Addr::LOCALHOST),
            }
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        let mut pause = Duration::from_millis(1);
        while !self.shared.accept_exited.load(Ordering::SeqCst)
            && std::time::Instant::now() < deadline
        {
            let _ = TcpStream::connect_timeout(&target, Duration::from_millis(100));
            std::thread::sleep(pause);
            pause = (pause * 2).min(Duration::from_millis(50));
        }
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// The address the server is bound to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Server {
    /// Binds a listener on `addr` (use port 0 for an ephemeral port) over
    /// `source` — an `Arc<Store>` (read-only pack) or an
    /// `Arc<neats_ingest::Ingestor>` (live directory; enables
    /// `POST /write`). The worker count is resolved at [`Self::run`].
    pub fn bind(
        source: impl Into<Source>,
        addr: impl ToSocketAddrs,
        mut cfg: ServeConfig,
    ) -> std::io::Result<Server> {
        // A zero poll interval would make set_read_timeout fail (leaving
        // sockets blocking, which breaks shutdown) and turn the accept
        // loop into a busy spin — clamp it to something meaningful.
        cfg.poll_interval = cfg.poll_interval.max(Duration::from_millis(1));
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let threads = effective_threads_env(cfg.threads, THREADS_ENV);
        Ok(Server {
            listener,
            source: source.into(),
            shared: Arc::new(Shared {
                shutdown: AtomicBool::new(false),
                accept_exited: AtomicBool::new(false),
                open_conns: AtomicU64::new(0),
                queued: AtomicU64::new(0),
                stats: ServerStats::new(),
            }),
            addr,
            threads,
            cfg,
        })
    }

    /// The bound address (the actual port when bound with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The resolved worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A shutdown handle; obtain it before calling [`Self::run`].
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared), addr: self.addr }
    }

    /// Serves until shutdown: the calling thread runs the accept loop, the
    /// worker pool handles connections. Returns after the drain completes.
    pub fn run(self) -> std::io::Result<()> {
        let Server { listener, source, shared, addr: _, threads, cfg } = self;
        let queue: Queue<TcpStream> = Queue::new();
        let limits = Limits {
            max_header_bytes: cfg.max_header_bytes,
            max_body_bytes: cfg.max_body_bytes,
            request_timeout: cfg.request_timeout,
            idle_timeout: cfg.idle_timeout,
        };
        let max_conns = resolve_knob(cfg.max_connections, MAX_CONNS_ENV, 1024) as u64;
        let watermark =
            resolve_knob(cfg.queue_watermark, SHED_WATERMARK_ENV, (4 * threads).min(64)) as u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    while let Some(conn) = queue.pop() {
                        shared.queued.fetch_sub(1, Ordering::Relaxed);
                        serve_connection(&source, &shared, &cfg, &limits, threads, conn);
                    }
                });
            }
            // Non-blocking accept with a short idle sleep: the loop
            // observes the shutdown flag even if the wake-up connect in
            // ServerHandle::shutdown never lands (wildcard binds, full
            // backlog), so run() can never hang on accept(). The tick is
            // deliberately much shorter than poll_interval — it bounds
            // *accept latency* for every new connection, not just shutdown
            // responsiveness.
            let accept_tick = Duration::from_millis(2).min(cfg.poll_interval);
            let nonblocking = listener.set_nonblocking(true).is_ok();
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((conn, _peer)) => {
                        if shared.shutdown.load(Ordering::SeqCst) {
                            break; // likely the wake-up connection; drop it
                        }
                        // Workers rely on read timeouts, which need a
                        // blocking socket (some platforms inherit the
                        // listener's non-blocking flag).
                        if conn.set_nonblocking(false).is_err() {
                            continue;
                        }
                        // Admission control: past the connection cap or the
                        // queue watermark, every worker is saturated and an
                        // admitted connection would only queue — answer a
                        // canned 503 now so the client can back off, and
                        // admitted requests keep their flat latency.
                        if shared.open_conns.load(Ordering::Relaxed) >= max_conns
                            || shared.queued.load(Ordering::Relaxed) >= watermark
                        {
                            shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                            shed_connection(conn);
                            continue;
                        }
                        shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                        shared.open_conns.fetch_add(1, Ordering::Relaxed);
                        shared.queued.fetch_add(1, Ordering::Relaxed);
                        if !queue.push(conn) {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock && nonblocking => {
                        std::thread::sleep(accept_tick);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        // Transient accept failure (e.g. fd exhaustion):
                        // back off briefly instead of spinning.
                        std::thread::sleep(cfg.poll_interval);
                    }
                }
            }
            shared.accept_exited.store(true, Ordering::SeqCst);
            queue.close();
        });
        Ok(())
    }
}

/// Sheds one connection at accept time with a canned raw `503` (no parsing,
/// no allocation beyond the accepted socket — shedding must stay cheap under
/// exactly the load that triggers it). Best-effort: a slow or gone client
/// gets dropped after a short write timeout.
fn shed_connection(conn: TcpStream) {
    const SHED_RESPONSE: &[u8] = b"HTTP/1.1 503 Service Unavailable\r\n\
        Content-Type: text/plain\r\n\
        Content-Length: 9\r\n\
        Retry-After: 1\r\n\
        Connection: close\r\n\
        \r\n\
        overload\n";
    let _ = conn.set_write_timeout(Some(Duration::from_millis(100)));
    let mut conn = conn;
    let _ = conn.write_all(SHED_RESPONSE);
    let _ = conn.flush();
    // Drain whatever request bytes already arrived (one non-blocking read —
    // this runs on the accept thread and must never stall). Closing a
    // socket with unread data sends an RST that can discard the 503 before
    // the client reads it; the drain makes the common case — a small
    // request that landed before accept — deliver the response cleanly.
    if conn.set_nonblocking(true).is_ok() {
        let mut sink = [0u8; 4096];
        let _ = std::io::Read::read(&mut conn, &mut sink);
    }
}

/// Serves one connection for its whole keep-alive lifetime.
fn serve_connection(
    source: &Source,
    shared: &Shared,
    cfg: &ServeConfig,
    limits: &Limits,
    threads: usize,
    stream: TcpStream,
) {
    shared.stats.active.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_nodelay(true);
    // The read timeout is the poll tick: blocked reads wake this often to
    // re-check the shutdown flag.
    let _ = stream.set_read_timeout(Some(cfg.poll_interval));
    let mut conn = Conn::new(stream);
    let should_abort = || shared.shutdown.load(Ordering::SeqCst);
    loop {
        match conn.read_request(limits, &should_abort) {
            Ok(ReadOutcome::Request(req)) => {
                // A handler panic must not take down the worker (the pool is
                // fixed — a dead worker would shrink capacity forever); the
                // panicking request gets a 500 and its connection closes.
                let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    handler::handle(source, &shared.stats, threads, &req)
                }));
                let (resp, close_after) = match result {
                    Ok(resp) => (resp, false),
                    Err(_) => {
                        shared.stats.panics.fetch_add(1, Ordering::Relaxed);
                        (Response::error(500, "internal error"), true)
                    }
                };
                // On shutdown, drain: requests the client already pipelined
                // in full are still answered before the close.
                let keep = req.keep_alive
                    && !close_after
                    && (!should_abort() || conn.has_buffered_request());
                if http::write_response(conn.stream(), &resp, keep).is_err() || !keep {
                    break;
                }
            }
            Ok(ReadOutcome::Closed) => break,
            Err(HttpError { status, reason }) => {
                shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                if status == 408 {
                    // Slow-drip or idle deadline — the slowloris defenses.
                    shared.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                }
                let _ = http::write_response(
                    conn.stream(),
                    &Response::error(status, &reason),
                    false,
                );
                break;
            }
        }
    }
    shared.stats.active.fetch_sub(1, Ordering::Relaxed);
    shared.open_conns.fetch_sub(1, Ordering::Relaxed);
}
