//! Request routing: the seven endpoints, the query grammar shared by single
//! and batched queries, the JSON renderers, and the per-request trace
//! (stage breakdown, slow-query log, `/debug/requests` ring).
//!
//! The full request/response grammar, status-code contract, and batch frame
//! format live in `docs/PROTOCOL.md` at the repository root; the loopback
//! integration test mirrors its examples verbatim.

use crate::http::{Method, Request, Response};
use crate::source::{mode_eps, Source};
use crate::stats::{Endpoint, Obs, ServerStats};
use neats_core::obs::{span_ensure, span_take, stage, Stage, STAGE_COUNT};
use neats_ingest::Ingestor;
use neats_store::StoreError;
use std::io::Write as _;
use std::time::Instant;

/// Routes one parsed request, recording latency and error counters for the
/// endpoint it lands on, then closes out the request trace: the stage span
/// (armed by the serving loop before the read, covering parse) is taken
/// here, checked against the slow-query threshold, and recorded into the
/// `/debug/requests` ring. Response socket I/O is not traced.
pub fn handle(
    src: &Source,
    stats: &ServerStats,
    obs: &Obs,
    threads: usize,
    req: &Request,
) -> Response {
    use std::sync::atomic::Ordering::Relaxed;
    // Direct calls (tests, future embedders) that never armed a span still
    // trace from here; for served requests this is a no-op.
    span_ensure();
    stats.bytes_in.fetch_add(req.wire_bytes as u64, Relaxed);
    let t0 = Instant::now();
    let (endpoint, resp) = route(src, stats, obs, threads, req);
    if resp.status == 503 {
        stats.degraded.fetch_add(1, Relaxed);
    }
    let elapsed_ns = t0.elapsed().as_nanos() as u64;
    match endpoint {
        Some(e) => stats.record(e, resp.status, elapsed_ns),
        None => {
            stats.unrouted.fetch_add(1, Relaxed);
        }
    }
    let stage_ns = span_take().unwrap_or([0; STAGE_COUNT]);
    // The parse stage ran before this call, while the request was read.
    let total_ns = elapsed_ns + stage_ns[Stage::Parse as usize];
    let slow = obs.slow_query_us > 0 && total_ns >= obs.slow_query_us.saturating_mul(1_000);
    if slow {
        stats.slow_queries.fetch_add(1, Relaxed);
        eprintln!(
            "slow-query: {} {} status={} total_us={} parse={} route={} cache={} \
             decode={} render={} write={}",
            match req.method {
                Method::Get => "GET",
                Method::Post => "POST",
            },
            req.path,
            resp.status,
            total_ns / 1_000,
            stage_ns[Stage::Parse as usize] / 1_000,
            stage_ns[Stage::Route as usize] / 1_000,
            stage_ns[Stage::Cache as usize] / 1_000,
            stage_ns[Stage::Decode as usize] / 1_000,
            stage_ns[Stage::Render as usize] / 1_000,
            stage_ns[Stage::Write as usize] / 1_000,
        );
    }
    obs.ring.record(&req.path, resp.status, total_ns, slow, &stage_ns);
    resp
}

fn route(
    src: &Source,
    stats: &ServerStats,
    obs: &Obs,
    threads: usize,
    req: &Request,
) -> (Option<Endpoint>, Response) {
    // Routing + handling; nested stage guards (cache, decode, render,
    // write) pause this one, so its self-time is pure dispatch overhead.
    let _route = stage(Stage::Route);
    match (req.method, req.path.as_str()) {
        (Method::Get, "/series") => (Some(Endpoint::Series), series_json(src)),
        (Method::Get, "/stats") => (
            Some(Endpoint::Stats),
            stats_json(src, stats, obs, threads),
        ),
        (Method::Get, "/metrics") => (Some(Endpoint::Metrics), metrics_text(obs)),
        (Method::Get, "/debug/requests") => (Some(Endpoint::Debug), debug_requests_json(obs)),
        (Method::Get, path) if path.starts_with("/q/") => {
            let series = &path[3..];
            (Some(Endpoint::Query), single_query(src, series, &req.query))
        }
        (Method::Post, "/q") => (Some(Endpoint::Batch), batch_query(src, &req.body)),
        (Method::Post, "/write") => (Some(Endpoint::Write), write_batch(src, &req.body)),
        // Known paths under the wrong method get a 405, unknown paths a 404.
        (_, "/series" | "/stats" | "/q" | "/write" | "/metrics" | "/debug/requests")
        | (Method::Post, _)
            if known_path(&req.path) =>
        {
            (None, Response::error(405, "method not allowed"))
        }
        _ => (None, Response::error(404, "no such endpoint")),
    }
}

fn known_path(path: &str) -> bool {
    path == "/series"
        || path == "/stats"
        || path == "/q"
        || path == "/write"
        || path == "/metrics"
        || path == "/debug/requests"
        || path.starts_with("/q/")
}

/// `GET /metrics`: the whole registry in Prometheus text exposition format
/// (version 0.0.4) — serve counters, store/cache counters, and the ingest
/// write-path families on a live source.
fn metrics_text(obs: &Obs) -> Response {
    Response {
        status: 200,
        content_type: "text/plain; version=0.0.4",
        body: obs.registry.render().into_bytes(),
        retry_after: None,
    }
}

/// `GET /debug/requests`: the trace ring as a JSON array, newest first —
/// per-request status, total, slow flag, and the six stage timings.
fn debug_requests_json(obs: &Obs) -> Response {
    let entries = obs.ring.entries();
    let mut out = String::from("[");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"seq\": {}, \"ts_unix_us\": {}, \"path\": {}, \"status\": {}, \
             \"slow\": {}, \"total_us\": {:.1}",
            e.seq,
            e.ts_unix_us,
            json_string(&e.path),
            e.status,
            e.slow,
            e.total_ns as f64 / 1e3,
        ));
        for (s, ns) in Stage::ALL.iter().zip(e.stage_ns.iter()) {
            out.push_str(&format!(", \"{}_us\": {:.1}", s.name(), *ns as f64 / 1e3));
        }
        out.push('}');
    }
    out.push_str(if entries.is_empty() { "]\n" } else { "\n]\n" });
    Response::json(out)
}

/// `GET /q/<series>?idx=K | idx=A..B | t=T | t=A..B`.
fn single_query(src: &Source, series: &str, query: &str) -> Response {
    match run_query(src, series, query) {
        Ok((body, _)) => Response::text(body),
        Err((status, reason)) => Response::error(status, &reason),
    }
}

/// `POST /q` — one query per line: `<series> <spec>`. Every query is
/// answered inside one 200 frame; see `docs/PROTOCOL.md` for the framing.
fn batch_query(src: &Source, body: &[u8]) -> Response {
    let Ok(text) = std::str::from_utf8(body) else {
        return Response::error(400, "batch body is not UTF-8");
    };
    let mut out = Vec::new();
    let mut n = 0usize;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let i = n;
        n += 1;
        // The spec (`idx=…` / `t=…`) never contains a space, so the series
        // name is everything before the *last* space — names with spaces
        // need no escaping in batch lines.
        match line.rsplit_once(' ') {
            Some((series, spec)) => match run_query(src, series.trim(), spec.trim()) {
                Ok((payload, lines)) => {
                    let _ = writeln!(out, "#{i} ok {lines}");
                    out.extend_from_slice(&payload);
                }
                Err((status, reason)) => {
                    let _ = writeln!(out, "#{i} err {status} {reason}");
                }
            },
            None => {
                let _ = writeln!(out, "#{i} err 400 malformed query line (want: <series> <spec>)");
            }
        }
    }
    let _ = writeln!(out, "#done {n}");
    Response::text(out)
}

/// `POST /write` — one point per line: `<series> <timestamp> <value>`.
/// Live sources only; a pack answers 405. Consecutive lines of the same
/// series are batched into one append (one WAL record, one fsync under
/// the default policy), and each batch is acknowledged with one frame:
/// `#i ok <points>` once the batch is durable per the ingestor's fsync
/// policy, or `#i err <status> <reason>` if it was rejected whole. The
/// frame list ends with `#done <batches>`.
fn write_batch(src: &Source, body: &[u8]) -> Response {
    let Some(ing) = src.live() else {
        return Response::error(405, "read-only pack (serve an ingest directory to write)");
    };
    // A degraded ingestor keeps serving reads but rejects writes up front —
    // better one cheap 503 than a half-processed batch hitting the same
    // fault mid-way.
    if let Some(reason) = ing.degraded_reason() {
        return Response::error(503, &format!("ingest degraded (read-only): {reason}"));
    }
    let Ok(text) = std::str::from_utf8(body) else {
        return Response::error(400, "write body is not UTF-8");
    };
    let mut out = Vec::new();
    let mut n = 0usize;
    let mut cur: Option<(String, Vec<u64>, Vec<i64>)> = None;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match parse_write_line(line) {
            Ok((series, t, v)) => {
                if let Some((name, stamps, values)) = &mut cur {
                    if name == series {
                        stamps.push(t);
                        values.push(v);
                        continue;
                    }
                }
                if let Some(batch) = cur.take() {
                    flush_write_batch(ing, batch, &mut out, &mut n);
                }
                cur = Some((series.to_string(), vec![t], vec![v]));
            }
            Err(reason) => {
                if let Some(batch) = cur.take() {
                    flush_write_batch(ing, batch, &mut out, &mut n);
                }
                let i = n;
                n += 1;
                let _ = writeln!(out, "#{i} err 400 {reason}");
            }
        }
    }
    if let Some(batch) = cur.take() {
        flush_write_batch(ing, batch, &mut out, &mut n);
    }
    let _ = writeln!(out, "#done {n}");
    Response::text(out)
}

/// Parses one write line: `<series> <timestamp> <value>`. The timestamp
/// and value never contain spaces, so the series name is everything before
/// the last two fields — names with spaces need no escaping.
fn parse_write_line(line: &str) -> Result<(&str, u64, i64), String> {
    let malformed = || format!("malformed write line {line:?} (want: <series> <t> <v>)");
    let (rest, v) = line.rsplit_once(' ').ok_or_else(malformed)?;
    let (series, t) = rest.trim_end().rsplit_once(' ').ok_or_else(malformed)?;
    let t: u64 = t.parse().map_err(|_| format!("bad timestamp {t:?}"))?;
    let v: i64 = v.parse().map_err(|_| format!("bad value {v:?}"))?;
    let series = series.trim();
    if series.is_empty() {
        return Err(malformed());
    }
    Ok((series, t, v))
}

/// Appends one batch and emits its acknowledgement frame.
fn flush_write_batch(
    ing: &Ingestor,
    (series, stamps, values): (String, Vec<u64>, Vec<i64>),
    out: &mut Vec<u8>,
    n: &mut usize,
) {
    let i = *n;
    *n += 1;
    match ing.append(&series, &stamps, &values) {
        Ok(()) => {
            let _ = writeln!(out, "#{i} ok {}", stamps.len());
        }
        Err(e) => {
            let (status, reason) = store_err(e);
            let _ = writeln!(out, "#{i} err {status} {reason}");
        }
    }
}

/// Runs one query spec (`idx=K`, `idx=A..B`, `t=T`, `t=A..B`) against
/// `series`, returning the rendered payload and its line count, or the
/// status + reason it fails with.
pub(crate) fn run_query(
    src: &Source,
    series: &str,
    spec: &str,
) -> Result<(Vec<u8>, usize), (u16, String)> {
    let (key, val) = spec
        .split_once('=')
        .ok_or_else(|| (400u16, format!("malformed query spec {spec:?} (want idx=… or t=…)")))?;
    let mut body = Vec::new();
    let mut lines = 0usize;
    match key {
        "idx" => {
            if let Some((a, b)) = val.split_once("..") {
                let a = parse_num(a, "range start")?;
                let b = parse_num(b, "range end")?;
                src.range_chunks(series, a..b, |chunk| {
                    // Rendered straight from the zero-copy segment
                    // views: the decoded-value buffer stays one segment
                    // long (the text body still accumulates in full for
                    // Content-Length framing).
                    let _render = stage(Stage::Render);
                    for v in chunk {
                        let _ = writeln!(body, "{v}");
                    }
                    lines += chunk.len();
                })
                .map_err(store_err)?;
            } else {
                let k = parse_num(val, "index")?;
                let v = src.get(series, k).map_err(store_err)?;
                let _ = writeln!(body, "{v}");
                lines = 1;
            }
        }
        "t" => {
            if let Some((a, b)) = val.split_once("..") {
                let a = parse_num(a, "time range start")?;
                let b = parse_num(b, "time range end")?;
                src.range_by_time_chunks(series, a, b, |chunk| {
                    let _render = stage(Stage::Render);
                    for (t, v) in chunk {
                        let _ = writeln!(body, "{t},{v}");
                    }
                    lines += chunk.len();
                })
                .map_err(store_err)?;
            } else {
                let t = parse_num(val, "timestamp")?;
                match src.at_time(series, t).map_err(store_err)? {
                    Some(v) => {
                        let _ = writeln!(body, "{v}");
                        lines = 1;
                    }
                    None => return Err((404, format!("no sample at timestamp {t}"))),
                }
            }
        }
        other => return Err((400, format!("unknown query key {other:?} (want idx or t)"))),
    }
    Ok((body, lines))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, (u16, String)> {
    s.trim()
        .parse()
        .map_err(|_| (400, format!("{what} must be a non-negative integer, got {s:?}")))
}

/// Maps a [`StoreError`] to the HTTP status the protocol promises.
fn store_err(e: StoreError) -> (u16, String) {
    let status = match &e {
        StoreError::UnknownSeries(_) => 404,
        StoreError::OutOfRange { .. } | StoreError::BadRange { .. } => 400,
        // A corrupt segment surfacing at query time is a server-side fault.
        StoreError::Corrupt(_) | StoreError::Wire(_) => 500,
        StoreError::Io(_) => 500,
        // Temporary server-side conditions: retry later (503 responses
        // carry `Retry-After` automatically).
        StoreError::Degraded { .. } | StoreError::Quarantined { .. } => 503,
        _ => 400,
    };
    (status, e.to_string())
}

/// `GET /series`: the catalog as a JSON array (catalog order for a pack,
/// name-sorted for a live source — see [`Source::summaries`]).
fn series_json(src: &Source) -> Response {
    let summaries = src.summaries();
    let mut out = String::from("[");
    for (i, e) in summaries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"name\": {}, \"mode\": \"{}\", \"eps\": {}, \"points\": {}, \
             \"segments\": {}, \"t_min\": {}, \"t_max\": {}}}",
            json_string(&e.name),
            e.mode.name(),
            mode_eps(e.mode),
            e.points,
            e.segments,
            e.t_min,
            e.t_max,
        ));
    }
    out.push_str(if summaries.is_empty() { "]\n" } else { "\n]\n" });
    Response::json(out)
}

/// `GET /stats`: cache counters, connection counters, and per-endpoint
/// latency percentiles — plus the live write-path gauges when serving an
/// ingest directory. Every number here reads the same atomics `/metrics`
/// exposes; the two surfaces differ only in format.
fn stats_json(src: &Source, stats: &ServerStats, obs: &Obs, threads: usize) -> Response {
    use std::sync::atomic::Ordering::Relaxed;
    let cache = src.cache_stats();
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"uptime_s\": {:.3},\n", stats.uptime_s()));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"mode\": \"{}\",\n", obs.mode));
    out.push_str(&format!("  \"shards\": {},\n", obs.shards));
    out.push_str(&format!(
        "  \"source\": {},\n",
        json_string(&obs.source_label)
    ));
    out.push_str(&format!("  \"series\": {},\n", src.series_count()));
    out.push_str(&format!("  \"points\": {},\n", src.total_points()));
    out.push_str(&format!("  \"live\": {},\n", src.is_live()));
    if let Some(ing) = src.live() {
        out.push_str(&format!(
            "  \"ingest\": {{\"epoch\": {}, \"head_points\": {}, \"wal_bytes\": {}, \
             \"dead_bytes\": {}, \"background_errors\": {}, \"degraded\": {}}},\n",
            ing.epoch(),
            ing.head_points(),
            ing.wal_len(),
            ing.dead_bytes(),
            ing.background_errors(),
            ing.is_degraded(),
        ));
    }
    out.push_str(&format!("  \"quarantined\": {},\n", src.quarantined_count()));
    out.push_str(&format!(
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"entries\": {}, \
         \"hit_rate\": {:.4}}},\n",
        cache.hits,
        cache.misses,
        cache.evictions,
        cache.entries,
        cache.hit_rate(),
    ));
    out.push_str(&format!(
        "  \"connections\": {{\"accepted\": {}, \"active\": {}, \"protocol_errors\": {}, \
         \"unrouted\": {}, \"panics\": {}, \"shed\": {}, \"timeouts\": {}, \
         \"degraded\": {}, \"slow_queries\": {}, \"bytes_in\": {}, \"bytes_out\": {}}},\n",
        stats.accepted.load(Relaxed),
        stats.active.load(Relaxed),
        stats.protocol_errors.load(Relaxed),
        stats.unrouted.load(Relaxed),
        stats.panics.load(Relaxed),
        stats.shed.load(Relaxed),
        stats.timeouts.load(Relaxed),
        stats.degraded.load(Relaxed),
        stats.slow_queries.load(Relaxed),
        stats.bytes_in.load(Relaxed),
        stats.bytes_out.load(Relaxed),
    ));
    out.push_str("  \"endpoints\": {");
    for (i, e) in Endpoint::ALL.iter().enumerate() {
        let s = stats.endpoint(*e);
        let snap = s.latency_ns.snapshot();
        out.push_str(&format!(
            "{}\n    \"{}\": {{\"requests\": {}, \"errors\": {}, \"p50_us\": {:.1}, \
             \"p99_us\": {:.1}, \"p999_us\": {:.1}, \"max_us\": {:.1}, \"mean_us\": {:.1}}}",
            if i > 0 { "," } else { "" },
            e.key(),
            s.requests.load(Relaxed),
            s.errors.load(Relaxed),
            snap.quantile(0.5) as f64 / 1e3,
            snap.quantile(0.99) as f64 / 1e3,
            snap.quantile(0.999) as f64 / 1e3,
            snap.max() as f64 / 1e3,
            snap.mean() / 1e3,
        ));
    }
    out.push_str("\n  }\n}\n");
    Response::json(out)
}

/// Renders a JSON string literal with full escaping.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use neats_ingest::{IngestConfig, Ingestor};
    use neats_store::{Store, StoreConfig, StoreWriter};
    use std::sync::Arc;

    fn demo_store() -> Arc<Store> {
        let mut w = StoreWriter::new(StoreConfig { segment_points: 64, ..Default::default() });
        let stamps: Vec<u64> = (0..500u64).map(|i| 1_000 + i * 3).collect();
        let values: Vec<i64> = (0..500).map(|k: i64| k * k % 211 - 17).collect();
        w.ingest("cpu", &stamps, &values).unwrap();
        Arc::new(Store::open(w.finish().unwrap()).unwrap())
    }

    fn get(path: &str, query: &str) -> Request {
        Request {
            method: Method::Get,
            path: path.into(),
            query: query.into(),
            keep_alive: true,
            body: Vec::new(),
            wire_bytes: 0,
        }
    }

    fn post(path: &str, body: &[u8]) -> Request {
        Request {
            method: Method::Post,
            path: path.into(),
            query: String::new(),
            keep_alive: true,
            body: body.to_vec(),
            wire_bytes: 0,
        }
    }

    #[test]
    fn query_grammar_answers_match_store() {
        let store = demo_store();
        let src = Source::from(Arc::clone(&store));
        let (body, lines) = run_query(&src, "cpu", "idx=7").unwrap();
        assert_eq!(lines, 1);
        assert_eq!(
            String::from_utf8(body).unwrap().trim().parse::<i64>().unwrap(),
            store.get("cpu", 7).unwrap()
        );

        let (body, lines) = run_query(&src, "cpu", "idx=10..200").unwrap();
        assert_eq!(lines, 190);
        let got: Vec<i64> = String::from_utf8(body)
            .unwrap()
            .lines()
            .map(|l| l.parse().unwrap())
            .collect();
        let mut want = Vec::new();
        store.range("cpu", 10..200, &mut want).unwrap();
        assert_eq!(got, want);

        let t = store.timestamp("cpu", 42).unwrap();
        let (body, _) = run_query(&src, "cpu", &format!("t={t}")).unwrap();
        assert_eq!(
            String::from_utf8(body).unwrap().trim().parse::<i64>().unwrap(),
            store.get("cpu", 42).unwrap()
        );

        let (body, lines) = run_query(&src, "cpu", "t=1000..1300").unwrap();
        let mut want = Vec::new();
        store.range_by_time("cpu", 1000, 1300, &mut want).unwrap();
        assert_eq!(lines, want.len());
        let got: Vec<(u64, i64)> = String::from_utf8(body)
            .unwrap()
            .lines()
            .map(|l| {
                let (t, v) = l.split_once(',').unwrap();
                (t.parse().unwrap(), v.parse().unwrap())
            })
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn query_grammar_statuses() {
        let src = Source::from(demo_store());
        assert_eq!(run_query(&src, "nope", "idx=0").unwrap_err().0, 404);
        assert_eq!(run_query(&src, "cpu", "idx=99999").unwrap_err().0, 400);
        assert_eq!(run_query(&src, "cpu", "idx=9..2").unwrap_err().0, 400);
        assert_eq!(run_query(&src, "cpu", "t=1").unwrap_err().0, 404); // gap
        assert_eq!(run_query(&src, "cpu", "frob=1").unwrap_err().0, 400);
        assert_eq!(run_query(&src, "cpu", "idx").unwrap_err().0, 400);
        assert_eq!(run_query(&src, "cpu", "idx=banana").unwrap_err().0, 400);
        // An inverted time range is simply empty, like range_by_time.
        let (body, lines) = run_query(&src, "cpu", "t=300..200").unwrap();
        assert!(body.is_empty());
        assert_eq!(lines, 0);
    }

    #[test]
    fn batch_frame_shape() {
        let src = Source::from(demo_store());
        let stats = ServerStats::new();
        let obs = Obs::disabled();
        let req = post("/q", b"cpu idx=3\nnope idx=0\n\ncpu idx=0..2\nmalformed\n");
        let resp = handle(&src, &stats, &obs, 1, &req);
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.starts_with("#0 ok 1\n"), "{text}");
        assert!(text.contains("#1 err 404"), "{text}");
        assert!(text.contains("#2 ok 2\n"), "{text}");
        assert!(text.contains("#3 err 400"), "{text}");
        assert!(text.ends_with("#done 4\n"), "{text}");
    }

    #[test]
    fn routing_and_counters() {
        let src = Source::from(demo_store());
        let stats = ServerStats::new();
        let obs = Obs::disabled();
        assert_eq!(handle(&src, &stats, &obs, 2, &get("/series", "")).status, 200);
        assert_eq!(handle(&src, &stats, &obs, 2, &get("/q/cpu", "idx=1")).status, 200);
        assert_eq!(handle(&src, &stats, &obs, 2, &get("/q/none", "idx=1")).status, 404);
        assert_eq!(handle(&src, &stats, &obs, 2, &get("/frob", "")).status, 404);
        let stats_resp = handle(&src, &stats, &obs, 2, &get("/stats", ""));
        assert_eq!(stats_resp.status, 200);
        let text = String::from_utf8(stats_resp.body).unwrap();
        assert!(text.contains("\"threads\": 2"), "{text}");
        assert!(text.contains("\"query\": {\"requests\": 2, \"errors\": 1"), "{text}");
        assert!(text.contains("\"live\": false"), "{text}");
        assert!(text.contains("\"p999_us\""), "{text}");
        // POST to a GET-only path is a 405, as is writing to a pack.
        assert_eq!(handle(&src, &stats, &obs, 2, &post("/series", b"")).status, 405);
        assert_eq!(
            handle(&src, &stats, &obs, 2, &post("/write", b"cpu 1 2\n")).status,
            405
        );
        assert_eq!(handle(&src, &stats, &obs, 2, &get("/write", "")).status, 405);
        assert_eq!(handle(&src, &stats, &obs, 2, &post("/metrics", b"")).status, 405);
        assert_eq!(
            handle(&src, &stats, &obs, 2, &post("/debug/requests", b"")).status,
            405
        );
    }

    #[test]
    fn metrics_exposition_shares_the_stats_atomics() {
        let src = Source::from(demo_store());
        let stats = ServerStats::new();
        let obs = Obs {
            registry: Arc::new(neats_core::Registry::new()),
            ring: neats_core::TraceRing::new(8),
            slow_query_us: 0,
            shard_depths: Vec::new(),
            source_label: "demo.pack".into(),
            mode: "threaded",
            shards: 1,
        };
        stats.register(&obs.registry);
        src.register_metrics(&obs.registry);
        assert_eq!(handle(&src, &stats, &obs, 1, &get("/q/cpu", "idx=1")).status, 200);
        assert_eq!(handle(&src, &stats, &obs, 1, &get("/q/none", "idx=1")).status, 404);
        let resp = handle(&src, &stats, &obs, 1, &get("/metrics", ""));
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, "text/plain; version=0.0.4");
        let text = String::from_utf8(resp.body).unwrap();
        assert!(
            text.contains("neats_serve_requests_total{endpoint=\"query\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("neats_serve_errors_total{endpoint=\"query\"} 1"),
            "{text}"
        );
        assert!(text.contains("# TYPE neats_store_cache_hits_total counter"), "{text}");
        // The trace ring saw every request handled above.
        let resp = handle(&src, &stats, &obs, 1, &get("/debug/requests", ""));
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"path\": \"/metrics\""), "{text}");
        assert!(text.contains("\"parse_us\""), "{text}");
        assert!(text.contains("\"write_us\""), "{text}");
    }

    #[test]
    fn slow_query_threshold_flags_and_counts() {
        let src = Source::from(demo_store());
        let stats = ServerStats::new();
        let obs = Obs {
            // 0µs threshold would mean "off"; 1ns-rounding makes every
            // request slow at 1µs only if it takes ≥1µs — a range render
            // over 500 points reliably does.
            slow_query_us: 1,
            ..Obs::disabled()
        };
        let obs = Obs {
            ring: neats_core::TraceRing::new(4),
            ..obs
        };
        assert_eq!(
            handle(&src, &stats, &obs, 1, &get("/q/cpu", "idx=0..500")).status,
            200
        );
        assert_eq!(stats.slow_queries.load(std::sync::atomic::Ordering::Relaxed), 1);
        let entries = obs.ring.entries();
        assert_eq!(entries.len(), 1);
        assert!(entries[0].slow);
        assert_eq!(entries[0].path, "/q/cpu");
    }

    #[test]
    fn series_json_lists_catalog() {
        let src = Source::from(demo_store());
        let stats = ServerStats::new();
        let obs = Obs::disabled();
        let resp = handle(&src, &stats, &obs, 1, &get("/series", ""));
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"name\": \"cpu\""), "{text}");
        assert!(text.contains("\"points\": 500"), "{text}");
        assert!(text.contains("\"mode\": \"lossless\""), "{text}");
    }

    #[test]
    fn write_endpoint_appends_to_a_live_source() {
        let dir = std::env::temp_dir().join(format!("neats-serve-write-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ing = Ingestor::open(&dir, IngestConfig::default()).unwrap();
        let src = Source::from(ing);
        let stats = ServerStats::new();
        let obs = Obs::disabled();

        // Three batches: cpu×2 (consecutive lines coalesce), mem×1, then a
        // stale cpu point (timestamp went backwards) and a malformed line.
        let body = b"cpu 1000 5\ncpu 1001 6\nmem 500 -3\ncpu 900 1\nbroken\n";
        let resp = handle(&src, &stats, &obs, 1, &post("/write", body));
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.starts_with("#0 ok 2\n"), "{text}");
        assert!(text.contains("#1 ok 1\n"), "{text}");
        assert!(text.contains("#2 err 400"), "{text}");
        assert!(text.contains("#3 err 400 malformed write line"), "{text}");
        assert!(text.ends_with("#done 4\n"), "{text}");

        // The accepted points serve immediately through the query grammar.
        let (body, _) = run_query(&src, "cpu", "idx=0..2").unwrap();
        assert_eq!(String::from_utf8(body).unwrap(), "5\n6\n");
        let (body, _) = run_query(&src, "mem", "t=500").unwrap();
        assert_eq!(String::from_utf8(body).unwrap(), "-3\n");

        // /series and /stats reflect the live state.
        let text =
            String::from_utf8(handle(&src, &stats, &obs, 1, &get("/series", "")).body).unwrap();
        assert!(text.contains("\"name\": \"cpu\""), "{text}");
        assert!(text.contains("\"name\": \"mem\""), "{text}");
        let text =
            String::from_utf8(handle(&src, &stats, &obs, 1, &get("/stats", "")).body).unwrap();
        assert!(text.contains("\"live\": true"), "{text}");
        assert!(text.contains("\"head_points\": 3"), "{text}");
        assert!(text.contains("\"write\": {\"requests\": 1"), "{text}");
        drop(src);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_line_parser() {
        assert_eq!(parse_write_line("cpu 12 -3").unwrap(), ("cpu", 12, -3));
        assert_eq!(
            parse_write_line("with space 12 3").unwrap(),
            ("with space", 12, 3)
        );
        assert!(parse_write_line("cpu 12").is_err());
        assert!(parse_write_line("cpu x 3").is_err());
        assert!(parse_write_line("cpu 12 x").is_err());
        assert!(parse_write_line(" 12 3").is_err());
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
