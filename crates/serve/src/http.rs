//! A minimal, defensive HTTP/1.1 subset: request reading and response
//! writing over a `TcpStream`.
//!
//! This is not a general HTTP implementation — it parses exactly what
//! `docs/PROTOCOL.md` (at the repository root) promises: request line,
//! headers, optional `Content-Length` body, keep-alive and pipelining — and
//! rejects everything else with a 4xx/501 instead of guessing. Every limit
//! is explicit ([`Limits`]), every read is bounded, and malformed input can
//! never panic the worker: the fuzz suite (`tests/serve_fuzz.rs`) feeds
//! this parser garbage, oversized heads, truncated bodies and pipelined
//! junk and asserts the connection always ends in a clean error response or
//! close.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Hard bounds on what a single request may occupy.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum bytes of request line + headers (431 beyond).
    pub max_header_bytes: usize,
    /// Maximum `Content-Length` (413 beyond).
    pub max_body_bytes: usize,
    /// Maximum time from a request's first byte to its last; a request that
    /// stalls longer (e.g. a truncated body) is answered 408 and the
    /// connection closed.
    pub request_timeout: std::time::Duration,
    /// Maximum time a keep-alive connection may sit idle *between*
    /// requests before it is answered 408 and closed — without this, a
    /// slowloris-style client could pin a worker forever by simply never
    /// sending its next request.
    pub idle_timeout: std::time::Duration,
}

/// The request methods the server routes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// An HTTP GET.
    Get,
    /// An HTTP POST.
    Post,
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// The method (only GET/POST reach routing; others 405 at parse time).
    pub method: Method,
    /// The percent-decoded path (always starts with `/`).
    pub path: String,
    /// The raw query string (bytes after `?`, empty when absent).
    pub query: String,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
    /// The request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Bytes this request occupied on the wire (head + body) — feeds the
    /// `bytes_in` counter on `/stats` and `/metrics`.
    pub wire_bytes: usize,
}

/// A parse-level failure, carrying the status the connection is closed with.
#[derive(Debug)]
pub struct HttpError {
    /// The 4xx/5xx status to answer before closing.
    pub status: u16,
    /// A short human-readable reason (becomes the response body).
    pub reason: String,
}

impl HttpError {
    fn new(status: u16, reason: impl Into<String>) -> Self {
        Self {
            status,
            reason: reason.into(),
        }
    }
}

/// The outcome of waiting for a request on a kept-alive connection.
pub enum ReadOutcome {
    /// A complete request was read.
    Request(Request),
    /// The peer closed (or the server is shutting down) between requests.
    Closed,
}

/// A buffered connection reader that supports keep-alive and pipelining:
/// bytes past the current request stay in the buffer for the next
/// [`read_request`](Self::read_request) call.
pub struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet consumed by a request.
    buf: Vec<u8>,
}

impl Conn {
    /// Wraps `stream`. The caller must have set a read timeout — it is the
    /// poll tick at which `should_abort` is consulted.
    pub fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            buf: Vec::new(),
        }
    }

    /// The underlying stream (for writing responses).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Whether a complete pipelined request head is already buffered —
    /// used by the shutdown drain to finish what the client fully sent
    /// before closing.
    pub fn has_buffered_request(&self) -> bool {
        find_head_end(&self.buf).is_some()
    }

    /// Reads one complete request, blocking between requests until bytes
    /// arrive, the peer closes, or `should_abort` returns true at a poll
    /// tick. Once a request's first byte is in, the whole request must
    /// complete within `limits.request_timeout`.
    pub fn read_request(
        &mut self,
        limits: &Limits,
        should_abort: &dyn Fn() -> bool,
    ) -> Result<ReadOutcome, HttpError> {
        let head_end = match self.fill_until_head(limits, should_abort)? {
            Some(end) => end,
            None => return Ok(ReadOutcome::Closed),
        };
        let head: Vec<u8> = self.buf[..head_end].to_vec();
        let consumed = head_end;
        let parsed = {
            // The parse stage of a request trace (no-op without a span).
            let _parse = neats_core::obs::stage(neats_core::obs::Stage::Parse);
            parse_head(&head)
        };
        // Drain the head bytes even when parsing fails, so a pipelined
        // follow-up can't replay them (the connection closes anyway).
        self.buf.drain(..consumed);
        let (method, path, query, keep_alive, content_length, expects_continue) = parsed?;

        if content_length > limits.max_body_bytes {
            return Err(HttpError::new(413, "body too large"));
        }
        if expects_continue && content_length > 0 {
            // Minimal 100-continue support so curl-style clients don't stall.
            let _ = self.stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
        }
        let body = self.fill_body(content_length, limits, should_abort)?;
        let wire_bytes = consumed + body.len();
        Ok(ReadOutcome::Request(Request {
            method,
            path,
            query,
            keep_alive,
            body,
            wire_bytes,
        }))
    }

    /// Accumulates bytes until the buffer holds a full head (returning its
    /// length including the blank line), the peer closes cleanly before a
    /// request starts (`None`), or a limit trips.
    fn fill_until_head(
        &mut self,
        limits: &Limits,
        should_abort: &dyn Fn() -> bool,
    ) -> Result<Option<usize>, HttpError> {
        let mut started_at: Option<Instant> = if self.buf.is_empty() {
            None
        } else {
            Some(Instant::now())
        };
        let idle_since = Instant::now();
        loop {
            if let Some(end) = find_head_end(&self.buf) {
                // The limit applies even when the oversized head arrived in
                // one read, terminator and all.
                if end > limits.max_header_bytes {
                    return Err(HttpError::new(431, "request head too large"));
                }
                return Ok(Some(end));
            }
            if self.buf.len() > limits.max_header_bytes {
                return Err(HttpError::new(431, "request head too large"));
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(None)
                    } else {
                        Err(HttpError::new(400, "truncated request head"))
                    };
                }
                Ok(n) => {
                    if started_at.is_none() {
                        started_at = Some(Instant::now());
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                    // Enforce the deadline on successful reads too: a
                    // slow-drip client that lands a byte inside every poll
                    // tick must not bypass the request timeout (or pin a
                    // worker across shutdown).
                    if let Some(t0) = started_at {
                        if find_head_end(&self.buf).is_none()
                            && (t0.elapsed() > limits.request_timeout || should_abort())
                        {
                            return Err(HttpError::new(408, "request head timed out"));
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    match started_at {
                        // Idle between requests: wait up to the idle
                        // deadline, and let a shutting-down server close
                        // the connection immediately.
                        None if should_abort() => return Ok(None),
                        None if idle_since.elapsed() > limits.idle_timeout => {
                            return Err(HttpError::new(408, "idle connection timed out"));
                        }
                        None => {}
                        Some(t0) if t0.elapsed() > limits.request_timeout => {
                            return Err(HttpError::new(408, "request head timed out"));
                        }
                        Some(_) if should_abort() => {
                            return Err(HttpError::new(408, "server shutting down"));
                        }
                        Some(_) => {}
                    }
                }
                Err(_) => return Ok(None),
            }
        }
    }

    /// Reads exactly `len` body bytes (the head is already drained), within
    /// the request timeout.
    fn fill_body(
        &mut self,
        len: usize,
        limits: &Limits,
        should_abort: &dyn Fn() -> bool,
    ) -> Result<Vec<u8>, HttpError> {
        let t0 = Instant::now();
        while self.buf.len() < len {
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(HttpError::new(400, "truncated request body")),
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    // Same slow-drip guard as the head: progress does not
                    // extend the deadline, and shutdown interrupts a body
                    // that is still incomplete.
                    if self.buf.len() < len
                        && (t0.elapsed() > limits.request_timeout || should_abort())
                    {
                        return Err(HttpError::new(408, "request body timed out"));
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if t0.elapsed() > limits.request_timeout {
                        return Err(HttpError::new(408, "request body timed out"));
                    }
                    if should_abort() {
                        return Err(HttpError::new(408, "server shutting down"));
                    }
                }
                Err(_) => return Err(HttpError::new(400, "connection error mid-body")),
            }
        }
        let body: Vec<u8> = self.buf[..len].to_vec();
        self.buf.drain(..len);
        Ok(body)
    }
}

/// Index one past the head terminator (`\r\n\r\n`, or the lenient bare
/// `\n\n`), if the buffer holds a complete head. Shared by this blocking
/// reader and the reactor's per-connection state machine.
pub(crate) fn find_head_end(buf: &[u8]) -> Option<usize> {
    let crlf = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4);
    let lf = buf.windows(2).position(|w| w == b"\n\n").map(|p| p + 2);
    match (crlf, lf) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

pub(crate) type ParsedHead = (Method, String, String, bool, usize, bool);

/// Parses request line + headers. Returns
/// `(method, decoded path, raw query, keep_alive, content_length,
/// expects_continue)`. Deliberately incremental-friendly: it takes a
/// complete head slice (found by [`find_head_end`]) and nothing else, so
/// the blocking reader and the reactor share one strict parser.
pub(crate) fn parse_head(head: &[u8]) -> Result<ParsedHead, HttpError> {
    let text =
        std::str::from_utf8(head).map_err(|_| HttpError::new(400, "request head is not UTF-8"))?;
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let (method_s, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(HttpError::new(400, "malformed request line")),
    };
    let method = match method_s {
        "GET" => Method::Get,
        "POST" => Method::Post,
        "HEAD" | "PUT" | "DELETE" | "OPTIONS" | "PATCH" | "TRACE" | "CONNECT" => {
            return Err(HttpError::new(
                405,
                format!("method {method_s} not allowed"),
            ));
        }
        _ => return Err(HttpError::new(400, "unrecognised method")),
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::new(400, "unsupported HTTP version")),
    };
    if !target.starts_with('/') {
        return Err(HttpError::new(400, "request target must be origin-form"));
    }
    let (raw_path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q.to_string()),
        None => (target, String::new()),
    };
    let path = percent_decode(raw_path)?;

    let mut keep_alive = http11;
    let mut content_length: Option<usize> = None;
    let mut expects_continue = false;
    let mut header_count = 0usize;
    for line in lines {
        if line.is_empty() {
            continue; // the blank terminator line
        }
        header_count += 1;
        if header_count > 64 {
            return Err(HttpError::new(431, "too many headers"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::new(400, "malformed header line"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    keep_alive = false;
                } else if v.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            "content-length" => {
                // RFC 7230: 1*DIGIT. Rust's usize parsing would also take a
                // leading '+', which a stricter front proxy may reject or
                // reinterpret — the parser-disagreement smuggling setup.
                if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                    return Err(HttpError::new(400, "unparseable Content-Length"));
                }
                let parsed: usize = value
                    .parse()
                    .map_err(|_| HttpError::new(400, "unparseable Content-Length"))?;
                // Conflicting duplicates are the request-smuggling classic
                // (RFC 7230 §3.3.2): reject instead of guessing. Identical
                // repeats are tolerated, as the RFC permits collapsing.
                if content_length.is_some_and(|prev| prev != parsed) {
                    return Err(HttpError::new(400, "conflicting Content-Length headers"));
                }
                content_length = Some(parsed);
            }
            "transfer-encoding" => {
                return Err(HttpError::new(501, "transfer-encoding not supported"));
            }
            "expect" => {
                if value.eq_ignore_ascii_case("100-continue") {
                    expects_continue = true;
                } else {
                    return Err(HttpError::new(400, "unsupported Expect"));
                }
            }
            _ => {}
        }
    }
    Ok((
        method,
        path,
        query,
        keep_alive,
        content_length.unwrap_or(0),
        expects_continue,
    ))
}

/// Decodes `%XX` escapes; the result must be valid UTF-8.
fn percent_decode(s: &str) -> Result<String, HttpError> {
    if !s.contains('%') {
        return Ok(s.to_string());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                // Exactly two hex digits; from_str_radix alone would also
                // accept a leading '+'.
                .filter(|h| h.iter().all(u8::is_ascii_hexdigit))
                .and_then(|h| std::str::from_utf8(h).ok())
                .and_then(|h| u8::from_str_radix(h, 16).ok())
                .ok_or_else(|| HttpError::new(400, "bad percent escape"))?;
            out.push(hex);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| HttpError::new(400, "percent escape is not UTF-8"))
}

/// A response ready to serialize.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` of `body`.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Seconds for a `Retry-After` header (emitted when `Some`); set on
    /// every 503 so shed/degraded clients know to back off briefly.
    pub retry_after: Option<u32>,
}

impl Response {
    /// A 200 with a plain-text body.
    pub fn text(body: Vec<u8>) -> Self {
        Self {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body,
            retry_after: None,
        }
    }

    /// A 200 with a JSON body.
    pub fn json(body: String) -> Self {
        Self {
            status: 200,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    /// An error response with a one-line plain-text body. A 503 (the
    /// overload/degraded status) always carries `Retry-After: 1` — every
    /// path that sheds or rejects tells the client when to come back.
    pub fn error(status: u16, reason: &str) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: format!("{reason}\n").into_bytes(),
            retry_after: (status == 503).then_some(1),
        }
    }

    /// Overrides the `Retry-After` seconds.
    pub fn with_retry_after(mut self, secs: u32) -> Self {
        self.retry_after = Some(secs);
        self
    }
}

/// The reason phrase for the statuses this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// The serialized response head. `keep_alive` controls the `Connection`
/// header; the caller decides whether to actually close.
fn response_head(resp: &Response, keep_alive: bool) -> String {
    let retry_after = match resp.retry_after {
        Some(secs) => format!("Retry-After: {secs}\r\n"),
        None => String::new(),
    };
    format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: {}\r\n\r\n",
        resp.status,
        reason_phrase(resp.status),
        resp.content_type,
        resp.body.len(),
        retry_after,
        if keep_alive { "keep-alive" } else { "close" },
    )
}

/// Serializes `resp` onto `stream`, returning the bytes written (head +
/// body; feeds the `bytes_out` counter). The caller is expected to have set
/// a write timeout on the stream — without one, a client that stops reading
/// (write-side slowloris) would pin the writing thread forever.
pub fn write_response(
    stream: &mut TcpStream,
    resp: &Response,
    keep_alive: bool,
) -> std::io::Result<usize> {
    // Two writes instead of concatenating — a large range body would
    // otherwise be copied a second time on every response.
    let head = response_head(resp, keep_alive);
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()?;
    Ok(head.len() + resp.body.len())
}

/// Appends the serialized `resp` to `out` — the reactor's per-connection
/// write buffer, flushed by write-readiness instead of blocking writes.
pub(crate) fn append_response(out: &mut Vec<u8>, resp: &Response, keep_alive: bool) {
    out.extend_from_slice(response_head(resp, keep_alive).as_bytes());
    out.extend_from_slice(&resp.body);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn head_of(s: &str) -> Result<ParsedHead, HttpError> {
        parse_head(s.as_bytes())
    }

    #[test]
    fn parses_a_plain_get() {
        let (m, path, query, ka, len, cont) =
            head_of("GET /q/cpu?idx=5 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(m, Method::Get);
        assert_eq!(path, "/q/cpu");
        assert_eq!(query, "idx=5");
        assert!(ka);
        assert_eq!(len, 0);
        assert!(!cont);
    }

    #[test]
    fn connection_and_version_defaults() {
        let (.., ka, _, _) = head_of("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!ka, "HTTP/1.0 defaults to close");
        let (.., ka, _, _) = head_of("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(ka);
        let (.., ka, _, _) = head_of("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!ka);
    }

    #[test]
    fn rejects_malformed_heads() {
        for (input, want) in [
            ("FROB / HTTP/1.1\r\n\r\n", 400),
            ("HEAD / HTTP/1.1\r\n\r\n", 405),
            ("GET / HTTP/9.9\r\n\r\n", 400),
            ("GET no-slash HTTP/1.1\r\n\r\n", 400),
            ("GET / HTTP/1.1 extra\r\n\r\n", 400),
            ("GET /\r\n\r\n", 400),
            ("GET / HTTP/1.1\r\nBad-header-no-colon\r\n\r\n", 400),
            ("POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n", 400),
            ("POST / HTTP/1.1\r\nContent-Length: +17\r\n\r\n", 400),
            (
                "POST / HTTP/1.1\r\nContent-Length: 0\r\nContent-Length: 29\r\n\r\n",
                400,
            ),
            ("GET /%+5 HTTP/1.1\r\n\r\n", 400),
            ("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501),
            ("GET /%zz HTTP/1.1\r\n\r\n", 400),
            ("GET /%ff HTTP/1.1\r\n\r\n", 400), // lone 0xff is not UTF-8
        ] {
            let err = head_of(input).unwrap_err();
            assert_eq!(err.status, want, "{input:?} → {}", err.reason);
        }
    }

    #[test]
    fn identical_duplicate_content_length_is_tolerated() {
        let (.., len, _) =
            head_of("POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\n").unwrap();
        assert_eq!(len, 5);
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("/q/cpu%201").unwrap(), "/q/cpu 1");
        assert_eq!(percent_decode("/plain").unwrap(), "/plain");
        assert!(percent_decode("/%4").is_err());
    }

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\n\nrest"), Some(16));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }
}
