//! Shared helpers for the serve integration tests: a demo pack builder and
//! a minimal blocking HTTP client.
//!
//! Compiled once per test target, and each target uses a different subset
//! of the helpers — silence per-target dead-code noise.
#![allow(dead_code)]

use neats_store::{Store, StoreConfig, StoreMode, StoreWriter};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// The demo corpus: `(name, timestamps, values)` for three series with
/// deliberately irregular stamps and several segments each.
pub fn demo_data() -> Vec<(String, Vec<u64>, Vec<i64>)> {
    let mut out = Vec::new();
    for (i, name) in ["cpu", "mem", "disk io"].iter().enumerate() {
        let n = 700 + i * 130;
        // Strictly increasing but irregular: the step is 9, the jitter < 9.
        let stamps: Vec<u64> =
            (0..n as u64).map(|k| 1_000 + k * 9 + (k % 5) + i as u64).collect();
        let values: Vec<i64> = (0..n as i64)
            .map(|k| (k * k) / 31 - k * (i as i64 + 2) + (k % 13) * 5)
            .collect();
        out.push((name.to_string(), stamps, values));
    }
    out
}

/// Builds the demo pack (segment size 128, so every series stitches across
/// several segments) and opens it as a `Store`.
pub fn demo_store() -> Arc<Store> {
    let mut w = StoreWriter::new(StoreConfig {
        segment_points: 128,
        mode: StoreMode::Lossless,
        ..StoreConfig::default()
    });
    for (name, stamps, values) in demo_data() {
        w.ingest(&name, &stamps, &values).unwrap();
    }
    Arc::new(Store::open(w.finish().unwrap()).unwrap())
}

/// One parsed HTTP response.
#[derive(Debug)]
pub struct HttpResponse {
    pub status: u16,
    pub body: String,
    pub keep_alive: bool,
    pub retry_after: Option<u32>,
    pub content_type: Option<String>,
}

/// A minimal blocking HTTP/1.1 client over one connection (keep-alive:
/// issue any number of requests before dropping).
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream.set_nodelay(true).unwrap();
        Self { stream, buf: Vec::new() }
    }

    /// Sends `raw` verbatim and reads one full response.
    pub fn raw_request(&mut self, raw: &[u8]) -> HttpResponse {
        self.stream.write_all(raw).expect("write request");
        self.read_response()
    }

    /// Issues `GET <target>` with keep-alive and reads the response.
    pub fn get(&mut self, target: &str) -> HttpResponse {
        self.raw_request(format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
    }

    /// Issues `POST /q` with `body` and reads the response.
    pub fn post_batch(&mut self, body: &str) -> HttpResponse {
        self.raw_request(
            format!(
                "POST /q HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            )
            .as_bytes(),
        )
    }

    /// Like [`Self::raw_request`], but returns `None` when the server
    /// closed the connection before sending any response bytes — the
    /// legitimate race when a request lands just as a draining server
    /// closes an idle keep-alive connection. A close *mid*-response still
    /// panics.
    pub fn try_raw_request(&mut self, raw: &[u8]) -> Option<HttpResponse> {
        if self.stream.write_all(raw).is_err() {
            return None;
        }
        let head_end = loop {
            if let Some(p) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break p + 4;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) if self.buf.is_empty() => return None,
                Ok(0) => panic!("connection closed mid-response (head so far: {:?})", self.buf),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if self.buf.is_empty() => {
                    // Connection reset between requests counts as a close.
                    let _ = e;
                    return None;
                }
                Err(e) => panic!("read error mid-response: {e}"),
            }
        };
        Some(self.finish_response(head_end))
    }

    /// Reads one response already in flight (for pipelining tests).
    pub fn read_response(&mut self) -> HttpResponse {
        let head_end = loop {
            if let Some(p) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break p + 4;
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk).expect("read response head");
            assert!(n > 0, "connection closed mid-response (head so far: {:?})", self.buf);
            self.buf.extend_from_slice(&chunk[..n]);
        };
        self.finish_response(head_end)
    }

    /// Parses the head ending at `head_end` and reads the body.
    fn finish_response(&mut self, head_end: usize) -> HttpResponse {
        let head = String::from_utf8(self.buf[..head_end].to_vec()).expect("head utf8");
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap();
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
        let mut content_length = 0usize;
        let mut keep_alive = true;
        let mut retry_after = None;
        let mut content_type = None;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else { continue };
            match name.trim().to_ascii_lowercase().as_str() {
                "content-length" => content_length = value.trim().parse().expect("content length"),
                "connection" => keep_alive = value.trim().eq_ignore_ascii_case("keep-alive"),
                "retry-after" => retry_after = value.trim().parse().ok(),
                "content-type" => content_type = Some(value.trim().to_string()),
                _ => {}
            }
        }
        self.buf.drain(..head_end);
        while self.buf.len() < content_length {
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk).expect("read response body");
            assert!(n > 0, "connection closed mid-body");
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let body = String::from_utf8(self.buf[..content_length].to_vec()).expect("body utf8");
        self.buf.drain(..content_length);
        HttpResponse { status, body, keep_alive, retry_after, content_type }
    }
}
