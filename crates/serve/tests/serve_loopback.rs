//! Loopback integration tests: concurrent clients racing real HTTP
//! queries against the direct `Store` oracle, the protocol examples from
//! `docs/PROTOCOL.md`, keep-alive, and graceful shutdown.

mod common;

use common::{demo_data, demo_store, Client};
use neats_serve::{ServeConfig, Server, ServerHandle};
use neats_store::Store;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Starts a server over `store` with `threads` workers; returns the handle
/// and the join handle of the serving thread.
fn start(store: Arc<Store>, threads: usize) -> (ServerHandle, JoinHandle<std::io::Result<()>>) {
    let cfg = ServeConfig { threads, ..ServeConfig::default() };
    let server = Server::bind(store, "127.0.0.1:0", cfg).expect("bind");
    let handle = server.handle();
    let running = std::thread::spawn(move || server.run());
    (handle, running)
}

fn stop(handle: ServerHandle, running: JoinHandle<std::io::Result<()>>) {
    handle.shutdown();
    running.join().expect("server thread").expect("server run");
}

/// A deterministic per-thread pseudo-random stream (splitmix-style).
fn mix(mut x: u64) -> impl FnMut(u64) -> u64 {
    move |bound| {
        x = x.wrapping_mul(0xD129_0247_3F89_4E1D).wrapping_add(0x9E37_79B9);
        (x >> 17) % bound.max(1)
    }
}

/// The acceptance-criterion test: ≥4 client threads race point / range /
/// time / batch queries over the wire and every answer must be
/// bit-identical to the direct `Store` call.
#[test]
fn concurrent_clients_match_store_oracle() {
    let store = demo_store();
    let data = demo_data();
    let (handle, running) = start(Arc::clone(&store), 4);
    let addr = handle.addr();

    std::thread::scope(|s| {
        for tid in 0..6u64 {
            let store = &store;
            let data = &data;
            s.spawn(move || {
                let mut rng = mix(0xfeed_f00d ^ (tid + 1));
                let mut client = Client::connect(addr);
                for round in 0..60 {
                    let (name, stamps, values) = &data[rng(data.len() as u64) as usize];
                    let url_name = name.replace(' ', "%20");
                    let n = values.len() as u64;
                    match (round + tid) % 4 {
                        // Point query by index.
                        0 => {
                            let k = rng(n) as usize;
                            let r = client.get(&format!("/q/{url_name}?idx={k}"));
                            assert_eq!(r.status, 200, "{}", r.body);
                            assert_eq!(
                                r.body.trim().parse::<i64>().unwrap(),
                                store.get(name, k).unwrap(),
                                "[{tid}] {name}[{k}]"
                            );
                        }
                        // Range query stitched across segments.
                        1 => {
                            let a = rng(n - 1) as usize;
                            let b = a + 1 + rng((n as usize - a - 1).max(1) as u64) as usize;
                            let r = client.get(&format!("/q/{url_name}?idx={a}..{b}"));
                            assert_eq!(r.status, 200, "{}", r.body);
                            let got: Vec<i64> =
                                r.body.lines().map(|l| l.parse().unwrap()).collect();
                            let mut want = Vec::new();
                            store.range(name, a..b, &mut want).unwrap();
                            assert_eq!(got, want, "[{tid}] {name}[{a}..{b}]");
                        }
                        // Time queries: exact-at-time point and time range.
                        2 => {
                            let k = rng(n) as usize;
                            let t = stamps[k];
                            let r = client.get(&format!("/q/{url_name}?t={t}"));
                            assert_eq!(r.status, 200, "{}", r.body);
                            assert_eq!(
                                r.body.trim().parse::<i64>().unwrap(),
                                store.at_time(name, t).unwrap().unwrap()
                            );
                            let lo = stamps[rng(n / 2) as usize];
                            let hi = lo + rng(2_000) + 1;
                            let r = client.get(&format!("/q/{url_name}?t={lo}..{hi}"));
                            assert_eq!(r.status, 200, "{}", r.body);
                            let got: Vec<(u64, i64)> = r
                                .body
                                .lines()
                                .map(|l| {
                                    let (t, v) = l.split_once(',').unwrap();
                                    (t.parse().unwrap(), v.parse().unwrap())
                                })
                                .collect();
                            let mut want = Vec::new();
                            store.range_by_time(name, lo, hi, &mut want).unwrap();
                            assert_eq!(got, want, "[{tid}] {name} t={lo}..{hi}");
                        }
                        // Batched POST: several queries in one frame.
                        _ => {
                            let k1 = rng(n) as usize;
                            let k2 = rng(n) as usize;
                            let a = rng(n / 2) as usize;
                            let body = format!(
                                "{name} idx={k1}\nmissing idx=0\n{name} idx={a}..{}\n{name} idx={k2}\n",
                                a + 5
                            );
                            let r = client.post_batch(&body);
                            assert_eq!(r.status, 200, "{}", r.body);
                            let text = &r.body;
                            assert!(
                                text.starts_with(&format!(
                                    "#0 ok 1\n{}\n",
                                    store.get(name, k1).unwrap()
                                )),
                                "[{tid}] {text}"
                            );
                            assert!(text.contains("#1 err 404"), "[{tid}] {text}");
                            let mut want = Vec::new();
                            store.range(name, a..a + 5, &mut want).unwrap();
                            let want_lines: String =
                                want.iter().map(|v| format!("{v}\n")).collect();
                            assert!(
                                text.contains(&format!("#2 ok 5\n{want_lines}")),
                                "[{tid}] {text}"
                            );
                            assert!(text.ends_with("#done 4\n"), "[{tid}] {text}");
                        }
                    }
                }
            });
        }
    });

    stop(handle, running);
}

/// The exact examples documented in `docs/PROTOCOL.md` (keep both in sync).
#[test]
fn protocol_examples() {
    let store = demo_store();
    let (handle, running) = start(Arc::clone(&store), 2);
    let mut client = Client::connect(handle.addr());

    // curl http://$ADDR/series
    let r = client.get("/series");
    assert_eq!(r.status, 200);
    assert!(r.body.contains("\"name\": \"cpu\""), "{}", r.body);
    assert!(r.body.contains("\"name\": \"disk io\""), "{}", r.body);
    assert!(r.body.contains("\"mode\": \"lossless\""), "{}", r.body);

    // curl "http://$ADDR/q/cpu?idx=120..124"
    let r = client.get("/q/cpu?idx=120..124");
    assert_eq!(r.status, 200);
    let mut want = Vec::new();
    store.range("cpu", 120..124, &mut want).unwrap();
    assert_eq!(
        r.body.lines().map(|l| l.parse::<i64>().unwrap()).collect::<Vec<_>>(),
        want
    );

    // curl "http://$ADDR/q/cpu?t=1010"
    let r = client.get("/q/cpu?t=1010");
    assert_eq!(r.status, 200);
    assert_eq!(r.body.trim().parse::<i64>().unwrap(), store.at_time("cpu", 1010).unwrap().unwrap());

    // curl --data-binary $'cpu idx=3\ncpu t=1000..1100' http://$ADDR/q
    let r = client.post_batch("cpu idx=3\ncpu t=1000..1100");
    assert_eq!(r.status, 200);
    assert!(r.body.starts_with("#0 ok 1\n"), "{}", r.body);
    assert!(r.body.contains("#1 ok "), "{}", r.body);
    assert!(r.body.ends_with("#done 2\n"), "{}", r.body);

    // curl http://$ADDR/stats
    let r = client.get("/stats");
    assert_eq!(r.status, 200);
    for key in [
        "\"uptime_s\"",
        "\"cache\"",
        "\"hit_rate\"",
        "\"evictions\"",
        "\"endpoints\"",
        "\"p99_us\"",
        "\"p999_us\"",
        "\"mode\"",
        "\"slow_queries\"",
    ] {
        assert!(r.body.contains(key), "missing {key} in {}", r.body);
    }

    // Error statuses documented in the protocol.
    assert_eq!(client.get("/q/ghost?idx=0").status, 404);
    assert_eq!(client.get("/q/cpu?idx=banana").status, 400);
    assert_eq!(client.get("/q/cpu?idx=999999").status, 400);
    assert_eq!(client.get("/q/cpu?t=2").status, 404);
    assert_eq!(client.get("/nope").status, 404);

    stop(handle, running);
}

/// One connection serves many requests (keep-alive), and explicit
/// `Connection: close` is honoured.
#[test]
fn keep_alive_and_close() {
    let store = demo_store();
    let (handle, running) = start(store, 2);
    let mut client = Client::connect(handle.addr());
    for k in 0..20 {
        let r = client.get(&format!("/q/cpu?idx={k}"));
        assert_eq!(r.status, 200);
        assert!(r.keep_alive, "server must keep the connection alive");
    }
    let r = client.raw_request(b"GET /series HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    assert_eq!(r.status, 200);
    assert!(!r.keep_alive, "server must confirm the close");
    stop(handle, running);
}

/// Pipelined requests (two heads in one write) are answered in order.
#[test]
fn pipelined_requests_answered_in_order() {
    let store = demo_store();
    let (handle, running) = start(Arc::clone(&store), 2);
    let mut client = Client::connect(handle.addr());
    client
        .raw_request(
            b"GET /q/cpu?idx=1 HTTP/1.1\r\nHost: t\r\n\r\nGET /q/cpu?idx=2 HTTP/1.1\r\nHost: t\r\n\r\n",
        );
    // raw_request read the first response; the second is already buffered.
    let r2 = client.read_response();
    assert_eq!(r2.status, 200);
    assert_eq!(r2.body.trim().parse::<i64>().unwrap(), store.get("cpu", 2).unwrap());
    stop(handle, running);
}

/// Graceful shutdown: in-flight requests finish, run() returns promptly,
/// new connections are refused-ish (accept loop stopped).
#[test]
fn graceful_shutdown_drains() {
    let store = demo_store();
    let (handle, running) = start(store, 3);
    let addr = handle.addr();

    // A few busy clients in flight while shutdown lands.
    let workers: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                let mut ok = 0usize;
                for k in 0..50 {
                    let raw = format!("GET /q/mem?idx={k} HTTP/1.1\r\nHost: t\r\n\r\n");
                    match client.try_raw_request(raw.as_bytes()) {
                        // Every answered request must be a full, correct
                        // response…
                        Some(r) => {
                            assert_eq!(r.status, 200);
                            ok += 1;
                            if !r.keep_alive {
                                break; // server is draining us out
                            }
                        }
                        // …but a request racing the drain may meet a
                        // cleanly closed connection instead of an answer.
                        None => break,
                    }
                }
                ok
            })
        })
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(20));
    let t0 = std::time::Instant::now();
    handle.shutdown();
    running.join().expect("server thread").expect("run");
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(5),
        "shutdown took {:?}",
        t0.elapsed()
    );
    for w in workers {
        assert!(w.join().expect("client") >= 1, "every client got at least one answer");
    }
}

/// `NEATS_SERVE_THREADS` feeds the automatic worker count (pinned here so
/// the documented knob cannot rot; explicit config still wins).
#[test]
fn threads_env_resolution() {
    let store = demo_store();
    // Explicit count wins regardless of environment.
    let server =
        Server::bind(Arc::clone(&store), "127.0.0.1:0", ServeConfig { threads: 3, ..Default::default() })
            .unwrap();
    assert_eq!(server.threads(), 3);
    drop(server);
    // The env knob is read through the same resolution helper the docs
    // name; setting env vars in-process is racy across parallel tests, so
    // exercise the helper directly.
    assert_eq!(neats_core::parallel::effective_threads_env(7, neats_serve::THREADS_ENV), 7);
}
