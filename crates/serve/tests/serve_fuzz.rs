//! Loopback fuzz of the HTTP parser: malformed request lines, oversized
//! heads, truncated bodies, pipelined junk, and random bytes. The contract
//! under test: the server never panics, always answers 4xx/5xx or closes
//! cleanly, and stays fully serviceable afterwards.
//!
//! Worker panics cannot hide: a panicked scoped worker would propagate at
//! `Server::run`'s join, so the final `running.join().unwrap().unwrap()`
//! fails the test if any fuzz case killed a worker.

mod common;

use common::{demo_store, Client};
use neats_serve::{ReactorMode, ServeConfig, Server};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Reads whatever the server sends until it closes, with a client-side
/// timeout; returns the (possibly empty) bytes. A hang fails the test.
fn drain(stream: &mut TcpStream) -> Vec<u8> {
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut out = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return out,
            Ok(n) => out.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                panic!("server neither answered nor closed within 5s (got {out:?})")
            }
            Err(_) => return out,
        }
    }
}

/// Asserts the server's reaction to one blob of client bytes is acceptable:
/// either a clean close (empty), or one-or-more well-formed HTTP responses
/// whose final status (the one that closed the connection) is 4xx/5xx —
/// earlier pipelined requests may legitimately have been 200s.
fn assert_clean_rejection(reply: &[u8], input: &[u8]) {
    if reply.is_empty() {
        return; // clean close without a response — acceptable
    }
    let text = String::from_utf8_lossy(reply);
    assert!(
        text.starts_with("HTTP/1.1 "),
        "non-HTTP reply to {input:?}: {text:?}"
    );
    // The last status line in the reply decides how the connection ended.
    let last_status = text
        .match_indices("HTTP/1.1 ")
        .map(|(i, _)| text[i + 9..i + 12].parse::<u16>().unwrap_or(0))
        .last()
        .unwrap();
    assert!(
        (400..=599).contains(&last_status),
        "junk input {input:?} ended with status {last_status}: {text:?}"
    );
}

#[test]
fn malformed_inputs_never_panic_the_server() {
    fuzz_one_mode(ReactorMode::Threaded);
}

#[test]
#[cfg_attr(not(target_os = "linux"), ignore = "reactor mode requires epoll")]
fn malformed_inputs_never_panic_the_reactor() {
    fuzz_one_mode(ReactorMode::Reactor);
}

fn fuzz_one_mode(reactor: ReactorMode) {
    let store = demo_store();
    // Small limits and a short request timeout keep the truncation cases fast.
    let cfg = ServeConfig {
        threads: 2,
        max_header_bytes: 2048,
        max_body_bytes: 4096,
        request_timeout: Duration::from_millis(300),
        poll_interval: Duration::from_millis(20),
        reactor,
        ..ServeConfig::default()
    };
    let server = Server::bind(Arc::clone(&store), "127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();
    let handle = server.handle();
    let running = std::thread::spawn(move || server.run());

    let huge_header = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(4000));
    let cases: Vec<Vec<u8>> = vec![
        // Raw garbage, binary and text, with and without a head terminator.
        b"\x00\x01\x02\xff\xfe\xfd".to_vec(),
        b"garbage without any structure\r\n\r\n".to_vec(),
        b"\xff\xff\xff\xff\r\n\r\n".to_vec(),
        // Malformed request lines.
        b"GET\r\n\r\n".to_vec(),
        b"GET /\r\n\r\n".to_vec(),
        b"GET / HTTP/2.0\r\n\r\n".to_vec(),
        b"G E T / HTTP/1.1\r\n\r\n".to_vec(),
        b"FROBNICATE /series HTTP/1.1\r\n\r\n".to_vec(),
        b"HEAD /series HTTP/1.1\r\n\r\n".to_vec(),
        b"GET http://absolute.example/ HTTP/1.1\r\n\r\n".to_vec(),
        b"GET /%zz HTTP/1.1\r\n\r\n".to_vec(),
        // Malformed headers.
        b"GET /series HTTP/1.1\r\nno-colon-here\r\n\r\n".to_vec(),
        b"POST /q HTTP/1.1\r\nContent-Length: banana\r\n\r\n".to_vec(),
        b"POST /q HTTP/1.1\r\nContent-Length: -1\r\n\r\n".to_vec(),
        b"POST /q HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n".to_vec(),
        b"GET / HTTP/1.1\r\nExpect: 202-whatever\r\n\r\n".to_vec(),
        // Oversized head (beyond max_header_bytes).
        huge_header.into_bytes(),
        // Oversized declared body (beyond max_body_bytes).
        b"POST /q HTTP/1.1\r\nContent-Length: 999999\r\n\r\n".to_vec(),
        // Pipelined junk behind a valid request.
        b"GET /series HTTP/1.1\r\n\r\n\x00\x00JUNK\r\n\r\n".to_vec(),
        b"GET /q/cpu?idx=1 HTTP/1.1\r\n\r\nNOT A REQUEST LINE\r\n\r\n".to_vec(),
        // A batch body that is not UTF-8 (valid HTTP, rejected by routing —
        // the 400 here is an endpoint answer, not a parse failure).
        b"POST /q HTTP/1.1\r\nContent-Length: 4\r\n\r\n\xff\xfe\xfd\xfc".to_vec(),
    ];
    for case in &cases {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(case).unwrap();
        // Half-close so a case that parses as valid HTTP (and therefore
        // legitimately keeps the connection alive) still ends in a clean
        // server-side close instead of an idle wait.
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let reply = drain(&mut stream);
        assert_clean_rejection(&reply, case);
    }

    // Truncated head: bytes arrive, then the client goes silent — the
    // server must time out with a 408 rather than hold the slot forever.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"GET /series HTT").unwrap();
    let reply = drain(&mut stream);
    assert!(
        String::from_utf8_lossy(&reply).starts_with("HTTP/1.1 408"),
        "stalled head should 408, got {:?}",
        String::from_utf8_lossy(&reply)
    );

    // Truncated body, silent client: same contract.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"POST /q HTTP/1.1\r\nContent-Length: 50\r\n\r\ncpu idx=1")
        .unwrap();
    let reply = drain(&mut stream);
    assert!(
        String::from_utf8_lossy(&reply).starts_with("HTTP/1.1 408"),
        "stalled body should 408, got {:?}",
        String::from_utf8_lossy(&reply)
    );

    // Slow drip: a client that keeps landing one byte inside every poll
    // tick must still be cut off by the request timeout — progress does
    // not extend the deadline (a worker-pinning DoS otherwise).
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_millis(30)))
        .unwrap();
    let t0 = std::time::Instant::now();
    let mut reply = Vec::new();
    loop {
        if stream.write_all(b"G").is_err() {
            break; // server already closed on us
        }
        let mut chunk = [0u8; 1024];
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                reply.extend_from_slice(&chunk[..n]);
                break;
            }
            Err(_) => {} // timeout tick: keep dripping
        }
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "slow-drip client was never cut off"
        );
    }
    let reply = [reply, drain(&mut stream)].concat();
    assert!(
        String::from_utf8_lossy(&reply).starts_with("HTTP/1.1 408"),
        "slow drip should 408, got {:?}",
        String::from_utf8_lossy(&reply)
    );
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "408 came only after {:?}, not near the 300ms request timeout",
        t0.elapsed()
    );

    // Truncated body, closing client: the 400 may or may not still be
    // deliverable; the requirement is no panic and no hang.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"POST /q HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort")
        .unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let reply = drain(&mut stream);
    assert_clean_rejection(&reply, b"<truncated-then-closed body>");

    // Random fuzz: structured-ish prefixes + random tails, random binary.
    let mut rng = StdRng::seed_from_u64(0x5eed_f022);
    for round in 0..150 {
        let mut blob: Vec<u8> = Vec::new();
        match round % 3 {
            0 => {
                // Pure random bytes.
                let len = rng.random_range(1..400usize);
                blob.extend((0..len).map(|_| rng.random_range(0..=255u8)));
                // Guarantee a head terminator half the time so the parser
                // path (not just the timeout path) gets exercised.
                if rng.random_range(0..2) == 0 {
                    blob.extend_from_slice(b"\r\n\r\n");
                }
            }
            1 => {
                // A mangled request line.
                let methods = ["GET", "POST", "get", "PoSt", "XYZZY", ""];
                let targets = [
                    "/q/cpu?idx=1",
                    "/series",
                    "nope",
                    "/%4",
                    "/\u{7f}",
                    "?",
                    "/q/",
                ];
                let versions = ["HTTP/1.1", "HTTP/1.0", "HTTP/0.9", "FTP/1.1", ""];
                let line = format!(
                    "{} {} {}\r\n\r\n",
                    methods[rng.random_range(0..methods.len())],
                    targets[rng.random_range(0..targets.len())],
                    versions[rng.random_range(0..versions.len())],
                );
                blob.extend_from_slice(line.as_bytes());
            }
            _ => {
                // A valid-ish head with randomly corrupted header bytes.
                let mut head =
                    b"POST /q HTTP/1.1\r\nContent-Length: 8\r\nHost: x\r\n\r\nabcdefgh".to_vec();
                for _ in 0..rng.random_range(1..6usize) {
                    let pos = rng.random_range(0..head.len());
                    head[pos] = rng.random_range(0..=255u8);
                }
                blob = head;
            }
        }
        let mut stream = TcpStream::connect(addr).unwrap();
        let _ = stream.write_all(&blob);
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let reply = drain(&mut stream);
        // Whatever happened, it must be HTTP-shaped or a clean close…
        if !reply.is_empty() {
            assert!(
                String::from_utf8_lossy(&reply).starts_with("HTTP/1.1 "),
                "round {round}: non-HTTP reply to {blob:?}"
            );
        }
    }

    // …and after all of it the server still answers real queries.
    let mut client = Client::connect(addr);
    let r = client.get("/q/cpu?idx=7");
    assert_eq!(r.status, 200);
    assert_eq!(
        r.body.trim().parse::<i64>().unwrap(),
        store.get("cpu", 7).unwrap()
    );
    let r = client.get("/stats");
    assert_eq!(r.status, 200);
    assert!(r.body.contains("\"protocol_errors\""), "{}", r.body);

    handle.shutdown();
    running.join().expect("no worker panicked").expect("run");
}
