//! Reactor-mode integration tests: the C10K regression this mode exists
//! for (idle keep-alive connections must not starve new clients), the
//! write-side slowloris defense (a stalled reader is disconnected), and
//! graceful-drain connection accounting in both serving modes.

#![cfg(target_os = "linux")] // every test here drives the epoll reactor

mod common;

use common::{demo_store, Client};
use neats_serve::{ReactorMode, ServeConfig, Server, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn start(cfg: ServeConfig) -> (ServerHandle, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(demo_store(), "127.0.0.1:0", cfg).expect("bind");
    let handle = server.handle();
    let running = std::thread::spawn(move || server.run());
    (handle, running)
}

/// Extracts an integer counter from the /stats JSON by key.
fn stat(body: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\": ");
    let at = body
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key:?} in {body}"));
    body[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("counter value")
}

/// The regression that motivated the reactor: with a worker pool of W
/// threads, W idle keep-alive connections used to pin every worker, and a
/// fresh client would hang until one of them hit the idle deadline (up to
/// 60 s). Under the reactor an idle connection costs a slab entry, never a
/// thread — many more than W idle clients must leave service untouched.
#[test]
fn idle_keep_alive_connections_do_not_starve_new_clients() {
    let threads = 2;
    let cfg = ServeConfig {
        threads,
        reactor: ReactorMode::Reactor,
        ..ServeConfig::default()
    };
    let request_timeout = cfg.request_timeout;
    let (handle, running) = start(cfg);
    let addr = handle.addr();

    // Far more idle keep-alive connections than serving threads, each
    // having completed a request so the server committed to keep-alive.
    let mut idle = Vec::new();
    for _ in 0..(4 * threads + 1) {
        let mut c = Client::connect(addr);
        assert_eq!(c.get("/q/cpu?idx=3").status, 200);
        idle.push(c);
    }

    // A fresh client must be answered promptly — well within one request
    // timeout, not after some idle connection's 60 s deadline frees a slot.
    let t0 = Instant::now();
    let mut fresh = Client::connect(addr);
    let resp = fresh.get("/q/cpu?idx=7");
    assert_eq!(resp.status, 200);
    assert!(
        t0.elapsed() < request_timeout,
        "fresh client waited {:?} behind idle keep-alive connections",
        t0.elapsed()
    );

    // The idle connections are still alive and serviceable afterwards.
    for c in idle.iter_mut() {
        assert_eq!(c.get("/series").status, 200);
    }

    drop((fresh, idle));
    handle.shutdown();
    running.join().expect("server thread").expect("run");
    assert_eq!(
        handle.open_connections(),
        0,
        "drain must release every connection"
    );
}

/// Write-side slowloris: a client that requests a response far larger than
/// the socket buffers and then never reads must be disconnected once the
/// write deadline expires — not hold its server resources until the
/// response drains at the attacker's chosen (zero) pace.
#[test]
fn stalled_reader_is_disconnected() {
    stalled_reader(ReactorMode::Reactor, true);
}

/// The blocking path has the same defense via a per-write-syscall timeout
/// (a fully stalled reader fails the first blocked write).
#[test]
fn stalled_reader_is_disconnected_threaded() {
    stalled_reader(ReactorMode::Threaded, false);
}

fn stalled_reader(reactor: ReactorMode, expect_timeout_stat: bool) {
    let cfg = ServeConfig {
        threads: 2,
        request_timeout: Duration::from_millis(500),
        poll_interval: Duration::from_millis(20),
        reactor,
        ..ServeConfig::default()
    };
    let (handle, running) = start(cfg);
    let addr = handle.addr();

    // A batch whose response (~several million rendered values) exceeds any
    // plausible kernel send+receive buffering, so the server's writes must
    // stall on the non-reading client.
    let body = "cpu idx=0..700\n".repeat(4000);
    let mut stalled = TcpStream::connect(addr).expect("connect");
    stalled
        .write_all(
            format!(
                "POST /q HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("send batch");
    // Never read. The server must give up on us within the write deadline
    // (plus rendering time); detect the close by polling tiny writes until
    // the kernel reports the reset.
    let t0 = Instant::now();
    let disconnected = loop {
        std::thread::sleep(Duration::from_millis(50));
        // A write after the server's close eventually surfaces EPIPE /
        // ECONNRESET once the RST lands.
        if stalled.write_all(b"\r\n").is_err() {
            break true;
        }
        if t0.elapsed() > Duration::from_secs(10) {
            break false;
        }
    };
    assert!(
        disconnected,
        "stalled reader still connected after {:?}",
        t0.elapsed()
    );

    // The defense is observable and the server is unharmed.
    let mut c = Client::connect(addr);
    if expect_timeout_stat {
        let resp = c.get("/stats");
        assert_eq!(resp.status, 200);
        assert!(stat(&resp.body, "timeouts") >= 1, "{}", resp.body);
    }
    assert_eq!(c.get("/q/cpu?idx=1").status, 200);
    drop(c);

    handle.shutdown();
    running.join().expect("server thread").expect("run");
    assert_eq!(
        handle.open_connections(),
        0,
        "drain must release every connection"
    );
}

/// Graceful drain accounting, both modes: idle keep-alive connections are
/// closed, a half-sent request is answered `408 server shutting down`, and
/// — the counter-leak regression — `open_connections` returns to exactly
/// zero once `run` returns.
#[test]
fn graceful_drain_accounts_for_every_connection() {
    graceful_drain(ReactorMode::Reactor);
}

#[test]
fn graceful_drain_accounts_for_every_connection_threaded() {
    graceful_drain(ReactorMode::Threaded);
}

fn graceful_drain(reactor: ReactorMode) {
    let cfg = ServeConfig {
        // Four connections participate; in threaded mode each pins a worker
        // for its whole keep-alive lifetime (the very starvation the
        // reactor removes), so the pool must cover all of them.
        threads: 4,
        poll_interval: Duration::from_millis(10),
        reactor,
        ..ServeConfig::default()
    };
    let (handle, running) = start(cfg);
    let addr = handle.addr();

    // Three idle keep-alive connections…
    let idle: Vec<Client> = (0..3)
        .map(|_| {
            let mut c = Client::connect(addr);
            assert_eq!(c.get("/series").status, 200);
            c
        })
        .collect();
    // …and one connection with a half-sent request in flight.
    let mut half_sent = TcpStream::connect(addr).expect("connect");
    half_sent
        .write_all(b"GET /q/cpu?idx=1 HTT")
        .expect("send partial head");
    half_sent
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(50)); // let the server own them all

    handle.shutdown();
    running.join().expect("server thread").expect("run");

    // The half-sent request was answered with a 408, not silently dropped.
    let mut reply = Vec::new();
    let mut chunk = [0u8; 4096];
    while let Ok(n) = half_sent.read(&mut chunk) {
        if n == 0 {
            break;
        }
        reply.extend_from_slice(&chunk[..n]);
    }
    let text = String::from_utf8_lossy(&reply);
    assert!(
        text.starts_with("HTTP/1.1 408"),
        "half-sent request got {text:?}"
    );
    assert!(text.contains("shutting down"), "{text:?}");

    // Every accepted connection was released by the drain: the counter the
    // accept path increments optimistically must be back to exactly zero.
    assert_eq!(handle.open_connections(), 0, "connection accounting leaked");
    drop(idle);
}
