//! Live-mode loopback test: the server mounted on an [`Ingestor`] accepts
//! `POST /write` over the wire, serves queries that span sealed + head
//! state, and keeps answering consistently across an explicit seal.

mod common;

use common::Client;
use neats_ingest::{FsyncPolicy, IngestConfig, Ingestor};
use neats_serve::{ServeConfig, Server};
use std::sync::Arc;

fn post(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

#[test]
fn live_server_ingests_and_serves_across_a_seal() {
    let dir = std::env::temp_dir().join(format!("neats-serve-live-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = IngestConfig {
        chunk_points: 64,
        seal_points: 128,
        fsync: FsyncPolicy::Never,
        ..IngestConfig::default()
    };
    let ing = Arc::new(Ingestor::open(&dir, cfg).unwrap());

    let server = Server::bind(
        Arc::clone(&ing),
        "127.0.0.1:0",
        ServeConfig { threads: 2, ..ServeConfig::default() },
    )
    .unwrap();
    let addr = server.local_addr();
    let handle = server.handle();
    let running = std::thread::spawn(move || server.run());

    let mut c = Client::connect(addr);

    // Write 300 cpu points in one body (the lines coalesce into one batch)
    // plus a second series, with one bad line in the middle.
    let mut body = String::new();
    let values: Vec<i64> = (0..300).map(|k: i64| k * k % 97 - 13).collect();
    for (k, v) in values.iter().enumerate() {
        body.push_str(&format!("cpu {} {v}\n", 1_000 + k as u64 * 7));
    }
    body.push_str("mem not-a-number 5\n");
    body.push_str("mem 50 -8\n");
    let resp = c.raw_request(&post("/write", &body));
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.starts_with("#0 ok 300\n"), "{}", resp.body);
    assert!(resp.body.contains("#1 err 400"), "{}", resp.body);
    assert!(resp.body.contains("#2 ok 1\n"), "{}", resp.body);
    assert!(resp.body.ends_with("#done 3\n"), "{}", resp.body);

    // Query through the same wire grammar as pack mode.
    let resp = c.get("/q/cpu?idx=123");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body.trim().parse::<i64>().unwrap(), values[123]);

    // Seal underneath the running server, then verify answers unchanged
    // (the query now spans the pack and whatever tail stayed in the head).
    ing.seal().unwrap();
    let resp = c.get("/q/cpu?idx=0..300");
    assert_eq!(resp.status, 200);
    let got: Vec<i64> = resp.body.lines().map(|l| l.parse().unwrap()).collect();
    assert_eq!(got, values);
    let resp = c.get(&format!("/q/cpu?t={}..{}", 1_000, 1_000 + 299 * 7));
    let got: Vec<i64> = resp
        .body
        .lines()
        .map(|l| l.split_once(',').unwrap().1.parse().unwrap())
        .collect();
    assert_eq!(got, values);

    // Appends keep landing after the seal.
    let resp = c.raw_request(&post("/write", "cpu 999999 42\n"));
    assert!(resp.body.starts_with("#0 ok 1\n"), "{}", resp.body);
    let resp = c.get("/q/cpu?idx=300");
    assert_eq!(resp.body.trim().parse::<i64>().unwrap(), 42);

    // The catalog and stats reflect live mode.
    let resp = c.get("/series");
    assert!(resp.body.contains("\"name\": \"cpu\""), "{}", resp.body);
    assert!(resp.body.contains("\"name\": \"mem\""), "{}", resp.body);
    let resp = c.get("/stats");
    assert!(resp.body.contains("\"live\": true"), "{}", resp.body);
    assert!(resp.body.contains("\"ingest\": {\"epoch\": 1"), "{}", resp.body);
    assert!(resp.body.contains("\"write\": {\"requests\": 2"), "{}", resp.body);

    drop(c);
    handle.shutdown();
    running.join().unwrap().unwrap();

    // Everything the server acknowledged survives recovery.
    drop(ing);
    let ing = Ingestor::open(&dir, IngestConfig::default()).unwrap();
    assert_eq!(ing.len("cpu").unwrap(), 301);
    assert_eq!(ing.get("cpu", 300).unwrap(), 42);
    assert_eq!(ing.at_time("mem", 50).unwrap(), Some(-8));
    drop(ing);
    std::fs::remove_dir_all(&dir).unwrap();
}
