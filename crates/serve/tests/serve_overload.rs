//! Overload-protection integration tests: accept-time shedding at the
//! connection cap and the worker-queue watermark, recovery once load
//! drops, and the idle keep-alive deadline — all over real sockets.

mod common;

use common::{demo_store, Client};
use neats_serve::{ReactorMode, ServeConfig, Server, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn start(cfg: ServeConfig) -> (ServerHandle, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(demo_store(), "127.0.0.1:0", cfg).expect("bind");
    let handle = server.handle();
    let running = std::thread::spawn(move || server.run());
    (handle, running)
}

fn stop(handle: ServerHandle, running: JoinHandle<std::io::Result<()>>) {
    handle.shutdown();
    running.join().expect("server thread").expect("server run");
}

/// Connects and reads one response without sending a request — a shed
/// connection is answered straight from the accept loop.
fn read_shed_response(addr: SocketAddr) -> common::HttpResponse {
    let mut c = Client::connect(addr);
    c.read_response()
}

/// One connection-per-request GET that tolerates shed/reset connections;
/// `None` when no clean 200 came back.
fn try_simple_get(addr: SocketAddr, target: &str) -> Option<u16> {
    let mut s = TcpStream::connect(addr).ok()?;
    s.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
    s.write_all(format!("GET {target} HTTP/1.0\r\nHost: t\r\n\r\n").as_bytes())
        .ok()?;
    let mut buf = Vec::new();
    let _ = s.read_to_end(&mut buf);
    let head = String::from_utf8_lossy(&buf);
    head.split(' ').nth(1).and_then(|st| st.parse().ok())
}

/// Extracts an integer counter from the /stats JSON by key.
fn stat(body: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\": ");
    let at = body
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key:?} in {body}"));
    body[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("counter value")
}

#[test]
fn connection_cap_sheds_with_503_then_recovers() {
    connection_cap_sheds(ReactorMode::Threaded);
}

#[test]
#[cfg_attr(not(target_os = "linux"), ignore = "reactor mode requires epoll")]
fn connection_cap_sheds_with_503_then_recovers_reactor() {
    connection_cap_sheds(ReactorMode::Reactor);
}

fn connection_cap_sheds(reactor: ReactorMode) {
    let cfg = ServeConfig {
        threads: 2,
        max_connections: 1,
        queue_watermark: 1000,
        poll_interval: Duration::from_millis(10),
        reactor,
        ..ServeConfig::default()
    };
    let (handle, running) = start(cfg);
    let addr = handle.addr();

    // Occupy the single admitted slot with a keep-alive connection.
    let mut held = Client::connect(addr);
    assert_eq!(held.get("/series").status, 200);

    // Every further connection is shed at accept with a canned 503 that
    // tells the client when to come back.
    for _ in 0..3 {
        let resp = read_shed_response(addr);
        assert_eq!(resp.status, 503, "{resp:?}");
        assert_eq!(resp.retry_after, Some(1), "503 must carry Retry-After");
        assert!(!resp.keep_alive, "shed connections must close");
    }

    // Releasing the held connection restores service (the worker notices
    // the close within a poll tick; retry until it does).
    drop(held);
    let deadline = Instant::now() + Duration::from_secs(5);
    let recovered = loop {
        if try_simple_get(addr, "/series") == Some(200) {
            break true;
        }
        if Instant::now() > deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(
        recovered,
        "server must admit connections again after load drops"
    );

    // The shed connections are visible on /stats.
    let mut c = Client::connect(addr);
    let resp = c.get("/stats");
    assert_eq!(resp.status, 200);
    assert!(stat(&resp.body, "shed") >= 3, "{}", resp.body);
    drop(c);
    stop(handle, running);
}

#[test]
fn queue_watermark_sheds_when_workers_saturated() {
    // Pinned to the threaded path on purpose: the scenario (one worker held
    // hostage by a keep-alive connection, the next connection queued behind
    // it) only exists when a connection pins a worker. In reactor mode an
    // idle connection costs nothing and the watermark guards the shard
    // inboxes instead, which a functioning event loop drains immediately.
    let cfg = ServeConfig {
        threads: 1,
        queue_watermark: 1,
        poll_interval: Duration::from_millis(10),
        reactor: ReactorMode::Threaded,
        ..ServeConfig::default()
    };
    let (handle, running) = start(cfg);
    let addr = handle.addr();

    // The single worker owns this keep-alive connection for its lifetime.
    let mut busy = Client::connect(addr);
    assert_eq!(busy.get("/series").status, 200);

    // The next connection is admitted but queues (no worker free)...
    let mut queued = Client::connect(addr);
    std::thread::sleep(Duration::from_millis(100)); // let the accept loop queue it

    // ...and with the queue at the watermark, further arrivals are shed.
    let resp = read_shed_response(addr);
    assert_eq!(resp.status, 503, "{resp:?}");
    assert_eq!(resp.retry_after, Some(1));

    // Freeing the worker drains the queue: the queued connection is served.
    drop(busy);
    let resp = queued.get("/q/cpu?idx=0");
    assert_eq!(resp.status, 200, "{resp:?}");
    drop(queued);
    stop(handle, running);
}

#[test]
fn idle_keep_alive_connection_times_out_with_408() {
    idle_times_out(ReactorMode::Threaded);
}

#[test]
#[cfg_attr(not(target_os = "linux"), ignore = "reactor mode requires epoll")]
fn idle_keep_alive_connection_times_out_with_408_reactor() {
    idle_times_out(ReactorMode::Reactor);
}

fn idle_times_out(reactor: ReactorMode) {
    let cfg = ServeConfig {
        threads: 2,
        idle_timeout: Duration::from_millis(200),
        poll_interval: Duration::from_millis(20),
        reactor,
        ..ServeConfig::default()
    };
    let (handle, running) = start(cfg);
    let addr = handle.addr();

    let mut c = Client::connect(addr);
    assert_eq!(c.get("/series").status, 200);
    // Sit idle past the deadline: the server answers 408 and closes, so a
    // dead client can't pin a worker forever.
    let resp = c.read_response();
    assert_eq!(resp.status, 408, "{resp:?}");
    assert!(!resp.keep_alive);

    let mut c2 = Client::connect(addr);
    let resp = c2.get("/stats");
    assert!(stat(&resp.body, "timeouts") >= 1, "{}", resp.body);
    drop(c2);
    stop(handle, running);
}
