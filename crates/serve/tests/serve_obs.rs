//! Observability over the wire: `GET /metrics` exposition diffed against
//! known traffic, `GET /debug/requests` stage breakdowns, and the
//! slow-query threshold — all through real loopback sockets, in both
//! serving disciplines.

mod common;

use common::{demo_store, Client};
use neats_ingest::{IngestConfig, Ingestor};
use neats_serve::{ReactorMode, ServeConfig, Server, ServerHandle};
use std::sync::Arc;
use std::thread::JoinHandle;

fn start_with(cfg: ServeConfig) -> (ServerHandle, JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(demo_store(), "127.0.0.1:0", cfg).expect("bind");
    let handle = server.handle();
    let running = std::thread::spawn(move || server.run());
    (handle, running)
}

fn stop(handle: ServerHandle, running: JoinHandle<std::io::Result<()>>) {
    handle.shutdown();
    running.join().expect("server thread").expect("server run");
}

/// Every line of a 0.0.4 exposition is a comment or a `name{labels} value`
/// sample whose value parses as a float; every family announces `# HELP`
/// and `# TYPE` before its first sample. Returns the sample lines.
fn check_prometheus_text(text: &str) -> Vec<(String, f64)> {
    let mut announced = std::collections::HashSet::new();
    let mut samples = Vec::new();
    for line in text.lines() {
        assert!(!line.is_empty(), "blank line in exposition:\n{text}");
        if let Some(rest) = line.strip_prefix("# ") {
            let mut words = rest.split(' ');
            let kw = words.next().unwrap();
            assert!(kw == "HELP" || kw == "TYPE", "bad comment {line:?}");
            let name = words.next().expect("family name").to_string();
            if kw == "TYPE" {
                let t = words.next().expect("type");
                assert!(
                    ["counter", "gauge", "histogram"].contains(&t),
                    "bad type in {line:?}"
                );
                announced.insert(name);
            }
            continue;
        }
        let (name_labels, value) = line.rsplit_once(' ').expect("sample line");
        let value: f64 = value.parse().unwrap_or_else(|_| panic!("bad value in {line:?}"));
        let name = name_labels.split('{').next().unwrap().to_string();
        assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in {line:?}"
        );
        // A histogram's _bucket/_sum/_count samples hang off the announced
        // family name.
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| announced.contains(*f))
            .unwrap_or(&name);
        assert!(
            announced.contains(family),
            "sample {line:?} before its # TYPE announcement"
        );
        samples.push((name_labels.to_string(), value));
    }
    samples
}

/// The value of an exact `name{labels}` sample.
fn sample(samples: &[(String, f64)], key: &str) -> f64 {
    samples
        .iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("no sample {key} in {samples:?}"))
        .1
}

/// Drives known traffic at the server and diffs `/metrics` against it:
/// the exposition must be valid Prometheus text whose counters equal the
/// requests actually made, reading the same atomics as `/stats`.
fn metrics_diff_against_known_traffic(reactor: ReactorMode) {
    let (handle, running) = start_with(ServeConfig {
        threads: 2,
        reactor,
        source_label: "demo.pack".into(),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(handle.addr());

    // Known traffic: 3 good point queries, 1 unknown series (404),
    // 1 catalog fetch, 1 stats fetch.
    for k in [1, 2, 3] {
        assert_eq!(client.get(&format!("/q/cpu?idx={k}")).status, 200);
    }
    assert_eq!(client.get("/q/ghost?idx=0").status, 404);
    assert_eq!(client.get("/series").status, 200);
    assert_eq!(client.get("/stats").status, 200);

    let r = client.get("/metrics");
    assert_eq!(r.status, 200);
    assert_eq!(
        r.content_type.as_deref(),
        Some("text/plain; version=0.0.4"),
        "exposition content type"
    );
    let samples = check_prometheus_text(&r.body);

    // Counters match the traffic above exactly.
    assert_eq!(sample(&samples, "neats_serve_requests_total{endpoint=\"query\"}"), 4.0);
    assert_eq!(sample(&samples, "neats_serve_errors_total{endpoint=\"query\"}"), 1.0);
    assert_eq!(sample(&samples, "neats_serve_requests_total{endpoint=\"series\"}"), 1.0);
    assert_eq!(sample(&samples, "neats_serve_requests_total{endpoint=\"stats\"}"), 1.0);
    // The /metrics render happens inside its own request, before that
    // request is recorded — the first scrape reports zero of itself.
    assert_eq!(sample(&samples, "neats_serve_requests_total{endpoint=\"metrics\"}"), 0.0);
    assert_eq!(sample(&samples, "neats_serve_slow_queries_total"), 0.0);
    assert!(sample(&samples, "neats_serve_connections_accepted_total") >= 1.0);
    assert!(sample(&samples, "neats_serve_bytes_in_total") > 0.0);
    assert!(sample(&samples, "neats_serve_bytes_out_total") > 0.0);
    assert!(sample(&samples, "neats_serve_uptime_seconds") >= 0.0);
    assert_eq!(sample(&samples, "neats_store_series"), 3.0);

    // The build-info gauge carries the source label and resolved mode.
    let info = samples
        .iter()
        .find(|(k, _)| k.starts_with("neats_build_info{"))
        .expect("neats_build_info");
    assert!(info.0.contains("source=\"demo.pack\""), "{}", info.0);
    assert!(
        info.0.contains("mode=\"reactor\"") || info.0.contains("mode=\"threaded\""),
        "{}",
        info.0
    );
    assert_eq!(info.1, 1.0);

    // Latency histograms count the same requests.
    assert_eq!(sample(&samples, "neats_serve_request_ns_count{endpoint=\"query\"}"), 4.0);

    // Store/cache families are exported from the same store the queries hit.
    for family in [
        "neats_store_cache_hits_total",
        "neats_store_cache_misses_total",
        "neats_store_cache_evictions_total",
        "neats_store_points",
    ] {
        assert!(r.body.contains(&format!("# TYPE {family} ")), "missing {family}");
    }

    // A second scrape sees the first one — same atomics, no snapshotting.
    let r2 = client.get("/metrics");
    let samples2 = check_prometheus_text(&r2.body);
    assert_eq!(sample(&samples2, "neats_serve_requests_total{endpoint=\"metrics\"}"), 1.0);

    // /stats reads the very same counters.
    let stats = client.get("/stats").body;
    assert!(stats.contains("\"requests\": 4"), "{stats}");

    stop(handle, running);
}

#[test]
fn metrics_match_known_traffic_threaded() {
    metrics_diff_against_known_traffic(ReactorMode::Threaded);
}

#[test]
fn metrics_match_known_traffic_reactor() {
    // Auto resolves to the reactor on Linux and falls back to the worker
    // pool elsewhere — either way the exposition contract must hold.
    metrics_diff_against_known_traffic(ReactorMode::Auto);
}

/// A live source additionally exports the ingest write-path families, and
/// `POST /write` traffic moves them.
#[test]
fn live_source_exports_ingest_families() {
    let dir = std::env::temp_dir().join("neats_serve_obs_live");
    let _ = std::fs::remove_dir_all(&dir);
    let ing = Arc::new(Ingestor::open(&dir, IngestConfig::default()).unwrap());
    let server = Server::bind(
        Arc::clone(&ing),
        "127.0.0.1:0",
        ServeConfig { threads: 2, source_label: dir.display().to_string(), ..Default::default() },
    )
    .unwrap();
    let handle = server.handle();
    let running = std::thread::spawn(move || server.run());
    let mut client = Client::connect(handle.addr());

    let body = "cpu 1000 5\ncpu 1010 6\ncpu 1020 4\n";
    let r = client.raw_request(
        format!(
            "POST /write HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        )
        .as_bytes(),
    );
    assert_eq!(r.status, 200, "{}", r.body);

    let r = client.get("/metrics");
    assert_eq!(r.status, 200);
    let samples = check_prometheus_text(&r.body);
    assert!(sample(&samples, "neats_ingest_wal_append_ns_count") >= 1.0);
    assert_eq!(sample(&samples, "neats_ingest_head_points"), 3.0);
    assert_eq!(sample(&samples, "neats_serve_requests_total{endpoint=\"write\"}"), 1.0);
    for family in ["neats_ingest_wal_sync_ns", "neats_ingest_seals_total", "neats_ingest_degraded"]
    {
        assert!(r.body.contains(&format!("# TYPE {family} ")), "missing {family}");
    }

    stop(handle, running);
    drop(ing);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `GET /debug/requests` reports a stage breakdown per request, newest
/// first, bounded by the configured ring capacity.
#[test]
fn debug_requests_stage_breakdown() {
    let (handle, running) = start_with(ServeConfig {
        threads: 1,
        trace_ring: Some(4),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(handle.addr());

    // More requests than the ring holds.
    for k in 0..10 {
        assert_eq!(client.get(&format!("/q/cpu?idx={}..{}", k, k + 50)).status, 200);
    }
    let r = client.get("/debug/requests");
    assert_eq!(r.status, 200);
    assert_eq!(r.content_type.as_deref(), Some("application/json"));
    let entries = r.body.matches("\"seq\":").count();
    assert!(entries <= 4, "ring of 4 reported {entries} entries: {}", r.body);
    assert!(entries >= 1, "{}", r.body);
    // Newest first: the first entry is the most recent query.
    let first = r.body.split('}').next().unwrap();
    assert!(first.contains("\"path\": \"/q/cpu\""), "{first}");
    // Every stage of the pipeline is reported by name.
    for stage in ["parse_us", "route_us", "cache_us", "decode_us", "render_us", "write_us"] {
        assert!(r.body.contains(stage), "missing {stage} in {}", r.body);
    }
    assert!(r.body.contains("\"slow\": false"), "{}", r.body);

    stop(handle, running);
}

/// With the threshold at 1µs every request is slow: the counter moves, the
/// ring flags it, and `/stats` agrees — exercised over a real socket.
#[test]
fn slow_query_threshold_over_socket() {
    let (handle, running) = start_with(ServeConfig {
        threads: 1,
        slow_query_us: Some(1),
        trace_ring: Some(8),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(handle.addr());

    assert_eq!(client.get("/q/cpu?idx=0..300").status, 200);

    let r = client.get("/metrics");
    let samples = check_prometheus_text(&r.body);
    assert!(sample(&samples, "neats_serve_slow_queries_total") >= 1.0);

    let r = client.get("/debug/requests");
    assert!(r.body.contains("\"slow\": true"), "{}", r.body);

    let stats = client.get("/stats").body;
    let slow: u64 = stats
        .split("\"slow_queries\": ")
        .nth(1)
        .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|s| s.parse().ok())
        .expect("slow_queries in /stats");
    assert!(slow >= 1, "{stats}");

    stop(handle, running);
}

/// `trace_ring: Some(0)` disables tracing entirely: `/debug/requests`
/// serves an empty array and nothing is recorded.
#[test]
fn trace_ring_zero_disables_tracing() {
    let (handle, running) =
        start_with(ServeConfig { threads: 1, trace_ring: Some(0), ..ServeConfig::default() });
    let mut client = Client::connect(handle.addr());
    assert_eq!(client.get("/q/cpu?idx=5").status, 200);
    let r = client.get("/debug/requests");
    assert_eq!(r.status, 200);
    assert_eq!(r.body.trim(), "[]", "{}", r.body);
    stop(handle, running);
}
