//! # bench — the experiment harness regenerating every table and figure
//!
//! Binaries (run with `cargo run --release -p bench --bin <name>`):
//!
//! * `table2` — lossy comparison AA vs PLA vs NeaTS-L (paper Table II plus
//!   the §IV-B MAPE and speed numbers);
//! * `table3` — per-dataset compression ratio / decompression speed /
//!   random-access speed for all 13 lossless compressors (paper Table III);
//! * `fig2` — ratio vs compression speed, averaged (paper Fig. 2, including
//!   the LeaTS and SNeaTS variants);
//! * `fig3` — ratio vs decompression speed and ratio vs random-access speed
//!   (paper Fig. 3);
//! * `fig4` — range-query throughput across range sizes (paper Fig. 4).
//!
//! * `perf_baseline` — compress/decompress/random-access throughput across
//!   partitioner thread counts, written machine-readable to
//!   `BENCH_partition.json` (the repo's perf trajectory).
//! * `access_baseline` — owned vs zero-copy (`ArchiveView`) open latency and
//!   random-access throughput, written machine-readable to
//!   `BENCH_access.json` (the read-side perf trajectory).
//! * `store_baseline` — multi-series pack store vs per-file archives: open
//!   latency, point/range throughput, and the cache-hit effect, written
//!   machine-readable to `BENCH_store.json`.
//! * `serve_baseline` — the HTTP serving layer under concurrent in-process
//!   clients: requests/s and client-observed p50/p99 latency across worker
//!   threads × batch size, every response diffed against the `Store`
//!   oracle, written machine-readable to `BENCH_serve.json`.
//! * `bench_all` — the unified [`suite`]: every codec (NeaTS flavours and
//!   all baselines behind one [`suite::Codec`] trait) × every shape (the
//!   16 paper datasets plus 8 adversarial generators), conformance-checked
//!   inline, written to `BENCH_all.json` + `BENCHMARKS.md`. Also reachable
//!   as `neats bench all`; extra knobs `NEATS_BENCH_CODECS` /
//!   `NEATS_BENCH_SHAPES` (substring filters), `NEATS_BENCH_SCAN_LEN` /
//!   `NEATS_BENCH_SCANS`, `NEATS_BENCH_SEED`, and `NEATS_BENCH_CHECK`
//!   (schema-drift gate against a committed artifact).
//!
//! Scale knobs (environment variables):
//!
//! * `NEATS_BENCH_N` — points per dataset (default 131072);
//! * `NEATS_BENCH_QUERIES` — random-access queries (default 20000);
//! * `NEATS_BENCH_THREADS` — comma-separated thread counts for
//!   `perf_baseline` (default `1,2,4`);
//! * `NEATS_BENCH_DATASETS` — comma-separated dataset abbreviations to
//!   restrict `perf_baseline` / `access_baseline` to (default: all 16);
//! * `NEATS_BENCH_SERIES` / `NEATS_BENCH_SEGMENT` — series count and
//!   segment size for `store_baseline` (defaults 8 / 8192; that binary
//!   reads `NEATS_BENCH_N` as points *per series*, default 32768);
//! * `NEATS_BENCH_SERVE_THREADS` / `NEATS_BENCH_BATCH` /
//!   `NEATS_BENCH_CLIENTS` — `serve_baseline`'s worker sweep, batch-size
//!   sweep and client-thread count (defaults `1,2` / `1,16` / 4; that
//!   binary reads `NEATS_BENCH_N` per series, default 16384, and
//!   `NEATS_BENCH_QUERIES` per sweep cell);
//! * `NEATS_BENCH_OUT` — output path for `perf_baseline` /
//!   `access_baseline` / `store_baseline` / `serve_baseline` (defaults
//!   `BENCH_partition.json` / `BENCH_access.json` / `BENCH_store.json` /
//!   `BENCH_serve.json`).

#![warn(missing_docs)]
pub mod json;
pub mod suite;
use lossless_baselines::paper_competitors;
use neats_core::NeaTSCompressor;
use std::time::Instant;
use timeseries::{AnyCompressor, Dataset, TimeSeries};

/// A `usize` knob from the environment, falling back to `default` when the
/// variable is unset or unparseable — the shared parsing rule for every
/// `NEATS_BENCH_*` scalar so the harness binaries cannot drift.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// A comma-separated positive-integer list from the environment (entries
/// are trimmed, non-numeric and zero entries dropped), falling back to
/// `default` when unset or empty — the shared rule for sweep knobs.
pub fn env_usize_list(name: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(name)
        .ok()
        .map(|v| v.split(',').filter_map(|t| t.trim().parse().ok()).filter(|&t| t > 0).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

/// Points per dataset (env `NEATS_BENCH_N`).
pub fn bench_n() -> usize {
    env_usize("NEATS_BENCH_N", 1 << 17)
}

/// Random-access query count (env `NEATS_BENCH_QUERIES`).
pub fn bench_queries() -> usize {
    env_usize("NEATS_BENCH_QUERIES", 20_000)
}

/// Partitioner thread counts for the perf baseline (env
/// `NEATS_BENCH_THREADS`, comma-separated; default `1,2,4`).
pub fn bench_threads() -> Vec<usize> {
    env_usize_list("NEATS_BENCH_THREADS", &[1, 2, 4])
}

/// The datasets the perf baseline runs on: all 16, or the subset named by
/// the comma-separated `NEATS_BENCH_DATASETS` abbreviations (e.g. `IT,ECG`).
///
/// # Panics
/// Panics on an abbreviation that matches no dataset (a typo'd filter must
/// not silently degrade into the full multi-minute sweep).
pub fn bench_dataset_filter() -> Vec<Dataset> {
    let all = Dataset::ALL.to_vec();
    match std::env::var("NEATS_BENCH_DATASETS") {
        Ok(list) => {
            let picked: Vec<Dataset> = list
                .split(',')
                .map(|s| s.trim().to_ascii_uppercase())
                .filter(|w| !w.is_empty())
                .map(|w| {
                    all.iter().copied().find(|d| d.abbrev() == w).unwrap_or_else(|| {
                        let known: Vec<&str> = all.iter().map(|d| d.abbrev()).collect();
                        panic!("NEATS_BENCH_DATASETS: unknown dataset {w:?} (known: {known:?})")
                    })
                })
                .collect();
            if picked.is_empty() { all } else { picked }
        }
        Err(_) => all,
    }
}

/// Generates all 16 paper datasets at `n` points.
pub fn all_datasets(n: usize) -> Vec<(Dataset, TimeSeries)> {
    Dataset::ALL.iter().map(|&ds| (ds, ds.generate(n))).collect()
}

/// The 13 lossless compressors of Table III (competitors + NeaTS).
pub fn lossless_roster() -> Vec<Box<dyn AnyCompressor>> {
    let mut v = paper_competitors();
    v.push(Box::new(NeaTSCompressor::neats()));
    v
}

/// Fig. 2 roster: Table III compressors plus the LeaTS/SNeaTS variants.
pub fn fig2_roster() -> Vec<Box<dyn AnyCompressor>> {
    let mut v = lossless_roster();
    v.push(Box::new(NeaTSCompressor::leats()));
    v.push(Box::new(NeaTSCompressor::sneats()));
    v
}

/// One compressor's measurements on one dataset.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Compression ratio in % of raw 64-bit storage.
    pub ratio_pct: f64,
    /// Compression speed, MB/s of raw input.
    pub compress_mbs: f64,
    /// Decompression speed, MB/s of raw output.
    pub decompress_mbs: f64,
    /// Random access speed, MB/s of accessed values.
    pub random_access_mbs: f64,
}

/// Deterministic query index sequence (multiplicative hashing).
pub fn query_indices(n: usize, queries: usize) -> Vec<usize> {
    let mut idx = Vec::with_capacity(queries);
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    for _ in 0..queries {
        x = x.wrapping_mul(0xD129_0247_3F89_4E1D).wrapping_add(0x9E37_79B9);
        idx.push((x >> 11) as usize % n);
    }
    idx
}

/// Timed repetitions per speed measurement; the fastest is reported
/// (standard practice to filter scheduler noise on shared machines).
const SPEED_REPS: usize = 3;

/// Measures one compressor on one series (compress once, then timed
/// decompression and random access, best of `SPEED_REPS` repetitions).
pub fn measure(comp: &dyn AnyCompressor, ts: &TimeSeries, queries: usize) -> Measurement {
    let raw = ts.uncompressed_bytes() as f64;
    let t0 = Instant::now();
    let c = comp.compress_boxed(ts);
    let compress_mbs = raw / t0.elapsed().as_secs_f64() / 1e6;
    let ratio_pct = 100.0 * c.size_in_bytes() as f64 / raw;

    let mut best_dec = f64::INFINITY;
    for rep in 0..SPEED_REPS {
        let t0 = Instant::now();
        let dec = c.decompress();
        best_dec = best_dec.min(t0.elapsed().as_secs_f64());
        if rep == 0 {
            assert_eq!(dec.len(), ts.len(), "{} length mismatch", comp.name());
        }
        std::hint::black_box(&dec);
    }
    let decompress_mbs = raw / best_dec / 1e6;

    let idx = query_indices(ts.len().max(1), queries);
    let mut best_ra = f64::INFINITY;
    for _ in 0..SPEED_REPS {
        let t0 = Instant::now();
        let mut acc = 0i64;
        for &k in &idx {
            acc = acc.wrapping_add(c.get(k));
        }
        std::hint::black_box(acc);
        best_ra = best_ra.min(t0.elapsed().as_secs_f64());
    }
    let random_access_mbs = (queries * 8) as f64 / best_ra / 1e6;

    Measurement { ratio_pct, compress_mbs, decompress_mbs, random_access_mbs }
}

/// Pretty-prints a header row followed by aligned numeric rows.
pub fn print_table(title: &str, header: &[&str], rows: &[(String, Vec<f64>)], decimals: usize) {
    println!("\n== {title} ==");
    print!("{:<12}", "");
    for h in header {
        print!(" {h:>9}");
    }
    println!();
    for (name, values) in rows {
        print!("{name:<12}");
        for v in values {
            print!(" {v:>9.decimals$}");
        }
        println!();
    }
}

/// Geometric mean, the right way to average ratios across datasets.
pub fn geomean(values: &[f64]) -> f64 {
    let logs: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (logs / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rosters_have_expected_sizes() {
        assert_eq!(lossless_roster().len(), 10); // 9 competitors + NeaTS
        assert_eq!(fig2_roster().len(), 12); // + LeaTS, SNeaTS
    }

    #[test]
    fn query_indices_in_range_and_deterministic() {
        let a = query_indices(1000, 500);
        let b = query_indices(1000, 500);
        assert_eq!(a, b);
        assert!(a.iter().all(|&i| i < 1000));
        // spread over the domain
        assert!(a.iter().filter(|&&i| i < 500).count() > 100);
    }

    #[test]
    fn measure_smoke() {
        let ts = Dataset::CityTemp.generate(2000);
        let comp = NeaTSCompressor::neats();
        let m = measure(&comp, &ts, 100);
        assert!(m.ratio_pct > 0.0 && m.ratio_pct < 100.0);
        assert!(m.compress_mbs > 0.0);
        assert!(m.decompress_mbs > 0.0);
        assert!(m.random_access_mbs > 0.0);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-9);
    }
}
