//! The widened dataset matrix: the paper's 16 evaluation datasets plus
//! adversarial shapes that stress the corners real traffic hits — constant
//! runs, spikes, regime switches, NaN-sentinel encodings, extreme
//! magnitudes, denormal-scale noise, and (for the ingest boundary, not the
//! value codecs) out-of-order timestamps and raw NaN-bearing float input.
//!
//! Every generator is deterministic given `(n, seed)`, so conformance
//! failures shrink to a reproducible `(shape, seed)` pair and the committed
//! benchmark tables are regenerable bit-for-bit.

use timeseries::gen::Signal;
use timeseries::{Dataset, TimeSeries};

/// One cell-row of the benchmark/conformance matrix: a deterministic
/// time-series generator with a stable display name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shape {
    /// One of the paper's 16 evaluation datasets.
    Paper(Dataset),
    /// A single repeated value — the best case every codec must not
    /// mishandle (zero-entropy input has historically broken bit-width
    /// selection logic).
    Constant,
    /// A flat baseline with rare, huge spikes: stresses codecs that size
    /// their encodings from a global maximum.
    Spikes,
    /// Abrupt switches between a smooth sine, a random walk, and a flat
    /// regime — partition-based codecs must re-synchronise at each switch.
    RegimeSwitch,
    /// A smooth signal in which a sensor's NaN readings were encoded as a
    /// large sentinel value (the common wire convention once values are
    /// scaled to integers): huge value jumps at random positions.
    NanSentinel,
    /// Values spanning an enormous magnitude range, up to ±2^55: stresses
    /// positivity-shift and bit-width arithmetic far beyond any real
    /// dataset while leaving the ε headroom the paper's shifted-domain
    /// algebra requires.
    Extreme,
    /// Denormal-scale readings: almost every scaled value lands in
    /// {-1, 0, 1} — the high-precision/low-signal regime of instruments
    /// whose noise floor exceeds their resolution.
    Denormal,
    /// A noiseless piecewise-linear sawtooth — the ideal case for learned
    /// codecs, worth tracking so a regression in the *easy* path is seen.
    Sawtooth,
    /// Full-range white noise — incompressible; ratios near (or above)
    /// 100% are correct here and codecs must not corrupt or crash.
    WhiteNoise,
}

impl Shape {
    /// Every shape of the matrix: the 16 paper datasets followed by the 8
    /// adversarial generators (24 total).
    pub fn all() -> Vec<Shape> {
        let mut v: Vec<Shape> = Dataset::ALL.iter().map(|&d| Shape::Paper(d)).collect();
        v.extend(Self::ADVERSARIAL);
        v
    }

    /// The adversarial (non-paper) shapes.
    pub const ADVERSARIAL: [Shape; 8] = [
        Shape::Constant,
        Shape::Spikes,
        Shape::RegimeSwitch,
        Shape::NanSentinel,
        Shape::Extreme,
        Shape::Denormal,
        Shape::Sawtooth,
        Shape::WhiteNoise,
    ];

    /// Stable display name (the paper abbreviation, or a lowercase tag).
    pub fn name(self) -> &'static str {
        match self {
            Shape::Paper(d) => d.abbrev(),
            Shape::Constant => "constant",
            Shape::Spikes => "spikes",
            Shape::RegimeSwitch => "regimes",
            Shape::NanSentinel => "nan-sentinel",
            Shape::Extreme => "extreme",
            Shape::Denormal => "denormal",
            Shape::Sawtooth => "sawtooth",
            Shape::WhiteNoise => "white-noise",
        }
    }

    /// Looks a shape up by its [`Self::name`].
    pub fn by_name(name: &str) -> Option<Shape> {
        Self::all().into_iter().find(|s| s.name().eq_ignore_ascii_case(name))
    }

    /// Generates `n` points with the shape's default seed.
    pub fn generate(self, n: usize) -> TimeSeries {
        self.generate_seeded(n, 0)
    }

    /// Generates `n` points deterministically from `(self, seed)`.
    pub fn generate_seeded(self, n: usize, seed: u64) -> TimeSeries {
        match self {
            Shape::Paper(d) => {
                if seed == 0 {
                    d.generate(n)
                } else {
                    d.generate_seeded(n, seed)
                }
            }
            Shape::Constant => TimeSeries::from_values(vec![424_242; n]),
            Shape::Spikes => spikes(n, seed),
            Shape::RegimeSwitch => regime_switch(n, seed),
            Shape::NanSentinel => nan_sentinel(n, seed),
            Shape::Extreme => extreme(n, seed),
            Shape::Denormal => denormal(n, seed),
            Shape::Sawtooth => sawtooth(n),
            Shape::WhiteNoise => white_noise(n, seed),
        }
    }
}

/// The sentinel integer a scaled-domain pipeline typically stores for a NaN
/// reading (large enough to be unmistakable, small enough that range
/// arithmetic — shift + ε — stays clear of `i64` overflow).
pub const NAN_SENTINEL: i64 = 1_000_000_000_000_000; // 10^15

fn spikes(n: usize, seed: u64) -> TimeSeries {
    let mut sig = Signal::new(seed ^ 0xA11CE);
    let values = (0..n)
        .map(|_| {
            let base = sig.gauss_with(1000.0, 2.0).round() as i64;
            if sig.bernoulli(0.003) {
                base + sig.uniform_in(1e7, 5e8) as i64
            } else {
                base
            }
        })
        .collect();
    TimeSeries::from_values(values)
}

fn regime_switch(n: usize, seed: u64) -> TimeSeries {
    let mut sig = Signal::new(seed ^ 0x5EED);
    let mut values = Vec::with_capacity(n);
    let mut level = 0i64;
    let mut regime = 0usize;
    while values.len() < n {
        let run = sig.uniform_usize(100, 1500).min(n - values.len());
        match regime % 3 {
            // Smooth sine around the current level.
            0 => {
                let amp = sig.uniform_in(100.0, 5000.0);
                let period = sig.uniform_in(40.0, 400.0);
                for t in 0..run {
                    values.push(
                        level
                            + (amp * (std::f64::consts::TAU * t as f64 / period).sin()).round()
                                as i64,
                    );
                }
            }
            // Random walk.
            1 => {
                for _ in 0..run {
                    level += sig.gauss_with(0.0, 30.0).round() as i64;
                    values.push(level);
                }
            }
            // Dead-flat hold.
            _ => {
                for _ in 0..run {
                    values.push(level);
                }
            }
        }
        // The switch itself is a discontinuity.
        level += sig.gauss_with(0.0, 1e5).round() as i64;
        regime += 1;
    }
    TimeSeries::from_values(values)
}

fn nan_sentinel(n: usize, seed: u64) -> TimeSeries {
    let mut sig = Signal::new(seed ^ 0xDEAD);
    let values = (0..n)
        .map(|t| {
            if sig.bernoulli(0.02) {
                NAN_SENTINEL
            } else {
                (2000.0 * (t as f64 / 500.0).sin()).round() as i64
                    + sig.gauss_with(0.0, 3.0).round() as i64
            }
        })
        .collect();
    TimeSeries::from_values(values)
}

fn extreme(n: usize, seed: u64) -> TimeSeries {
    let mut sig = Signal::new(seed ^ 0xFEED);
    // A walk whose step magnitudes are log-uniform over ~18 decades, clamped
    // to ±2^55 so downstream shift+ε arithmetic has headroom.
    let bound = 1i64 << 55;
    let mut v: i64 = 0;
    let values = (0..n)
        .map(|_| {
            let mag = 10f64.powf(sig.uniform_in(0.0, 18.0));
            let step = if sig.bernoulli(0.5) { mag } else { -mag };
            v = v.saturating_add(step as i64).clamp(-bound, bound);
            v
        })
        .collect();
    TimeSeries::from_values(values)
}

fn denormal(n: usize, seed: u64) -> TimeSeries {
    let mut sig = Signal::new(seed ^ 0x0DD);
    // What `checked_scale` produces for readings at the instrument's noise
    // floor: almost all mass on {-1, 0, 1}, occasional 2s.
    let values = (0..n).map(|_| sig.gauss_with(0.0, 0.7).round() as i64).collect();
    TimeSeries::from_values(values)
}

fn sawtooth(n: usize) -> TimeSeries {
    TimeSeries::from_values((0..n).map(|t| ((t % 977) as i64) * 13 - 6000).collect())
}

fn white_noise(n: usize, seed: u64) -> TimeSeries {
    let mut sig = Signal::new(seed ^ 0xF00F);
    // Uniform over ±2^40: wide enough to defeat every model, safe for all
    // shift arithmetic.
    let values =
        (0..n).map(|_| (sig.uniform_in(-1.0, 1.0) * (1u64 << 40) as f64) as i64).collect();
    TimeSeries::from_values(values)
}

// ---------------------------------------------------------------------------
// Raw-input adversarial generators for the *ingest boundary* (these produce
// inputs that must be REJECTED with typed errors, so they cannot be part of
// the value-codec matrix above).
// ---------------------------------------------------------------------------

/// A float stream in which some readings are NaN/±∞ — what a flaky sensor
/// or a lossy upstream JSON decode actually delivers. Returns the values
/// and the index of the first non-finite one.
pub fn nan_heavy_f64(n: usize, seed: u64) -> (Vec<f64>, usize) {
    let mut sig = Signal::new(seed ^ 0xBAD);
    let mut values: Vec<f64> = (0..n).map(|t| (t as f64 / 50.0).sin() * 100.0).collect();
    let mut first = usize::MAX;
    // At least one NaN, plus a sprinkle of NaN/±inf.
    let forced = sig.uniform_usize(0, n.max(1));
    for (i, v) in values.iter_mut().enumerate() {
        if i == forced || sig.bernoulli(0.05) {
            *v = match sig.uniform_usize(0, 3) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                _ => f64::NEG_INFINITY,
            };
            first = first.min(i);
        }
    }
    (values, first)
}

/// A timestamp stream that is mostly increasing but contains at least one
/// inversion or duplicate. Returns the stamps and the index of the first
/// out-of-order one (the index a typed rejection must report).
pub fn out_of_order_timestamps(n: usize, seed: u64) -> (Vec<u64>, usize) {
    assert!(n >= 2, "need at least two stamps to misorder");
    let mut sig = Signal::new(seed ^ 0xBEEF);
    let mut stamps = Vec::with_capacity(n);
    let mut t = 1_700_000_000u64;
    for _ in 0..n {
        t += sig.uniform_usize(1, 30) as u64;
        stamps.push(t);
    }
    // Corrupt one position: a duplicate or a backwards jump.
    let at = sig.uniform_usize(1, n);
    stamps[at] = if sig.bernoulli(0.5) {
        stamps[at - 1] // duplicate
    } else {
        stamps[at - 1].saturating_sub(sig.uniform_usize(1, 1000) as u64)
    };
    // Positions after `at` may accidentally still be ordered relative to the
    // corrupted one; the first violation is exactly `at`.
    (stamps, at)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_at_least_20_named_unique_shapes() {
        let all = Shape::all();
        assert!(all.len() >= 20, "only {} shapes", all.len());
        let mut names: Vec<&str> = all.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "duplicate shape names");
        for s in &all {
            assert_eq!(Shape::by_name(s.name()), Some(*s));
        }
    }

    #[test]
    fn generators_are_deterministic_and_sized() {
        for shape in Shape::all() {
            let a = shape.generate_seeded(800, 3);
            let b = shape.generate_seeded(800, 3);
            assert_eq!(a, b, "{}", shape.name());
            assert_eq!(a.len(), 800, "{}", shape.name());
        }
    }

    #[test]
    fn adversarial_shapes_have_their_advertised_character() {
        let c = Shape::Constant.generate(500);
        assert_eq!(c.delta(), 1);

        let s = Shape::Spikes.generate(20_000);
        let (lo, hi) = s.min_max().unwrap();
        assert!(hi - lo > 10_000_000, "no spike in range [{lo}, {hi}]");

        let ns = Shape::NanSentinel.generate(5000);
        assert!(ns.values().iter().filter(|&&v| v == NAN_SENTINEL).count() > 10);

        let e = Shape::Extreme.generate(5000);
        let (lo, hi) = e.min_max().unwrap();
        assert!(hi > 1 << 50 || lo < -(1 << 50), "extremes too tame [{lo}, {hi}]");

        let d = Shape::Denormal.generate(5000);
        let small = d.values().iter().filter(|v| v.abs() <= 1).count();
        assert!(small > 4000, "denormal shape not concentrated: {small}/5000");

        let w = Shape::WhiteNoise.generate(5000);
        assert!(w.delta() > 1 << 39);
    }

    #[test]
    fn raw_generators_mark_first_violation() {
        for seed in 0..20 {
            let (vals, first) = nan_heavy_f64(300, seed);
            assert!(first < 300);
            assert!(!vals[first].is_finite());
            assert!(vals[..first].iter().all(|v| v.is_finite()));

            let (stamps, at) = out_of_order_timestamps(300, seed);
            assert!(at > 0 && at < 300);
            assert!(stamps[at] <= stamps[at - 1]);
            assert!(stamps[..at].windows(2).all(|w| w[1] > w[0]));
        }
    }
}
