//! The unified [`Codec`] trait: one interface over every compressor in the
//! evaluation — NeaTS in all its flavours (lossless/lossy, owned/zero-copy
//! view/streaming) and every baseline — so the benchmark matrix and the
//! conformance suite drive them identically.
//!
//! The contract a [`CodecArchive`] must honour (checked by the conformance
//! suite, not merely documented):
//!
//! * lossless (`epsilon_for` returns `None`): `decompress` reproduces the
//!   input exactly, `random_access(k)` equals `decompress()[k]`, and
//!   `range_scan` equals the slice of the full materialisation;
//! * lossy (`epsilon_for` returns `Some(ε)`): every reconstructed value is
//!   within `ε + 1` of the original (the `+1` is the floor the paper's
//!   integer-domain construction allows), and random access / range scans
//!   agree with `decompress` *exactly* — approximation error may exist, but
//!   the three read paths must tell one consistent story.

use lossless_baselines::{Alp, Blockwise, Chimp, Chimp128, Dac, Elf, EntropyLz, FastLz, Gorilla, Leco, TsXor};
use lossy_baselines::{AdaptiveApprox, Pla};
use neats_core::{ArchiveView, NeaTS, NeaTSBuilder, NeaTSLossy, NeaTSWriter};
use timeseries::{AnyCompressor, CompressedSeries, TimeSeries};

/// A compressed archive produced by a [`Codec`], exposing the four read
/// paths the paper evaluates.
pub trait CodecArchive {
    /// Number of points in the original series.
    fn len(&self) -> usize;
    /// Total compressed size in bytes, including access structures.
    fn size_in_bytes(&self) -> usize;
    /// The `k`-th value (0-based) — the paper's O(1) random-access query.
    fn random_access(&self, k: usize) -> i64;
    /// Appends values in `[start, start + count)` to `out`.
    fn range_scan(&self, start: usize, count: usize, out: &mut Vec<i64>);
    /// Materialises the whole series.
    fn decompress(&self) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.len());
        self.range_scan(0, self.len(), &mut out);
        out
    }
}

/// One contender of the benchmark/conformance matrix.
pub trait Codec {
    /// Display name, stable across runs (keys the committed JSON records).
    fn name(&self) -> &'static str;

    /// The error bound this codec will use for `ts`: `None` for lossless
    /// codecs (exact reproduction required), `Some(ε)` for lossy ones
    /// (|x − x̂| ≤ ε + 1 required). Lossy codecs derive ε from the data so
    /// one policy covers shapes whose ranges differ by fifteen orders of
    /// magnitude.
    fn epsilon_for(&self, ts: &TimeSeries) -> Option<u64>;

    /// Compresses `ts` into an archive.
    fn compress(&self, ts: &TimeSeries) -> Box<dyn CodecArchive>;
}

/// The data-dependent ε every lossy contender uses: 0.5 % of the series'
/// value range, floored at 2 so flat shapes still exercise the lossy path.
pub fn lossy_eps(ts: &TimeSeries) -> u64 {
    (ts.delta() / 200).max(2)
}

// ---------------------------------------------------------------------------
// Archives
// ---------------------------------------------------------------------------

/// Adapter: anything implementing the workspace's [`CompressedSeries`] is a
/// [`CodecArchive`] (covers every lossless baseline, owned NeaTS flavours
/// and the streaming `ChunkedNeaTS`).
struct SeriesArchive(Box<dyn CompressedSeries>);

impl CodecArchive for SeriesArchive {
    fn len(&self) -> usize {
        self.0.len()
    }
    fn size_in_bytes(&self) -> usize {
        self.0.size_in_bytes()
    }
    fn random_access(&self, k: usize) -> i64 {
        self.0.get(k)
    }
    fn range_scan(&self, start: usize, count: usize, out: &mut Vec<i64>) {
        self.0.scan_range(start, count, out);
    }
    fn decompress(&self) -> Vec<i64> {
        self.0.decompress()
    }
}

/// The zero-copy read path: a serialised v2 frame held on the heap with an
/// [`ArchiveView`] borrowing it — the deployment shape where archives are
/// mapped read-only and queried in place. Opening per query would charge
/// CRC validation to every random access, so the view is opened once and
/// kept alongside its buffer.
///
/// This is the same self-referential pattern as the store's `SegmentView`
/// (see `crates/store/src/segment.rs`): the view is transmuted to `'static`
/// internally and never exposed at that lifetime — every accessor reborrows
/// at `&self`.
struct ViewArchive {
    /// Owns the frame bytes the view borrows. `Box<[u8]>` heap storage is
    /// stable across moves and never mutated; declared before `view` only
    /// by convention — `ArchiveView` has no `Drop`, so field order is not
    /// load-bearing.
    _bytes: Box<[u8]>,
    /// SAFETY invariant: borrows from `_bytes`' heap allocation, which
    /// lives exactly as long as this struct. Only reborrowed at `&self`.
    view: ArchiveView<'static>,
}

impl ViewArchive {
    fn new(bytes: Vec<u8>) -> Self {
        let bytes = bytes.into_boxed_slice();
        let view = ArchiveView::open(&bytes).expect("just-serialised frame reopens");
        // SAFETY: `view` borrows `bytes`' heap allocation, which this struct
        // owns and keeps alive for its whole lifetime; the `'static` view is
        // never exposed, only reborrowed at `&self` by the methods below.
        let view: ArchiveView<'static> = unsafe { std::mem::transmute(view) };
        Self { _bytes: bytes, view }
    }
}

impl CodecArchive for ViewArchive {
    fn len(&self) -> usize {
        self.view.len()
    }
    fn size_in_bytes(&self) -> usize {
        // The whole frame is the deployable artifact: header, payload, CRC.
        self._bytes.len()
    }
    fn random_access(&self, k: usize) -> i64 {
        self.view.at(k)
    }
    fn range_scan(&self, start: usize, count: usize, out: &mut Vec<i64>) {
        self.view.range(start..start + count, out);
    }
    fn decompress(&self) -> Vec<i64> {
        self.view.materialize()
    }
}

/// Owned lossy archives (NeaTS-L, PLA, AA) share one adapter shape.
macro_rules! lossy_archive {
    ($name:ident, $inner:ty) => {
        struct $name($inner);
        impl CodecArchive for $name {
            fn len(&self) -> usize {
                self.0.len()
            }
            fn size_in_bytes(&self) -> usize {
                self.0.size_in_bytes()
            }
            fn random_access(&self, k: usize) -> i64 {
                self.0.approximate(k)
            }
            fn range_scan(&self, start: usize, count: usize, out: &mut Vec<i64>) {
                for k in start..start + count {
                    out.push(self.0.approximate(k));
                }
            }
            fn decompress(&self) -> Vec<i64> {
                self.0.reconstruct()
            }
        }
    };
}

lossy_archive!(NeaTSLossyArchive, NeaTSLossy);
lossy_archive!(PlaArchive, Pla);
lossy_archive!(AaArchive, AdaptiveApprox);

// ---------------------------------------------------------------------------
// Codecs
// ---------------------------------------------------------------------------

/// Any [`AnyCompressor`] (the ten lossless baselines) as a [`Codec`].
struct Baseline(Box<dyn AnyCompressor>);

impl Codec for Baseline {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn epsilon_for(&self, _ts: &TimeSeries) -> Option<u64> {
        None
    }
    fn compress(&self, ts: &TimeSeries) -> Box<dyn CodecArchive> {
        Box::new(SeriesArchive(self.0.compress_boxed(ts)))
    }
}

/// How a NeaTS archive is held between compression and querying.
enum NeaTSAccess {
    /// In the builder's owned structures (the in-memory deployment).
    Owned,
    /// Serialised to a frame and queried through the zero-copy
    /// [`ArchiveView`] (the mapped-file deployment).
    View,
}

/// A lossless NeaTS flavour (NeaTS / LeaTS / SNeaTS, owned or view-backed).
struct NeaTSCodec {
    name: &'static str,
    builder: NeaTSBuilder,
    access: NeaTSAccess,
}

impl Codec for NeaTSCodec {
    fn name(&self) -> &'static str {
        self.name
    }
    fn epsilon_for(&self, _ts: &TimeSeries) -> Option<u64> {
        None
    }
    fn compress(&self, ts: &TimeSeries) -> Box<dyn CodecArchive> {
        let compressed = self.builder.build(ts);
        match self.access {
            NeaTSAccess::Owned => Box::new(SeriesArchive(Box::new(compressed))),
            NeaTSAccess::View => Box::new(ViewArchive::new(compressed.to_bytes())),
        }
    }
}

/// The lossy NeaTS flavour (owned or view-backed).
struct NeaTSLossyCodec {
    name: &'static str,
    access: NeaTSAccess,
}

impl Codec for NeaTSLossyCodec {
    fn name(&self) -> &'static str {
        self.name
    }
    fn epsilon_for(&self, ts: &TimeSeries) -> Option<u64> {
        Some(lossy_eps(ts))
    }
    fn compress(&self, ts: &TimeSeries) -> Box<dyn CodecArchive> {
        let lossy = NeaTS::builder().build_lossy(ts, lossy_eps(ts));
        match self.access {
            NeaTSAccess::Owned => Box::new(NeaTSLossyArchive(lossy)),
            NeaTSAccess::View => Box::new(ViewArchive::new(lossy.to_bytes())),
        }
    }
}

/// SNeaTS streaming ingestion: values pushed through [`NeaTSWriter`] in
/// batches, finished into a [`ChunkedNeaTS`]. Exercises the chunked build
/// path rather than the batch partitioner.
struct StreamingCodec;

impl Codec for StreamingCodec {
    fn name(&self) -> &'static str {
        "NeaTS-stream"
    }
    fn epsilon_for(&self, _ts: &TimeSeries) -> Option<u64> {
        None
    }
    fn compress(&self, ts: &TimeSeries) -> Box<dyn CodecArchive> {
        let mut w = NeaTSWriter::with_defaults();
        w.extend(ts.values().iter().copied());
        Box::new(SeriesArchive(Box::new(w.finish())))
    }
}

/// The two lossy baselines.
struct PlaCodec;

impl Codec for PlaCodec {
    fn name(&self) -> &'static str {
        "PLA"
    }
    fn epsilon_for(&self, ts: &TimeSeries) -> Option<u64> {
        Some(lossy_eps(ts))
    }
    fn compress(&self, ts: &TimeSeries) -> Box<dyn CodecArchive> {
        Box::new(PlaArchive(Pla::compress(ts, lossy_eps(ts))))
    }
}

struct AaCodec;

impl Codec for AaCodec {
    fn name(&self) -> &'static str {
        "AA"
    }
    fn epsilon_for(&self, ts: &TimeSeries) -> Option<u64> {
        Some(lossy_eps(ts))
    }
    fn compress(&self, ts: &TimeSeries) -> Box<dyn CodecArchive> {
        Box::new(AaArchive(AdaptiveApprox::compress(ts, lossy_eps(ts))))
    }
}

/// Every contender of the matrix: seven NeaTS flavours and twelve
/// baselines, each a row of `BENCHMARKS.md` and of the conformance sweep.
pub fn all_codecs() -> Vec<Box<dyn Codec>> {
    let mut v: Vec<Box<dyn Codec>> = vec![
        // --- NeaTS flavours -------------------------------------------------
        Box::new(NeaTSCodec { name: "NeaTS", builder: NeaTS::builder(), access: NeaTSAccess::Owned }),
        Box::new(NeaTSCodec {
            name: "NeaTS (view)",
            builder: NeaTS::builder(),
            access: NeaTSAccess::View,
        }),
        Box::new(NeaTSCodec { name: "LeaTS", builder: NeaTS::leats(), access: NeaTSAccess::Owned }),
        Box::new(NeaTSCodec { name: "SNeaTS", builder: NeaTS::sneats(), access: NeaTSAccess::Owned }),
        Box::new(StreamingCodec),
        Box::new(NeaTSLossyCodec { name: "NeaTS-L", access: NeaTSAccess::Owned }),
        Box::new(NeaTSLossyCodec { name: "NeaTS-L (view)", access: NeaTSAccess::View }),
        // --- lossy baselines ------------------------------------------------
        Box::new(PlaCodec),
        Box::new(AaCodec),
    ];
    // --- lossless baselines: the paper's nine plus Elf ----------------------
    for comp in lossless_baselines::paper_competitors() {
        v.push(Box::new(Baseline(comp)));
    }
    v.push(Box::new(Baseline(Box::new(Blockwise::new(Elf)))));
    v
}

/// Names of the lossless baselines, for asserting roster completeness.
pub fn baseline_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> =
        lossless_baselines::paper_competitors().iter().map(|c| c.name()).collect();
    names.push(Blockwise::new(Elf).name());
    names
}

// Keep the unused-import lint honest: the concrete baseline types are named
// here so rustdoc links resolve and the roster above stays greppable.
#[allow(dead_code)]
fn _roster_types() -> (Alp, Chimp, Chimp128, Dac, EntropyLz, FastLz, Gorilla, Leco, TsXor) {
    (Alp, Chimp, Chimp128, Dac::default(), EntropyLz::default(), FastLz, Gorilla, Leco, TsXor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::shapes::Shape;

    #[test]
    fn roster_covers_neats_flavours_and_twelve_baselines() {
        let codecs = all_codecs();
        let names: Vec<&str> = codecs.iter().map(|c| c.name()).collect();
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len(), "duplicate codec names: {names:?}");

        let neats: Vec<&&str> = names.iter().filter(|n| n.contains("NeaTS") || n.contains("eaTS")).collect();
        assert!(neats.len() >= 6, "NeaTS flavours missing: {names:?}");
        // Twelve baselines: ten lossless + PLA + AA.
        let baselines = names.len() - neats.len();
        assert!(baselines >= 12, "only {baselines} baselines in {names:?}");
        for required in baseline_names() {
            assert!(names.contains(&required), "{required} missing from roster");
        }
    }

    #[test]
    fn view_archive_matches_owned_access() {
        let ts = Shape::RegimeSwitch.generate(4000);
        let compressed = NeaTS::builder().build(&ts);
        let owned: Vec<i64> = (0..ts.len()).map(|k| compressed.get(k)).collect();
        let view = ViewArchive::new(compressed.to_bytes());
        assert_eq!(view.len(), ts.len());
        let via_view: Vec<i64> = (0..ts.len()).map(|k| view.random_access(k)).collect();
        assert_eq!(owned, via_view);
        assert_eq!(view.decompress(), ts.values());
        let mut mid = Vec::new();
        view.range_scan(1000, 500, &mut mid);
        assert_eq!(mid, &ts.values()[1000..1500]);
    }

    #[test]
    fn lossy_eps_floors_and_scales() {
        let flat = Shape::Constant.generate(100);
        assert_eq!(lossy_eps(&flat), 2);
        let wild = Shape::Extreme.generate(5000);
        assert!(lossy_eps(&wild) > 1 << 40);
    }
}
