//! The full benchmark matrix: every [`Codec`] × every [`Shape`], with
//! conformance checked inline — a cell that produces wrong answers never
//! makes it into the committed tables.
//!
//! Output is two artifacts from one run: `BENCH_all.json` (machine-readable
//! records, schema-versioned so CI can detect drift) and `BENCHMARKS.md`
//! (the human-diffable competitive table linked from the README).

use super::codecs::{all_codecs, Codec};
use super::shapes::Shape;
use crate::{geomean, query_indices};
use crate::json::Json;
use std::time::Instant;
use timeseries::TimeSeries;

/// Version of the `BENCH_all.json` record layout. Bump when record keys
/// change; the CI smoke compares a fresh small-`n` run against the
/// committed artifact and fails on mismatch.
pub const SCHEMA_VERSION: u64 = 1;

/// The exact key set of one record in `BENCH_all.json`, in emission order.
/// The schema gate checks committed records against this list.
pub const RECORD_KEYS: [&str; 10] = [
    "codec",
    "shape",
    "n",
    "eps",
    "size_bytes",
    "ratio_pct",
    "compress_ms",
    "ra_p50_ns",
    "ra_p99_ns",
    "scan_mvps",
];

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct MatrixConfig {
    /// Points per generated series.
    pub n: usize,
    /// Timed random-access queries per cell.
    pub queries: usize,
    /// Length of each timed range scan.
    pub scan_len: usize,
    /// Number of timed range scans per cell.
    pub scans: usize,
    /// Generator seed (`0` = each shape's default stream).
    pub seed: u64,
    /// Optional case-insensitive substring filters on codec / shape names.
    pub codec_filter: Option<String>,
    /// See `codec_filter`.
    pub shape_filter: Option<String>,
}

impl MatrixConfig {
    /// Reads the standard bench env knobs (`NEATS_BENCH_N`,
    /// `NEATS_BENCH_QUERIES`, `NEATS_BENCH_CODECS`, `NEATS_BENCH_SHAPES`).
    pub fn from_env() -> Self {
        MatrixConfig {
            n: crate::bench_n(),
            queries: crate::bench_queries(),
            scan_len: crate::env_usize("NEATS_BENCH_SCAN_LEN", 1000),
            scans: crate::env_usize("NEATS_BENCH_SCANS", 50),
            seed: crate::env_usize("NEATS_BENCH_SEED", 0) as u64,
            codec_filter: std::env::var("NEATS_BENCH_CODECS").ok().filter(|s| !s.is_empty()),
            shape_filter: std::env::var("NEATS_BENCH_SHAPES").ok().filter(|s| !s.is_empty()),
        }
    }
}

/// One measured (codec, shape) cell. Every cell in a report has already
/// passed its conformance check.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Codec display name.
    pub codec: String,
    /// Shape display name.
    pub shape: String,
    /// Points in the series.
    pub n: usize,
    /// The error bound used (`None` = lossless).
    pub eps: Option<u64>,
    /// Compressed size, bytes (all access structures included).
    pub size_bytes: usize,
    /// Compressed size as % of the raw 64-bit representation.
    pub ratio_pct: f64,
    /// Wall-clock compression time, milliseconds.
    pub compress_ms: f64,
    /// Median single-value random-access latency, nanoseconds.
    pub ra_p50_ns: f64,
    /// 99th-percentile single-value random-access latency, nanoseconds.
    pub ra_p99_ns: f64,
    /// Range-scan throughput, million values per second.
    pub scan_mvps: f64,
}

/// A conformance violation: which cell, which read path, and what differed.
#[derive(Debug)]
pub struct ConformanceError {
    /// Codec display name.
    pub codec: String,
    /// Shape display name.
    pub shape: String,
    /// What went wrong, with the first offending index and values.
    pub detail: String,
}

impl std::fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} on {}: {}", self.codec, self.shape, self.detail)
    }
}

impl std::error::Error for ConformanceError {}

/// The completed sweep.
#[derive(Debug)]
pub struct MatrixReport {
    /// Configuration the sweep ran with.
    pub config: MatrixConfig,
    /// One record per (codec, shape) cell, in sweep order.
    pub cells: Vec<Cell>,
    /// Shape names actually swept, in order.
    pub shapes: Vec<String>,
    /// Codec names actually swept, in order.
    pub codecs: Vec<String>,
}

/// Checks one archive against the original series on all three read paths.
/// `eps = None` demands exact equality; `Some(ε)` demands `|x − x̂| ≤ ε + 1`
/// and *exact* agreement between random access, range scans and
/// decompression (the approximation must be consistent with itself).
pub fn check_conformance(
    codec: &str,
    shape: &str,
    ts: &TimeSeries,
    archive: &dyn super::codecs::CodecArchive,
    eps: Option<u64>,
) -> Result<(), ConformanceError> {
    let fail = |detail: String| {
        Err(ConformanceError { codec: codec.to_string(), shape: shape.to_string(), detail })
    };
    if archive.len() != ts.len() {
        return fail(format!("len {} != original {}", archive.len(), ts.len()));
    }
    let rec = archive.decompress();
    if rec.len() != ts.len() {
        return fail(format!("decompress len {} != {}", rec.len(), ts.len()));
    }
    match eps {
        None => {
            if let Some(k) = (0..ts.len()).find(|&k| rec[k] != ts.values()[k]) {
                return fail(format!(
                    "lossless decompress mismatch at {k}: {} != {}",
                    rec[k],
                    ts.values()[k]
                ));
            }
        }
        Some(eps) => {
            let bound = eps + 1;
            if let Some(k) = (0..ts.len()).find(|&k| rec[k].abs_diff(ts.values()[k]) > bound) {
                return fail(format!(
                    "lossy error {} > ε+1 = {bound} at {k} ({} vs {})",
                    rec[k].abs_diff(ts.values()[k]),
                    rec[k],
                    ts.values()[k]
                ));
            }
        }
    }
    // Random access must agree with full materialisation exactly, lossy or
    // not: the three read paths must tell one story.
    for k in query_indices(ts.len(), ts.len().min(96)) {
        let got = archive.random_access(k);
        if got != rec[k] {
            return fail(format!("random_access({k}) = {got} but decompress[{k}] = {}", rec[k]));
        }
    }
    // Range scans, including both edges and interior windows.
    let n = ts.len();
    let mut windows = vec![(0usize, n.min(64)), (n - n.min(64), n.min(64)), (0, 0)];
    for (i, start) in query_indices(n, 8).into_iter().enumerate() {
        windows.push((start, (i * 37 + 1).min(n - start)));
    }
    for (start, count) in windows {
        let mut got = Vec::new();
        archive.range_scan(start, count, &mut got);
        if got != rec[start..start + count] {
            return fail(format!("range_scan({start}, {count}) disagrees with decompress"));
        }
    }
    Ok(())
}

/// Runs the full sweep. Returns the report, or the first conformance
/// violation (nothing is reported from a non-conforming sweep).
pub fn run_matrix(config: MatrixConfig) -> Result<MatrixReport, ConformanceError> {
    run_matrix_with(config, |_| {})
}

/// [`run_matrix`] with a progress callback invoked once per completed cell
/// (the CLI prints a line; tests pass a no-op).
pub fn run_matrix_with(
    config: MatrixConfig,
    mut progress: impl FnMut(&Cell),
) -> Result<MatrixReport, ConformanceError> {
    let keep = |filter: &Option<String>, name: &str| match filter {
        Some(f) => f
            .split(',')
            .any(|part| name.to_ascii_lowercase().contains(&part.trim().to_ascii_lowercase())),
        None => true,
    };
    let shapes: Vec<Shape> =
        Shape::all().into_iter().filter(|s| keep(&config.shape_filter, s.name())).collect();
    let codecs: Vec<Box<dyn Codec>> =
        all_codecs().into_iter().filter(|c| keep(&config.codec_filter, c.name())).collect();

    let mut cells = Vec::with_capacity(shapes.len() * codecs.len());
    for shape in &shapes {
        let ts = shape.generate_seeded(config.n, config.seed);
        for codec in &codecs {
            let cell = measure_cell(codec.as_ref(), *shape, &ts, &config)?;
            progress(&cell);
            cells.push(cell);
        }
    }
    Ok(MatrixReport {
        config,
        cells,
        shapes: shapes.iter().map(|s| s.name().to_string()).collect(),
        codecs: codecs.iter().map(|c| c.name().to_string()).collect(),
    })
}

fn measure_cell(
    codec: &dyn Codec,
    shape: Shape,
    ts: &TimeSeries,
    config: &MatrixConfig,
) -> Result<Cell, ConformanceError> {
    let eps = codec.epsilon_for(ts);
    let t0 = Instant::now();
    let archive = codec.compress(ts);
    let compress_ms = t0.elapsed().as_secs_f64() * 1e3;

    check_conformance(codec.name(), shape.name(), ts, archive.as_ref(), eps)?;

    // Per-query random-access latencies, for real p50/p99 rather than a
    // mean that hides tail behaviour.
    let idx = query_indices(ts.len(), config.queries.max(1));
    let mut lat_ns: Vec<f64> = Vec::with_capacity(idx.len());
    let mut acc = 0i64;
    for &k in &idx {
        let t0 = Instant::now();
        acc = acc.wrapping_add(archive.random_access(k));
        lat_ns.push(t0.elapsed().as_nanos() as f64);
    }
    std::hint::black_box(acc);
    lat_ns.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| lat_ns[((lat_ns.len() - 1) as f64 * p) as usize];

    // Range-scan throughput over deterministic interior windows.
    let scan_len = config.scan_len.min(ts.len());
    let starts = query_indices(ts.len() - scan_len + 1, config.scans.max(1));
    let mut out = Vec::with_capacity(scan_len);
    let mut scanned = 0usize;
    let t0 = Instant::now();
    for &s in &starts {
        out.clear();
        archive.range_scan(s, scan_len, &mut out);
        scanned += out.len();
        std::hint::black_box(&out);
    }
    let scan_mvps = scanned as f64 / t0.elapsed().as_secs_f64() / 1e6;

    let size_bytes = archive.size_in_bytes();
    Ok(Cell {
        codec: codec.name().to_string(),
        shape: shape.name().to_string(),
        n: ts.len(),
        eps,
        size_bytes,
        ratio_pct: 100.0 * size_bytes as f64 / ts.uncompressed_bytes() as f64,
        compress_ms,
        ra_p50_ns: pct(0.50),
        ra_p99_ns: pct(0.99),
        scan_mvps,
    })
}

impl MatrixReport {
    /// Renders the machine-readable artifact (`BENCH_all.json`).
    pub fn to_json(&self) -> Json {
        let records = self
            .cells
            .iter()
            .map(|c| {
                Json::obj(vec![
                    ("codec", Json::Str(c.codec.clone())),
                    ("shape", Json::Str(c.shape.clone())),
                    ("n", Json::Int(c.n as i64)),
                    ("eps", c.eps.map_or(Json::Null, |e| Json::Int(e as i64))),
                    ("size_bytes", Json::Int(c.size_bytes as i64)),
                    ("ratio_pct", Json::Num(c.ratio_pct)),
                    ("compress_ms", Json::Num(c.compress_ms)),
                    ("ra_p50_ns", Json::Num(c.ra_p50_ns)),
                    ("ra_p99_ns", Json::Num(c.ra_p99_ns)),
                    ("scan_mvps", Json::Num(c.scan_mvps)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::Int(SCHEMA_VERSION as i64)),
            ("bench", Json::Str("all".into())),
            ("n", Json::Int(self.config.n as i64)),
            ("queries", Json::Int(self.config.queries as i64)),
            ("scan_len", Json::Int(self.config.scan_len as i64)),
            ("scans", Json::Int(self.config.scans as i64)),
            ("seed", Json::Int(self.config.seed as i64)),
            ("shapes", Json::Arr(self.shapes.iter().map(|s| Json::Str(s.clone())).collect())),
            ("codecs", Json::Arr(self.codecs.iter().map(|c| Json::Str(c.clone())).collect())),
            ("records", Json::Arr(records)),
        ])
    }

    /// Cells of one codec, in shape order.
    fn rows_of(&self, codec: &str) -> Vec<&Cell> {
        self.cells.iter().filter(|c| c.codec == codec).collect()
    }

    /// Renders the human-diffable competitive table (`BENCHMARKS.md`).
    pub fn to_markdown(&self) -> String {
        let mut md = String::new();
        md.push_str("# Benchmarks — the full codec × shape matrix\n\n");
        md.push_str(&format!(
            "Generated by `neats bench all` (n = {}, {} random-access queries and {} × {}-value \
             scans per cell, seed {}). Every cell passed the conformance check before being \
             measured: lossless codecs reproduce the input exactly, lossy codecs stay within \
             ε + 1, and random access / range scans agree with full decompression on every \
             codec. Regenerate with `cargo run --release -p neats-cli -- bench all`.\n\n",
            self.config.n,
            self.config.queries,
            self.config.scans,
            self.config.scan_len,
            self.config.seed
        ));
        md.push_str(
            "Shapes: the paper's 16 evaluation datasets plus 8 adversarial generators \
             (constant, spikes, regime switches, NaN-sentinel, extreme magnitudes, denormal \
             noise floor, sawtooth, white noise). Lossy codecs (ε column ≠ —) use \
             ε = max(Δ/200, 2), 0.5 % of each shape's value range.\n\n",
        );

        // Summary: one row per codec, aggregated across all shapes.
        md.push_str("## Summary (aggregated over all shapes)\n\n");
        md.push_str(
            "| codec | mode | ratio % (geomean) | RA p50 ns (median) | RA p99 ns (median) | \
             scan Mv/s (geomean) | compress ms (median) |\n",
        );
        md.push_str("|---|---|---:|---:|---:|---:|---:|\n");
        for codec in &self.codecs {
            let rows = self.rows_of(codec);
            let ratios: Vec<f64> = rows.iter().map(|c| c.ratio_pct).collect();
            let scans: Vec<f64> = rows.iter().map(|c| c.scan_mvps).collect();
            let mode = if rows.iter().any(|c| c.eps.is_some()) { "lossy" } else { "lossless" };
            md.push_str(&format!(
                "| {} | {} | {:.2} | {:.0} | {:.0} | {:.1} | {:.2} |\n",
                codec,
                mode,
                geomean(&ratios),
                median(rows.iter().map(|c| c.ra_p50_ns)),
                median(rows.iter().map(|c| c.ra_p99_ns)),
                geomean(&scans),
                median(rows.iter().map(|c| c.compress_ms)),
            ));
        }

        // Per-shape compression-ratio matrices, paper and adversarial.
        let paper: Vec<&String> =
            self.shapes.iter().filter(|s| Shape::by_name(s).is_some_and(is_paper)).collect();
        let adversarial: Vec<&String> =
            self.shapes.iter().filter(|s| !Shape::by_name(s).is_some_and(is_paper)).collect();
        for (title, group) in
            [("Compression ratio %, paper datasets", &paper), ("Compression ratio %, adversarial shapes", &adversarial)]
        {
            if group.is_empty() {
                continue;
            }
            for chunk in group.chunks(8) {
                md.push_str(&format!("\n## {title}\n\n| codec |"));
                for s in chunk {
                    md.push_str(&format!(" {s} |"));
                }
                md.push_str("\n|---|");
                md.push_str(&"---:|".repeat(chunk.len()));
                md.push('\n');
                for codec in &self.codecs {
                    md.push_str(&format!("| {codec} |"));
                    for shape in chunk {
                        match self.cells.iter().find(|c| &c.codec == codec && c.shape == ***shape)
                        {
                            Some(c) => md.push_str(&format!(" {:.2} |", c.ratio_pct)),
                            None => md.push_str(" — |"),
                        }
                    }
                    md.push('\n');
                }
            }
        }
        md
    }
}

fn is_paper(s: Shape) -> bool {
    matches!(s, Shape::Paper(_))
}

/// Textual schema gate over a committed `BENCH_all.json`: the hand-rolled
/// JSON emitter has no parser, but drift detection only needs to know that
/// the committed file declares the current [`SCHEMA_VERSION`], carries every
/// [`RECORD_KEYS`] entry, and covers every codec and shape of the fresh
/// sweep's rosters. Shared by the `bench_all` binary and `neats bench all`.
pub fn check_committed(path: &str, fresh: &MatrixReport) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if !text.contains(&format!("\"schema\": {SCHEMA_VERSION}")) {
        return Err(format!("{path} does not declare schema version {SCHEMA_VERSION}"));
    }
    for key in RECORD_KEYS {
        if !text.contains(&format!("\"{key}\"")) {
            return Err(format!("{path} is missing record key \"{key}\""));
        }
    }
    for codec in &fresh.codecs {
        if !text.contains(&format!("\"{codec}\"")) {
            return Err(format!("{path} does not cover codec \"{codec}\""));
        }
    }
    for shape in &fresh.shapes {
        if !text.contains(&format!("\"{shape}\"")) {
            return Err(format!("{path} does not cover shape \"{shape}\""));
        }
    }
    Ok(())
}

fn median(values: impl Iterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = values.collect();
    if v.is_empty() {
        return f64::NAN;
    }
    v.sort_by(|a, b| a.total_cmp(b));
    v[v.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> MatrixConfig {
        MatrixConfig {
            n: 600,
            queries: 50,
            scan_len: 64,
            scans: 4,
            seed: 0,
            codec_filter: None,
            shape_filter: None,
        }
    }

    #[test]
    fn small_matrix_runs_and_renders() {
        let report = run_matrix(MatrixConfig {
            codec_filter: Some("NeaTS,Gorilla,PLA".into()),
            shape_filter: Some("constant,sawtooth".into()),
            ..tiny_config()
        })
        .expect("conformance");
        assert_eq!(report.shapes, vec!["constant", "sawtooth"]);
        assert!(report.codecs.len() >= 6, "{:?}", report.codecs); // NeaTS flavours + Gorilla + PLA
        assert_eq!(report.cells.len(), report.shapes.len() * report.codecs.len());

        let json = report.to_json().render();
        for key in RECORD_KEYS {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key}");
        }
        assert!(json.contains("\"schema\": 1"));

        let md = report.to_markdown();
        assert!(md.contains("| codec | mode |"), "{md}");
        assert!(md.contains("Gorilla"), "{md}");
        assert!(md.contains("adversarial"), "{md}");
    }

    #[test]
    fn conformance_rejects_a_lying_archive() {
        struct Lying(Vec<i64>);
        impl crate::suite::codecs::CodecArchive for Lying {
            fn len(&self) -> usize {
                self.0.len()
            }
            fn size_in_bytes(&self) -> usize {
                8
            }
            fn random_access(&self, k: usize) -> i64 {
                self.0[k] + 1 // disagrees with decompress
            }
            fn range_scan(&self, start: usize, count: usize, out: &mut Vec<i64>) {
                out.extend_from_slice(&self.0[start..start + count]);
            }
        }
        let ts = Shape::Sawtooth.generate(200);
        let archive = Lying(ts.values().to_vec());
        let err = check_conformance("lying", "sawtooth", &ts, &archive, None).unwrap_err();
        assert!(err.detail.contains("random_access"), "{err}");
    }

    #[test]
    fn record_keys_match_emitted_records() {
        let report = run_matrix(MatrixConfig {
            codec_filter: Some("Gorilla".into()),
            shape_filter: Some("constant".into()),
            ..tiny_config()
        })
        .unwrap();
        if let Json::Obj(fields) = report.to_json() {
            let records = fields.iter().find(|(k, _)| k == "records").unwrap();
            if let (_, Json::Arr(recs)) = records {
                if let Json::Obj(rec) = &recs[0] {
                    let keys: Vec<&str> = rec.iter().map(|(k, _)| k.as_str()).collect();
                    assert_eq!(keys, RECORD_KEYS);
                    return;
                }
            }
        }
        panic!("unexpected json shape");
    }
}
