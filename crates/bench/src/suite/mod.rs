//! The unified codec suite behind `neats bench all`.
//!
//! One [`Codec`](codecs::Codec) trait covers NeaTS (lossless and lossy,
//! owned and zero-copy view) and every baseline compressor in the
//! evaluation; [`shapes::Shape`] widens the dataset matrix with adversarial
//! inputs; [`matrix`] sweeps the full cross-product, checks conformance
//! inline, and renders the committed `BENCH_all.json` / `BENCHMARKS.md`
//! artifacts.

pub mod codecs;
pub mod matrix;
pub mod shapes;

pub use codecs::{all_codecs, Codec, CodecArchive};
pub use matrix::{run_matrix, MatrixConfig, MatrixReport};
pub use shapes::Shape;
