//! Fig. 2: the trade-off between compression ratio and compression speed of
//! the lossless compressors (including LeaTS and SNeaTS), averaged over the
//! 16 datasets. Prints the scatter points of the figure.

use bench::{all_datasets, bench_n, bench_queries, fig2_roster, geomean, measure};

fn main() {
    let n = bench_n();
    println!("Fig. 2 reproduction — ratio vs compression speed, n = {n} per dataset");
    let datasets = all_datasets(n);
    let roster = fig2_roster();

    let mut points = Vec::new();
    for comp in &roster {
        eprintln!("measuring {} …", comp.name());
        let mut ratios = Vec::new();
        let mut speeds = Vec::new();
        for (_, ts) in &datasets {
            let m = measure(comp.as_ref(), ts, bench_queries().min(1000));
            ratios.push(m.ratio_pct);
            speeds.push(m.compress_mbs);
        }
        points.push((
            comp.name(),
            ratios.iter().sum::<f64>() / ratios.len() as f64,
            geomean(&speeds),
        ));
    }

    println!("\n{:<12} {:>12} {:>16}", "compressor", "ratio (%)", "comp speed MB/s");
    for (name, ratio, speed) in &points {
        println!("{name:<12} {ratio:>12.2} {speed:>16.2}");
    }

    // §IV-C1 variant claims.
    let get = |n: &str| points.iter().find(|p| p.0 == n).expect("roster member");
    let (_, neats_r, neats_s) = *get("NeaTS");
    let (_, leats_r, leats_s) = *get("LeaTS");
    let (_, sneats_r, sneats_s) = *get("SNeaTS");
    println!(
        "\nLeaTS: {:.2}x compression speed of NeaTS, ratio {:+.2}% (paper: 5.22x, +0.89%)",
        leats_s / neats_s,
        100.0 * (leats_r - neats_r) / neats_r
    );
    println!(
        "SNeaTS: {:.2}x compression speed of NeaTS, ratio {:+.2}% (paper: 12.86x, +8.18%)",
        sneats_s / neats_s,
        100.0 * (sneats_r - neats_r) / neats_r
    );
}
