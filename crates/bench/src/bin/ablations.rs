//! Size/quality ablations for the design decisions in DESIGN.md (the
//! criterion benches measure their *time*; this binary measures their
//! *compression effect*):
//!
//! * D1 — function pool (linear / paper default / all 11 kinds);
//! * D2 — optimal DP partitioning vs greedy longest-fragment;
//! * D3 — per-fragment ε choice vs single global ε;
//! * D4 — SNeaTS sample fraction and top-k;
//! * D5 — Elias-Fano vs bitvector rank structure (space and RA speed).

use bench::{all_datasets, bench_n, query_indices};
use neats_core::fit::greedy_partition;
use neats_core::{Kind, ModelSelection, NeaTS, NeaTSCompressed, RankMode};
use std::time::Instant;
use timeseries::{CompressedSeries, TimeSeries};

fn ratio(c: &NeaTSCompressed, ts: &TimeSeries) -> f64 {
    100.0 * c.size_in_bytes() as f64 / ts.uncompressed_bytes() as f64
}

fn main() {
    let n = (bench_n() / 4).max(1 << 14);
    let datasets = all_datasets(n);
    println!("Design ablations, n = {n} per dataset (averages over 16 datasets)\n");

    // D1: function pool.
    for (label, kinds) in [
        ("D1 linear-only", vec![Kind::Linear]),
        ("D1 paper-default", Kind::NEATS_DEFAULT.to_vec()),
        ("D1 all-11-kinds", Kind::ALL.to_vec()),
    ] {
        let avg: f64 = datasets
            .iter()
            .map(|(_, ts)| ratio(&NeaTS::builder().kinds(&kinds).build(ts), ts))
            .sum::<f64>()
            / datasets.len() as f64;
        println!("{label:<22} avg ratio {avg:6.2}%");
    }

    // D2: optimal DP vs greedy per-kind partition (same single ε, linear).
    println!();
    let mut dp_sum = 0.0;
    let mut greedy_sum = 0.0;
    for (_, ts) in &datasets {
        let eps = (ts.delta() / 512).max(2);
        let dp = NeaTS::builder().kinds(&[Kind::Linear]).epsilons(&[eps]).build(ts);
        dp_sum += ratio(&dp, ts);
        // Greedy: Corollary 1 partition encoded through the same layout.
        let frags = greedy_partition(ts.values(), Kind::Linear, eps, 0);
        let part = neats_core::partition::Partition {
            epsilons: vec![eps; frags.len()],
            cost_bits: 0,
            fragments: frags,
        };
        let g = NeaTSCompressed::encode(ts.values(), &part, 0, RankMode::EliasFano);
        assert_eq!(g.decompress(), ts.values());
        greedy_sum += ratio(&g, ts);
    }
    println!(
        "D2 dp-partition        avg ratio {:6.2}%   (greedy longest-fragment: {:6.2}%)",
        dp_sum / datasets.len() as f64,
        greedy_sum / datasets.len() as f64
    );

    // D3: ε choice.
    println!();
    for (label, cfg) in [
        ("D3 single-eps-8", Some(vec![8u64])),
        ("D3 single-eps-64", Some(vec![64u64])),
        ("D3 paper-eps-set", None),
    ] {
        let avg: f64 = datasets
            .iter()
            .map(|(_, ts)| {
                let b = NeaTS::builder();
                let b = match &cfg {
                    Some(e) => b.epsilons(e),
                    None => b,
                };
                ratio(&b.build(ts), ts)
            })
            .sum::<f64>()
            / datasets.len() as f64;
        println!("{label:<22} avg ratio {avg:6.2}%");
    }

    // D4: model selection policies.
    println!();
    for (label, policy) in [
        ("D4 sample 5% top-3", ModelSelection { sample_fraction: 0.05, top_k: 3 }),
        ("D4 sample 10% top-5", ModelSelection { sample_fraction: 0.10, top_k: 5 }),
        ("D4 sample 25% top-8", ModelSelection { sample_fraction: 0.25, top_k: 8 }),
    ] {
        let mut r = 0.0;
        let mut t = 0.0;
        for (_, ts) in &datasets {
            let t0 = Instant::now();
            let c = NeaTS::builder().model_selection(policy).build(ts);
            t += t0.elapsed().as_secs_f64();
            r += ratio(&c, ts);
        }
        println!(
            "{label:<22} avg ratio {:6.2}%  total build {:5.1}s",
            r / datasets.len() as f64,
            t
        );
    }

    // D5: rank structure — space and random-access speed.
    println!();
    for (label, mode) in
        [("D5 elias-fano", RankMode::EliasFano), ("D5 bitvector", RankMode::BitVector)]
    {
        let mut r = 0.0;
        let mut ra = 0.0;
        for (_, ts) in &datasets {
            let c = NeaTS::builder().rank_mode(mode).build(ts);
            r += ratio(&c, ts);
            let idx = query_indices(ts.len(), 5000);
            let t0 = Instant::now();
            let mut acc = 0i64;
            for &k in &idx {
                acc = acc.wrapping_add(c.get(k));
            }
            std::hint::black_box(acc);
            ra += (idx.len() * 8) as f64 / t0.elapsed().as_secs_f64() / 1e6;
        }
        println!(
            "{label:<22} avg ratio {:6.2}%  avg RA {:6.1} MB/s",
            r / datasets.len() as f64,
            ra / datasets.len() as f64
        );
    }

    // Sanity footnote: how the DP's objective compares to what the greedy
    // heuristics in LeCo-style systems achieve is covered in table3.
    println!("\n(see table2/table3/fig2-4 binaries for the paper's headline tables)");
}
