//! Fig. 4: range-query throughput (queries/s) across range sizes
//! 10·2⁰ … 10·2¹⁶ for the best random-access/decompression compressors:
//! ALP, DAC, FastLZ (block-wise, the Lz4 stand-in), and NeaTS; averaged over
//! the largest datasets.

use bench::{bench_n, query_indices};
use lossless_baselines::{Alp, Blockwise, Dac, FastLz};
use neats_core::NeaTSCompressor;
use std::time::Instant;
use timeseries::{AnyCompressor, CompressedSeries, Dataset};

fn main() {
    // Fig. 4 needs ranges up to 10·2¹⁶ ≈ 655K points; scale the series so
    // the largest range fits, or clamp ranges to the series.
    let n = bench_n().max(1 << 17);
    let queries_per_size = 200usize;
    // "averaged over the 11 largest datasets" — we use a representative
    // subset to keep the run short; add more via NEATS_BENCH_N.
    let datasets =
        [Dataset::IrBioTemp, Dataset::StocksUsa, Dataset::Ecg, Dataset::WindDirection];
    println!("Fig. 4 reproduction — range query throughput, n = {n}, {queries_per_size} queries/size");

    let roster: Vec<Box<dyn AnyCompressor>> = vec![
        Box::new(Alp),
        Box::new(Dac::default()),
        Box::new(Blockwise::new(FastLz)),
        Box::new(NeaTSCompressor::neats()),
    ];

    // compressed[c][d]
    let series: Vec<_> = datasets.iter().map(|ds| ds.generate(n)).collect();
    let compressed: Vec<Vec<Box<dyn CompressedSeries>>> = roster
        .iter()
        .map(|c| {
            eprintln!("compressing with {} …", c.name());
            series.iter().map(|ts| c.compress_boxed(ts)).collect()
        })
        .collect();

    print!("\n{:<12}", "range size");
    for c in &roster {
        print!(" {:>12}", c.name());
    }
    println!("   (queries/s)");

    for exp in 0..=16usize {
        let range = 10usize << exp;
        if range >= n {
            break;
        }
        print!("{:<12}", range);
        for cs in &compressed {
            let mut total_q = 0usize;
            let mut total_t = 0.0f64;
            for c in cs {
                let starts = query_indices(c.len() - range, queries_per_size);
                let mut out = Vec::with_capacity(range);
                let t0 = Instant::now();
                for &s in &starts {
                    out.clear();
                    c.scan_range(s, range, &mut out);
                    std::hint::black_box(out.last());
                }
                total_t += t0.elapsed().as_secs_f64();
                total_q += starts.len();
            }
            print!(" {:>12.0}", total_q as f64 / total_t);
        }
        println!();
    }
    println!("\npaper shape: DAC fastest below ~40 points; NeaTS wins at ≥40 and dominates large ranges.");
}
