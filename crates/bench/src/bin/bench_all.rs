//! `bench_all` — the unified codec × shape matrix behind `neats bench all`.
//!
//! Sweeps every [`bench::suite::Codec`] (NeaTS lossless/lossy/owned/view/
//! streaming plus all twelve baselines) over every [`bench::suite::Shape`]
//! (the 16 paper datasets plus 8 adversarial generators), checks
//! conformance inline, and writes `BENCH_all.json` + `BENCHMARKS.md`.
//!
//! Knobs: `NEATS_BENCH_N`, `NEATS_BENCH_QUERIES`, `NEATS_BENCH_SCAN_LEN`,
//! `NEATS_BENCH_SCANS`, `NEATS_BENCH_SEED`, `NEATS_BENCH_CODECS` /
//! `NEATS_BENCH_SHAPES` (comma-separated substring filters),
//! `NEATS_BENCH_OUT` / `NEATS_BENCH_MD` (output paths), and
//! `NEATS_BENCH_CHECK=<committed.json>` — schema-drift gate: after the
//! sweep, verify the committed artifact still declares the current schema
//! version, record keys, and full codec/shape coverage (exit 1 on drift).

use bench::suite::matrix::{check_committed, run_matrix_with, MatrixConfig, SCHEMA_VERSION};

fn main() {
    let config = MatrixConfig::from_env();
    eprintln!(
        "bench all: n={} queries={} scans={}x{} seed={}",
        config.n, config.queries, config.scans, config.scan_len, config.seed
    );
    let report = match run_matrix_with(config, |cell| {
        eprintln!(
            "  {:<14} {:<14} ratio {:>7.2}%  ra p50 {:>7.0} ns  p99 {:>8.0} ns  scan {:>8.1} Mv/s",
            cell.shape, cell.codec, cell.ratio_pct, cell.ra_p50_ns, cell.ra_p99_ns, cell.scan_mvps
        );
    }) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("CONFORMANCE FAILURE: {e}");
            std::process::exit(1);
        }
    };

    let out = std::env::var("NEATS_BENCH_OUT").unwrap_or_else(|_| "BENCH_all.json".into());
    let md = std::env::var("NEATS_BENCH_MD").unwrap_or_else(|_| "BENCHMARKS.md".into());
    std::fs::write(&out, report.to_json().render()).expect("write json artifact");
    std::fs::write(&md, report.to_markdown()).expect("write markdown artifact");
    println!(
        "wrote {out} and {md}: {} cells ({} codecs x {} shapes), all conformant",
        report.cells.len(),
        report.codecs.len(),
        report.shapes.len()
    );

    if let Ok(committed) = std::env::var("NEATS_BENCH_CHECK") {
        match check_committed(&committed, &report) {
            Ok(()) => println!("schema check: {committed} matches schema v{SCHEMA_VERSION}"),
            Err(msg) => {
                eprintln!(
                    "SCHEMA DRIFT: {msg}\nRegenerate with `cargo run --release -p bench --bin \
                     bench_all` and commit the updated artifacts."
                );
                std::process::exit(1);
            }
        }
    }
}
