//! Pack-store baseline harness: open latency, point/range query throughput,
//! and the cache-hit effect of the multi-series store versus the per-file
//! single-archive serving path, written machine-readable to
//! `BENCH_store.json` (sibling of `BENCH_partition.json` /
//! `BENCH_access.json`).
//!
//! The per-file baseline is what a deployment without the store does: one
//! whole-series archive per series, each opened as its own
//! [`neats_core::ArchiveView`]. The store serves the same series from one
//! pack, segmented, through its sharded segment-view cache. The run
//! re-asserts on every sampled query that both paths answer identically, so
//! the numbers can never describe diverging read paths.
//!
//! Run with `cargo run --release -p bench --bin store_baseline`; scale with
//! `NEATS_BENCH_N` (points per series) / `NEATS_BENCH_QUERIES` /
//! `NEATS_BENCH_SERIES`, and redirect with `NEATS_BENCH_OUT`.

use bench::json::Json;
use bench::{bench_queries, env_usize, query_indices};
use neats_core::{ArchiveView, NeaTS};
use neats_store::{Store, StoreConfig, StoreOptions, StoreWriter};
use std::time::Instant;
use timeseries::Dataset;

/// Range length for the range-throughput measurement (clamped to half the
/// per-series point count so tiny smoke runs stay valid).
const RANGE_LEN: usize = 256;

fn main() {
    // Per-series points: a store pack holds many series, so the per-series
    // default is a quarter of the single-archive harnesses' 131072.
    let n = env_usize("NEATS_BENCH_N", 1 << 15);
    let series_count = env_usize("NEATS_BENCH_SERIES", 8);
    let queries = bench_queries();
    let out_path = std::env::var("NEATS_BENCH_OUT").unwrap_or_else(|_| "BENCH_store.json".into());
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let segment_points = env_usize("NEATS_BENCH_SEGMENT", 8192);
    println!(
        "store_baseline — {series_count} series × {n} points, segment {segment_points}, \
         {queries} queries, {cores} core(s)"
    );

    // --- Build: the same series go into one pack and into per-file archives.
    let names: Vec<String> = (0..series_count).map(|i| format!("s{i:02}")).collect();
    let mut data = Vec::new();
    for i in 0..series_count {
        let ds = Dataset::ALL[i % Dataset::ALL.len()];
        let ts = ds.generate(n);
        let stamps: Vec<u64> = (0..n as u64)
            .map(|k| 1_700_000_000 + k * 30 + (i as u64))
            .collect();
        data.push((stamps, ts.values().to_vec()));
    }
    let t0 = Instant::now();
    let mut w = StoreWriter::new(StoreConfig {
        segment_points,
        ..StoreConfig::default()
    });
    for (name, (stamps, values)) in names.iter().zip(&data) {
        w.ingest(name, stamps, values).expect("ingest");
    }
    let pack = w.finish().expect("finish pack");
    let build_s = t0.elapsed().as_secs_f64();
    let perfile: Vec<Vec<u8>> = data
        .iter()
        .map(|(_, values)| {
            NeaTS::compress(&timeseries::TimeSeries::from_values(values.clone())).to_bytes()
        })
        .collect();
    let perfile_bytes: usize = perfile.iter().map(Vec::len).sum();
    println!(
        "pack: {} bytes (built in {build_s:.1}s), per-file archives: {perfile_bytes} bytes",
        pack.len()
    );

    // --- Open latency: the store validates only the catalog up front; the
    // per-file path must open (checksum) every archive.
    let store_open_us = time_us(50, || Store::open(pack.clone()).expect("open store"));
    let perfile_open_us = time_us(10, || {
        perfile
            .iter()
            .map(|b| ArchiveView::open(b).expect("open archive").len())
            .sum::<usize>()
    });

    // --- Query plan: deterministic (series, index) pairs.
    let sidx = query_indices(series_count, queries);
    let pidx = query_indices(n, queries);

    // Correctness re-assertion on the sampled plan before timing anything.
    let store = Store::open(pack.clone()).expect("open store");
    let views: Vec<ArchiveView<'_>> = perfile
        .iter()
        .map(|b| ArchiveView::open(b).expect("open archive"))
        .collect();
    for (&s, &k) in sidx.iter().zip(&pidx).take(5_000) {
        assert_eq!(
            store.get(&names[s], k).expect("store get"),
            views[s].at(k),
            "store diverges from per-file archive at ({s}, {k})"
        );
    }

    // --- Point throughput: store with warm cache, store with caching
    // disabled (every query revalidates its segment), per-file views.
    let warm = Store::open(pack.clone()).expect("open store");
    for (&s, &k) in sidx.iter().zip(&pidx) {
        // Warm the cache with one pass so the timed pass measures hits.
        std::hint::black_box(warm.get(&names[s], k).expect("warm"));
    }
    let store_warm_mqs = throughput_mqs(queries, || {
        let mut acc = 0i64;
        for (&s, &k) in sidx.iter().zip(&pidx) {
            acc = acc.wrapping_add(warm.get(&names[s], k).expect("get"));
        }
        acc
    });
    let hit_rate = warm.cache_stats().hit_rate();

    let cold = Store::open_with(
        pack.clone(),
        StoreOptions {
            cache_capacity: 0,
            ..StoreOptions::default()
        },
    )
    .expect("open store");
    let store_cold_mqs = throughput_mqs(queries, || {
        let mut acc = 0i64;
        for (&s, &k) in sidx.iter().zip(&pidx) {
            acc = acc.wrapping_add(cold.get(&names[s], k).expect("get"));
        }
        acc
    });

    let perfile_mqs = throughput_mqs(queries, || {
        let mut acc = 0i64;
        for (&s, &k) in sidx.iter().zip(&pidx) {
            acc = acc.wrapping_add(views[s].at(k));
        }
        acc
    });

    // --- Range throughput (million values per second), stitched vs direct.
    let range_len = RANGE_LEN.min(n / 2).max(1);
    let range_queries = (queries / 20).max(1);
    let rs = query_indices(series_count, range_queries);
    let rk = query_indices(n - range_len + 1, range_queries);
    let mut buf = Vec::with_capacity(range_len);
    let store_range_mvs = throughput_mqs(range_queries * range_len, || {
        let mut acc = 0i64;
        for (&s, &k) in rs.iter().zip(&rk) {
            buf.clear();
            warm.range(&names[s], k..k + range_len, &mut buf)
                .expect("range");
            acc = acc.wrapping_add(buf.last().copied().unwrap_or(0));
        }
        acc
    });
    let mut buf2 = Vec::with_capacity(range_len);
    let perfile_range_mvs = throughput_mqs(range_queries * range_len, || {
        let mut acc = 0i64;
        for (&s, &k) in rs.iter().zip(&rk) {
            buf2.clear();
            views[s].range(k..k + range_len, &mut buf2);
            acc = acc.wrapping_add(buf2.last().copied().unwrap_or(0));
        }
        acc
    });

    println!("\nopen:   store {store_open_us:.1} µs vs per-file total {perfile_open_us:.1} µs");
    println!(
        "point:  store warm {store_warm_mqs:.2} Mq/s (hit rate {:.3}), cold {store_cold_mqs:.3} \
         Mq/s, per-file {perfile_mqs:.2} Mq/s",
        hit_rate
    );
    println!("range:  store {store_range_mvs:.1} Mv/s vs per-file {perfile_range_mvs:.1} Mv/s");

    let artifact = Json::obj(vec![
        ("bench", Json::Str("store".into())),
        ("schema", Json::Int(1)),
        ("n_per_series", Json::Int(n as i64)),
        ("series", Json::Int(series_count as i64)),
        ("segment_points", Json::Int(segment_points as i64)),
        ("queries", Json::Int(queries as i64)),
        ("range_len", Json::Int(range_len as i64)),
        ("host_cores", Json::Int(cores as i64)),
        ("pack_bytes", Json::Int(pack.len() as i64)),
        ("perfile_bytes", Json::Int(perfile_bytes as i64)),
        ("build_seconds", Json::Num(build_s)),
        ("open_store_us", Json::Num(store_open_us)),
        ("open_perfile_total_us", Json::Num(perfile_open_us)),
        ("point_store_warm_mqs", Json::Num(store_warm_mqs)),
        ("point_store_cold_mqs", Json::Num(store_cold_mqs)),
        ("point_perfile_mqs", Json::Num(perfile_mqs)),
        ("cache_hit_rate", Json::Num(hit_rate)),
        ("range_store_mvs", Json::Num(store_range_mvs)),
        ("range_perfile_mvs", Json::Num(perfile_range_mvs)),
    ]);
    std::fs::write(&out_path, artifact.render()).expect("write store artifact");
    println!("\nwrote {out_path}");
}

/// Times `reps` runs of `f` and returns the mean microseconds per run.
fn time_us<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    t0.elapsed().as_secs_f64() * 1e6 / reps as f64
}

/// Runs `f` once and converts its `ops` operations to millions per second.
fn throughput_mqs(ops: usize, mut f: impl FnMut() -> i64) -> f64 {
    let t0 = Instant::now();
    std::hint::black_box(f());
    ops as f64 / t0.elapsed().as_secs_f64() / 1e6
}
