//! Perf baseline harness: machine-readable compression / decompression /
//! random-access throughput for NeaTS over the paper datasets, across
//! partitioner thread counts, written to `BENCH_partition.json`.
//!
//! Two compression numbers anchor the perf trajectory:
//!
//! * `compress_ref_mbs` — **point 0**: the original inline one-pass sweep
//!   ([`neats_core::partition::partition_reference`]);
//! * `compress_mbs[t]` — **point 1**: the two-stage partitioner at each
//!   thread count `t` (`NEATS_BENCH_THREADS`, default `1,2,4`).
//!
//! Run with `cargo run --release -p bench --bin perf_baseline`; scale with
//! `NEATS_BENCH_N` / `NEATS_BENCH_QUERIES` / `NEATS_BENCH_DATASETS`, and
//! redirect the artifact with `NEATS_BENCH_OUT`.

use bench::json::Json;
use bench::{bench_dataset_filter, bench_n, bench_queries, bench_threads, query_indices};
use neats_core::partition::{partition_reference, positivity_shift, PartitionConfig};
use neats_core::{default_epsilons, Kind, NeaTS, NeaTSCompressed, RankMode};
use std::time::Instant;
use timeseries::{CompressedSeries, TimeSeries};

/// One dataset's measurements.
struct Row {
    abbrev: &'static str,
    ratio_pct: f64,
    compress_ref_mbs: f64,
    /// Parallel to the thread-count list.
    compress_mbs: Vec<f64>,
    decompress_mbs: f64,
    random_access_mbs: f64,
}

fn main() {
    let n = bench_n();
    let queries = bench_queries();
    let threads = bench_threads();
    let datasets = bench_dataset_filter();
    let out_path =
        std::env::var("NEATS_BENCH_OUT").unwrap_or_else(|_| "BENCH_partition.json".into());
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    println!(
        "perf_baseline — n = {n}, {queries} RA queries, threads {threads:?}, {} datasets, {cores} core(s)",
        datasets.len()
    );

    let mut rows = Vec::new();
    for ds in &datasets {
        eprintln!("measuring {} …", ds.abbrev());
        let ts = ds.generate(n);
        rows.push(measure_dataset(ds.abbrev(), &ts, &threads, queries));
    }

    print_rows(&threads, &rows);

    let artifact = Json::obj(vec![
        ("bench", Json::Str("partition".into())),
        ("schema", Json::Int(1)),
        ("n", Json::Int(n as i64)),
        ("queries", Json::Int(queries as i64)),
        ("host_cores", Json::Int(cores as i64)),
        ("threads", Json::Arr(threads.iter().map(|&t| Json::Int(t as i64)).collect())),
        (
            "results",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("dataset", Json::Str(r.abbrev.into())),
                            ("ratio_pct", Json::Num(r.ratio_pct)),
                            ("compress_ref_mbs", Json::Num(r.compress_ref_mbs)),
                            (
                                "compress_mbs",
                                Json::Obj(
                                    threads
                                        .iter()
                                        .zip(&r.compress_mbs)
                                        .map(|(&t, &mbs)| (t.to_string(), Json::Num(mbs)))
                                        .collect(),
                                ),
                            ),
                            ("decompress_mbs", Json::Num(r.decompress_mbs)),
                            ("random_access_mbs", Json::Num(r.random_access_mbs)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&out_path, artifact.render()).expect("write perf artifact");
    println!("\nwrote {out_path}");
}

fn measure_dataset(abbrev: &'static str, ts: &TimeSeries, threads: &[usize], queries: usize) -> Row {
    let raw = ts.uncompressed_bytes() as f64;
    let values = ts.values();

    // Point 0: the reference inline sweep, through the same encode path the
    // default builder uses.
    let epsilons = default_epsilons(ts.delta());
    let shift = positivity_shift(values, epsilons.iter().copied().max().unwrap_or(0));
    let cfg = PartitionConfig::lossless(&Kind::NEATS_DEFAULT, &epsilons, shift);
    let t0 = Instant::now();
    let part = partition_reference(values, &cfg);
    let reference = NeaTSCompressed::encode(values, &part, shift, RankMode::default());
    let compress_ref_mbs = raw / t0.elapsed().as_secs_f64() / 1e6;

    // Point 1: the two-stage partitioner at each thread count.
    let reference_bytes = reference.to_bytes();
    let mut compress_mbs = Vec::with_capacity(threads.len());
    let mut archive = None;
    for &t in threads {
        let t0 = Instant::now();
        let c = NeaTS::builder().threads(t).build(ts);
        compress_mbs.push(raw / t0.elapsed().as_secs_f64() / 1e6);
        assert!(
            c.to_bytes() == reference_bytes,
            "{abbrev}: two-stage archive diverges byte-wise from reference at {t} threads"
        );
        archive = Some(c);
    }
    let archive = archive.expect("at least one thread count");
    let ratio_pct = 100.0 * archive.size_in_bytes() as f64 / raw;

    let t0 = Instant::now();
    let dec = archive.decompress();
    let decompress_mbs = raw / t0.elapsed().as_secs_f64() / 1e6;
    assert_eq!(dec, values, "{abbrev}: lossless roundtrip failed");

    let idx = query_indices(ts.len().max(1), queries);
    let t0 = Instant::now();
    let mut acc = 0i64;
    for &k in &idx {
        acc = acc.wrapping_add(archive.get(k));
    }
    std::hint::black_box(acc);
    let random_access_mbs = (queries * 8) as f64 / t0.elapsed().as_secs_f64() / 1e6;

    Row { abbrev, ratio_pct, compress_ref_mbs, compress_mbs, decompress_mbs, random_access_mbs }
}

fn print_rows(threads: &[usize], rows: &[Row]) {
    print!("\n{:<6} {:>9} {:>9}", "data", "ratio%", "ref MB/s");
    for t in threads {
        print!(" {:>8}", format!("t={t}"));
    }
    println!(" {:>9} {:>9}", "dec MB/s", "ra MB/s");
    for r in rows {
        print!("{:<6} {:>9.2} {:>9.2}", r.abbrev, r.ratio_pct, r.compress_ref_mbs);
        for mbs in &r.compress_mbs {
            print!(" {mbs:>8.2}");
        }
        println!(" {:>9.0} {:>9.2}", r.decompress_mbs, r.random_access_mbs);
    }
}
