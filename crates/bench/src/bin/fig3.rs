//! Fig. 3: compression ratio vs decompression speed (left plot) and
//! compression ratio vs random-access speed (right plot, log axis), averaged
//! over the 16 datasets. Prints the scatter points of both plots.

use bench::{all_datasets, bench_n, bench_queries, geomean, lossless_roster, measure};

fn main() {
    let n = bench_n();
    let queries = bench_queries();
    println!("Fig. 3 reproduction — ratio vs decompression / random-access speed, n = {n}");
    let datasets = all_datasets(n);
    let roster = lossless_roster();

    let mut points = Vec::new();
    for comp in &roster {
        eprintln!("measuring {} …", comp.name());
        let mut ratios = Vec::new();
        let mut dspeeds = Vec::new();
        let mut raspeeds = Vec::new();
        for (_, ts) in &datasets {
            let m = measure(comp.as_ref(), ts, queries);
            ratios.push(m.ratio_pct);
            dspeeds.push(m.decompress_mbs);
            raspeeds.push(m.random_access_mbs);
        }
        points.push((
            comp.name(),
            ratios.iter().sum::<f64>() / ratios.len() as f64,
            geomean(&dspeeds),
            geomean(&raspeeds),
        ));
    }

    println!(
        "\n{:<12} {:>11} {:>16} {:>16}",
        "compressor", "ratio (%)", "decomp MB/s", "rnd access MB/s"
    );
    for (name, ratio, d, ra) in &points {
        println!("{name:<12} {ratio:>11.2} {d:>16.0} {ra:>16.2}");
    }

    let get = |n: &str| points.iter().find(|p| p.0 == n).expect("roster member");
    let neats = get("NeaTS");
    let alp = get("ALP");
    let dac = get("DAC");
    let xz = get("EntropyLZ");
    println!("\nshape checks vs paper:");
    println!(
        "  NeaTS vs ALP: ratio {:+.1}% (paper −16.4%), RA speed {:.1}x (paper ≥10x)",
        100.0 * (neats.1 - alp.1) / alp.1,
        neats.3 / alp.3
    );
    println!(
        "  DAC vs NeaTS: RA speed {:.1}x faster (paper ~3x), ratio {:.1}% worse (paper +37%)",
        dac.3 / neats.3,
        100.0 * (dac.1 - neats.1) / neats.1
    );
    println!(
        "  EntropyLZ (Xz/Zstd class) RA is {:.0}x slower than NeaTS (paper: 2-3 orders)",
        neats.3 / xz.3
    );
}
