//! Exports the synthetic datasets as one-value-per-line text files, in the
//! same fixed-precision format the paper's real datasets ship in — useful
//! for feeding the workloads to external compressors or for eyeballing the
//! generators.
//!
//! Usage: `gendata <output-dir> [n]` (default n = 100000).

use timeseries::Dataset;

fn main() {
    let mut args = std::env::args().skip(1);
    let dir = std::path::PathBuf::from(args.next().unwrap_or_else(|| {
        eprintln!("usage: gendata <output-dir> [n]");
        std::process::exit(2);
    }));
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(100_000);
    std::fs::create_dir_all(&dir).expect("create output dir");
    for ds in Dataset::ALL {
        let ts = ds.generate(n);
        let digits = ds.fractional_digits() as usize;
        let scale = 10f64.powi(digits as i32);
        let mut out = String::with_capacity(n * 12);
        for &v in ts.values() {
            out.push_str(&format!("{:.*}\n", digits, v as f64 / scale));
        }
        let path = dir.join(format!("{}.txt", ds.abbrev()));
        std::fs::write(&path, out).expect("write dataset");
        println!("{}: {} values -> {}", ds.full_name(), n, path.display());
    }
}
