//! Access-path baseline harness: open latency and random-access throughput
//! for the owned (`from_bytes`) versus zero-copy (`ArchiveView::open`) read
//! paths over the paper datasets, written machine-readable to
//! `BENCH_access.json` (the sibling of `BENCH_partition.json`).
//!
//! For every dataset the run also re-asserts the differential guarantee on
//! the measured archive: every sampled view answer must equal the owned
//! answer, so a perf run can never silently report numbers for diverging
//! read paths.
//!
//! Run with `cargo run --release -p bench --bin access_baseline`; scale with
//! `NEATS_BENCH_N` / `NEATS_BENCH_QUERIES` / `NEATS_BENCH_DATASETS`, and
//! redirect the artifact with `NEATS_BENCH_OUT`.

use bench::json::Json;
use bench::{bench_dataset_filter, bench_n, bench_queries, query_indices};
use neats_core::{ArchiveView, NeaTS, NeaTSCompressed};
use std::time::Instant;
use timeseries::{CompressedSeries, TimeSeries};

/// One dataset's measurements.
struct Row {
    abbrev: &'static str,
    archive_bytes: usize,
    open_owned_us: f64,
    open_view_us: f64,
    ra_owned_mqs: f64,
    ra_view_mqs: f64,
}

fn main() {
    let n = bench_n();
    let queries = bench_queries();
    let datasets = bench_dataset_filter();
    let out_path = std::env::var("NEATS_BENCH_OUT").unwrap_or_else(|_| "BENCH_access.json".into());
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    println!(
        "access_baseline — n = {n}, {queries} RA queries, {} datasets, {cores} core(s)",
        datasets.len()
    );

    let mut rows = Vec::new();
    for ds in &datasets {
        eprintln!("measuring {} …", ds.abbrev());
        let ts = ds.generate(n);
        rows.push(measure_dataset(ds.abbrev(), &ts, queries));
    }

    print_rows(&rows);

    let artifact = Json::obj(vec![
        ("bench", Json::Str("access".into())),
        ("schema", Json::Int(1)),
        ("n", Json::Int(n as i64)),
        ("queries", Json::Int(queries as i64)),
        ("host_cores", Json::Int(cores as i64)),
        (
            "results",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("dataset", Json::Str(r.abbrev.into())),
                            ("archive_bytes", Json::Int(r.archive_bytes as i64)),
                            ("open_owned_us", Json::Num(r.open_owned_us)),
                            ("open_view_us", Json::Num(r.open_view_us)),
                            ("ra_owned_mqs", Json::Num(r.ra_owned_mqs)),
                            ("ra_view_mqs", Json::Num(r.ra_view_mqs)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&out_path, artifact.render()).expect("write access artifact");
    println!("\nwrote {out_path}");
}

/// Times `reps` runs of `f` and returns the mean microseconds per run.
fn time_us<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(f());
    }
    t0.elapsed().as_secs_f64() * 1e6 / reps as f64
}

fn measure_dataset(abbrev: &'static str, ts: &TimeSeries, queries: usize) -> Row {
    let owned = NeaTS::compress(ts);
    let bytes = owned.to_bytes();
    let idx = query_indices(ts.len().max(1), queries);

    // Differential guarantee on the measured archive: the two read paths
    // must agree before we report their relative performance.
    let view = ArchiveView::open(&bytes).expect("valid archive");
    for &k in &idx {
        assert_eq!(view.at(k), owned.get(k), "{abbrev}: view diverges from owned at {k}");
    }
    drop(view);

    // Open latency. The view open is orders of magnitude cheaper, so give it
    // more repetitions for a stable mean.
    let open_owned_us = time_us(10, || NeaTSCompressed::from_bytes(&bytes).expect("owned open"));
    let open_view_us = time_us(200, || ArchiveView::open(&bytes).expect("view open"));

    // Random-access throughput, in million lookups per second.
    let reread = NeaTSCompressed::from_bytes(&bytes).expect("owned open");
    let t0 = Instant::now();
    let mut acc = 0i64;
    for &k in &idx {
        acc = acc.wrapping_add(reread.get(k));
    }
    std::hint::black_box(acc);
    let ra_owned_mqs = queries as f64 / t0.elapsed().as_secs_f64() / 1e6;

    let view = ArchiveView::open(&bytes).expect("view open");
    let t0 = Instant::now();
    let mut acc = 0i64;
    for &k in &idx {
        acc = acc.wrapping_add(view.at(k));
    }
    std::hint::black_box(acc);
    let ra_view_mqs = queries as f64 / t0.elapsed().as_secs_f64() / 1e6;

    Row { abbrev, archive_bytes: bytes.len(), open_owned_us, open_view_us, ra_owned_mqs, ra_view_mqs }
}

fn print_rows(rows: &[Row]) {
    println!(
        "\n{:<6} {:>12} {:>14} {:>13} {:>11} {:>10}",
        "data", "bytes", "open own µs", "open view µs", "ra own Mq/s", "ra view Mq/s"
    );
    for r in rows {
        println!(
            "{:<6} {:>12} {:>14.1} {:>13.2} {:>11.2} {:>10.2}",
            r.abbrev, r.archive_bytes, r.open_owned_us, r.open_view_us, r.ra_owned_mqs, r.ra_view_mqs
        );
    }
}
