//! Serving-layer baseline harness: request throughput and latency of the
//! `neats-serve` HTTP frontend under concurrent in-process clients, written
//! machine-readable to `BENCH_serve.json` (sibling of the other `BENCH_*`
//! artifacts).
//!
//! The sweep is worker-thread count × batch size: every cell starts a fresh
//! server on an ephemeral loopback port, hammers it with
//! `NEATS_BENCH_CLIENTS` keep-alive client threads issuing batched
//! `POST /q` point queries, and reports requests/s, queries/s, and
//! client-observed p50/p99/max latency. Every response is parsed and
//! checked against the direct `Store` oracle before any number is
//! reported, so the throughput figures can never describe a server that
//! answers wrongly.
//!
//! An instrumentation sweep re-runs the threads=1 × batch=1 point-query
//! cell at three tracing levels (trace ring off / on / on with the
//! slow-query check armed) to price the observability hot path; the
//! metrics registry itself is always on.
//!
//! A second sweep measures overload behaviour: connection-per-request
//! clients at 1× and 4× the worker count, with admission control (the
//! worker-queue shed watermark) on and off. It asserts the robustness
//! contract — under 4× saturation with shedding on, requests are shed with
//! 503s while the p99 of *admitted* requests stays within
//! `NEATS_BENCH_OVERLOAD_FACTOR` (default 50) of the unsaturated p99.
//!
//! A third sweep (Linux only — it drives the epoll reactor) is the C10K
//! measurement the reactor exists for: `NEATS_BENCH_IDLE_CONNS` (default
//! up to 10 000, clamped to the process fd limit) mostly-idle keep-alive
//! connections are parked on the server while a handful of active clients
//! issue timed point queries, across the `NEATS_BENCH_SERVE_THREADS` shard
//! counts. The gate: the active clients' p99 at the largest connection
//! count stays within `NEATS_BENCH_IDLE_FACTOR` (default 25) of the
//! smallest — idle connections must cost a slab entry, not latency.
//!
//! Run with `cargo run --release -p bench --bin serve_baseline`; scale with
//! `NEATS_BENCH_N` (points per series) / `NEATS_BENCH_SERIES` /
//! `NEATS_BENCH_QUERIES` (queries per cell) / `NEATS_BENCH_CLIENTS`, sweep
//! with `NEATS_BENCH_SERVE_THREADS` / `NEATS_BENCH_BATCH` /
//! `NEATS_BENCH_IDLE_CONNS` (comma-separated), size the overload window
//! with `NEATS_BENCH_OVERLOAD_MS`, and redirect with `NEATS_BENCH_OUT`.
//! The 10 000-connection default needs ~20 000 fds in this one process —
//! run under `ulimit -n 65536` (or let the clamp shrink the sweep).

use bench::json::Json;
use bench::{env_usize, env_usize_list, query_indices};
use neats_core::AtomicHistogram;
use neats_serve::{ReactorMode, ServeConfig, Server};
use neats_store::{Store, StoreConfig, StoreWriter};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Instant;
use timeseries::Dataset;

fn main() {
    let n = env_usize("NEATS_BENCH_N", 1 << 14);
    let series_count = env_usize("NEATS_BENCH_SERIES", 4);
    let queries = env_usize("NEATS_BENCH_QUERIES", 20_000);
    let clients = env_usize("NEATS_BENCH_CLIENTS", 4);
    let thread_sweep = env_usize_list("NEATS_BENCH_SERVE_THREADS", &[1, 2]);
    let batch_sweep = env_usize_list("NEATS_BENCH_BATCH", &[1, 16]);
    let out_path = std::env::var("NEATS_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".into());
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    println!(
        "serve_baseline — {series_count} series × {n} points, {queries} queries/cell, \
         {clients} client(s), threads {thread_sweep:?} × batch {batch_sweep:?}, {cores} core(s)"
    );

    // --- One pack, reused by every cell.
    let names: Vec<String> = (0..series_count).map(|i| format!("s{i:02}")).collect();
    let mut data = Vec::new();
    for i in 0..series_count {
        let ds = Dataset::ALL[i % Dataset::ALL.len()];
        let ts = ds.generate(n);
        let stamps: Vec<u64> = (0..n as u64).map(|k| 1_700_000_000 + k * 30).collect();
        data.push((stamps, ts.values().to_vec()));
    }
    let mut w = StoreWriter::new(StoreConfig::default());
    for (name, (stamps, values)) in names.iter().zip(&data) {
        w.ingest(name, stamps, values).expect("ingest");
    }
    let pack = w.finish().expect("finish pack");
    println!("pack: {} bytes", pack.len());

    // The oracle store answers directly; the server gets its own copy of
    // the bytes (same `Arc` sharing as production).
    let oracle = Store::open(pack.clone()).expect("open oracle");

    // Deterministic query plan shared by every cell.
    let sidx = query_indices(series_count, queries);
    let pidx = query_indices(n, queries);

    let mut cells = Vec::new();
    for &threads in &thread_sweep {
        for &batch in &batch_sweep {
            let store = Arc::new(Store::open(pack.clone()).expect("open server store"));
            let cfg = ServeConfig {
                threads,
                ..ServeConfig::default()
            };
            let server = Server::bind(Arc::clone(&store), "127.0.0.1:0", cfg).expect("bind");
            let addr = server.local_addr();
            let handle = server.handle();
            let running = std::thread::spawn(move || server.run());

            let requests_total = (queries / batch).max(1);
            let per_client = requests_total.div_ceil(clients);
            let latency = AtomicHistogram::new();
            let t0 = Instant::now();
            std::thread::scope(|s| {
                for c in 0..clients {
                    let latency = &latency;
                    let names = &names;
                    let oracle = &oracle;
                    let sidx = &sidx;
                    let pidx = &pidx;
                    s.spawn(move || {
                        let first = c * per_client;
                        let last = (first + per_client).min(requests_total);
                        client_loop(addr, names, oracle, sidx, pidx, batch, first, last, latency);
                    });
                }
            });
            let wall = t0.elapsed().as_secs_f64();
            handle.shutdown();
            running.join().expect("server thread").expect("server run");

            let snap = latency.snapshot();
            let reqs = snap.count();
            let reqs_per_s = reqs as f64 / wall;
            let queries_per_s = (reqs as usize * batch) as f64 / wall;
            let (p50, p99, max) = (
                snap.quantile(0.5) as f64 / 1e3,
                snap.quantile(0.99) as f64 / 1e3,
                snap.max() as f64 / 1e3,
            );
            println!(
                "threads {threads} × batch {batch:>3}: {reqs_per_s:>8.0} req/s \
                 ({queries_per_s:>9.0} q/s), p50 {p50:>7.1} µs, p99 {p99:>8.1} µs"
            );
            cells.push(Json::obj(vec![
                ("threads", Json::Int(threads as i64)),
                ("batch", Json::Int(batch as i64)),
                ("clients", Json::Int(clients as i64)),
                ("requests", Json::Int(reqs as i64)),
                ("reqs_per_s", Json::Num(reqs_per_s)),
                ("queries_per_s", Json::Num(queries_per_s)),
                ("p50_us", Json::Num(p50)),
                ("p99_us", Json::Num(p99)),
                ("max_us", Json::Num(max)),
            ]));
        }
    }

    // --- Instrumentation-overhead sweep: the same threads=1 × batch=1
    // point-query cell, with the request-trace machinery at three levels —
    // ring disabled, the default ring, and ring + slow-query threshold
    // armed (set just out of reach, so the check runs but nothing logs).
    // The metrics registry itself is always on (it *is* the stats path);
    // this isolates the marginal cost of tracing on the hot path.
    let mut instr_cells = Vec::new();
    let mut instr_p50: Vec<(&str, f64)> = Vec::new();
    for (label, trace_ring, slow_query_us) in [
        ("off", Some(0usize), Some(0u64)),
        ("ring", Some(256), Some(0)),
        ("ring+slowlog", Some(256), Some(u64::MAX / 2_000)),
    ] {
        let store = Arc::new(Store::open(pack.clone()).expect("open server store"));
        let cfg = ServeConfig {
            threads: 1,
            trace_ring,
            slow_query_us,
            ..ServeConfig::default()
        };
        let server = Server::bind(Arc::clone(&store), "127.0.0.1:0", cfg).expect("bind");
        let addr = server.local_addr();
        let handle = server.handle();
        let running = std::thread::spawn(move || server.run());

        let requests_total = queries.max(1);
        let per_client = requests_total.div_ceil(clients);
        let latency = AtomicHistogram::new();
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for c in 0..clients {
                let (latency, names, oracle, sidx, pidx) = (&latency, &names, &oracle, &sidx, &pidx);
                s.spawn(move || {
                    let first = c * per_client;
                    let last = (first + per_client).min(requests_total);
                    client_loop(addr, names, oracle, sidx, pidx, 1, first, last, latency);
                });
            }
        });
        let wall = t0.elapsed().as_secs_f64();
        handle.shutdown();
        running.join().expect("server thread").expect("server run");

        let snap = latency.snapshot();
        let reqs_per_s = snap.count() as f64 / wall;
        let (p50, p99) = (
            snap.quantile(0.5) as f64 / 1e3,
            snap.quantile(0.99) as f64 / 1e3,
        );
        println!(
            "instrumentation {label:>12}: {reqs_per_s:>8.0} req/s, \
             p50 {p50:>7.1} µs, p99 {p99:>8.1} µs"
        );
        instr_p50.push((label, p50));
        instr_cells.push(Json::obj(vec![
            ("level", Json::Str(label.into())),
            ("trace_ring", Json::Int(trace_ring.unwrap_or(0) as i64)),
            ("slow_query_armed", Json::Bool(slow_query_us.unwrap_or(0) > 0)),
            ("reqs_per_s", Json::Num(reqs_per_s)),
            ("p50_us", Json::Num(p50)),
            ("p99_us", Json::Num(p99)),
        ]));
    }
    let instr_json = Json::obj(vec![("cells", Json::Arr(instr_cells))]);

    // --- Overload sweep: offered load × shedding on/off.
    //
    // Connection-per-request clients (a keep-alive client would be owned by
    // one worker forever and never experience admission) hammer the server
    // for a fixed wall-clock window at 1× and 4× the worker count. With
    // shedding ON the worker queue is capped at a small watermark, so
    // admitted requests never sit behind a deep backlog; with shedding OFF
    // the caps are effectively infinite and saturation shows up as queueing
    // delay in the admitted tail. Shed responses (503 or a reset under
    // pressure) are counted, not timed.
    let overload_ms = env_usize("NEATS_BENCH_OVERLOAD_MS", 1000);
    let overload_factor = env_usize("NEATS_BENCH_OVERLOAD_FACTOR", 50);
    let ov_threads = thread_sweep.last().copied().unwrap_or(2).max(1);
    struct OverloadCell {
        load_x: usize,
        shedding: bool,
        ok: u64,
        shed: u64,
        errors: u64,
        p50_us: f64,
        p99_us: f64,
    }
    let mut ov_cells: Vec<OverloadCell> = Vec::new();
    for &load_x in &[1usize, 4] {
        for &shedding in &[true, false] {
            let store = Arc::new(Store::open(pack.clone()).expect("open server store"));
            let cfg = ServeConfig {
                threads: ov_threads,
                queue_watermark: if shedding { 2 } else { 1 << 20 },
                max_connections: if shedding { 0 } else { 1 << 20 },
                ..ServeConfig::default()
            };
            let server = Server::bind(Arc::clone(&store), "127.0.0.1:0", cfg).expect("bind");
            let addr = server.local_addr();
            let handle = server.handle();
            let running = std::thread::spawn(move || server.run());

            let latency = AtomicHistogram::new();
            let ok = std::sync::atomic::AtomicU64::new(0);
            let shed = std::sync::atomic::AtomicU64::new(0);
            let errors = std::sync::atomic::AtomicU64::new(0);
            let deadline = Instant::now() + std::time::Duration::from_millis(overload_ms as u64);
            std::thread::scope(|s| {
                for c in 0..ov_threads * load_x {
                    let (latency, ok, shed, errors) = (&latency, &ok, &shed, &errors);
                    let (names, pidx) = (&names, &pidx);
                    s.spawn(move || {
                        let mut q = c;
                        while Instant::now() < deadline {
                            let k = pidx[q % pidx.len()];
                            let target = format!("/q/{}?idx={k}", names[q % names.len()]);
                            q = q.wrapping_add(1);
                            let t0 = Instant::now();
                            match oneshot_get(addr, &target) {
                                Some(200) => {
                                    latency.record(t0.elapsed().as_nanos() as u64);
                                    ok.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                }
                                Some(503) => {
                                    shed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                }
                                _ => {
                                    errors.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                }
                            }
                        }
                    });
                }
            });
            handle.shutdown();
            running.join().expect("server thread").expect("server run");

            let snap = latency.snapshot();
            let cell = OverloadCell {
                load_x,
                shedding,
                ok: ok.into_inner(),
                shed: shed.into_inner(),
                errors: errors.into_inner(),
                p50_us: snap.quantile(0.5) as f64 / 1e3,
                p99_us: snap.quantile(0.99) as f64 / 1e3,
            };
            println!(
                "overload {}× load, shedding {:>3}: {:>7} ok, {:>6} shed, {:>4} errors, \
                 admitted p50 {:>7.1} µs, p99 {:>8.1} µs",
                cell.load_x,
                if shedding { "on" } else { "off" },
                cell.ok,
                cell.shed,
                cell.errors,
                cell.p50_us,
                cell.p99_us,
            );
            ov_cells.push(cell);
        }
    }

    // The robustness acceptance gate: under 4× saturation with shedding on,
    // the p99 of *admitted* requests must stay within a (generous, CI-noise
    // tolerant) factor of the unsaturated p99 — overload is absorbed by
    // shedding, not by the latency of the requests the server accepted. A
    // 500 µs floor keeps the ratio meaningful when the baseline is microseconds.
    let p99_base = ov_cells
        .iter()
        .find(|c| c.load_x == 1 && c.shedding)
        .map(|c| c.p99_us)
        .unwrap_or(0.0);
    let hot = ov_cells
        .iter()
        .find(|c| c.load_x == 4 && c.shedding)
        .expect("4x cell");
    assert!(
        hot.shed > 0,
        "4× saturation with shedding on must shed ({} ok)",
        hot.ok
    );
    assert!(hot.ok > 0, "shedding must not starve admission entirely");
    let bound = overload_factor as f64 * p99_base.max(500.0);
    assert!(
        hot.p99_us <= bound,
        "admitted p99 under 4× saturation regressed: {:.1} µs > {bound:.1} µs \
         (baseline {p99_base:.1} µs × factor {overload_factor})",
        hot.p99_us,
    );

    let overload_json = Json::obj(vec![
        ("threads", Json::Int(ov_threads as i64)),
        ("duration_ms", Json::Int(overload_ms as i64)),
        (
            "cells",
            Json::Arr(
                ov_cells
                    .iter()
                    .map(|c| {
                        Json::obj(vec![
                            ("load_x", Json::Int(c.load_x as i64)),
                            ("shedding", Json::Bool(c.shedding)),
                            ("ok", Json::Int(c.ok as i64)),
                            ("shed", Json::Int(c.shed as i64)),
                            ("errors", Json::Int(c.errors as i64)),
                            ("p50_us", Json::Num(c.p50_us)),
                            ("p99_us", Json::Num(c.p99_us)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);

    // --- Idle keep-alive sweep (the C10K cell): park `conns` keep-alive
    // connections, then measure active-client latency through the crowd.
    let idle_sweep_req = env_usize_list("NEATS_BENCH_IDLE_CONNS", &[100, 1_000, 10_000]);
    let idle_factor = env_usize("NEATS_BENCH_IDLE_FACTOR", 25);
    // Every parked connection costs two fds in this process (client + server
    // end); clamp the sweep so the harness degrades instead of dying with
    // EMFILE on small limits (CI runners default to 1024).
    let fd_budget = fd_soft_limit().saturating_sub(128) / 2;
    let mut idle_sweep: Vec<usize> = idle_sweep_req
        .iter()
        .map(|&c| c.min(fd_budget).max(1))
        .collect();
    idle_sweep.dedup();
    if idle_sweep != idle_sweep_req {
        println!(
            "idle sweep clamped to {idle_sweep:?} (fd budget {fd_budget}); \
             raise `ulimit -n` for the full {idle_sweep_req:?}"
        );
    }
    let mut idle_cells = Vec::new();
    let mut idle_p99: Vec<(usize, f64)> = Vec::new();
    if cfg!(target_os = "linux") {
        for &threads in &thread_sweep {
            for &conns in &idle_sweep {
                let store = Arc::new(Store::open(pack.clone()).expect("open server store"));
                let cfg = ServeConfig {
                    threads,
                    reactor: ReactorMode::Reactor,
                    // This sweep measures multiplexing, not admission
                    // control: every parked connection must be admitted.
                    max_connections: conns + clients + 64,
                    queue_watermark: 1 << 20,
                    ..ServeConfig::default()
                };
                let server = Server::bind(Arc::clone(&store), "127.0.0.1:0", cfg).expect("bind");
                let addr = server.local_addr();
                let shards = server.shards();
                let handle = server.handle();
                let running = std::thread::spawn(move || server.run());

                // Park the idle crowd: each connection completes one priming
                // request (so the server has committed to keep-alive) and
                // then goes silent, holding its slab entry.
                let connectors = 16usize.min(conns.max(1));
                let per_connector = conns.div_ceil(connectors);
                let parked: Vec<TcpStream> = std::thread::scope(|s| {
                    let handles: Vec<_> = (0..connectors)
                        .map(|c| {
                            let names = &names;
                            s.spawn(move || {
                                let mine =
                                    per_connector.min(conns - (c * per_connector).min(conns));
                                (0..mine)
                                    .map(|_| park_one(addr, &names[0]))
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("connector"))
                        .collect()
                });
                assert_eq!(
                    parked.len(),
                    conns,
                    "every idle connection must be admitted"
                );

                // Timed phase: a handful of active keep-alive clients issue
                // point queries through the parked crowd.
                let reqs_total = queries.max(1);
                let per_client = reqs_total.div_ceil(clients.max(1));
                let latency = AtomicHistogram::new();
                let t0 = Instant::now();
                std::thread::scope(|s| {
                    for c in 0..clients.max(1) {
                        let (latency, names, oracle, sidx, pidx) =
                            (&latency, &names, &oracle, &sidx, &pidx);
                        s.spawn(move || {
                            let first = c * per_client;
                            let last = (first + per_client).min(reqs_total);
                            client_loop(addr, names, oracle, sidx, pidx, 1, first, last, latency);
                        });
                    }
                });
                let wall = t0.elapsed().as_secs_f64();
                drop(parked);
                handle.shutdown();
                running.join().expect("server thread").expect("server run");

                let snap = latency.snapshot();
                let (p50, p99, max) = (
                    snap.quantile(0.5) as f64 / 1e3,
                    snap.quantile(0.99) as f64 / 1e3,
                    snap.max() as f64 / 1e3,
                );
                let reqs_per_s = snap.count() as f64 / wall;
                println!(
                    "idle {conns:>6} conns × {shards} shard(s): {reqs_per_s:>8.0} req/s \
                     through the crowd, p50 {p50:>7.1} µs, p99 {p99:>8.1} µs"
                );
                idle_p99.push((conns, p99));
                idle_cells.push(Json::obj(vec![
                    ("conns", Json::Int(conns as i64)),
                    ("shards", Json::Int(shards as i64)),
                    ("active_clients", Json::Int(clients as i64)),
                    ("reqs_per_s", Json::Num(reqs_per_s)),
                    ("p50_us", Json::Num(p50)),
                    ("p99_us", Json::Num(p99)),
                    ("max_us", Json::Num(max)),
                ]));
            }
        }

        // The C10K acceptance gate: p99 through the largest parked crowd
        // stays within a (CI-noise tolerant) factor of the smallest — a
        // 500 µs floor keeps the ratio meaningful at microsecond baselines.
        let min_conns = idle_sweep.iter().copied().min().unwrap_or(0);
        let max_conns = idle_sweep.iter().copied().max().unwrap_or(0);
        if min_conns < max_conns {
            let base = idle_p99
                .iter()
                .filter(|(c, _)| *c == min_conns)
                .map(|(_, p)| *p)
                .fold(f64::INFINITY, f64::min);
            let worst = idle_p99
                .iter()
                .filter(|(c, _)| *c == max_conns)
                .map(|(_, p)| *p)
                .fold(0.0, f64::max);
            let bound = idle_factor as f64 * base.max(500.0);
            assert!(
                worst <= bound,
                "p99 through {max_conns} idle conns regressed: {worst:.1} µs > {bound:.1} µs \
                 (baseline {base:.1} µs at {min_conns} conns × factor {idle_factor})"
            );
        }
    } else {
        println!("idle keep-alive sweep skipped: the reactor needs epoll (Linux)");
    }
    let idle_json = Json::obj(vec![
        (
            "conns_sweep",
            Json::Arr(idle_sweep.iter().map(|&c| Json::Int(c as i64)).collect()),
        ),
        ("factor_bound", Json::Int(idle_factor as i64)),
        ("cells", Json::Arr(idle_cells)),
    ]);

    let artifact = Json::obj(vec![
        ("bench", Json::Str("serve".into())),
        ("schema", Json::Int(4)),
        ("n_per_series", Json::Int(n as i64)),
        ("series", Json::Int(series_count as i64)),
        ("queries_per_cell", Json::Int(queries as i64)),
        ("clients", Json::Int(clients as i64)),
        ("host_cores", Json::Int(cores as i64)),
        ("pack_bytes", Json::Int(pack.len() as i64)),
        ("cells", Json::Arr(cells)),
        ("instrumentation", instr_json),
        ("overload", overload_json),
        ("idle", idle_json),
    ]);
    std::fs::write(&out_path, artifact.render()).expect("write serve artifact");
    println!("\nwrote {out_path}");
}

/// One client thread: a single keep-alive connection issuing batched point
/// queries `first..last` of the shared plan, verifying every response
/// against the oracle and recording request latencies.
#[allow(clippy::too_many_arguments)]
fn client_loop(
    addr: SocketAddr,
    names: &[String],
    oracle: &Store,
    sidx: &[usize],
    pidx: &[usize],
    batch: usize,
    first: usize,
    last: usize,
    latency: &AtomicHistogram,
) {
    if first >= last {
        return;
    }
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .expect("timeout");
    let mut leftover: Vec<u8> = Vec::new();
    for r in first..last {
        // Build the batch body and the expected answers.
        let mut body = String::new();
        let mut expect = String::new();
        for b in 0..batch {
            let q = (r * batch + b) % sidx.len();
            let (s, k) = (sidx[q], pidx[q]);
            body.push_str(&format!("{} idx={}\n", names[s], k));
            expect.push_str(&format!(
                "#{b} ok 1\n{}\n",
                oracle.get(&names[s], k).expect("oracle")
            ));
        }
        expect.push_str(&format!("#done {batch}\n"));
        let request = format!(
            "POST /q HTTP/1.1\r\nHost: b\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let t0 = Instant::now();
        stream.write_all(request.as_bytes()).expect("send");
        let got = read_response(&mut stream, &mut leftover);
        latency.record(t0.elapsed().as_nanos() as u64);
        assert_eq!(got, expect, "server answer diverged from the store oracle");
    }
}

/// The process soft fd limit from `/proc/self/limits` (a large stand-in
/// for `unlimited`; a conservative 1024 when unreadable, e.g. non-Linux).
fn fd_soft_limit() -> usize {
    std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|text| {
            let line = text.lines().find(|l| l.starts_with("Max open files"))?;
            let soft = line.split_whitespace().nth(3)?;
            if soft == "unlimited" {
                Some(usize::MAX / 4)
            } else {
                soft.parse().ok()
            }
        })
        .unwrap_or(1024)
}

/// Opens one keep-alive connection for the idle sweep, completes a priming
/// request (the server commits to keep-alive), and returns the socket to
/// be parked.
fn park_one(addr: SocketAddr, series: &str) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect idle");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .expect("timeout");
    stream
        .write_all(format!("GET /q/{series}?idx=0 HTTP/1.1\r\nHost: b\r\n\r\n").as_bytes())
        .expect("prime idle");
    let mut leftover = Vec::new();
    let _ = read_response(&mut stream, &mut leftover);
    assert!(leftover.is_empty(), "priming response had trailing bytes");
    stream
}

/// One connection-per-request `GET` for the overload sweep: returns the
/// status code, or `None` when the connection failed or was reset (an
/// acceptable outcome under deliberate overload — it is counted, not timed).
fn oneshot_get(addr: SocketAddr, target: &str) -> Option<u16> {
    let mut s = TcpStream::connect(addr).ok()?;
    s.set_nodelay(true).ok();
    s.set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .ok()?;
    s.write_all(
        format!("GET {target} HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .ok()?;
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).ok()?;
    let text = String::from_utf8_lossy(&buf);
    text.split(' ').nth(1)?.parse().ok()
}

/// Reads one HTTP response (status must be 200) and returns its body.
fn read_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> String {
    let head_end = loop {
        if let Some(p) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break p + 4;
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk).expect("read head");
        assert!(n > 0, "server closed mid-response");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    assert!(
        head.starts_with("HTTP/1.1 200"),
        "unexpected status: {head}"
    );
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.trim()
                .eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .expect("Content-Length");
    buf.drain(..head_end);
    while buf.len() < content_length {
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "server closed mid-body");
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8(buf[..content_length].to_vec()).expect("utf8 body");
    buf.drain(..content_length);
    body
}
