//! Table II: compression ratios of the lossy approaches — AA, PLA, NeaTS-L —
//! on the 16 datasets, at the per-dataset ε chosen as in the paper ("the
//! smallest ε such that NeaTS-L achieves better compression than our lossless
//! compressor NeaTS"), plus the §IV-B text numbers: MAPE and lossy
//! compression/decompression speeds.

use bench::{all_datasets, bench_n};
use lossy_baselines::{AdaptiveApprox, Pla};
use neats_core::{NeaTS, NeaTSLossy};
use std::time::Instant;
use timeseries::{CompressedSeries, TimeSeries};

/// Finds the smallest ε (by doubling, then bisection) where NeaTS-L beats
/// lossless NeaTS in size.
fn crossover_eps(ts: &TimeSeries, lossless_bytes: usize) -> u64 {
    let mut hi = 1u64;
    while NeaTS::builder().build_lossy(ts, hi).size_in_bytes() >= lossless_bytes {
        hi *= 4;
        if hi > ts.delta() {
            return hi; // degenerate: even huge ε barely wins
        }
    }
    let mut lo = hi / 4;
    while hi - lo > hi / 8 + 1 {
        let mid = lo + (hi - lo) / 2;
        if NeaTS::builder().build_lossy(ts, mid).size_in_bytes() >= lossless_bytes {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

fn main() {
    let n = bench_n();
    println!("Table II reproduction — lossy compressors, n = {n} per dataset");
    println!(
        "\n{:<6} {:>10} {:>9} {:>9} {:>9} {:>11} {:>11}",
        "data", "eps(%rng)", "AA", "PLA", "NeaTS-L", "impr.AA%", "impr.PLA%"
    );

    let mut mape_aa = Vec::new();
    let mut mape_pla = Vec::new();
    let mut mape_nl = Vec::new();
    let mut speeds: Vec<(f64, f64, f64)> = Vec::new(); // (comp MB/s) aa, pla, neats-l
    let mut dspeeds: Vec<(f64, f64, f64)> = Vec::new();
    let mut improvements: Vec<(f64, f64)> = Vec::new();

    for (ds, ts) in all_datasets(n) {
        let lossless = NeaTS::compress(&ts).size_in_bytes();
        let eps = crossover_eps(&ts, lossless);
        let raw = ts.uncompressed_bytes() as f64;

        let t0 = Instant::now();
        let aa = AdaptiveApprox::compress(&ts, eps);
        let aa_ct = raw / t0.elapsed().as_secs_f64() / 1e6;
        let t0 = Instant::now();
        let pla = Pla::compress(&ts, eps);
        let pla_ct = raw / t0.elapsed().as_secs_f64() / 1e6;
        let t0 = Instant::now();
        let nl = NeaTSLossy::compress(&ts, &neats_core::Kind::NEATS_DEFAULT, eps);
        let nl_ct = raw / t0.elapsed().as_secs_f64() / 1e6;

        let t0 = Instant::now();
        std::hint::black_box(aa.reconstruct());
        let aa_dt = raw / t0.elapsed().as_secs_f64() / 1e6;
        let t0 = Instant::now();
        std::hint::black_box(pla.reconstruct());
        let pla_dt = raw / t0.elapsed().as_secs_f64() / 1e6;
        let t0 = Instant::now();
        std::hint::black_box(nl.reconstruct());
        let nl_dt = raw / t0.elapsed().as_secs_f64() / 1e6;

        let r = |b: usize| 100.0 * b as f64 / raw;
        let (ra, rp, rn) = (r(aa.size_in_bytes()), r(pla.size_in_bytes()), r(nl.size_in_bytes()));
        let eps_pct = 100.0 * eps as f64 / ts.delta() as f64;
        let impr_aa = 100.0 * (ra - rn) / ra;
        let impr_pla = 100.0 * (rp - rn) / rp;
        improvements.push((impr_aa, impr_pla));
        println!(
            "{:<6} {:>10.3} {:>9.2} {:>9.2} {:>9.2} {:>11.2} {:>11.2}",
            ds.abbrev(),
            eps_pct,
            ra,
            rp,
            rn,
            impr_aa,
            impr_pla
        );

        mape_aa.push(aa.mape(&ts));
        mape_pla.push(pla.mape(&ts));
        mape_nl.push(nl.mape(&ts));
        speeds.push((aa_ct, pla_ct, nl_ct));
        dspeeds.push((aa_dt, pla_dt, nl_dt));
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (ia, ip): (Vec<f64>, Vec<f64>) = improvements.into_iter().unzip();
    println!("\naverage NeaTS-L improvement: {:.2}% vs AA, {:.2}% vs PLA", avg(&ia), avg(&ip));
    println!("(paper: 11.77% vs AA, 7.02% vs PLA)");
    println!(
        "\nMAPE averages: AA {:.2}%  NeaTS-L {:.2}%  PLA {:.2}%   (paper: 2.47 / 2.85 / 4.37)",
        avg(&mape_aa),
        avg(&mape_nl),
        avg(&mape_pla)
    );
    let c: (Vec<f64>, Vec<f64>, Vec<f64>) = speeds.iter().fold(
        (vec![], vec![], vec![]),
        |(mut a, mut b, mut c), &(x, y, z)| {
            a.push(x);
            b.push(y);
            c.push(z);
            (a, b, c)
        },
    );
    println!(
        "\nlossy compression speed MB/s: PLA {:.1}  AA {:.1}  NeaTS-L {:.1}   (paper: 123.4 / 63.1 / 18.2)",
        avg(&c.1),
        avg(&c.0),
        avg(&c.2)
    );
    let d: (Vec<f64>, Vec<f64>, Vec<f64>) = dspeeds.iter().fold(
        (vec![], vec![], vec![]),
        |(mut a, mut b, mut c), &(x, y, z)| {
            a.push(x);
            b.push(y);
            c.push(z);
            (a, b, c)
        },
    );
    println!(
        "lossy decompression speed MB/s: PLA {:.0}  NeaTS-L {:.0}  AA {:.0}   (paper: 2997 / 2561 / 2420)",
        avg(&d.1),
        avg(&d.2),
        avg(&d.0)
    );
}
