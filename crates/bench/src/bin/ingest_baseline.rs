//! Live-ingestion baseline harness: sustained append throughput under each
//! WAL fsync policy, seal latency, WAL-replay (recovery) speed, and query
//! latency percentiles measured *while* a writer is ingesting — written
//! machine-readable to `BENCH_ingest.json` (sibling of `BENCH_store.json` /
//! `BENCH_serve.json`).
//!
//! Every number describes a verified path: the concurrent-query phase
//! asserts each sampled answer against the predetermined input before it
//! is timed into the percentile, and the recovery phase asserts the
//! replayed state equals what was acknowledged.
//!
//! Run with `cargo run --release -p bench --bin ingest_baseline`; scale
//! with `NEATS_BENCH_N` (points per series) / `NEATS_BENCH_SERIES` /
//! `NEATS_BENCH_CHUNK` (head chunk size), and redirect with
//! `NEATS_BENCH_OUT`.

use bench::env_usize;
use bench::json::Json;
use neats_ingest::{FsyncPolicy, IngestConfig, Ingestor};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;
use timeseries::Dataset;

/// Points per append batch (one WAL record, one fsync under `Always`).
const BATCH: usize = 512;

struct Series {
    name: String,
    stamps: Vec<u64>,
    values: Vec<i64>,
}

fn gen_series(n: usize, count: usize) -> Vec<Series> {
    (0..count)
        .map(|i| {
            let ds = Dataset::ALL[i % Dataset::ALL.len()];
            let ts = ds.generate(n);
            let stamps: Vec<u64> =
                (0..n as u64).map(|k| 1_700_000_000 + k * 30 + i as u64).collect();
            Series { name: format!("s{i:02}"), stamps, values: ts.values().to_vec() }
        })
        .collect()
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("neats-ingest-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Appends every series round-robin in `BATCH`-point records and returns
/// sustained points/s. `flush_at_end` folds the heads into the pack before
/// the clock stops (the steady-state cost a long-running ingester pays).
fn append_all(ing: &Ingestor, data: &[Series]) {
    let n = data[0].values.len();
    let mut pos = 0usize;
    while pos < n {
        let batch = BATCH.min(n - pos);
        for s in data {
            ing.append(&s.name, &s.stamps[pos..pos + batch], &s.values[pos..pos + batch])
                .expect("append");
        }
        pos += batch;
    }
}

fn ingest_points_per_s(data: &[Series], chunk_points: usize, fsync: FsyncPolicy) -> (f64, PathBuf) {
    let dir = bench_dir(&format!("{fsync:?}").to_lowercase().replace(['(', ')'], "-"));
    let cfg = IngestConfig { chunk_points, fsync, ..IngestConfig::default() };
    let ing = Ingestor::open(&dir, cfg).expect("open ingestor");
    let total = data.len() * data[0].values.len();
    let t0 = Instant::now();
    append_all(&ing, data);
    let pps = total as f64 / t0.elapsed().as_secs_f64();
    drop(ing);
    (pps, dir)
}

fn main() {
    let n = env_usize("NEATS_BENCH_N", 1 << 16);
    let series_count = env_usize("NEATS_BENCH_SERIES", 4);
    let chunk_points = env_usize("NEATS_BENCH_CHUNK", 4096);
    let out_path = std::env::var("NEATS_BENCH_OUT").unwrap_or_else(|_| "BENCH_ingest.json".into());
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    println!(
        "ingest_baseline — {series_count} series × {n} points, chunk {chunk_points}, \
         batch {BATCH}, {cores} core(s)"
    );

    let data = gen_series(n, series_count);
    let total_points = series_count * n;

    // --- Sustained append throughput per fsync policy. The WAL is the
    // entire durability story, so the fsync knob is the headline axis.
    let (pps_always, dir_a) = ingest_points_per_s(&data, chunk_points, FsyncPolicy::Always);
    let (pps_every64, dir_b) = ingest_points_per_s(&data, chunk_points, FsyncPolicy::EveryN(64));
    let (pps_never, dir_c) = ingest_points_per_s(&data, chunk_points, FsyncPolicy::Never);
    println!(
        "append: always {pps_always:.0} pts/s, every-64 {pps_every64:.0} pts/s, \
         never {pps_never:.0} pts/s"
    );
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);

    // --- Recovery: reopen the fsync=Never directory (everything is still
    // in the WAL) and time the replay, asserting the state survived whole.
    let t0 = Instant::now();
    let ing = Ingestor::open_default(&dir_c).expect("recover");
    let replay_s = t0.elapsed().as_secs_f64();
    for s in &data {
        assert_eq!(ing.len(&s.name).expect("len"), n, "recovery lost points");
        assert_eq!(ing.get(&s.name, n - 1).expect("get"), s.values[n - 1]);
    }
    let replay_pps = total_points as f64 / replay_s;
    println!("replay: {total_points} points in {:.1} ms ({replay_pps:.0} pts/s)", replay_s * 1e3);

    // --- Seal latency: fold the fully-chunked heads into the pack. One
    // seal moves all chunked points of every series, so this is the
    // worst-case (coldest) seal; steady-state seals move one chunk batch.
    let t0 = Instant::now();
    ing.flush().expect("flush");
    let seal_full_ms = t0.elapsed().as_secs_f64() * 1e3;
    // Steady-state: append one more chunk per series, seal, repeat.
    let reps = 4usize;
    let mut seal_ms = Vec::with_capacity(reps);
    let extra = chunk_points.min(1 << 12);
    for r in 0..reps {
        for s in &data {
            let base = s.stamps[n - 1] + 1 + (r * extra) as u64 * 30;
            let stamps: Vec<u64> = (0..extra as u64).map(|k| base + k * 30).collect();
            let values: Vec<i64> = (0..extra).map(|k| s.values[k % n]).collect();
            ing.append(&s.name, &stamps, &values).expect("append");
        }
        let t0 = Instant::now();
        ing.flush().expect("seal");
        seal_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let seal_mean_ms = seal_ms.iter().sum::<f64>() / seal_ms.len() as f64;
    let seal_max_ms = seal_ms.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "seal:   full {seal_full_ms:.1} ms, steady mean {seal_mean_ms:.2} ms \
         / max {seal_max_ms:.2} ms ({extra} pts × {series_count} series per seal)"
    );
    drop(ing);
    let _ = std::fs::remove_dir_all(&dir_c);

    // --- Query latency while ingesting: a writer streams the full corpus
    // (with periodic seals from the chunk cadence) while this thread times
    // point queries against the predetermined answers.
    let dir = bench_dir("mixed");
    let cfg = IngestConfig {
        chunk_points,
        seal_points: chunk_points * 2,
        fsync: FsyncPolicy::Never,
        ..IngestConfig::default()
    };
    let ing = Ingestor::open(&dir, cfg).expect("open ingestor");
    let stop = AtomicBool::new(false);
    let mut lat_ns: Vec<u64> = Vec::new();
    let mut checked = 0u64;
    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            append_all(&ing, &data);
            ing.flush().expect("final flush");
            stop.store(true, Ordering::Relaxed);
        });
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut rng = move || {
            x = x.wrapping_mul(0xD129_0247_3F89_4E1D).wrapping_add(0x9E37_79B9);
            x
        };
        while !stop.load(Ordering::Relaxed) {
            let s = &data[(rng() % series_count as u64) as usize];
            let visible = match ing.len(&s.name) {
                Ok(v) if v > 0 => v,
                _ => continue,
            };
            let k = (rng() % visible as u64) as usize;
            let t0 = Instant::now();
            let got = ing.get(&s.name, k).expect("get under ingest");
            lat_ns.push(t0.elapsed().as_nanos() as u64);
            assert_eq!(got, s.values[k], "query diverged under ingestion");
            checked += 1;
        }
        writer.join().unwrap();
    });
    drop(ing);
    let _ = std::fs::remove_dir_all(&dir);
    lat_ns.sort_unstable();
    let pct = |p: f64| -> f64 {
        if lat_ns.is_empty() {
            return 0.0;
        }
        let i = ((lat_ns.len() - 1) as f64 * p).round() as usize;
        lat_ns[i] as f64 / 1e3
    };
    let (q_p50_us, q_p99_us, q_max_us) = (pct(0.5), pct(0.99), pct(1.0));
    println!(
        "query under ingest: {checked} checked queries, p50 {q_p50_us:.1} µs, \
         p99 {q_p99_us:.1} µs, max {q_max_us:.1} µs"
    );

    let artifact = Json::obj(vec![
        ("bench", Json::Str("ingest".into())),
        ("schema", Json::Int(1)),
        ("n_per_series", Json::Int(n as i64)),
        ("series", Json::Int(series_count as i64)),
        ("chunk_points", Json::Int(chunk_points as i64)),
        ("batch_points", Json::Int(BATCH as i64)),
        ("host_cores", Json::Int(cores as i64)),
        ("append_pps_fsync_always", Json::Num(pps_always)),
        ("append_pps_fsync_every64", Json::Num(pps_every64)),
        ("append_pps_fsync_never", Json::Num(pps_never)),
        ("replay_points_per_s", Json::Num(replay_pps)),
        ("replay_ms", Json::Num(replay_s * 1e3)),
        ("seal_full_ms", Json::Num(seal_full_ms)),
        ("seal_steady_mean_ms", Json::Num(seal_mean_ms)),
        ("seal_steady_max_ms", Json::Num(seal_max_ms)),
        ("queries_under_ingest", Json::Int(checked as i64)),
        ("query_p50_us", Json::Num(q_p50_us)),
        ("query_p99_us", Json::Num(q_p99_us)),
        ("query_max_us", Json::Num(q_max_us)),
    ]);
    std::fs::write(&out_path, artifact.render()).expect("write ingest artifact");
    println!("\nwrote {out_path}");
}
