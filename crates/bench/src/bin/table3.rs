//! Table III: compression ratio (top), decompression speed (middle), and
//! random access speed (bottom) of all lossless compressors on the 16
//! datasets.

use bench::{all_datasets, bench_n, bench_queries, lossless_roster, measure, Measurement};

fn main() {
    let n = bench_n();
    let queries = bench_queries();
    println!("Table III reproduction — lossless compressors, n = {n}, {queries} RA queries");

    let datasets = all_datasets(n);
    let roster = lossless_roster();
    let names: Vec<&str> = roster.iter().map(|c| c.name()).collect();

    // measurements[d][c]
    let mut table: Vec<Vec<Measurement>> = Vec::new();
    for (ds, ts) in &datasets {
        eprintln!("measuring {} …", ds.abbrev());
        table.push(roster.iter().map(|c| measure(c.as_ref(), ts, queries)).collect());
    }

    for (title, pick, decimals) in [
        ("Compression ratio (%)", 0usize, 2usize),
        ("Decompression speed (MB/s)", 1, 0),
        ("Random access speed (MB/s)", 2, 2),
    ] {
        println!("\n== {title} ==");
        print!("{:<5}", "data");
        for name in &names {
            print!(" {name:>9}");
        }
        println!();
        for (di, (ds, _)) in datasets.iter().enumerate() {
            print!("{:<5}", ds.abbrev());
            for m in &table[di] {
                let v = match pick {
                    0 => m.ratio_pct,
                    1 => m.decompress_mbs,
                    _ => m.random_access_mbs,
                };
                print!(" {v:>9.decimals$}");
            }
            println!();
        }
        // Column of per-compressor averages for quick shape comparison.
        print!("{:<5}", "avg");
        for ci in 0..names.len() {
            let vals: Vec<f64> = table
                .iter()
                .map(|row| match pick {
                    0 => row[ci].ratio_pct,
                    1 => row[ci].decompress_mbs,
                    _ => row[ci].random_access_mbs,
                })
                .collect();
            print!(" {:>9.decimals$}", vals.iter().sum::<f64>() / vals.len() as f64);
        }
        println!();
    }

    // Paper shape checks printed as a summary.
    let mut best_special = 0usize;
    for row in &table {
        let neats = row.last().expect("NeaTS last").ratio_pct;
        // special-purpose columns: everything except the two LZ stand-ins
        let best_other = row[2..row.len() - 1]
            .iter()
            .map(|m| m.ratio_pct)
            .fold(f64::INFINITY, f64::min);
        if neats <= best_other {
            best_special += 1;
        }
    }
    println!(
        "\nNeaTS best special-purpose ratio on {best_special}/16 datasets (paper: 14/16)"
    );
}
