//! A ~80-line JSON value builder for the machine-readable perf artifacts
//! (`BENCH_*.json`). The container has no serde, and the bench results are
//! flat records — hand-rolled rendering with correct string escaping and
//! stable key order is all that's needed.

/// A JSON value.
#[derive(Clone, Debug)]
pub enum Json {
    /// `null` (also produced by non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer (rendered without a decimal point).
    Int(i64),
    /// A float, rendered with up to 4 significant decimals.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved as inserted.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Renders with 2-space indentation and a trailing newline, suitable for
    /// committing as a reviewable artifact.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Num(f) => {
                if f.is_finite() {
                    // Up to 4 decimals, trailing zeros trimmed (but keep one
                    // digit so the value still parses as a number).
                    let s = format!("{f:.4}");
                    let s = s.trim_end_matches('0');
                    let s = s.strip_suffix('.').map(|p| format!("{p}.0")).unwrap_or_else(|| s.to_string());
                    out.push_str(&s);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    Json::Str(k.clone()).write(out, depth + 1);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_types() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::Bool(true).render(), "true\n");
        assert_eq!(Json::Int(-42).render(), "-42\n");
        assert_eq!(Json::Num(1.5).render(), "1.5\n");
        assert_eq!(Json::Num(3.0).render(), "3.0\n");
        assert_eq!(Json::Num(0.12345).render(), "0.1235\n"); // 4 decimals
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Str("a\"b\\c\nd".into()).render(), "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn renders_nested_structure() {
        let v = Json::obj(vec![
            ("name", Json::Str("IT".into())),
            ("mbs", Json::Arr(vec![Json::Num(1.25), Json::Int(2)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = v.render();
        assert!(text.contains("\"name\": \"IT\""), "{text}");
        assert!(text.contains("\"mbs\": [\n    1.25,\n    2\n  ]"), "{text}");
        assert!(text.contains("\"empty\": []"), "{text}");
        assert!(text.starts_with("{\n") && text.ends_with("}\n"), "{text}");
    }

    #[test]
    fn control_chars_are_escaped() {
        let text = Json::Str("\u{1}".into()).render();
        assert_eq!(text, "\"\\u0001\"\n");
    }
}
