//! Typed-rejection tests for the ingest boundary, driven by the adversarial
//! *raw-input* generators ([`bench::suite::shapes::nan_heavy_f64`],
//! [`bench::suite::shapes::out_of_order_timestamps`]): floats with NaN/±∞
//! readings and timestamp streams with inversions must be rejected with a
//! typed error naming the first offending position — never panic, never
//! silently corrupt (`NaN as i64` is `0`; an unchecked `t <= prev` would
//! break the store's binary-searched time index).

use bench::suite::shapes::{nan_heavy_f64, out_of_order_timestamps};
use neats_store::{StoreError, StoreWriter};
use timeseries::{io::parse_lines, io::LoadError, TimeSeries, ValueErrorKind};

const SEEDS: std::ops::Range<u64> = 0..25;

#[test]
fn try_from_f64_reports_the_first_non_finite_value() {
    for seed in SEEDS {
        let (values, first) = nan_heavy_f64(300, seed);
        let err = TimeSeries::try_from_f64(&values, 2).expect_err("must reject");
        assert_eq!(err.index, first, "seed {seed}");
        assert_eq!(err.kind, ValueErrorKind::NonFinite, "seed {seed}");
        assert!(!err.value.is_finite(), "seed {seed}: {}", err.value);
        // The finite prefix alone is acceptable.
        TimeSeries::try_from_f64(&values[..first], 2).expect("finite prefix");
    }
}

#[test]
fn try_from_f64_rejects_overflow_as_out_of_range() {
    let err = TimeSeries::try_from_f64(&[1.0, 2.0, 1e300], 0).unwrap_err();
    assert_eq!(err.index, 2);
    assert_eq!(err.kind, ValueErrorKind::OutOfRange);
    // A merely-large value overflows only through the digit scaling.
    let err = TimeSeries::try_from_f64(&[1e18], 3).unwrap_err();
    assert_eq!(err.kind, ValueErrorKind::OutOfRange);
}

#[test]
fn parse_lines_reports_the_first_non_finite_line() {
    for seed in SEEDS {
        let (values, first) = nan_heavy_f64(200, seed);
        // Rust's float formatter renders NaN/inf as parseable literals, so
        // the text loader sees exactly what a lossy upstream export emits.
        let text: String = values.iter().map(|v| format!("{v}\n")).collect();
        match parse_lines(std::io::Cursor::new(text), 1) {
            Err(LoadError::Value { line, kind: ValueErrorKind::NonFinite, .. }) => {
                assert_eq!(line, first + 1, "seed {seed}: wrong line");
            }
            other => panic!("seed {seed}: expected a NonFinite rejection, got {other:?}"),
        }
    }
}

#[test]
fn store_writer_rejects_out_of_order_timestamps_with_index() {
    for seed in SEEDS {
        let (stamps, at) = out_of_order_timestamps(300, seed);
        let values = vec![7i64; stamps.len()];
        let mut w = StoreWriter::new(Default::default());
        match w.ingest("s", &stamps, &values) {
            Err(StoreError::TimestampOrder { series, index }) => {
                assert_eq!(series, "s", "seed {seed}");
                assert_eq!(index, at, "seed {seed}: wrong first-violation index");
            }
            other => panic!("seed {seed}: expected TimestampOrder, got {other:?}"),
        }
        // The rejected batch must not have committed anything: the ordered
        // prefix still ingests cleanly afterwards.
        w.ingest("s", &stamps[..at], &values[..at]).expect("ordered prefix");
        w.finish().expect("finish");
    }
}

#[test]
fn ingestor_rejects_out_of_order_timestamps_without_wal_damage() {
    let dir = std::env::temp_dir().join("neats_bench_ingest_validation");
    let _ = std::fs::remove_dir_all(&dir);
    for seed in SEEDS.take(8) {
        let (stamps, at) = out_of_order_timestamps(200, seed);
        let values = vec![3i64; stamps.len()];
        let ing = neats_ingest::Ingestor::open_default(&dir).expect("open");
        match ing.append("cpu", &stamps, &values) {
            Err(StoreError::TimestampOrder { index, .. }) => {
                assert_eq!(index, at, "seed {seed}")
            }
            other => panic!("seed {seed}: expected TimestampOrder, got {other:?}"),
        }
        // The rejection is atomic: nothing of the bad batch reached the WAL,
        // so the directory reopens empty-for-this-series and accepts the
        // ordered prefix (fresh stamps each round stay monotonic because the
        // generator's base epoch dwarfs per-round drift — assert anyway).
        assert!(ing.len("cpu").unwrap_or(0) == 0 || seed > 0, "bad batch committed");
        drop(ing);
        let ing = neats_ingest::Ingestor::open_default(&dir).expect("reopen");
        let before = ing.len("cpu").unwrap_or(0);
        let good: Vec<u64> = stamps[..at]
            .iter()
            .map(|&t| t + seed * 1_000_000) // keep rounds strictly increasing
            .collect();
        ing.append("cpu", &good, &values[..at]).expect("ordered prefix accepted");
        assert_eq!(ing.len("cpu").unwrap(), before + at, "seed {seed}");
        ing.flush().expect("seal");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
