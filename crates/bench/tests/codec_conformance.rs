//! Differential conformance for every codec in the benchmark matrix: for
//! arbitrary `(shape, n, seed)`, every [`bench::suite::Codec`] must satisfy
//! the three-way read contract checked by
//! [`bench::suite::matrix::check_conformance`] —
//!
//! * `decompress(compress(x)) == x` exactly (lossless) or within `ε + 1`
//!   (lossy),
//! * `random_access(k) == decompress()[k]` for every sampled `k`, and
//! * every range scan equals the corresponding slice of the full
//!   materialisation.
//!
//! The adversarial generators are the point of this suite: the extreme
//! shape alone surfaced four real bugs (NeaTS-L, PLA and AA overshooting
//! their ε contract past 2^53, and ALP silently corrupting odd values past
//! 2^53 through float-bits exceptions) — each now fixed with a regression
//! test in its home crate, and kept fixed by this sweep.

use bench::suite::matrix::check_conformance;
use bench::suite::{all_codecs, Shape};
use proptest::prelude::*;

/// Runs every codec over one generated series; fails with the codec's own
/// conformance report.
fn assert_all_codecs_conform(shape: Shape, n: usize, seed: u64) -> Result<(), TestCaseError> {
    let ts = shape.generate_seeded(n, seed);
    prop_assert_eq!(ts.len(), n);
    for codec in all_codecs() {
        let eps = codec.epsilon_for(&ts);
        let archive = codec.compress(&ts);
        if let Err(e) = check_conformance(codec.name(), shape.name(), &ts, archive.as_ref(), eps)
        {
            return Err(TestCaseError::fail(format!("n={n} seed={seed}: {e}")));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The core sweep the issue asks for: every codec × every adversarial
    /// shape × random seeds and lengths.
    #[test]
    fn every_codec_conforms_on_adversarial_shapes(
        shape_idx in 0usize..Shape::ADVERSARIAL.len(),
        n in 16usize..700,
        seed in 0u64..u64::MAX,
    ) {
        assert_all_codecs_conform(Shape::ADVERSARIAL[shape_idx], n, seed)?;
    }

    /// The paper datasets are friendlier but must conform under reseeding
    /// too (the committed tables are regenerated from arbitrary seeds).
    #[test]
    fn every_codec_conforms_on_reseeded_paper_datasets(
        shape_idx in 0usize..Shape::all().len(),
        seed in 1u64..u64::MAX,
    ) {
        assert_all_codecs_conform(Shape::all()[shape_idx], 400, seed)?;
    }
}

/// Regression: long series at ±2^55 magnitudes. The proptest sweep above
/// caps n at 700, which never produced fragments long enough for the
/// fitted-slope f64 error to exceed the a-priori `float_eval_slack`
/// estimate — n=4096 did (NeaTS-L overshot ε+1 by ~10 ULPs at a 2^55
/// clamp), which is why the lossy compressors now measure their real
/// integer-domain error and retighten until the contract holds.
#[test]
fn lossy_codecs_conform_on_long_extreme_series() {
    for seed in [0u64, 7, 42] {
        assert_all_codecs_conform(Shape::Extreme, 4096, seed).unwrap_or_else(|e| {
            panic!("seed {seed}: {e:?}");
        });
    }
}

/// Tiny inputs exercise the encoders' edge paths (single fragment, partial
/// block, empty correction stream) deterministically for every cell.
#[test]
fn every_codec_conforms_on_tiny_inputs() {
    for shape in Shape::all() {
        for n in [2usize, 3, 7] {
            assert_all_codecs_conform(shape, n, 1).unwrap_or_else(|e| {
                panic!("{} n={n}: {e:?}", shape.name());
            });
        }
    }
}
