//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * D1 — function pool: linear-only vs the paper default vs all 11 kinds;
//! * D2 — optimal DP partitioning vs greedy longest-fragment (Corollary 1);
//! * D3 — per-fragment ε choice vs a single global ε;
//! * D4 — SNeaTS model-selection sample fraction;
//! * D5 — Elias-Fano vs bitvector rank for the start array `S`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neats_core::{Kind, ModelSelection, NeaTS, RankMode};
use timeseries::{CompressedSeries, Dataset};

fn d1_kind_pool(c: &mut Criterion) {
    let ts = Dataset::DewpointTemp.generate(16_384);
    let mut g = c.benchmark_group("d1_kind_pool");
    g.sample_size(10);
    for (label, kinds) in [
        ("linear", vec![Kind::Linear]),
        ("default4", Kind::NEATS_DEFAULT.to_vec()),
        ("all11", Kind::ALL.to_vec()),
    ] {
        g.bench_function(label, |b| b.iter(|| NeaTS::builder().kinds(&kinds).build(&ts)));
    }
    g.finish();
}

fn d2_partitioning(c: &mut Criterion) {
    // DP (size-optimal, via the builder) vs greedy longest-fragment
    // (Corollary 1, fragment-count-optimal for one kind).
    let ts = Dataset::CityTemp.generate(16_384);
    let values = ts.values();
    let mut g = c.benchmark_group("d2_partitioning");
    g.sample_size(10);
    g.bench_function("dp_single_eps", |b| {
        b.iter(|| NeaTS::builder().kinds(&[Kind::Linear]).epsilons(&[32]).build(&ts))
    });
    g.bench_function("greedy_single_eps", |b| {
        b.iter(|| neats_core::fit::greedy_partition(values, Kind::Linear, 32, 0))
    });
    g.finish();
}

fn d3_eps_sets(c: &mut Criterion) {
    let ts = Dataset::Ecg.generate(16_384);
    let mut g = c.benchmark_group("d3_eps_sets");
    g.sample_size(10);
    g.bench_function("single_eps", |b| b.iter(|| NeaTS::builder().epsilons(&[32]).build(&ts)));
    g.bench_function("paper_eps_set", |b| b.iter(|| NeaTS::builder().build(&ts)));
    g.finish();
}

fn d4_model_selection(c: &mut Criterion) {
    let ts = Dataset::AirPressure.generate(16_384);
    let mut g = c.benchmark_group("d4_model_selection");
    g.sample_size(10);
    g.bench_function("full", |b| b.iter(|| NeaTS::builder().build(&ts)));
    for frac in [0.05f64, 0.10, 0.25] {
        let policy = ModelSelection { sample_fraction: frac, top_k: 5 };
        g.bench_with_input(BenchmarkId::new("sneats", format!("{frac}")), &policy, |b, &p| {
            b.iter(|| NeaTS::builder().model_selection(p).build(&ts))
        });
    }
    g.finish();
}

fn d5_rank_structure(c: &mut Criterion) {
    let ts = Dataset::StocksUk.generate(65_536);
    let ef = NeaTS::builder().rank_mode(RankMode::EliasFano).build(&ts);
    let bv = NeaTS::builder().rank_mode(RankMode::BitVector).build(&ts);
    let idx = bench::query_indices(ts.len(), 512);
    let mut g = c.benchmark_group("d5_rank_structure");
    for (label, comp) in [("elias_fano", &ef), ("bitvector", &bv)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut acc = 0i64;
                for &k in &idx {
                    acc = acc.wrapping_add(comp.get(k));
                }
                acc
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    d1_kind_pool,
    d2_partitioning,
    d3_eps_sets,
    d4_model_selection,
    d5_rank_structure
);
criterion_main!(benches);
