//! Random-access latency of every compressor (the right plot of Fig. 3),
//! plus range scans of different sizes (Fig. 4's criterion view).

use bench::{lossless_roster, query_indices};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use timeseries::Dataset;

fn bench_get(c: &mut Criterion) {
    let ts = Dataset::WindDirection.generate(65_536);
    let idx = query_indices(ts.len(), 512);
    let mut g = c.benchmark_group("random_access");
    for comp in lossless_roster() {
        let compressed = comp.compress_boxed(&ts);
        g.bench_function(BenchmarkId::from_parameter(comp.name()), |b| {
            b.iter(|| {
                let mut acc = 0i64;
                for &k in &idx {
                    acc = acc.wrapping_add(compressed.get(k));
                }
                acc
            });
        });
    }
    g.finish();
}

fn bench_scan(c: &mut Criterion) {
    let ts = Dataset::WindDirection.generate(65_536);
    let mut g = c.benchmark_group("range_scan");
    for comp in lossless_roster() {
        let compressed = comp.compress_boxed(&ts);
        for range in [40usize, 640, 10_240] {
            g.bench_function(BenchmarkId::new(comp.name(), range), |b| {
                let starts = query_indices(ts.len() - range, 64);
                let mut out = Vec::with_capacity(range);
                b.iter(|| {
                    let mut acc = 0i64;
                    for &s in &starts {
                        out.clear();
                        compressed.scan_range(s, range, &mut out);
                        acc = acc.wrapping_add(*out.last().expect("non-empty range"));
                    }
                    acc
                });
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_get, bench_scan);
criterion_main!(benches);
