//! Microbenchmarks of the Theorem 1 fitter: longest-fragment computation
//! per function kind, and the full partitioner.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use neats_core::fit::{greedy_partition, Kind};
use neats_core::partition::{partition, positivity_shift, PartitionConfig};
use timeseries::Dataset;

fn bench_greedy_fit(c: &mut Criterion) {
    let ts = Dataset::IrBioTemp.generate(16_384);
    let values = ts.values();
    let shift = positivity_shift(values, 64);
    let mut g = c.benchmark_group("greedy_fit");
    g.throughput(Throughput::Bytes((values.len() * 8) as u64));
    for kind in Kind::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            b.iter(|| greedy_partition(values, kind, 64, shift));
        });
    }
    g.finish();
}

fn bench_partition(c: &mut Criterion) {
    let ts = Dataset::IrBioTemp.generate(16_384);
    let values = ts.values();
    let mut g = c.benchmark_group("partition");
    g.throughput(Throughput::Bytes((values.len() * 8) as u64));
    g.sample_size(10);
    for (label, kinds) in [
        ("linear_only", vec![Kind::Linear]),
        ("paper_default", Kind::NEATS_DEFAULT.to_vec()),
    ] {
        let shift = positivity_shift(values, 256);
        let cfg = PartitionConfig::lossless(&kinds, &[0, 2, 8, 32, 128], shift);
        g.bench_function(label, |b| b.iter(|| partition(values, &cfg)));
    }
    g.finish();
}

criterion_group!(benches, bench_greedy_fit, bench_partition);
criterion_main!(benches);
