//! Compression and decompression throughput of every lossless compressor
//! (the criterion view of Figs. 2–3's axes).

use bench::lossless_roster;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use timeseries::Dataset;

fn bench_compress(c: &mut Criterion) {
    let ts = Dataset::StocksUsa.generate(8192);
    let mut g = c.benchmark_group("compress");
    g.throughput(Throughput::Bytes(ts.uncompressed_bytes() as u64));
    g.sample_size(10);
    for comp in lossless_roster() {
        g.bench_with_input(BenchmarkId::from_parameter(comp.name()), &ts, |b, ts| {
            b.iter(|| comp.compress_boxed(ts));
        });
    }
    g.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let ts = Dataset::StocksUsa.generate(8192);
    let mut g = c.benchmark_group("decompress");
    g.throughput(Throughput::Bytes(ts.uncompressed_bytes() as u64));
    for comp in lossless_roster() {
        let compressed = comp.compress_boxed(&ts);
        g.bench_function(BenchmarkId::from_parameter(comp.name()), |b| {
            b.iter(|| compressed.decompress());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_compress, bench_decompress);
criterion_main!(benches);
