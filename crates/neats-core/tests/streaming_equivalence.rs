//! Streaming/batch equivalence: a [`NeaTSWriter`] must produce chunks that
//! are **byte-identical** to what the batch builder produces for the same
//! slice of the input, whatever mix of `push`/`extend` calls delivered the
//! values and wherever `flush` forced a short chunk. This pins down the
//! strongest possible claim about the streaming path: it is the batch
//! pipeline applied per chunk, with no hidden state leaking across
//! boundaries — so everything proven about batch archives (layout,
//! view-equivalence, conformance) transfers to streamed ones chunk by
//! chunk.

use neats_core::{NeaTS, NeaTSBuilder, NeaTSWriter};
use proptest::prelude::*;
use timeseries::{CompressedSeries, TimeSeries};

const THREADS: [usize; 3] = [1, 2, 4];

fn series_values(deltas: &[i64]) -> Vec<i64> {
    let mut v = 0i64;
    deltas.iter().map(|&d| { v += d; v }).collect()
}

/// Feeds `values` into a writer as `push(..)` up to `split` (flushing at the
/// requested positions) then one `extend(..)` for the rest, and checks every
/// resulting chunk against a fresh batch build of the same slice.
fn assert_streaming_equals_batch(
    builder: &NeaTSBuilder,
    values: &[i64],
    chunk_size: usize,
    split: usize,
    flush_at: &[usize],
) -> Result<(), TestCaseError> {
    let mut w = NeaTSWriter::new(builder.clone(), chunk_size);
    for (k, &v) in values[..split].iter().enumerate() {
        w.push(v);
        if flush_at.contains(&k) {
            w.flush();
        }
    }
    w.extend(values[split..].iter().copied());
    w.flush();
    prop_assert!(w.buffered().is_empty());
    prop_assert_eq!(w.len(), values.len());

    let mut base = 0usize;
    for (i, chunk) in w.chunks().iter().enumerate() {
        let slice = &values[base..base + chunk.len()];
        let batch = builder.build(&TimeSeries::from_values(slice.to_vec()));
        prop_assert_eq!(
            chunk.to_bytes(),
            batch.to_bytes(),
            "chunk {} ([{}, {})) differs from the batch build",
            i,
            base,
            base + chunk.len()
        );
        base += chunk.len();
    }
    prop_assert_eq!(base, values.len(), "chunks do not tile the stream");

    let finished = w.finish();
    prop_assert_eq!(finished.decompress(), values.to_vec());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary streams × chunk sizes × push/extend split points ×
    /// flush-forced boundaries, for the default builder and for SNeaTS
    /// model selection, across partitioner thread counts.
    #[test]
    fn writer_chunks_are_byte_identical_to_batch_builds(
        deltas in prop::collection::vec(-50i64..=50, 1..700),
        chunk_size in 8usize..300,
        split_seed in 0usize..10_000,
        flush_seeds in prop::collection::vec(0usize..10_000, 0..4),
        sneats in any::<bool>(),
        threads_idx in 0usize..THREADS.len(),
    ) {
        let values = series_values(&deltas);
        let n = values.len();
        let split = split_seed % (n + 1);
        let flush_at: Vec<usize> = flush_seeds.iter().map(|s| s % n).collect();
        let mut builder = NeaTS::builder().threads(THREADS[threads_idx]);
        if sneats {
            builder = builder.model_selection(Default::default());
        }
        assert_streaming_equals_batch(&builder, &values, chunk_size, split, &flush_at)?;
    }
}

/// The doc-level claim on a fixed, human-checkable case: uneven flush-forced
/// boundaries (100 | 1024 | 376 | …) still yield chunks the batch builder
/// reproduces byte for byte, with both the default and the SNeaTS builder.
#[test]
fn flush_forced_boundaries_match_batch_builds() {
    let values = series_values(&vec![3i64; 2600]);
    for builder in [NeaTS::builder(), NeaTS::builder().model_selection(Default::default())] {
        assert_streaming_equals_batch(&builder, &values, 1024, values.len(), &[99, 1499])
            .expect("byte equivalence");
    }
}
