//! Adversarial and boundary-condition tests for the core compressor:
//! inputs chosen to stress the geometry (collinear hulls, huge magnitudes),
//! the layout (single-point fragments, width-64 corrections), and the
//! numerics (values near i64 extremes, log-domain underflow).

use neats_core::fit::{longest_fragment, max_abs_residual, stab::StabbingLine};
use neats_core::{Kind, NeaTS, RankMode};
use timeseries::{CompressedSeries, TimeSeries};

#[test]
fn stabbing_line_collinear_hull_points() {
    // Many exactly-collinear constraint corners: hull degeneracies.
    let mut s = StabbingLine::new();
    for k in 1..=500 {
        let t = k as f64;
        assert!(s.try_add(t, 2.0 * t - 1.0, 2.0 * t + 1.0), "k={k}");
    }
    let l = s.solution().unwrap();
    assert!((l.slope - 2.0).abs() < 1e-9);
}

#[test]
fn stabbing_line_alternating_tight_slack() {
    // Alternating wide/zero-width segments around a line.
    let mut s = StabbingLine::new();
    for k in 1..=200 {
        let t = k as f64;
        let y = 0.5 * t;
        let (lo, hi) = if k % 2 == 0 { (y, y) } else { (y - 100.0, y + 100.0) };
        assert!(s.try_add(t, lo, hi), "k={k}");
    }
    let l = s.solution().unwrap();
    for k in (2..=200).step_by(2) {
        let t = k as f64;
        assert!((l.at(t) - 0.5 * t).abs() < 1e-6, "line misses exact point at {t}");
    }
}

#[test]
fn near_i64_extremes_compress_losslessly() {
    let values = vec![
        i64::MAX / 2,
        i64::MAX / 2 - 1,
        i64::MIN / 2,
        i64::MIN / 2 + 7,
        0,
        i64::MAX / 2,
        -1,
        1,
        i64::MIN / 2,
    ];
    let ts = TimeSeries::from_values(values.clone());
    for mode in [RankMode::EliasFano, RankMode::BitVector] {
        let c = NeaTS::builder().rank_mode(mode).build(&ts);
        assert_eq!(c.decompress(), values, "{mode:?}");
        for (k, &v) in values.iter().enumerate() {
            assert_eq!(c.get(k), v);
        }
    }
}

#[test]
fn alternating_extremes_force_wide_corrections() {
    // Residuals close to 2⁶² wide: exercises large correction widths.
    let values: Vec<i64> =
        (0..64).map(|k| if k % 2 == 0 { i64::MAX / 4 } else { i64::MIN / 4 }).collect();
    let ts = TimeSeries::from_values(values.clone());
    let c = NeaTS::builder().epsilons(&[0]).build(&ts);
    assert_eq!(c.decompress(), values);
}

#[test]
fn sawtooth_worst_case_for_every_kind() {
    // A sawtooth defeats every smooth family: fragments stay short but the
    // result must still be lossless and the layout consistent.
    let values: Vec<i64> = (0..1000).map(|k| if k % 2 == 0 { 1000 } else { -1000 }).collect();
    let ts = TimeSeries::from_values(values.clone());
    let c = NeaTS::builder().kinds(&Kind::ALL).build(&ts);
    assert_eq!(c.decompress(), values);
}

#[test]
fn log_domain_huge_dynamic_range() {
    // Values spanning 10 orders of magnitude: exponential fits must not
    // overflow, and the shift logic must hold at the small end.
    let values: Vec<i64> = (0..200).map(|k| 1i64 << (k % 40)).collect();
    let ts = TimeSeries::from_values(values.clone());
    let c = NeaTS::builder()
        .kinds(&[Kind::Linear, Kind::Exponential, Kind::Power, Kind::Gaussian])
        .build(&ts);
    assert_eq!(c.decompress(), values);
}

#[test]
fn longest_fragment_never_exceeds_epsilon_on_monotone_blowup() {
    // Steep super-exponential growth: fragments must end before the model
    // error exceeds ε.
    let values: Vec<i64> = (1..=60u32).map(|k| (k as i64).pow(3) * 7919).collect();
    for kind in Kind::ALL {
        let mut start = 0;
        while start < values.len() {
            let f = longest_fragment(&values, start, kind, 100, 0)
                .unwrap_or_else(|| panic!("{kind:?} failed at {start}"));
            let r = max_abs_residual(&values, &f, 0);
            assert!(r <= 101, "{kind:?}: residual {r}");
            start = f.end;
        }
    }
}

#[test]
fn two_element_series_all_kind_pools() {
    for kinds in [vec![Kind::Linear], Kind::NEATS_DEFAULT.to_vec(), Kind::ALL.to_vec()] {
        let ts = TimeSeries::from_values(vec![-5, 9]);
        let c = NeaTS::builder().kinds(&kinds).build(&ts);
        assert_eq!(c.decompress(), vec![-5, 9]);
    }
}

#[test]
fn strictly_decreasing_series() {
    let values: Vec<i64> = (0..5000).map(|k| 1_000_000 - 3 * k - (k % 11)).collect();
    let ts = TimeSeries::from_values(values.clone());
    let c = NeaTS::compress(&ts);
    assert_eq!(c.decompress(), values);
    assert!(c.fragment_count() < 100, "{} fragments on a near-line", c.fragment_count());
}

#[test]
fn repeated_identical_fragments_share_kind_table() {
    // A periodic pattern yields many fragments of the same kind; the
    // wavelet matrix over a 1-symbol alphabet must behave.
    let values: Vec<i64> = (0..4000).map(|k| (k % 100) * 10).collect();
    let ts = TimeSeries::from_values(values.clone());
    let c = NeaTS::builder().kinds(&[Kind::Linear]).build(&ts);
    assert_eq!(c.decompress(), values);
    let hist = c.kind_histogram();
    assert_eq!(hist.len(), 1);
    assert_eq!(hist[0].0, Kind::Linear);
}

#[test]
fn scan_range_all_boundaries() {
    let values: Vec<i64> = (0..2048).map(|k| k * k % 7919).collect();
    let ts = TimeSeries::from_values(values.clone());
    let c = NeaTS::compress(&ts);
    // Every fragment boundary, exercised as scan start and end.
    let mut boundaries = vec![0usize, values.len()];
    for i in 0..c.fragment_count() {
        boundaries.push(c.fragment(i).start);
    }
    boundaries.sort_unstable();
    boundaries.dedup();
    for w in boundaries.windows(2) {
        let (a, b) = (w[0], w[1]);
        let mut out = Vec::new();
        c.scan_range(a, b - a, &mut out);
        assert_eq!(out, &values[a..b], "boundary scan [{a}, {b})");
    }
}
