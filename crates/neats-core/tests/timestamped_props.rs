//! Property tests for [`neats_core::TimestampedNeaTS`]: every time→index
//! lookup is checked against a linear-scan oracle over the raw
//! `(timestamp, value)` pairs.

use neats_core::{NeaTS, TimestampedNeaTS};
use proptest::prelude::*;
use timeseries::TimeSeries;

/// Builds strictly-increasing timestamps from positive gaps.
fn stamps(base: u64, gaps: &[u64]) -> Vec<u64> {
    let mut t = base;
    gaps.iter()
        .map(|&g| {
            t += g;
            t
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lookups_match_linear_scan_oracle(
        base in 0u64..2_000_000_000,
        gaps in prop::collection::vec(1u64..500, 1..250),
        deltas in prop::collection::vec(-50i64..=50, 250),
        probes in prop::collection::vec((0usize..250, -3i64..=3), 1..30),
    ) {
        let timestamps = stamps(base, &gaps);
        let n = timestamps.len();
        let mut v = 0i64;
        let values: Vec<i64> = deltas[..n].iter().map(|&d| { v += d; v }).collect();
        let ts = TimeSeries::from_values(values.clone());
        let table = TimestampedNeaTS::compress(&timestamps, &ts, &NeaTS::builder()).unwrap();

        // Probe at and around recorded stamps (offsets cover hits and gaps).
        for &(idx, off) in &probes {
            let t = timestamps[idx % n].saturating_add_signed(off);
            // get_at: the value recorded exactly at t, if any.
            let oracle_get = timestamps
                .iter()
                .position(|&s| s == t)
                .map(|i| values[i]);
            prop_assert_eq!(table.get_at(t), oracle_get, "get_at({})", t);
            // lower_bound: index of the first stamp ≥ t.
            let oracle_lb = timestamps.iter().position(|&s| s >= t).unwrap_or(n);
            prop_assert_eq!(table.lower_bound(t), oracle_lb, "lower_bound({})", t);
        }

        // Time-interval queries against the filter oracle.
        for &(idx, off) in probes.iter().take(8) {
            let a = timestamps[idx % n].saturating_add_signed(off);
            let b = a.saturating_add(1000);
            let mut got = Vec::new();
            table.range_by_time(a, b, &mut got);
            let expected: Vec<(u64, i64)> = timestamps
                .iter()
                .zip(&values)
                .filter(|(&t, _)| t >= a && t <= b)
                .map(|(&t, &v)| (t, v))
                .collect();
            prop_assert_eq!(got, expected, "range_by_time({}, {})", a, b);
        }

        // Per-index accessors round-trip.
        for i in (0..n).step_by(17.max(n / 8)) {
            prop_assert_eq!(table.timestamp(i), timestamps[i]);
            prop_assert_eq!(table.value(i), values[i]);
        }
    }

    #[test]
    fn extreme_probe_points(
        base in 0u64..1_000_000,
        gaps in prop::collection::vec(1u64..100, 1..60),
    ) {
        let timestamps = stamps(base, &gaps);
        let n = timestamps.len();
        let ts = TimeSeries::from_values((0..n as i64).collect());
        let table = TimestampedNeaTS::compress(&timestamps, &ts, &NeaTS::builder()).unwrap();
        // Before the first stamp, after the last, and the u64 extremes.
        prop_assert_eq!(table.get_at(0), timestamps.first().and_then(|&t| (t == 0).then_some(0)));
        prop_assert_eq!(table.lower_bound(0), 0);
        prop_assert_eq!(table.lower_bound(u64::MAX), n);
        prop_assert_eq!(table.get_at(u64::MAX), None);
        let mut all = Vec::new();
        table.range_by_time(0, u64::MAX, &mut all);
        prop_assert_eq!(all.len(), n);
    }
}
