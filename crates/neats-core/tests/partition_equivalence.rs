//! The two-stage parallel partitioner's hard guarantee: for every input,
//! every kind pool, and every thread count, it is *bit-identical* to the
//! reference one-pass sweep of Algorithm 1 — same `cost_bits`, same fragment
//! boundaries/origins/params, same ε choices — and therefore every archive
//! byte is independent of the thread count.

use neats_core::partition::{partition, partition_reference, positivity_shift, PartitionConfig};
use neats_core::{Kind, NeaTS, Partition};
use rand::{rngs::StdRng, Rng, SeedableRng};
use timeseries::TimeSeries;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Asserts every field of both partitions matches exactly (f64 params
/// compared bit-for-bit via `Fragment: PartialEq`).
fn assert_identical(a: &Partition, b: &Partition, what: &str) {
    assert_eq!(a.cost_bits, b.cost_bits, "{what}: cost_bits");
    assert_eq!(a.epsilons, b.epsilons, "{what}: epsilon choices");
    assert_eq!(a.fragments.len(), b.fragments.len(), "{what}: fragment count");
    for (i, (fa, fb)) in a.fragments.iter().zip(&b.fragments).enumerate() {
        assert_eq!(fa, fb, "{what}: fragment {i}");
    }
}

/// A generator zoo: random walks, regime switches, smooth nonlinear shapes,
/// constants, and values that go negative (exercising the shift).
fn series(shape: usize, n: usize, seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    match shape % 5 {
        0 => {
            // plain random walk
            let mut v = 0i64;
            (0..n).map(|_| { v += rng.random_range(-25..26); v }).collect()
        }
        1 => {
            // regime switches: jumps every ~80 points
            let mut v = 100i64;
            (0..n)
                .map(|i| {
                    if i % 83 == 0 {
                        v += rng.random_range(-500..500);
                    }
                    v += rng.random_range(-3..4);
                    v
                })
                .collect()
        }
        2 => {
            // smooth sine + noise (nonlinear kinds win here)
            (0..n)
                .map(|k| {
                    (3000.0 * ((k as f64) / 40.0).sin()) as i64 + rng.random_range(-5..6)
                })
                .collect()
        }
        3 => {
            // mostly constant with occasional spikes
            (0..n).map(|_| if rng.random_range(0..50) == 0 { rng.random_range(-1000..1000) } else { 7 }).collect()
        }
        _ => {
            // negative-trending walk (forces a positivity shift)
            let mut v = -50i64;
            (0..n).map(|_| { v += rng.random_range(-9..8); v }).collect()
        }
    }
}

#[test]
fn two_stage_equals_reference_across_shapes_kinds_and_threads() {
    let kind_pools: [&[Kind]; 3] = [&[Kind::Linear], &Kind::NEATS_DEFAULT, &Kind::ALL];
    let eps_sets: [&[u64]; 2] = [&[0, 2, 8], &[0, 2, 8, 32, 128]];
    for shape in 0..5 {
        for (pi, kinds) in kind_pools.iter().enumerate() {
            let epsilons = eps_sets[shape % 2];
            let values = series(shape, 700 + 101 * shape, 1000 + shape as u64 * 7 + pi as u64);
            let max_eps = epsilons.iter().copied().max().unwrap();
            let shift = positivity_shift(&values, max_eps);
            let base = PartitionConfig::lossless(kinds, epsilons, shift);
            let reference = partition_reference(&values, &base);
            for threads in THREAD_COUNTS {
                let cfg = base.clone().with_threads(threads);
                let two_stage = partition(&values, &cfg);
                assert_identical(
                    &two_stage,
                    &reference,
                    &format!("shape={shape} pool={pi} threads={threads}"),
                );
            }
        }
    }
}

#[test]
fn two_stage_equals_reference_lossy_config() {
    for shape in 0..5 {
        let values = series(shape, 600, 77 + shape as u64);
        let shift = positivity_shift(&values, 16);
        let base = PartitionConfig::lossy(&Kind::NEATS_DEFAULT, 16, shift);
        let reference = partition_reference(&values, &base);
        for threads in THREAD_COUNTS {
            let two_stage = partition(&values, &base.clone().with_threads(threads));
            assert_identical(&two_stage, &reference, &format!("lossy shape={shape} threads={threads}"));
        }
    }
}

#[test]
fn randomized_property_many_seeds() {
    // Narrow configs, many seeds: a cheap property sweep over the space the
    // two big tests cannot cover.
    for seed in 0..30u64 {
        let values = series(seed as usize, 200 + (seed as usize % 7) * 50, seed);
        let shift = positivity_shift(&values, 8);
        let cfg = PartitionConfig::lossless(&Kind::NEATS_DEFAULT, &[0, 2, 8], shift);
        let reference = partition_reference(&values, &cfg);
        let two_stage = partition(&values, &cfg.clone().with_threads(3));
        assert_identical(&two_stage, &reference, &format!("seed={seed}"));
    }
}

#[test]
fn empty_and_tiny_inputs_agree() {
    let cfg = PartitionConfig::lossless(&Kind::NEATS_DEFAULT, &[0, 2], 10);
    for values in [vec![], vec![42i64], vec![1, 2], vec![-5, -5, -5]] {
        let shift = positivity_shift(&values, 2);
        let cfg = PartitionConfig { shift, ..cfg.clone() };
        let reference = partition_reference(&values, &cfg);
        for threads in THREAD_COUNTS {
            let two_stage = partition(&values, &cfg.clone().with_threads(threads));
            assert_identical(&two_stage, &reference, &format!("tiny {values:?} threads={threads}"));
        }
    }
}

#[test]
fn archive_bytes_are_thread_count_invariant() {
    // End-to-end determinism: the serialised archive must be byte-identical
    // regardless of how many workers partitioned it.
    for shape in 0..3 {
        let values = series(shape, 3000, 9 + shape as u64);
        let ts = TimeSeries::from_values(values);
        let archives: Vec<Vec<u8>> = THREAD_COUNTS
            .iter()
            .map(|&t| NeaTS::builder().threads(t).build(&ts).to_bytes())
            .collect();
        for (i, bytes) in archives.iter().enumerate().skip(1) {
            assert_eq!(
                bytes, &archives[0],
                "shape={shape}: archive differs between {} and {} threads",
                THREAD_COUNTS[0], THREAD_COUNTS[i]
            );
        }
    }
}

#[test]
fn sneats_model_selection_is_thread_count_invariant() {
    // Model selection partitions a sample internally; the selected pair set
    // (and thus the archive) must not depend on the thread count either.
    let values = series(2, 4000, 5);
    let ts = TimeSeries::from_values(values);
    let archives: Vec<Vec<u8>> = THREAD_COUNTS
        .iter()
        .map(|&t| NeaTS::sneats().threads(t).build(&ts).to_bytes())
        .collect();
    assert!(archives.windows(2).all(|w| w[0] == w[1]), "sneats archives differ across threads");
}
