//! Asserts the acceptance criterion that `ArchiveView::open` performs no
//! heap allocation proportional to the archive size, via a counting global
//! allocator: opening a 16× larger archive must allocate the same small,
//! constant number of bytes (kind table, section table, a handful of
//! bounded `Vec`s), and a point query through the view must allocate
//! nothing at all.

use neats_core::{ArchiveView, Kind, NeaTS};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use timeseries::TimeSeries;

/// Counts every byte handed out (allocations only; frees are irrelevant for
/// the "does open allocate O(archive)?" question).
struct CountingAlloc;

static ALLOCATED: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size(), Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size(), Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED.fetch_add(new_size.saturating_sub(layout.size()), Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Bytes allocated while running `f`.
fn allocated_during<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = ALLOCATED.load(Ordering::Relaxed);
    let out = f();
    (ALLOCATED.load(Ordering::Relaxed) - before, out)
}

fn archive(n: usize) -> Vec<u8> {
    let mut v = 0i64;
    let values: Vec<i64> = (0..n as i64).map(|k| { v += (k * 37 % 23) - 11; v }).collect();
    let ts = TimeSeries::from_values(values);
    // A cheap pool keeps compression fast; the layout exercised by `open`
    // (every section type) is identical to the default pool's.
    NeaTS::builder().kinds(&[Kind::Linear, Kind::Quadratic]).epsilons(&[0, 4, 32]).build(&ts).to_bytes()
}

// A single test function: the counter is process-global, so concurrently
// running measurements would bleed into each other's windows.
#[test]
fn open_allocates_constant_memory() {
    // A generous constant budget: the bounded section/kind/level `Vec`s fit
    // in well under 4 KiB regardless of archive size.
    const BUDGET: usize = 4096;

    let small = archive(4_000);
    let large = archive(64_000);
    assert!(
        large.len() > small.len() * 4,
        "archives must differ in size for the test to mean anything ({} vs {})",
        large.len(),
        small.len()
    );

    let (alloc_small, view_small) = allocated_during(|| ArchiveView::open(&small).unwrap());
    let (alloc_large, view_large) = allocated_during(|| ArchiveView::open(&large).unwrap());
    assert!(alloc_small <= BUDGET, "small open allocated {alloc_small} bytes");
    assert!(
        alloc_large <= BUDGET,
        "large open allocated {alloc_large} bytes (archive {} bytes)",
        large.len()
    );
    // Opening 16× the data must not allocate more than a constant extra.
    assert!(
        alloc_large <= alloc_small + 512,
        "open allocation grows with archive size: {alloc_small} -> {alloc_large}"
    );

    // Point lookups and aggregate estimates through the view are
    // allocation-free.
    let (alloc_q, _) = allocated_during(|| {
        let mut acc = 0i64;
        for k in (0..view_large.len()).step_by(997) {
            acc = acc.wrapping_add(view_large.at(k));
        }
        std::hint::black_box(acc)
    });
    assert_eq!(alloc_q, 0, "point queries allocated {alloc_q} bytes");
    let (alloc_est, _) = allocated_during(|| {
        std::hint::black_box(view_large.sum_range_estimate(100, view_large.len() - 200))
    });
    assert_eq!(alloc_est, 0, "sum estimate allocated {alloc_est} bytes");
    drop(view_small);

    // Contrast — and a sanity check of the measurement itself: the owned
    // decode path of the same archive *does* allocate at least the payload.
    let (alloc_owned, owned) =
        allocated_during(|| neats_core::NeaTSCompressed::from_bytes(&large).unwrap());
    assert!(
        alloc_owned >= large.len() / 2,
        "owned open allocated only {alloc_owned} bytes for a {} byte archive",
        large.len()
    );
    drop(owned);
}
