//! Differential tests for the zero-copy read path: every answer from
//! [`ArchiveView`] must equal the answer from the owned structure decoded
//! from the *same* bytes, across arbitrary walks × rank modes ×
//! lossless/lossy × partitioner thread counts, and archive bytes must
//! round-trip unchanged through the container frame.
//!
//! This suite is the correctness argument for `ArchiveView`: the view
//! re-implements the query algorithms over borrowed bytes, so equivalence
//! is established by property testing rather than by construction.

use neats_core::{ArchiveView, Kind, NeaTS, NeaTSCompressed, NeaTSLossy, RankMode};
use proptest::prelude::*;
use timeseries::{CompressedSeries, TimeSeries};

/// Thread counts the acceptance criteria call out; selected by index so
/// proptest can shrink over them.
const THREADS: [usize; 3] = [1, 2, 4];

fn series(deltas: &[i64]) -> TimeSeries {
    let mut v = 0i64;
    TimeSeries::from_values(deltas.iter().map(|&d| { v += d; v }).collect())
}

/// Compares the full lossless query surface of `view` against `owned`.
fn assert_lossless_equivalent(
    owned: &NeaTSCompressed,
    view: &ArchiveView<'_>,
    ranges: &[(usize, usize)],
) -> Result<(), TestCaseError> {
    let v = view.as_lossless().expect("lossless archive");
    prop_assert_eq!(view.len(), owned.len());
    prop_assert_eq!(view.fragment_count(), owned.fragment_count());
    prop_assert_eq!(v.shift(), owned.shift());
    prop_assert_eq!(view.materialize(), owned.decompress());
    prop_assert_eq!(view.kind_histogram(), owned.kind_histogram());
    for k in 0..owned.len() {
        prop_assert_eq!(view.at(k), owned.get(k), "at({})", k);
    }
    for i in 0..owned.fragment_count() {
        prop_assert_eq!(v.fragment(i), owned.fragment(i), "fragment({})", i);
        prop_assert_eq!(v.correction_width_of(i), owned.correction_width_of(i));
    }
    for &(s, c) in ranges {
        let mut got = Vec::new();
        v.scan_range(s, c, &mut got);
        let mut want = Vec::new();
        owned.scan_range(s, c, &mut want);
        prop_assert_eq!(got, want, "scan_range({}, {})", s, c);
        prop_assert_eq!(v.sum_range_exact(s, c), owned.sum_range_exact(s, c));
        prop_assert_eq!(v.sum_range_estimate(s, c), owned.sum_range_estimate(s, c));
        prop_assert_eq!(v.mean_range_estimate(s, c), owned.mean_range_estimate(s, c));
        if c > 0 {
            prop_assert_eq!(
                v.min_max_range_estimate(s, c),
                owned.min_max_range_estimate(s, c)
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lossless_view_equals_owned(
        deltas in prop::collection::vec(-60i64..=60, 0..350),
        use_bitvector in any::<bool>(),
        thread_idx in 0usize..THREADS.len(),
        range_seeds in prop::collection::vec((0usize..10_000, 0usize..10_000), 1..6),
    ) {
        let ts = series(&deltas);
        let mode = if use_bitvector { RankMode::BitVector } else { RankMode::EliasFano };
        let owned = NeaTS::builder()
            .rank_mode(mode)
            .threads(THREADS[thread_idx])
            .build(&ts);
        let bytes = owned.to_bytes();

        // Bytes round-trip unchanged through the container frame.
        let reread = NeaTSCompressed::from_bytes(&bytes).unwrap();
        prop_assert_eq!(reread.to_bytes(), bytes.clone());

        let view = ArchiveView::open(&bytes).unwrap();
        let n = ts.len();
        let ranges: Vec<(usize, usize)> = range_seeds
            .iter()
            .filter(|_| n > 0)
            .map(|&(a, b)| {
                let s = a % n;
                (s, b % (n - s + 1))
            })
            .collect();
        assert_lossless_equivalent(&owned, &view, &ranges)?;
    }

    #[test]
    fn lossy_view_equals_owned(
        deltas in prop::collection::vec(-60i64..=60, 0..350),
        eps in 0u64..120,
        thread_idx in 0usize..THREADS.len(),
        range_seeds in prop::collection::vec((0usize..10_000, 0usize..10_000), 1..5),
    ) {
        let ts = series(&deltas);
        let owned = NeaTS::builder()
            .threads(THREADS[thread_idx])
            .build_lossy(&ts, eps);
        let bytes = owned.to_bytes();

        let reread = NeaTSLossy::from_bytes(&bytes).unwrap();
        prop_assert_eq!(reread.to_bytes(), bytes.clone());

        let view = ArchiveView::open(&bytes).unwrap();
        let v = view.as_lossy().expect("lossy archive");
        prop_assert_eq!(view.len(), owned.len());
        prop_assert_eq!(v.eps(), owned.eps());
        prop_assert_eq!(view.fragment_count(), owned.fragment_count());
        prop_assert_eq!(view.materialize(), owned.reconstruct());
        prop_assert_eq!(view.kind_histogram(), {
            // The owned NeaTSLossy exposes no histogram; derive it per fragment.
            let mut counts: Vec<(neats_core::Kind, usize)> = Vec::new();
            for i in 0..owned.fragment_count() {
                let kind = owned.fragment(i).kind;
                match counts.iter_mut().find(|(k, _)| *k == kind) {
                    Some((_, c)) => *c += 1,
                    None => counts.push((kind, 1)),
                }
            }
            // Match the view's kind-table order (first-seen order).
            counts
        });
        let n = ts.len();
        for k in 0..n {
            prop_assert_eq!(view.at(k), owned.approximate(k), "approximate({})", k);
        }
        for i in 0..owned.fragment_count() {
            prop_assert_eq!(v.fragment(i), owned.fragment(i), "fragment({})", i);
        }
        for &(a, b) in range_seeds.iter().filter(|_| n > 0) {
            let s = a % n;
            let c = b % (n - s + 1);
            let mut got = Vec::new();
            v.scan_range(s, c, &mut got);
            let recon = owned.reconstruct();
            prop_assert_eq!(&got[..], &recon[s..s + c], "scan_range({}, {})", s, c);
            prop_assert_eq!(v.sum_range_estimate(s, c), owned.sum_range_estimate(s, c));
        }
    }

    #[test]
    fn thread_count_never_changes_archive_bytes(
        deltas in prop::collection::vec(-30i64..=30, 1..250),
    ) {
        let ts = series(&deltas);
        let archives: Vec<Vec<u8>> = THREADS
            .iter()
            .map(|&t| NeaTS::builder().threads(t).build(&ts).to_bytes())
            .collect();
        prop_assert_eq!(&archives[0], &archives[1]);
        prop_assert_eq!(&archives[0], &archives[2]);
        // And the view over the shared bytes answers like the 1-thread owned build.
        let owned = NeaTS::builder().threads(1).build(&ts);
        let view = ArchiveView::open(&archives[0]).unwrap();
        for k in (0..ts.len()).step_by(7) {
            prop_assert_eq!(view.at(k), owned.get(k));
        }
    }
}

/// Deterministic differential sweep with richer kind pools and both rank
/// modes, for the shapes proptest's uniform walks rarely produce.
#[test]
fn deterministic_shapes_differential() {
    // Extreme-magnitude values overflow the positivity shift of log-domain
    // kinds (a documented fitter precondition), so that shape fits with the
    // linear family only, as in the owned-path edge-case tests.
    let all: &[Kind] = &Kind::ALL;
    let linear: &[Kind] = &[Kind::Linear];
    let shapes: Vec<(&str, &[Kind], Vec<i64>)> = vec![
        ("constant", all, vec![7; 500]),
        ("line", all, (0..600).map(|k| 3 * k - 900).collect()),
        ("parabola", all, (0..500i64).map(|k| (k - 250) * (k - 250) / 10).collect()),
        ("exponentialish", all, (0..300).map(|k| (1.02f64.powi(k as i32) * 50.0) as i64).collect()),
        ("sine", all, (0..800).map(|k| (4000.0 * ((k as f64) / 60.0).sin()) as i64).collect()),
        ("single", all, vec![-42]),
        ("extremes", linear, vec![i64::MAX / 4, i64::MIN / 4, 0, i64::MAX / 4, -1, 1]),
    ];
    for (name, kinds, values) in shapes {
        let ts = TimeSeries::from_values(values.clone());
        for mode in [RankMode::EliasFano, RankMode::BitVector] {
            let owned = NeaTS::builder().kinds(kinds).rank_mode(mode).build(&ts);
            let bytes = owned.to_bytes();
            let view = ArchiveView::open(&bytes).unwrap();
            assert_eq!(view.materialize(), values, "{name} {mode:?} materialize");
            for k in 0..values.len() {
                assert_eq!(view.at(k), owned.get(k), "{name} {mode:?} at({k})");
            }
            let v = view.as_lossless().unwrap();
            let n = values.len();
            assert_eq!(v.sum_range_exact(0, n), owned.sum_range_exact(0, n), "{name} {mode:?}");
            assert_eq!(
                v.sum_range_estimate(0, n),
                owned.sum_range_estimate(0, n),
                "{name} {mode:?}"
            );
        }
        let lossy = NeaTS::builder().kinds(kinds).build_lossy(&ts, 10);
        let bytes = lossy.to_bytes();
        let view = ArchiveView::open(&bytes).unwrap();
        assert_eq!(view.materialize(), lossy.reconstruct(), "{name} lossy");
    }
}
