//! Asserts the acceptance criterion that the per-request observability
//! hot path — stage spans and [`neats_core::TraceRing::record`] — performs
//! zero heap allocation, via the same counting global allocator as
//! `view_alloc.rs`. Construction allocates the fixed ring once; recording
//! into it must never allocate again, no matter how many requests pass.

use neats_core::obs::{span_begin, span_take, stage, Stage, STAGE_COUNT};
use neats_core::{AtomicHistogram, TraceRing};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATED: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size(), Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size(), Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED.fetch_add(new_size.saturating_sub(layout.size()), Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocated_during<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = ALLOCATED.load(Ordering::Relaxed);
    let out = f();
    (ALLOCATED.load(Ordering::Relaxed) - before, out)
}

// One test function: the counter is process-global, so parallel test
// threads would bleed into each other's measurement windows.
#[test]
fn per_request_observability_is_allocation_free() {
    let ring = TraceRing::new(64);
    let hist = AtomicHistogram::new();

    // Warm up once (first span/ring touch, lazy thread-local init).
    span_begin();
    {
        let _g = stage(Stage::Parse);
    }
    let warm = span_take().unwrap_or([0; STAGE_COUNT]);
    ring.record("/warmup", 200, 1, false, &warm);
    hist.record(1);

    // The steady-state request loop: span begin → nested stage guards →
    // span close-out → histogram + ring record. More requests than the
    // ring holds, so wrap-around is covered too.
    let (bytes, _) = allocated_during(|| {
        for k in 0..1_000u64 {
            span_begin();
            {
                let _p = stage(Stage::Parse);
            }
            {
                let _r = stage(Stage::Route);
                let _c = stage(Stage::Cache);
                drop(_c);
                let _d = stage(Stage::Decode);
                drop(_d);
                let _w = stage(Stage::Render);
            }
            let stage_ns = span_take().unwrap_or([0; STAGE_COUNT]);
            hist.record(stage_ns.iter().sum::<u64>().max(1));
            ring.record(
                "/q/some-series?idx=0..1000",
                200,
                k + 1,
                k % 7 == 0,
                &stage_ns,
            );
        }
    });
    assert_eq!(bytes, 0, "1000 traced requests allocated {bytes} bytes");

    // Reading the ring allocates (it clones paths out) — but only the
    // reader pays, which is the debug endpoint, not the request path.
    let entries = ring.entries();
    assert_eq!(entries.len(), 64);
    assert!(entries[0].path.starts_with("/q/some-series"));

    // A disabled ring (capacity 0) is also allocation-free to record into.
    let off = TraceRing::new(0);
    let (bytes, _) = allocated_during(|| {
        for _ in 0..100 {
            off.record("/ignored", 200, 1, false, &[0; STAGE_COUNT]);
        }
    });
    assert_eq!(bytes, 0, "disabled ring allocated {bytes} bytes");
}
