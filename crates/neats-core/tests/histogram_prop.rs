//! Property tests for [`neats_core::AtomicHistogram`]: concurrent
//! recording checked against a locked oracle, snapshot merging, and the
//! bucket-boundary edges the log-linear layout must get right.

use neats_core::histogram::{bucket_of, bucket_upper, BUCKET_COUNT};
use neats_core::{AtomicHistogram, HistogramSnapshot};
use proptest::prelude::*;
use std::sync::Mutex;

/// The oracle: the same values pushed through a mutex-guarded `Vec`.
#[derive(Default)]
struct LockedOracle {
    values: Mutex<Vec<u64>>,
}

impl LockedOracle {
    fn record(&self, v: u64) {
        self.values.lock().unwrap().push(v);
    }

    fn count(&self) -> u64 {
        self.values.lock().unwrap().len() as u64
    }

    fn sum(&self) -> u64 {
        self.values.lock().unwrap().iter().fold(0u64, |a, &v| a.wrapping_add(v))
    }

    /// Per-bucket counts through the same `bucket_of` mapping.
    fn buckets(&self) -> Vec<u64> {
        let mut out = vec![0u64; BUCKET_COUNT];
        for &v in self.values.lock().unwrap().iter() {
            out[bucket_of(v)] += 1;
        }
        out
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Four threads hammer the same histogram; the final snapshot must
    /// agree exactly with the locked oracle on count, sum, and every
    /// bucket — no update may be lost or double-counted.
    #[test]
    fn concurrent_records_match_locked_oracle(
        batches in prop::collection::vec(
            prop::collection::vec(0u64..2_000_000_000_000, 1..200),
            4,
        ),
    ) {
        let hist = AtomicHistogram::new();
        let oracle = LockedOracle::default();
        std::thread::scope(|s| {
            for batch in &batches {
                let (hist, oracle) = (&hist, &oracle);
                s.spawn(move || {
                    for &v in batch {
                        hist.record(v);
                        oracle.record(v);
                    }
                });
            }
        });
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count(), oracle.count());
        prop_assert_eq!(snap.sum(), oracle.sum());
        prop_assert_eq!(snap.buckets(), &oracle.buckets()[..]);
    }

    /// Merging two snapshots equals recording both value streams into one
    /// histogram: counts and buckets add, max takes the larger.
    #[test]
    fn merge_equals_combined_recording(
        a in prop::collection::vec(0u64..u64::MAX, 0..200),
        b in prop::collection::vec(0u64..u64::MAX, 0..200),
    ) {
        let (ha, hb, hall) = (AtomicHistogram::new(), AtomicHistogram::new(), AtomicHistogram::new());
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        let want = hall.snapshot();
        prop_assert_eq!(merged.count(), want.count());
        prop_assert_eq!(merged.sum(), want.sum());
        prop_assert_eq!(merged.max(), want.max());
        prop_assert_eq!(merged.buckets(), want.buckets());
        // Quantiles are derived purely from the buckets, so they agree too.
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            prop_assert_eq!(merged.quantile(q), want.quantile(q), "q={}", q);
        }
    }

    /// Every value lands in the bucket that brackets it:
    /// `bucket_upper(i-1) <= v < bucket_upper(i)` — with the one documented
    /// exception that the top bucket's exclusive bound `2^64` saturates to
    /// `u64::MAX`, which therefore sits *at* its own bound.
    #[test]
    fn bucket_mapping_brackets_every_value(v in 0u64..=u64::MAX) {
        let i = bucket_of(v);
        prop_assert!(i < BUCKET_COUNT);
        prop_assert!(
            v < bucket_upper(i) || (i == BUCKET_COUNT - 1 && v == u64::MAX),
            "v={} upper={}", v, bucket_upper(i)
        );
        if i > 0 {
            prop_assert!(bucket_upper(i - 1) <= v, "v={} prev upper={}", v, bucket_upper(i - 1));
        }
    }
}

/// The exact boundary edges: zero, `u64::MAX`, and values straddling each
/// (exclusive) bucket upper bound must map consistently.
#[test]
fn bucket_boundary_edges() {
    // Zero lives in the first bucket; its exclusive bound is 1.
    assert_eq!(bucket_of(0), 0);
    assert_eq!(bucket_upper(0), 1);

    // The top bucket absorbs the maximum value (its exclusive bound 2^64
    // saturates to u64::MAX).
    assert_eq!(bucket_of(u64::MAX), BUCKET_COUNT - 1);
    assert_eq!(bucket_upper(BUCKET_COUNT - 1), u64::MAX);

    // Upper bounds are strictly increasing, and each exclusive bound
    // straddles its bucket: `bound - 1` is the bucket's largest member,
    // `bound` itself already belongs to the next.
    for i in 0..BUCKET_COUNT - 1 {
        let hi = bucket_upper(i);
        assert!(hi < bucket_upper(i + 1), "bounds not increasing at {i}");
        assert_eq!(bucket_of(hi - 1), i, "{} should close bucket {i}", hi - 1);
        assert_eq!(bucket_of(hi), i + 1, "straddle {hi} from bucket {i}");
    }

    // Recording the boundary values round-trips through a snapshot.
    let hist = AtomicHistogram::new();
    hist.record(0);
    hist.record(u64::MAX);
    hist.record(bucket_upper(7) - 1);
    hist.record(bucket_upper(7));
    let snap = hist.snapshot();
    assert_eq!(snap.count(), 4);
    assert_eq!(snap.max(), u64::MAX);
    assert_eq!(snap.buckets()[0], 1);
    assert_eq!(snap.buckets()[7], 1);
    assert_eq!(snap.buckets()[8], 1);
    assert_eq!(snap.buckets()[BUCKET_COUNT - 1], 1);
    // An empty snapshot merges as the identity.
    let mut merged = HistogramSnapshot::empty();
    merged.merge(&snap);
    assert_eq!(merged.buckets(), snap.buckets());
    assert_eq!(merged.sum(), snap.sum());
}
