//! # neats-core — the NeaTS compressor
//!
//! A from-scratch implementation of *NeaTS: Nonlinear error-bounded
//! approximation for Time Series* (ICDE 2025):
//!
//! * [`fit`] — Theorem 1: optimal longest-fragment ε-approximation with
//!   linear, exponential, quadratic, radical, logarithmic, power, polynomial
//!   and Gaussian families, via a generalised O'Rourke stabbing-line
//!   algorithm.
//! * [`partition`] — Algorithm 1: the shortest-path partitioner minimising
//!   the encoded size over all `(function, ε)` choices.
//! * [`layout`] — the succinct compressed representation with full
//!   decompression (Algorithm 2), O(1)-ish random access (Algorithm 3) and
//!   range scans.
//! * [`lossy`] — NeaTS-L, the lossy variant with a maximum-error guarantee.
//! * [`view`] — [`ArchiveView`], the zero-copy read path answering queries
//!   straight from serialized archive bytes (the recommended serving path).
//! * [`variants`] — LeaTS (linear-only) and SNeaTS (model selection).
//! * [`parallel`] / [`histogram`] — the std-only threading primitives
//!   (work-stealing fan-out, closeable worker queue) and the wait-free
//!   latency histogram shared with the store and serving layers.
//!
//! How these modules compose into the full system (container formats, read
//! paths, threading model) is documented in `ARCHITECTURE.md` at the
//! repository root.
//!
//! ## Example
//!
//! ```
//! use neats_core::NeaTS;
//! use timeseries::{CompressedSeries, TimeSeries};
//!
//! let ts = TimeSeries::from_values((0..500).map(|k| k * k / 10).collect());
//! let compressed = NeaTS::compress(&ts);
//! assert_eq!(compressed.decompress(), ts.values());
//! assert_eq!(compressed.get(123), ts.values()[123]);
//! ```

#![warn(missing_docs)]
pub mod aggregate;
pub mod backoff;
pub mod failpoint;
pub mod fit;
pub mod histogram;
pub mod layout;
pub mod lossy;
pub mod obs;
pub mod parallel;
pub mod partition;
pub mod serial;
pub mod streaming;
pub mod timestamped;
pub mod variants;
pub mod view;

pub use aggregate::Estimate;
pub use backoff::Backoff;
pub use failpoint::FailpointFile;
pub use fit::{Fragment, Kind, Params};
pub use histogram::{AtomicHistogram, HistogramSnapshot};
pub use layout::{NeaTSCompressed, RankMode};
pub use obs::{Registry, Stage, TraceEntry, TraceRing};
pub use lossy::NeaTSLossy;
pub use partition::{default_epsilons, positivity_shift, Pair, Partition, PartitionConfig};
pub use serial::{frame_info, ArchiveFlavor, Section};
pub use streaming::{ChunkedNeaTS, NeaTSWriter};
pub use timestamped::{TimestampError, TimestampedNeaTS};
pub use variants::ModelSelection;
pub use view::{ArchiveView, LosslessView, LossyView};

use timeseries::{Compressor, TimeSeries};

/// Entry point for building NeaTS compressors.
pub struct NeaTS;

impl NeaTS {
    /// A builder with the paper's defaults: the linear, exponential,
    /// quadratic and radical function families, the automatic ε set
    /// `{0, 2, 4, …, 2^⌈log Δ⌉}`, and Elias-Fano fragment ranks.
    pub fn builder() -> NeaTSBuilder {
        NeaTSBuilder::default()
    }

    /// Compresses with the default configuration.
    pub fn compress(ts: &TimeSeries) -> NeaTSCompressed {
        Self::builder().build(ts)
    }

    /// The LeaTS variant: linear functions only (§IV-C1).
    pub fn leats() -> NeaTSBuilder {
        NeaTSBuilder { kinds: vec![Kind::Linear], ..Default::default() }
    }

    /// The SNeaTS variant: model selection keeps the top-5 most-used
    /// `(f, ε)` pairs from the first 10% of the data (§IV-C1).
    pub fn sneats() -> NeaTSBuilder {
        NeaTSBuilder { model_selection: Some(ModelSelection::default()), ..Default::default() }
    }
}

/// Configurable NeaTS compression pipeline.
#[derive(Clone, Debug)]
pub struct NeaTSBuilder {
    kinds: Vec<Kind>,
    epsilons: Option<Vec<u64>>,
    rank_mode: RankMode,
    model_selection: Option<ModelSelection>,
    threads: usize,
}

impl Default for NeaTSBuilder {
    fn default() -> Self {
        Self {
            kinds: Kind::NEATS_DEFAULT.to_vec(),
            epsilons: None,
            rank_mode: RankMode::default(),
            model_selection: None,
            threads: 0,
        }
    }
}

impl NeaTSBuilder {
    /// Sets the function families Algorithm 1 may choose from.
    pub fn kinds(mut self, kinds: &[Kind]) -> Self {
        assert!(!kinds.is_empty(), "need at least one function kind");
        self.kinds = kinds.to_vec();
        self
    }

    /// Sets an explicit error-bound set E (default: `{0, 2, …, 2^⌈log Δ⌉}`
    /// derived from the data range).
    pub fn epsilons(mut self, epsilons: &[u64]) -> Self {
        assert!(!epsilons.is_empty(), "need at least one epsilon");
        self.epsilons = Some(epsilons.to_vec());
        self
    }

    /// Chooses the rank structure for the fragment-start array `S`.
    pub fn rank_mode(mut self, mode: RankMode) -> Self {
        self.rank_mode = mode;
        self
    }

    /// Enables SNeaTS-style model selection.
    pub fn model_selection(mut self, policy: ModelSelection) -> Self {
        self.model_selection = Some(policy);
        self
    }

    /// Sets the worker-thread count for the partitioner's parallel stage
    /// (`0` = automatic: `NEATS_THREADS`, else all available cores). The
    /// compressed output is bit-identical for every thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    fn epsilon_set(&self, ts: &TimeSeries) -> Vec<u64> {
        self.epsilons.clone().unwrap_or_else(|| default_epsilons(ts.delta()))
    }

    /// Runs the full lossless pipeline: shift → (optional model selection) →
    /// Algorithm 1 → succinct encoding.
    pub fn build(&self, ts: &TimeSeries) -> NeaTSCompressed {
        let values = ts.values();
        let epsilons = self.epsilon_set(ts);
        let max_eps = epsilons.iter().copied().max().unwrap_or(0);
        let shift = positivity_shift(values, max_eps);
        let cfg = match self.model_selection {
            Some(policy) if !values.is_empty() => {
                let pairs = variants::select_pairs(
                    values,
                    &self.kinds,
                    &epsilons,
                    shift,
                    policy,
                    self.threads,
                );
                PartitionConfig { pairs, ..PartitionConfig::lossless(&self.kinds, &epsilons, shift) }
            }
            _ => PartitionConfig::lossless(&self.kinds, &epsilons, shift),
        }
        .with_threads(self.threads);
        let part = partition::partition(values, &cfg);
        NeaTSCompressed::encode(values, &part, shift, self.rank_mode)
    }

    /// Runs the lossy pipeline (NeaTS-L) under the error bound `eps`.
    pub fn build_lossy(&self, ts: &TimeSeries, eps: u64) -> NeaTSLossy {
        NeaTSLossy::compress_with_threads(ts, &self.kinds, eps, self.threads)
    }
}

/// A named, reusable compressor wrapper implementing the benchmark trait.
#[derive(Clone, Debug)]
pub struct NeaTSCompressor {
    builder: NeaTSBuilder,
    name: &'static str,
}

impl NeaTSCompressor {
    /// Full NeaTS.
    pub fn neats() -> Self {
        Self { builder: NeaTS::builder(), name: "NeaTS" }
    }

    /// Linear-only LeaTS.
    pub fn leats() -> Self {
        Self { builder: NeaTS::leats(), name: "LeaTS" }
    }

    /// Model-selected SNeaTS.
    pub fn sneats() -> Self {
        Self { builder: NeaTS::sneats(), name: "SNeaTS" }
    }

    /// Wraps a custom builder under a display name.
    pub fn custom(builder: NeaTSBuilder, name: &'static str) -> Self {
        Self { builder, name }
    }
}

impl Compressor for NeaTSCompressor {
    type Output = NeaTSCompressed;

    fn name(&self) -> &'static str {
        self.name
    }

    fn compress(&self, ts: &TimeSeries) -> NeaTSCompressed {
        self.builder.build(ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use timeseries::CompressedSeries;

    fn walk(n: usize, seed: u64) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v = 0i64;
        TimeSeries::from_values((0..n).map(|_| { v += rng.random_range(-30..31); v }).collect())
    }

    #[test]
    fn default_pipeline_roundtrips() {
        let ts = walk(4000, 1);
        let c = NeaTS::compress(&ts);
        assert_eq!(c.decompress(), ts.values());
    }

    #[test]
    fn leats_roundtrips_and_uses_only_linear() {
        let ts = walk(3000, 2);
        let c = NeaTS::leats().build(&ts);
        assert_eq!(c.decompress(), ts.values());
        for (kind, count) in c.kind_histogram() {
            if count > 0 {
                assert_eq!(kind, Kind::Linear);
            }
        }
    }

    #[test]
    fn sneats_roundtrips() {
        let ts = walk(5000, 3);
        let c = NeaTS::sneats().build(&ts);
        assert_eq!(c.decompress(), ts.values());
    }

    #[test]
    fn sneats_no_worse_than_2x_neats_size() {
        let ts = walk(8000, 4);
        let full = NeaTS::compress(&ts);
        let fast = NeaTS::sneats().build(&ts);
        assert!(
            (fast.size_in_bytes() as f64) < 2.0 * full.size_in_bytes() as f64,
            "sneats {} vs neats {}",
            fast.size_in_bytes(),
            full.size_in_bytes()
        );
    }

    #[test]
    fn custom_epsilons_and_kinds() {
        let ts = walk(2000, 5);
        let c = NeaTS::builder()
            .kinds(&[Kind::Linear, Kind::Sqrt])
            .epsilons(&[0, 4, 16])
            .rank_mode(RankMode::BitVector)
            .build(&ts);
        assert_eq!(c.decompress(), ts.values());
    }

    #[test]
    fn compressor_trait_is_usable() {
        let ts = walk(1000, 6);
        let comp = NeaTSCompressor::neats();
        assert_eq!(comp.name(), "NeaTS");
        let out = comp.compress(&ts);
        assert_eq!(out.len(), ts.len());
        assert_eq!(out.get(500), ts.values()[500]);
    }

    #[test]
    fn empty_series_via_builder() {
        let ts = TimeSeries::from_values(vec![]);
        let c = NeaTS::compress(&ts);
        assert!(c.is_empty());
    }
}
