//! Aggregate queries over compressed data — the paper's §VI future work:
//! "exploit the information encoded by the functions to efficiently answer
//! aggregate queries on the time series data".
//!
//! Because every fragment stores a closed-form function and a *bounded*
//! correction stream, a range SUM can be answered two ways:
//!
//! * **exactly**, by scanning (one random access + sequential decode); or
//! * **approximately in O(fragments)**, by summing the functions in closed
//!   form and never touching the corrections — with a hard error bound
//!   derived from each fragment's correction width (`Σ len·(2^{w−1}+1)`).
//!
//! Polynomial families (linear, the quadratics, the cubics) and the
//! exponential family admit O(1) closed-form range sums; the remaining
//! kinds fall back to evaluating the function per point, which still skips
//! the correction stream entirely.

use crate::fit::{model_value, Fragment, Kind};
use crate::layout::NeaTSCompressed;
use crate::lossy::NeaTSLossy;
use timeseries::CompressedSeries;

/// An approximate aggregate with a guaranteed absolute error bound.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// The estimated aggregate value.
    pub value: f64,
    /// Guaranteed bound: `|value − exact| ≤ max_error`.
    pub max_error: f64,
}

/// Σ u for integer u in `[a, z]`.
#[inline]
fn sum_u(a: f64, z: f64) -> f64 {
    (a + z) * (z - a + 1.0) / 2.0
}

/// Σ u² for integer u in `[a, z]` (via the prefix formula n(n+1)(2n+1)/6).
#[inline]
fn sum_u2(a: f64, z: f64) -> f64 {
    let p = |n: f64| n * (n + 1.0) * (2.0 * n + 1.0) / 6.0;
    p(z) - p(a - 1.0)
}

/// Σ u³ for integer u in `[a, z]` (via (n(n+1)/2)²).
#[inline]
fn sum_u3(a: f64, z: f64) -> f64 {
    let p = |n: f64| {
        let t = n * (n + 1.0) / 2.0;
        t * t
    };
    p(z) - p(a - 1.0)
}

/// Closed-form Σ f(u) for u in `[a, z]`, or `None` for kinds without one.
fn closed_form_sum(frag: &Fragment, a: f64, z: f64) -> Option<f64> {
    let p = frag.params;
    let len = z - a + 1.0;
    let v = match frag.kind {
        Kind::Linear => p.m * sum_u(a, z) + p.b * len,
        Kind::Quadratic => p.m * sum_u2(a, z) + p.b * sum_u(a, z) + p.extra * len,
        Kind::QuadOffset => p.m * sum_u2(a, z) + p.b * len,
        Kind::QuadLinear => p.m * sum_u2(a, z) + p.b * sum_u(a, z),
        Kind::CubicLinear => p.m * sum_u3(a, z) + p.b * sum_u(a, z),
        Kind::CubicQuad => p.m * sum_u3(a, z) + p.b * sum_u2(a, z),
        Kind::Exponential => {
            // Σ e^{m·u + b} = e^{m·a + b} · (e^{m·len} − 1)/(e^m − 1)
            let r = p.m.exp();
            if !r.is_finite() || (r - 1.0).abs() < 1e-12 {
                return None; // flat or overflowing: pointwise is safer
            }
            let geo = ((p.m * len).exp() - 1.0) / (r - 1.0);
            (p.m * a + p.b).exp() * geo
        }
        Kind::Sqrt | Kind::Logarithmic | Kind::Power | Kind::Gaussian => return None,
    };
    v.is_finite().then_some(v)
}

/// Sums `⌊f(u)⌋ − shift` over `[from, to)` (global indices) for one
/// fragment, using the closed form when available. Shared with the
/// zero-copy [`crate::view`] path so estimates are bit-identical.
pub(crate) fn fragment_model_sum(frag: &Fragment, from: usize, to: usize, shift: i64) -> f64 {
    let a = (from - frag.origin + 1) as f64;
    let z = (to - frag.origin) as f64;
    let len = (to - from) as f64;
    let shift_term =
        if frag.kind.log_domain() { shift as f64 * len } else { 0.0 };
    match closed_form_sum(frag, a, z) {
        // The closed form sums f, not ⌊f⌋: the ⌊·⌋ gap is charged to the
        // caller's error bound (one unit per point).
        Some(s) => s - shift_term,
        None => (from..to).map(|k| model_value(frag, k, shift) as f64).sum(),
    }
}

/// Candidate local coordinates where `f` can attain an extreme over
/// `[a, z]`: the endpoints plus any interior stationary points.
fn extreme_candidates(frag: &Fragment, a: f64, z: f64) -> [Option<f64>; 4] {
    let p = frag.params;
    let mut out = [Some(a), Some(z), None, None];
    let mut push = |u: f64| {
        if u > a && u < z {
            for slot in out.iter_mut() {
                if slot.is_none() {
                    *slot = Some(u);
                    return;
                }
            }
        }
    };
    match frag.kind {
        // Monotone families: endpoints suffice.
        Kind::Linear | Kind::Sqrt | Kind::Logarithmic | Kind::Exponential | Kind::Power => {}
        // Quadratic forms m·u² + b·u (+c): vertex at −b/(2m); the Gaussian's
        // exponent shares the same stationary point.
        Kind::Quadratic | Kind::QuadLinear | Kind::Gaussian => {
            if p.m != 0.0 {
                push(-p.b / (2.0 * p.m));
            }
        }
        Kind::QuadOffset => {} // m·u² + b is monotone on u ≥ 1 > 0
        // Cubics m·u³ + b·u^d: f' = 3m·u² + b (d=1) or 3m·u² + 2b·u (d=2).
        Kind::CubicLinear => {
            if p.m != 0.0 && -p.b / (3.0 * p.m) > 0.0 {
                push((-p.b / (3.0 * p.m)).sqrt());
            }
        }
        Kind::CubicQuad => {
            if p.m != 0.0 {
                push(-2.0 * p.b / (3.0 * p.m));
            }
        }
    }
    out
}

/// `(min, max)` of `⌊f(u)⌋ − shift` over global positions `[from, to)` for
/// one fragment, from the candidate extremes (integer coordinates: the
/// continuous stationary point is bracketed by its floor/ceil neighbours).
/// Shared with the zero-copy [`crate::view`] path.
pub(crate) fn fragment_model_extremes(frag: &Fragment, from: usize, to: usize, shift: i64) -> (i64, i64) {
    let a = (from - frag.origin + 1) as f64;
    let z = (to - frag.origin) as f64;
    let mut lo = i64::MAX;
    let mut hi = i64::MIN;
    let mut consider = |u: f64| {
        let u = u.clamp(a, z);
        let k = frag.origin + u.round() as usize - 1;
        let k = k.clamp(from, to - 1);
        let v = model_value(frag, k, shift);
        lo = lo.min(v);
        hi = hi.max(v);
    };
    for cand in extreme_candidates(frag, a, z).into_iter().flatten() {
        // Evaluate the integer neighbours of each continuous candidate.
        consider(cand.floor());
        consider(cand.ceil());
    }
    (lo, hi)
}

impl NeaTSCompressed {
    /// Exact range sum (scan-based), as `i128` to avoid overflow.
    pub fn sum_range_exact(&self, start: usize, count: usize) -> i128 {
        let mut out = Vec::with_capacity(count);
        self.scan_range(start, count, &mut out);
        out.iter().map(|&v| v as i128).sum()
    }

    /// Approximate range sum from the learned functions only, in
    /// O(#overlapping fragments) for closed-form kinds. The bound accounts
    /// for the per-fragment correction magnitude (`2^{w−1}`) plus one unit
    /// of flooring per point.
    pub fn sum_range_estimate(&self, start: usize, count: usize) -> Estimate {
        if count == 0 {
            return Estimate { value: 0.0, max_error: 0.0 };
        }
        debug_assert!(start + count <= self.len());
        let end = start + count;
        let mut i = self.fragment_index_of(start);
        let mut pos = start;
        let mut value = 0.0f64;
        let mut max_error = 0.0f64;
        while pos < end {
            let frag = self.fragment(i);
            let to = frag.end.min(end);
            value += fragment_model_sum(&frag, pos, to, self.shift());
            let w = self.correction_width_of(i);
            let bias = if w == 0 { 0.0 } else { (1u64 << (w - 1)) as f64 };
            max_error += (to - pos) as f64 * (bias + 1.0);
            pos = to;
            i += 1;
        }
        Estimate { value, max_error }
    }

    /// Approximate range mean with the same guarantee, scaled by `1/count`.
    pub fn mean_range_estimate(&self, start: usize, count: usize) -> Estimate {
        let s = self.sum_range_estimate(start, count);
        let n = count.max(1) as f64;
        Estimate { value: s.value / n, max_error: s.max_error / n }
    }

    /// Approximate range minimum and maximum from the learned functions
    /// only (no correction reads), each with a guaranteed error bound of
    /// the fragment's correction magnitude.
    ///
    /// Extremes of each fragment's model come from endpoint/stationary-point
    /// analysis: O(1) per overlapping fragment.
    pub fn min_max_range_estimate(&self, start: usize, count: usize) -> (Estimate, Estimate) {
        assert!(count > 0, "min/max of an empty range is undefined");
        debug_assert!(start + count <= self.len());
        let end = start + count;
        let mut i = self.fragment_index_of(start);
        let mut pos = start;
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        let mut bound = 0.0f64;
        while pos < end {
            let frag = self.fragment(i);
            let to = frag.end.min(end);
            let (flo, fhi) = fragment_model_extremes(&frag, pos, to, self.shift());
            lo = lo.min(flo);
            hi = hi.max(fhi);
            let w = self.correction_width_of(i);
            let bias = if w == 0 { 0.0 } else { (1u64 << (w - 1)) as f64 };
            bound = bound.max(bias);
            pos = to;
            i += 1;
        }
        (
            Estimate { value: lo as f64, max_error: bound },
            Estimate { value: hi as f64, max_error: bound },
        )
    }
}

impl NeaTSLossy {
    /// Approximate range sum from the lossy model: error bound
    /// `count·(ε+1)` by the NeaTS-L guarantee.
    pub fn sum_range_estimate(&self, start: usize, count: usize) -> Estimate {
        if count == 0 {
            return Estimate { value: 0.0, max_error: 0.0 };
        }
        debug_assert!(start + count <= self.len());
        let end = start + count;
        let mut i = self.fragment_index_of(start);
        let mut pos = start;
        let mut value = 0.0f64;
        while pos < end {
            let frag = self.fragment(i);
            let to = frag.end.min(end);
            value += fragment_model_sum(&frag, pos, to, self.shift());
            pos = to;
            i += 1;
        }
        // ε from the guarantee, +1 for flooring, +1 for the closed form
        // summing f instead of ⌊f⌋.
        Estimate { value, max_error: count as f64 * (self.eps() as f64 + 2.0) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Kind, NeaTS};
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use timeseries::TimeSeries;

    fn mixed_series(n: usize, seed: u64) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v = 10_000i64;
        TimeSeries::from_values(
            (0..n)
                .map(|k| {
                    v += rng.random_range(-8..9) + ((k as f64 / 300.0).sin() * 4.0) as i64;
                    v
                })
                .collect(),
        )
    }

    #[test]
    fn closed_forms_match_pointwise() {
        // For every closed-form kind, the formula must equal the naive sum.
        let p = crate::Params { m: 0.37, b: -4.2, extra: 11.0 };
        for kind in [
            Kind::Linear,
            Kind::Quadratic,
            Kind::QuadOffset,
            Kind::QuadLinear,
            Kind::CubicLinear,
            Kind::CubicQuad,
        ] {
            let frag = Fragment { kind, params: p, start: 0, end: 50, origin: 0 };
            let naive: f64 = (1..=50).map(|u| kind.eval(p, u as f64)).sum();
            let cf = closed_form_sum(&frag, 1.0, 50.0).expect("closed form exists");
            assert!(
                (naive - cf).abs() < 1e-6 * naive.abs().max(1.0),
                "{kind:?}: naive {naive} vs closed {cf}"
            );
        }
        // Exponential too.
        let p = crate::Params { m: 0.05, b: 2.0, extra: 0.0 };
        let frag = Fragment { kind: Kind::Exponential, params: p, start: 0, end: 40, origin: 0 };
        let naive: f64 = (1..=40).map(|u| Kind::Exponential.eval(p, u as f64)).sum();
        let cf = closed_form_sum(&frag, 1.0, 40.0).unwrap();
        assert!((naive - cf).abs() < 1e-6 * naive, "exp: {naive} vs {cf}");
    }

    #[test]
    fn estimate_within_bound_of_exact() {
        let ts = mixed_series(10_000, 1);
        let c = NeaTS::compress(&ts);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let start = rng.random_range(0..ts.len() - 1);
            let count = rng.random_range(1..(ts.len() - start).min(2000));
            let exact = c.sum_range_exact(start, count) as f64;
            let est = c.sum_range_estimate(start, count);
            assert!(
                (est.value - exact).abs() <= est.max_error,
                "range ({start},{count}): est {} exact {exact} bound {}",
                est.value,
                est.max_error
            );
        }
    }

    #[test]
    fn exact_sum_matches_values() {
        let ts = mixed_series(3000, 3);
        let c = NeaTS::compress(&ts);
        let expected: i128 = ts.values()[100..700].iter().map(|&v| v as i128).sum();
        assert_eq!(c.sum_range_exact(100, 600), expected);
    }

    #[test]
    fn mean_estimate_scales() {
        let ts = mixed_series(5000, 4);
        let c = NeaTS::compress(&ts);
        let s = c.sum_range_estimate(1000, 500);
        let m = c.mean_range_estimate(1000, 500);
        assert!((m.value - s.value / 500.0).abs() < 1e-9);
        assert!((m.max_error - s.max_error / 500.0).abs() < 1e-9);
    }

    #[test]
    fn lossy_estimate_within_bound() {
        let ts = mixed_series(8000, 5);
        let eps = 64u64;
        let l = NeaTS::builder().build_lossy(&ts, eps);
        let exact: f64 = ts.values()[2000..3000].iter().map(|&v| v as f64).sum();
        let est = l.sum_range_estimate(2000, 1000);
        assert!(
            (est.value - exact).abs() <= est.max_error,
            "est {} exact {exact} bound {}",
            est.value,
            est.max_error
        );
    }

    #[test]
    fn min_max_estimate_within_bound() {
        let ts = mixed_series(8000, 7);
        let c = NeaTS::compress(&ts);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..40 {
            let start = rng.random_range(0..ts.len() - 1);
            let count = rng.random_range(1..(ts.len() - start).min(1500));
            let slice = &ts.values()[start..start + count];
            let true_min = *slice.iter().min().unwrap() as f64;
            let true_max = *slice.iter().max().unwrap() as f64;
            let (lo, hi) = c.min_max_range_estimate(start, count);
            assert!(
                (lo.value - true_min).abs() <= lo.max_error,
                "min est {} true {true_min} bound {}",
                lo.value,
                lo.max_error
            );
            assert!(
                (hi.value - true_max).abs() <= hi.max_error,
                "max est {} true {true_max} bound {}",
                hi.value,
                hi.max_error
            );
        }
    }

    #[test]
    fn min_max_on_parabola_finds_the_vertex() {
        // A downward parabola whose peak is strictly inside the range: the
        // stationary-point analysis must find it, not just the endpoints.
        let values: Vec<i64> = (0..2001i64).map(|k| -(k - 1000) * (k - 1000) + 999).collect();
        let ts = TimeSeries::from_values(values.clone());
        let c = NeaTS::compress(&ts);
        let (_, hi) = c.min_max_range_estimate(0, 2001);
        let true_max = *values.iter().max().unwrap() as f64;
        assert!((hi.value - true_max).abs() <= hi.max_error, "{} vs {true_max}", hi.value);
    }

    #[test]
    fn empty_range() {
        let ts = mixed_series(100, 6);
        let c = NeaTS::compress(&ts);
        assert_eq!(c.sum_range_estimate(50, 0), Estimate { value: 0.0, max_error: 0.0 });
        assert_eq!(c.sum_range_exact(50, 0), 0);
    }

    #[test]
    fn estimate_is_fragment_bounded_work() {
        // On a long exact line, the whole-range estimate is one closed-form
        // evaluation and its error bound is just the flooring term.
        let ts = TimeSeries::from_values((0..100_000).map(|k| 7 * k + 3).collect());
        let c = NeaTS::compress(&ts);
        assert_eq!(c.fragment_count(), 1);
        let est = c.sum_range_estimate(0, 100_000);
        let exact = c.sum_range_exact(0, 100_000) as f64;
        assert!((est.value - exact).abs() <= est.max_error);
        assert!(est.max_error <= 100_000.0 * 2.0);
    }
}
