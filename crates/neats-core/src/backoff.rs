//! Capped exponential backoff with jitter, for retry loops that must not
//! hammer a failing resource (a full disk, a flaky device) nor synchronize
//! with other retriers.
//!
//! The delay for attempt *k* grows as `base × 2^k`, capped at `cap`, then
//! jittered into the half-open upper half of that window (`[d/2, d)`, the
//! "equal jitter" scheme): retries spread out in time instead of arriving
//! in lockstep, while the expected delay still doubles per attempt. The
//! jitter source is a tiny xorshift generator seeded from
//! [`std::collections::hash_map::RandomState`], so the module needs no
//! external randomness dependency and stays `std`-only like the rest of
//! the crate.
//!
//! ```
//! use neats_core::backoff::Backoff;
//! use std::time::Duration;
//!
//! let mut b = Backoff::new(Duration::from_millis(10), Duration::from_secs(1));
//! let first = b.next_delay();
//! assert!(first >= Duration::from_millis(5) && first < Duration::from_millis(10));
//! b.reset(); // a success rewinds the schedule
//! assert_eq!(b.attempt(), 0);
//! ```

use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hasher};
use std::time::Duration;

/// A retry-delay schedule: capped exponential growth with equal jitter.
#[derive(Clone, Debug)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: u64,
}

impl Backoff {
    /// A schedule starting at `base` (the uncapped delay of the first
    /// attempt) and never exceeding `cap`. A zero `base` is clamped to one
    /// millisecond so the schedule always makes progress.
    pub fn new(base: Duration, cap: Duration) -> Self {
        let base = base.max(Duration::from_millis(1));
        Self { base, cap: cap.max(base), attempt: 0, rng: seed() }
    }

    /// Failed attempts since the last [`Self::reset`].
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The jittered delay to sleep before the next attempt; advances the
    /// schedule. The result lies in `[d/2, d)` where
    /// `d = min(base × 2^attempt, cap)`.
    pub fn next_delay(&mut self) -> Duration {
        // Saturate the shift well before Duration arithmetic could
        // overflow; the cap clamps the result anyway.
        let exp = self.attempt.min(32);
        self.attempt = self.attempt.saturating_add(1);
        let full = self
            .base
            .checked_mul(1u32 << exp.min(31))
            .map_or(self.cap, |d| d.min(self.cap));
        let half = full / 2;
        half + Duration::from_nanos(self.next_u64() % half.as_nanos().max(1) as u64)
    }

    /// Rewinds the schedule after a success, so the next failure starts
    /// again from `base`.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// xorshift64*: tiny, fast, and plenty for decorrelating sleep times.
    fn next_u64(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A nonzero seed from the process-wide hash randomness.
fn seed() -> u64 {
    let mut h = RandomState::new().build_hasher();
    h.write_u64(0x9E37_79B9_7F4A_7C15);
    h.finish() | 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_and_stay_capped() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(80);
        let mut b = Backoff::new(base, cap);
        let mut prev_full = Duration::ZERO;
        for k in 0..10u32 {
            let d = b.next_delay();
            let full = base.checked_mul(1 << k.min(20)).map_or(cap, |f| f.min(cap));
            assert!(d >= full / 2 && d < full, "attempt {k}: {d:?} not in [{:?}, {full:?})", full / 2);
            assert!(full >= prev_full, "uncapped schedule must be monotone");
            prev_full = full;
        }
        assert_eq!(b.attempt(), 10);
        b.reset();
        assert_eq!(b.attempt(), 0);
        let d = b.next_delay();
        assert!(d < base, "after reset the first delay jitters below base again: {d:?}");
    }

    #[test]
    fn zero_base_is_clamped() {
        let mut b = Backoff::new(Duration::ZERO, Duration::ZERO);
        for _ in 0..5 {
            let d = b.next_delay();
            assert!(d <= Duration::from_millis(1));
        }
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let mut b = Backoff::new(Duration::from_secs(1), Duration::from_secs(30));
        for _ in 0..100 {
            let d = b.next_delay();
            assert!(d >= Duration::from_secs(15) || b.attempt() < 6);
            assert!(d < Duration::from_secs(30));
        }
    }
}
