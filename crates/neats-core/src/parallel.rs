//! Minimal scoped-thread building blocks shared by the parallel stages.
//!
//! The container this project builds in has no network access, so instead of
//! a rayon/crossbeam dependency this module keeps two small std-only
//! primitives:
//!
//! * [`parallel_map_indexed`] — the work-stealing fan-out used by the
//!   two-stage partitioner and the store writer. Tasks are pulled from an
//!   atomic counter (cheap dynamic load balancing — the per-pair greedy
//!   tilings the partitioner fans out have very uneven costs) and results
//!   are re-ordered by task index, so the output is deterministic regardless
//!   of scheduling.
//! * [`Queue`] — a closeable blocking MPMC queue, the feed between an
//!   accept loop and a fixed worker pool (`neats-serve` hands accepted
//!   connections to its workers through one of these).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Resolves a thread-count request: an explicit nonzero `threads` wins,
/// otherwise the `NEATS_THREADS` environment variable, otherwise
/// [`std::thread::available_parallelism`].
pub fn effective_threads(threads: usize) -> usize {
    effective_threads_env(threads, "NEATS_THREADS")
}

/// [`effective_threads`] with a caller-chosen environment variable, for
/// subsystems with their own knob (the serving layer reads
/// `NEATS_SERVE_THREADS`): an explicit nonzero `threads` wins, otherwise a
/// positive integer in `env_var`, otherwise
/// [`std::thread::available_parallelism`].
pub fn effective_threads_env(threads: usize, env_var: &str) -> usize {
    if threads != 0 {
        return threads;
    }
    if let Some(n) = std::env::var(env_var)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A closeable blocking multi-producer multi-consumer queue.
///
/// Producers [`push`](Self::push); consumers [`pop`](Self::pop), blocking
/// while the queue is empty and open. [`close`](Self::close) wakes every
/// blocked consumer; items already queued are still drained, and `pop`
/// returns `None` only once the queue is both closed and empty — the
/// natural shutdown protocol for a worker pool ("finish what was accepted,
/// then exit").
pub struct Queue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
}

impl<T> Default for Queue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Queue<T> {
    /// An empty, open queue.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues `item` and wakes one consumer. Returns `false` (dropping
    /// the item) if the queue is already closed.
    pub fn push(&self, item: T) -> bool {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return false;
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        true
    }

    /// Dequeues the oldest item, blocking while the queue is empty and
    /// open. Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue lock");
        }
    }

    /// Dequeues the oldest item if one is immediately available, never
    /// blocking — the companion to [`pop`](Self::pop) for consumers that
    /// multiplex the queue with other readiness sources (the serve
    /// reactor's shard inboxes are drained this way between poll wake-ups).
    /// Returns `None` whenever the queue is empty, closed or not.
    pub fn try_pop(&self) -> Option<T> {
        self.state.lock().expect("queue lock").items.pop_front()
    }

    /// Closes the queue: future pushes are refused, blocked consumers wake,
    /// and already-queued items remain poppable until drained.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock").closed
    }

    /// Items currently queued (racy under concurrent use; for stats only).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty (racy; for stats only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Maps `f` over task indices `0..n` on up to `threads` scoped threads and
/// returns the results in task order.
///
/// Falls back to a plain serial loop when one thread suffices (`threads ≤ 1`
/// or fewer than two tasks), so small inputs pay no spawn overhead.
pub fn parallel_map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut parts: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel_map worker panicked"))
            .collect()
    });
    // Scatter the per-thread batches back into task order.
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for part in &mut parts {
        for (i, t) in part.drain(..) {
            debug_assert!(out[i].is_none(), "task {i} computed twice");
            out[i] = Some(t);
        }
    }
    out.into_iter()
        .map(|o| o.expect("every task claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let f = |i: usize| i * i + 1;
        let serial: Vec<usize> = (0..100).map(f).collect();
        for threads in [1, 2, 3, 4, 8] {
            assert_eq!(
                parallel_map_indexed(100, threads, f),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn handles_empty_and_tiny() {
        assert_eq!(parallel_map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map_indexed(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn more_threads_than_tasks() {
        assert_eq!(parallel_map_indexed(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn uneven_task_costs_keep_order() {
        // Tasks with wildly different costs must still come back in order.
        let out = parallel_map_indexed(50, 4, |i| {
            let mut acc = 0u64;
            for k in 0..(i % 7) * 10_000 {
                acc = acc.wrapping_add(k as u64);
            }
            std::hint::black_box(acc);
            i
        });
        assert_eq!(out, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn effective_threads_explicit_wins() {
        assert_eq!(effective_threads(3), 3);
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads_env(5, "NEATS_NO_SUCH_VAR"), 5);
        assert!(effective_threads_env(0, "NEATS_NO_SUCH_VAR") >= 1);
    }

    #[test]
    fn queue_delivers_in_order_and_drains_after_close() {
        let q: Queue<u32> = Queue::new();
        assert!(q.push(1));
        assert!(q.push(2));
        q.close();
        assert!(!q.push(3), "push after close must be refused");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_closed());
        assert!(q.is_empty());
    }

    #[test]
    fn queue_feeds_a_worker_pool() {
        let q: Queue<usize> = Queue::new();
        let total: AtomicUsize = AtomicUsize::new(0);
        let popped: AtomicUsize = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    while let Some(v) = q.pop() {
                        total.fetch_add(v, Ordering::Relaxed);
                        popped.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            for v in 1..=100 {
                assert!(q.push(v));
            }
            q.close();
        });
        assert_eq!(popped.load(Ordering::Relaxed), 100);
        assert_eq!(total.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn try_pop_never_blocks() {
        let q: Queue<u32> = Queue::new();
        assert_eq!(q.try_pop(), None, "empty + open: no item, no block");
        assert!(q.push(9));
        assert_eq!(q.try_pop(), Some(9));
        q.close();
        assert_eq!(q.try_pop(), None, "empty + closed: still just None");
    }

    #[test]
    fn queue_pop_blocks_until_push() {
        let q: Queue<&'static str> = Queue::new();
        std::thread::scope(|s| {
            let h = s.spawn(|| q.pop());
            // The consumer should be blocked; feed it.
            std::thread::sleep(std::time::Duration::from_millis(10));
            assert!(q.push("hello"));
            assert_eq!(h.join().unwrap(), Some("hello"));
        });
    }
}
