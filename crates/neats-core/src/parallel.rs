//! Minimal scoped-thread fan-out used by the two-stage partitioner.
//!
//! The container this project builds in has no network access, so instead of
//! a rayon dependency we keep a ~60-line work-stealing `parallel_map` on
//! `std::thread::scope`. Tasks are pulled from an atomic counter (cheap
//! dynamic load balancing — the per-pair greedy tilings the partitioner
//! fans out have very uneven costs) and results are re-ordered by task
//! index, so the output is deterministic regardless of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a thread-count request: an explicit nonzero `threads` wins,
/// otherwise the `NEATS_THREADS` environment variable, otherwise
/// [`std::thread::available_parallelism`].
pub fn effective_threads(threads: usize) -> usize {
    if threads != 0 {
        return threads;
    }
    if let Some(n) = std::env::var("NEATS_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Maps `f` over task indices `0..n` on up to `threads` scoped threads and
/// returns the results in task order.
///
/// Falls back to a plain serial loop when one thread suffices (`threads ≤ 1`
/// or fewer than two tasks), so small inputs pay no spawn overhead.
pub fn parallel_map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut parts: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("parallel_map worker panicked")).collect()
    });
    // Scatter the per-thread batches back into task order.
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for part in &mut parts {
        for (i, t) in part.drain(..) {
            debug_assert!(out[i].is_none(), "task {i} computed twice");
            out[i] = Some(t);
        }
    }
    out.into_iter().map(|o| o.expect("every task claimed exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let f = |i: usize| i * i + 1;
        let serial: Vec<usize> = (0..100).map(f).collect();
        for threads in [1, 2, 3, 4, 8] {
            assert_eq!(parallel_map_indexed(100, threads, f), serial, "threads={threads}");
        }
    }

    #[test]
    fn handles_empty_and_tiny() {
        assert_eq!(parallel_map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map_indexed(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn more_threads_than_tasks() {
        assert_eq!(parallel_map_indexed(3, 64, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn uneven_task_costs_keep_order() {
        // Tasks with wildly different costs must still come back in order.
        let out = parallel_map_indexed(50, 4, |i| {
            let mut acc = 0u64;
            for k in 0..(i % 7) * 10_000 {
                acc = acc.wrapping_add(k as u64);
            }
            std::hint::black_box(acc);
            i
        });
        assert_eq!(out, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn effective_threads_explicit_wins() {
        assert_eq!(effective_threads(3), 3);
        assert!(effective_threads(0) >= 1);
    }
}
