//! The NeaTS compressed layout (paper §III-C) and its query algorithms.
//!
//! A compressed series is the tuple `⟨S, B, O, C, K, P⟩`:
//!
//! * `S` — fragment start positions, Elias-Fano coded (or a plain bitvector
//!   with constant-time rank, the paper's O(1) alternative);
//! * `B` — per-fragment correction bit widths, bit-packed;
//! * `O` — cumulative correction bit offsets, Elias-Fano coded;
//! * `C` — the packed corrections bit string;
//! * `K` — the function-kind string, a wavelet matrix supporting `rank_f`;
//! * `P` — per-kind concatenated parameter arrays, indexed by `K.rank_f(i)`.
//!
//! [`NeaTSCompressed::decompress`] is the paper's Algorithm 2,
//! [`NeaTSCompressed::get`] is Algorithm 3, and
//! [`NeaTSCompressed::scan_range`] is the range query of §IV-C4 (one random
//! access followed by a sequential scan).

use crate::fit::{max_abs_residual, model_value, Fragment, Kind, Params};
use crate::partition::Partition;
use succinct::{bits_for_residual_bound, BitBuf, BitVector, EliasFano, PackedVec, WaveletMatrix};
use timeseries::CompressedSeries;

/// How the fragment-start array `S` answers rank queries (ablation D5 in
/// DESIGN.md).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RankMode {
    /// Elias-Fano: smallest space, `O(min(log m, log n/m))` rank.
    #[default]
    EliasFano,
    /// Plain bitvector of length n: larger, constant-time rank (paper's
    /// "we can easily achieve O(1) time" remark).
    BitVector,
}

/// The start index `S` in one of its two representations.
#[derive(Clone, Debug)]
enum StartIndex {
    Ef(EliasFano),
    Bv(BitVector),
}

impl StartIndex {
    fn build(starts: &[u64], n: usize, mode: RankMode) -> Self {
        match mode {
            RankMode::EliasFano => StartIndex::Ef(EliasFano::new(starts)),
            RankMode::BitVector => {
                let mut buf = BitBuf::with_capacity(n);
                let mut next = 0usize;
                for &s in starts {
                    while next < s as usize {
                        buf.push_bit(false);
                        next += 1;
                    }
                    buf.push_bit(true);
                    next += 1;
                }
                while next < n {
                    buf.push_bit(false);
                    next += 1;
                }
                StartIndex::Bv(BitVector::from_bitbuf(&buf))
            }
        }
    }

    /// Index of the fragment covering position `k` (`S.rank(k)` in the paper).
    #[inline]
    fn fragment_of(&self, k: usize) -> usize {
        match self {
            StartIndex::Ef(ef) => ef.rank_leq(k as u64) - 1,
            StartIndex::Bv(bv) => bv.rank1(k + 1) - 1,
        }
    }

    /// Start position of fragment `i`.
    #[inline]
    fn start_of(&self, i: usize) -> usize {
        match self {
            StartIndex::Ef(ef) => ef.get(i) as usize,
            StartIndex::Bv(bv) => bv.select1(i).expect("fragment index in range"),
        }
    }

    /// Streaming iterator over all fragment starts in order (one forward
    /// scan, no per-element select).
    fn iter(&self) -> StartIter<'_> {
        match self {
            StartIndex::Ef(ef) => StartIter::Ef(ef.iter()),
            StartIndex::Bv(bv) => StartIter::Bv(bv.iter_ones()),
        }
    }

    fn size_in_bytes(&self) -> usize {
        match self {
            StartIndex::Ef(ef) => ef.size_in_bytes(),
            StartIndex::Bv(bv) => bv.size_in_bytes(),
        }
    }
}

/// Streaming fragment-start walk over either `S` representation.
enum StartIter<'a> {
    Ef(succinct::EliasFanoIter<'a>),
    Bv(succinct::OnesIter<'a>),
}

impl Iterator for StartIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        match self {
            StartIter::Ef(it) => it.next().map(|v| v as usize),
            StartIter::Bv(it) => it.next(),
        }
    }
}

/// A NeaTS-compressed time series with lossless random access.
#[derive(Clone, Debug)]
pub struct NeaTSCompressed {
    n: usize,
    shift: i64,
    starts: StartIndex,
    widths: PackedVec,
    offsets: EliasFano,
    corrections: BitBuf,
    kinds: WaveletMatrix,
    /// Distinct kinds in use; wavelet-matrix symbols index into this.
    kind_table: Vec<Kind>,
    /// Per kind-table entry: concatenated parameters, `param_count` f64 bit
    /// patterns per fragment of that kind.
    params: Vec<Vec<u64>>,
    origin_deltas: PackedVec,
}

impl NeaTSCompressed {
    /// Encodes a partition produced by Algorithm 1.
    ///
    /// Correction widths are derived from each fragment's *measured* maximum
    /// residual (≥ the planned `⌈log(2ε+1)⌉` only under floating-point edge
    /// cases), which keeps decompression exactly lossless.
    pub fn encode(values: &[i64], partition: &Partition, shift: i64, mode: RankMode) -> Self {
        let n = values.len();
        let m = partition.fragments.len();
        let mut starts = Vec::with_capacity(m);
        let mut widths = Vec::with_capacity(m);
        let mut offsets = Vec::with_capacity(m + 1);
        let mut kind_syms = Vec::with_capacity(m);
        let mut origin_deltas = Vec::with_capacity(m);
        let mut kind_table: Vec<Kind> = Vec::new();
        let mut params: Vec<Vec<u64>> = Vec::new();
        let mut corrections = BitBuf::new();

        offsets.push(0u64);
        for frag in &partition.fragments {
            let r = max_abs_residual(values, frag, shift);
            let w = bits_for_residual_bound(r);
            // Bias-coded corrections in wrapping u64 arithmetic: exact for
            // |c| ≤ r < 2^{w-1}, and still bijective at w = 64 where the
            // residual itself may wrap i64 (extreme-magnitude data).
            let bias = if w == 0 { 0u64 } else { 1u64 << (w - 1) };
            let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
            for (off, &y) in values[frag.start..frag.end].iter().enumerate() {
                let c = y.wrapping_sub(model_value(frag, frag.start + off, shift));
                debug_assert!(y.abs_diff(model_value(frag, frag.start + off, shift)) <= r);
                corrections.push_bits((c as u64).wrapping_add(bias) & mask, w);
            }
            starts.push(frag.start as u64);
            widths.push(w as u64);
            offsets.push(corrections.len() as u64);
            let sym = match kind_table.iter().position(|&k| k == frag.kind) {
                Some(s) => s,
                None => {
                    kind_table.push(frag.kind);
                    params.push(Vec::new());
                    kind_table.len() - 1
                }
            };
            kind_syms.push(sym as u8);
            let p = &mut params[sym];
            p.push(frag.params.m.to_bits());
            p.push(frag.params.b.to_bits());
            if frag.kind.param_count() == 3 {
                p.push(frag.params.extra.to_bits());
            }
            origin_deltas.push((frag.start - frag.origin) as u64);
        }
        corrections.shrink_to_fit();

        Self {
            n,
            shift,
            starts: StartIndex::build(&starts, n, mode),
            widths: PackedVec::new(&widths),
            offsets: EliasFano::new(&offsets),
            corrections,
            kinds: WaveletMatrix::new(&kind_syms),
            kind_table,
            params,
            origin_deltas: PackedVec::new(&origin_deltas),
        }
    }

    /// Number of fragments `m`.
    pub fn fragment_count(&self) -> usize {
        self.widths.len()
    }

    /// Index of the fragment covering position `k` (the paper's `S.rank`).
    pub fn fragment_index_of(&self, k: usize) -> usize {
        debug_assert!(k < self.n);
        self.starts.fragment_of(k)
    }

    /// The correction bit width `B[i]` of fragment `i`.
    pub fn correction_width_of(&self, i: usize) -> usize {
        self.widths.get(i) as usize
    }

    /// The global positivity shift stored in the header.
    pub fn shift(&self) -> i64 {
        self.shift
    }

    /// Reconstructs the fragment descriptor for fragment `i` (used by the
    /// sequential algorithms and for inspection).
    pub fn fragment(&self, i: usize) -> Fragment {
        let start = self.starts.start_of(i);
        let end = if i + 1 < self.fragment_count() { self.starts.start_of(i + 1) } else { self.n };
        let (sym, rank) = self.kinds.access_rank(i);
        let kind = self.kind_table[sym as usize];
        let params = self.params_of(sym, rank);
        let origin = start - self.origin_deltas.get(i) as usize;
        Fragment { kind, params, start, end, origin }
    }

    #[inline]
    fn params_of(&self, sym: u8, rank: usize) -> Params {
        let kind = self.kind_table[sym as usize];
        let pc = kind.param_count();
        let base = rank * pc;
        let arr = &self.params[sym as usize];
        Params {
            m: f64::from_bits(arr[base]),
            b: f64::from_bits(arr[base + 1]),
            extra: if pc == 3 { f64::from_bits(arr[base + 2]) } else { 0.0 },
        }
    }

    /// Reads the correction for position `k` of fragment `i` starting at
    /// `start`.
    #[inline]
    fn correction(&self, i: usize, start: usize, k: usize) -> i64 {
        let w = self.widths.get(i) as usize;
        if w == 0 {
            return 0;
        }
        let o = self.offsets.get(i) as usize + (k - start) * w;
        let bias = 1u64 << (w - 1);
        self.corrections.get_bits(o, w).wrapping_sub(bias) as i64
    }

    /// Per-kind fragment counts, for inspection and the model-selection
    /// variant.
    pub fn kind_histogram(&self) -> Vec<(Kind, usize)> {
        let m = self.fragment_count();
        self.kind_table
            .iter()
            .enumerate()
            .map(|(sym, &kind)| (kind, self.kinds.rank(sym as u8, m)))
            .collect()
    }

    /// Appends fragment `i`'s values in `[from, to)` to `out` — the shared
    /// inner loop of Algorithms 2 and 3's scan.
    ///
    /// The function-kind dispatch is hoisted out of the loop (the paper
    /// vectorises this loop with `std::experimental::simd`; we rely on the
    /// monomorphised closure auto-vectorising). Each arm calls
    /// `Kind::eval` with a *constant* kind so the computation is
    /// bit-identical to [`model_value`], which encoding used — that identity
    /// is what makes the scheme lossless.
    fn emit_fragment_range(&self, i: usize, frag: &Fragment, from: usize, to: usize, out: &mut Vec<i64>) {
        let w = self.widths.get(i) as usize;
        let o0 = self.offsets.get(i) as usize + (from - frag.start) * w;
        self.emit_loop_dispatch(frag, from, to, w, o0, out);
    }

    /// Kind-dispatched emit over `[from, to)` reading `w`-bit corrections
    /// starting at bit `o0`.
    fn emit_loop_dispatch(&self, frag: &Fragment, from: usize, to: usize, w: usize, o0: usize, out: &mut Vec<i64>) {
        let p = frag.params;
        macro_rules! dispatch {
            ($kind:expr) => {
                self.emit_loop(|u| $kind.eval(p, u), frag, from, to, w, o0, out)
            };
        }
        match frag.kind {
            Kind::Linear => dispatch!(Kind::Linear),
            Kind::Quadratic => dispatch!(Kind::Quadratic),
            Kind::Exponential => dispatch!(Kind::Exponential),
            Kind::Sqrt => dispatch!(Kind::Sqrt),
            Kind::Logarithmic => dispatch!(Kind::Logarithmic),
            Kind::Power => dispatch!(Kind::Power),
            Kind::QuadOffset => dispatch!(Kind::QuadOffset),
            Kind::QuadLinear => dispatch!(Kind::QuadLinear),
            Kind::CubicLinear => dispatch!(Kind::CubicLinear),
            Kind::CubicQuad => dispatch!(Kind::CubicQuad),
            Kind::Gaussian => dispatch!(Kind::Gaussian),
        }
    }

    /// The monomorphised emit loop shared by all kinds; `o0` is the bit
    /// offset of the first correction to read.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn emit_loop<F: Fn(f64) -> f64>(
        &self,
        eval: F,
        frag: &Fragment,
        from: usize,
        to: usize,
        w: usize,
        o0: usize,
        out: &mut Vec<i64>,
    ) {
        let shift_sub = if frag.kind.log_domain() { self.shift } else { 0 };
        let origin = frag.origin;
        // Pass 1: the pure floating-point model loop. Writing through a
        // resized slice (not push) lets LLVM vectorise the polynomial kinds.
        let base = out.len();
        out.resize(base + (to - from), 0);
        let slice = &mut out[base..];
        for (j, v) in slice.iter_mut().enumerate() {
            let f = eval((from + j - origin + 1) as f64);
            *v = crate::fit::floor_to_i64(f).wrapping_sub(shift_sub);
        }
        // Pass 2: add the packed corrections with a register-resident word
        // cursor (cheaper than recomputing word/bit from absolute offsets).
        if w > 0 {
            let bias = 1u64 << (w - 1);
            let words = self.corrections.words();
            let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
            let mut word_idx = o0 / 64;
            let mut bit = o0 % 64;
            let mut cur = words[word_idx];
            for v in &mut out[base..] {
                let mut raw = cur >> bit;
                if bit + w > 64 {
                    raw |= words[word_idx + 1] << (64 - bit);
                }
                *v = v.wrapping_add((raw & mask).wrapping_sub(bias) as i64);
                bit += w;
                if bit >= 64 {
                    bit -= 64;
                    word_idx += 1;
                    cur = if word_idx < words.len() { words[word_idx] } else { 0 };
                }
            }
        }
    }
}

impl NeaTSCompressed {
    /// Writes all components, marking one container section per component
    /// (used by [`crate::serial`]).
    pub(crate) fn write_wire(&self, sw: &mut crate::serial::SectionWriter) {
        use succinct::Wire;
        let w = &mut sw.w;
        w.u64(self.n as u64);
        w.i64(self.shift);
        match &self.starts {
            StartIndex::Ef(_) => w.u8(0),
            StartIndex::Bv(_) => w.u8(1),
        }
        sw.mark(); // header
        match &self.starts {
            StartIndex::Ef(ef) => ef.write(&mut sw.w),
            StartIndex::Bv(bv) => bv.write(&mut sw.w),
        }
        sw.mark(); // starts
        self.widths.write(&mut sw.w);
        sw.mark(); // widths
        self.offsets.write(&mut sw.w);
        sw.mark(); // offsets
        self.corrections.write(&mut sw.w);
        sw.mark(); // corrections
        self.kinds.write(&mut sw.w);
        sw.mark(); // kinds
        crate::serial::write_kind_table(&mut sw.w, &self.kind_table);
        sw.mark(); // kind-table
        crate::serial::write_params(&mut sw.w, &self.params);
        sw.mark(); // params
        self.origin_deltas.write(&mut sw.w);
        sw.mark(); // origin-deltas
    }

    /// Reads and *validates* all components: every cross-structure invariant
    /// needed by `get`/`decompress` is checked, so corrupted input can never
    /// cause a panic or out-of-bounds access later.
    pub(crate) fn read_wire(
        r: &mut succinct::WireReader<'_>,
    ) -> Result<Self, succinct::WireError> {
        use succinct::{Wire, WireError};
        let n = r.read_len()?;
        let shift = r.i64()?;
        let starts = match r.u8()? {
            0 => StartIndex::Ef(succinct::EliasFano::read(r)?),
            1 => StartIndex::Bv(BitVector::read(r)?),
            _ => return Err(WireError::Corrupt("start index tag")),
        };
        let widths = PackedVec::read(r)?;
        let offsets = succinct::EliasFano::read(r)?;
        let corrections = BitBuf::read(r)?;
        let kinds = WaveletMatrix::read(r)?;
        let kind_table = crate::serial::read_kind_table(r)?;
        let params = crate::serial::read_params(r, &kind_table)?;
        let origin_deltas = PackedVec::read(r)?;

        let m = widths.len();
        let starts_len = match &starts {
            StartIndex::Ef(ef) => ef.len(),
            StartIndex::Bv(bv) => bv.count_ones(),
        };
        if starts_len != m || kinds.len() != m || origin_deltas.len() != m {
            return Err(WireError::Corrupt("fragment count mismatch"));
        }
        if offsets.len() != m + 1 {
            return Err(WireError::Corrupt("offsets length"));
        }
        if m > 0 && offsets.get(m) as usize > corrections.len() {
            return Err(WireError::Corrupt("corrections overflow"));
        }
        // n and m must be zero together: n > 0 with no fragments would make
        // fragment_of underflow, and the BitVector start index must hold
        // exactly one bit per position or rank1(k + 1) reads out of bounds.
        if (m == 0) != (n == 0) {
            return Err(WireError::Corrupt("fragment count vs series length"));
        }
        if let StartIndex::Bv(bv) = &starts {
            if bv.len() != n {
                return Err(WireError::Corrupt("start bitvector length"));
            }
        }
        // Per-fragment validation: starts strictly increasing from 0,
        // symbols within the table, offsets consistent with widths, origins
        // in range, parameter arrays long enough.
        let mut prev_start = 0usize;
        let mut counts = vec![0usize; kind_table.len()];
        for i in 0..m {
            let start = match &starts {
                StartIndex::Ef(ef) => ef.get(i) as usize,
                StartIndex::Bv(bv) => bv.select1(i).ok_or(WireError::Corrupt("start select"))?,
            };
            if i == 0 && start != 0 {
                return Err(WireError::Corrupt("first fragment start"));
            }
            if i > 0 && start <= prev_start {
                return Err(WireError::Corrupt("starts not increasing"));
            }
            if start >= n {
                return Err(WireError::Corrupt("start beyond series"));
            }
            let end = if i + 1 < m {
                match &starts {
                    StartIndex::Ef(ef) => ef.get(i + 1) as usize,
                    StartIndex::Bv(bv) => {
                        bv.select1(i + 1).ok_or(WireError::Corrupt("start select"))?
                    }
                }
            } else {
                n
            };
            if end <= start || end > n {
                return Err(WireError::Corrupt("fragment bounds"));
            }
            let w = widths.get(i) as usize;
            if w > 64 {
                return Err(WireError::Corrupt("correction width"));
            }
            let o = offsets.get(i) as usize;
            let o_next = offsets.get(i + 1) as usize;
            if o_next < o || o_next - o != (end - start) * w {
                return Err(WireError::Corrupt("offset stride"));
            }
            let sym = kinds.access(i) as usize;
            if sym >= kind_table.len() {
                return Err(WireError::Corrupt("kind symbol"));
            }
            counts[sym] += 1;
            if origin_deltas.get(i) as usize > start {
                return Err(WireError::Corrupt("origin delta"));
            }
            prev_start = start;
        }
        for (sym, &count) in counts.iter().enumerate() {
            if params[sym].len() != count * kind_table[sym].param_count() {
                return Err(WireError::Corrupt("params length"));
            }
        }
        Ok(Self {
            n,
            shift,
            starts,
            widths,
            offsets,
            corrections,
            kinds,
            kind_table,
            params,
            origin_deltas,
        })
    }
}

impl CompressedSeries for NeaTSCompressed {
    fn len(&self) -> usize {
        self.n
    }

    fn size_in_bytes(&self) -> usize {
        let header = 8 + 8 + self.kind_table.len() + 8; // n, shift, kinds, misc
        header
            + self.starts.size_in_bytes()
            + self.widths.size_in_bytes()
            + self.offsets.size_in_bytes()
            + self.corrections.size_in_bytes()
            + self.kinds.size_in_bytes()
            + self.params.iter().map(|p| p.len() * 8).sum::<usize>()
            + self.origin_deltas.size_in_bytes()
    }

    /// Algorithm 2: full decompression, fragment by fragment.
    ///
    /// The sequential pass avoids the per-fragment rank/select machinery of
    /// the random-access path entirely: fragment starts stream out of the
    /// Elias-Fano iterator, per-kind parameter ranks are incremental
    /// counters, and the correction bit offset is a running cursor
    /// (corrections are stored contiguously in fragment order).
    fn decompress(&self) -> Vec<i64> {
        let m = self.fragment_count();
        let mut out = Vec::with_capacity(self.n);
        let mut ranks = vec![0usize; self.kind_table.len()];
        let mut o = 0usize;
        let mut starts = self.starts.iter();
        let mut start = starts.next().unwrap_or(0);
        for i in 0..m {
            let end = starts.next().unwrap_or(self.n);
            let sym = self.kinds.access(i);
            let kind = self.kind_table[sym as usize];
            let params = self.params_of(sym, ranks[sym as usize]);
            ranks[sym as usize] += 1;
            let origin = start - self.origin_deltas.get(i) as usize;
            let frag = Fragment { kind, params, start, end, origin };
            let w = self.widths.get(i) as usize;
            self.emit_loop_dispatch(&frag, start, end, w, o, &mut out);
            o += (end - start) * w;
            start = end;
        }
        out
    }

    /// Algorithm 3: random access to the value at position `k`.
    fn get(&self, k: usize) -> i64 {
        debug_assert!(k < self.n);
        let i = self.starts.fragment_of(k);
        let start = self.starts.start_of(i);
        let (sym, rank) = self.kinds.access_rank(i);
        let params = self.params_of(sym, rank);
        let kind = self.kind_table[sym as usize];
        let origin = start - self.origin_deltas.get(i) as usize;
        let frag = Fragment { kind, params, start, end: self.n, origin };
        model_value(&frag, k, self.shift).wrapping_add(self.correction(i, start, k))
    }

    /// Range query: one rank to locate the first fragment, then a sequential
    /// scan across fragments (paper §IV-C4).
    fn scan_range(&self, start: usize, count: usize, out: &mut Vec<i64>) {
        if count == 0 {
            return;
        }
        debug_assert!(start + count <= self.n);
        let end = start + count;
        let mut i = self.starts.fragment_of(start);
        let mut pos = start;
        while pos < end {
            let frag = self.fragment(i);
            let to = frag.end.min(end);
            self.emit_fragment_range(i, &frag, pos, to, out);
            pos = to;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{partition, positivity_shift, PartitionConfig};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn build(values: &[i64], kinds: &[Kind], epsilons: &[u64], mode: RankMode) -> NeaTSCompressed {
        let max_eps = epsilons.iter().copied().max().unwrap_or(0);
        let shift = positivity_shift(values, max_eps);
        let cfg = PartitionConfig::lossless(kinds, epsilons, shift);
        let part = partition(values, &cfg);
        NeaTSCompressed::encode(values, &part, shift, mode)
    }

    fn random_walk(n: usize, seed: u64, step: i64) -> Vec<i64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v = 0i64;
        (0..n).map(|_| { v += rng.random_range(-step..=step); v }).collect()
    }

    #[test]
    fn lossless_roundtrip_both_rank_modes() {
        let values = random_walk(3000, 5, 20);
        for mode in [RankMode::EliasFano, RankMode::BitVector] {
            let c = build(&values, &Kind::NEATS_DEFAULT, &[0, 2, 8, 32], mode);
            assert_eq!(c.len(), values.len());
            assert_eq!(c.decompress(), values, "{mode:?} decompress");
            for (k, &v) in values.iter().enumerate() {
                assert_eq!(c.get(k), v, "{mode:?} get({k})");
            }
        }
    }

    #[test]
    fn scan_range_matches_slice() {
        let values = random_walk(2000, 11, 50);
        let c = build(&values, &Kind::NEATS_DEFAULT, &[0, 2, 8], RankMode::EliasFano);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let s = rng.random_range(0..values.len());
            let l = rng.random_range(0..=(values.len() - s).min(300));
            let mut out = Vec::new();
            c.scan_range(s, l, &mut out);
            assert_eq!(out, &values[s..s + l], "range [{s}, {})", s + l);
        }
    }

    #[test]
    fn compresses_smooth_data_well() {
        // A smooth sine + small noise: NeaTS must beat raw 64-bit storage by a lot.
        let mut rng = StdRng::seed_from_u64(3);
        let values: Vec<i64> = (0..20_000)
            .map(|k| (10_000.0 * ((k as f64) / 500.0).sin()) as i64 + rng.random_range(-3..4))
            .collect();
        let c = build(&values, &Kind::NEATS_DEFAULT, &[0, 2, 8, 32, 128], RankMode::EliasFano);
        assert_eq!(c.decompress(), values);
        let ratio = c.size_in_bytes() as f64 / (values.len() * 8) as f64;
        assert!(ratio < 0.25, "ratio {ratio} too poor for smooth data");
    }

    #[test]
    fn empty_series() {
        let c = build(&[], &[Kind::Linear], &[0], RankMode::EliasFano);
        assert_eq!(c.len(), 0);
        assert!(c.is_empty());
        assert_eq!(c.decompress(), Vec::<i64>::new());
        assert_eq!(c.fragment_count(), 0);
    }

    #[test]
    fn single_value_series() {
        for mode in [RankMode::EliasFano, RankMode::BitVector] {
            let c = build(&[-77], &[Kind::Linear], &[0], mode);
            assert_eq!(c.get(0), -77);
            assert_eq!(c.decompress(), vec![-77]);
        }
    }

    #[test]
    fn constant_series_is_tiny() {
        let values = vec![42i64; 10_000];
        let c = build(&values, &[Kind::Linear], &[0], RankMode::EliasFano);
        assert_eq!(c.decompress(), values);
        assert_eq!(c.fragment_count(), 1);
        assert!(c.size_in_bytes() < 200, "constant series took {} bytes", c.size_in_bytes());
    }

    #[test]
    fn negative_values_with_log_kinds() {
        let values = random_walk(1500, 17, 10); // goes negative
        assert!(values.iter().any(|&v| v < 0));
        let c = build(
            &values,
            &[Kind::Linear, Kind::Exponential, Kind::Gaussian],
            &[0, 4, 16],
            RankMode::EliasFano,
        );
        assert_eq!(c.decompress(), values);
        assert!(c.shift() > 0);
    }

    #[test]
    fn fragment_descriptors_are_consistent() {
        let values = random_walk(2000, 23, 30);
        let c = build(&values, &Kind::NEATS_DEFAULT, &[0, 2, 8], RankMode::EliasFano);
        let m = c.fragment_count();
        let mut covered = 0usize;
        for i in 0..m {
            let f = c.fragment(i);
            assert_eq!(f.start, covered, "fragment {i} start");
            assert!(f.end > f.start);
            assert!(f.origin <= f.start);
            covered = f.end;
        }
        assert_eq!(covered, values.len());
        let hist = c.kind_histogram();
        let total: usize = hist.iter().map(|(_, c)| c).sum();
        assert_eq!(total, m);
    }

    #[test]
    fn extreme_values_roundtrip() {
        let values = vec![i64::MAX / 4, i64::MIN / 4, 0, i64::MAX / 4, -1, 1];
        let c = build(&values, &[Kind::Linear], &[0, 2], RankMode::EliasFano);
        assert_eq!(c.decompress(), values);
        for (k, &v) in values.iter().enumerate() {
            assert_eq!(c.get(k), v);
        }
    }

    #[test]
    fn size_accounts_for_all_components() {
        let values = random_walk(5000, 31, 100);
        let c = build(&values, &Kind::NEATS_DEFAULT, &[0, 8], RankMode::EliasFano);
        // size must at least cover corrections + params
        let params_bytes: usize = c.params.iter().map(|p| p.len() * 8).sum();
        assert!(c.size_in_bytes() >= c.corrections.size_in_bytes() + params_bytes);
    }
}
