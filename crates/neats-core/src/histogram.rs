//! A tiny lock-free log-linear histogram for latency recording.
//!
//! The serving layer (`neats-serve`) records one latency sample per request
//! from many worker threads at once, and its `/stats` endpoint reports
//! percentiles. Both ends want the same structure: a fixed array of atomic
//! bucket counters that `record` can bump wait-free, coarse enough to stay
//! tiny (496 × 8 bytes) and fine enough that any quantile is reported with
//! at most 12.5% relative error.
//!
//! The bucket scheme is *log-linear* (the same idea as HdrHistogram's coarse
//! mode): values `0..8` get one bucket each, and every octave `[2^o, 2^(o+1))`
//! above that is split into 8 equal sub-buckets. A `u64` value therefore
//! always lands in one of `8 + 61·8 = 496` buckets, and a bucket's width is
//! 1/8 of its lower bound.
//!
//! ```
//! use neats_core::histogram::AtomicHistogram;
//!
//! let h = AtomicHistogram::new();
//! for v in [120, 130, 140, 150, 90_000] {
//!     h.record(v);
//! }
//! let snap = h.snapshot();
//! assert_eq!(snap.count(), 5);
//! // The p50 bucket contains the true median (140), within 12.5%.
//! assert!(snap.quantile(0.5) >= 130 && snap.quantile(0.5) <= 160);
//! // The max is tracked exactly.
//! assert_eq!(snap.max(), 90_000);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per octave (8 → at most 12.5% relative bucket width).
const SUB: usize = 8;
/// log2 of [`SUB`].
const SUB_BITS: u32 = 3;
/// Total buckets: identity buckets `0..SUB` plus `SUB` per octave for the
/// 61 octaves `[2^3, 2^64)`.
const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// Number of buckets every histogram has ([`HistogramSnapshot::buckets`]
/// always returns a slice of this length).
pub const BUCKET_COUNT: usize = BUCKETS;

/// The bucket index of `v` (total order preserving: `v ≤ w` implies
/// `index(v) ≤ index(w)`).
pub fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros(); // ≥ SUB_BITS
    let sub = (v >> (octave - SUB_BITS)) as usize & (SUB - 1);
    SUB + (octave - SUB_BITS) as usize * SUB + sub
}

/// The *exclusive upper bound* of bucket `i` — the smallest value that does
/// not land in it. Quantiles report this bound, so they never under-state.
pub fn bucket_upper(i: usize) -> u64 {
    if i < SUB {
        return i as u64 + 1;
    }
    let octave = (i - SUB) as u32 / SUB as u32 + SUB_BITS;
    let sub = ((i - SUB) % SUB) as u128;
    // Lower bound 2^octave + sub·2^(octave-3); width 2^(octave-3). The very
    // last bucket's exclusive bound is 2^64, which saturates to u64::MAX —
    // harmless, since quantiles clamp to the exact recorded max anyway.
    let upper = (1u128 << octave) + (sub + 1) * (1u128 << (octave - SUB_BITS));
    u64::try_from(upper).unwrap_or(u64::MAX)
}

/// A fixed-size concurrent histogram: `record` is wait-free (one atomic add
/// plus a max update), readers take a consistent-enough [`snapshot`]
/// (individual counters are read atomically; a snapshot taken while writers
/// are active may be mid-update across buckets, which only perturbs
/// quantiles by in-flight samples).
///
/// [`snapshot`]: AtomicHistogram::snapshot
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // `[AtomicU64; N]` has no Default past 32 elements; build via Vec.
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; BUCKETS]> =
            buckets.into_boxed_slice().try_into().expect("bucket count is fixed");
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample (any unit; the serving layer records nanoseconds).
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy suitable for quantile queries and rendering.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A frozen copy of an [`AtomicHistogram`].
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (identity for [`Self::merge`]).
    pub fn empty() -> Self {
        Self { buckets: vec![0; BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Per-bucket sample counts, in bucket order ([`BUCKET_COUNT`] entries;
    /// bucket `i` covers `[bucket_upper(i-1), bucket_upper(i))`). This is
    /// what the Prometheus renderer in [`crate::obs`] folds into cumulative
    /// `_bucket{le=…}` lines.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Exact mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q ∈ [0, 1]`: an upper bound of the bucket
    /// holding the `⌈q·count⌉`-th smallest sample, clamped to the exact
    /// recorded maximum (so `quantile(1.0) == max()`). Returns 0 for an
    /// empty histogram. Over-states by at most 12.5% (one bucket width).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Accumulates `other` into `self` (bucket-wise; max is folded).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        // Wrapping, like the recorder's `fetch_add`: a sum that has lapped
        // u64 stays bit-identical to single-histogram recording.
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_bounded() {
        let mut prev = 0;
        for &v in &[0u64, 1, 7, 8, 9, 15, 16, 100, 1000, 1 << 20, u64::MAX / 2, u64::MAX] {
            let b = bucket_of(v);
            assert!(b >= prev, "bucket order violated at {v}");
            assert!(b < BUCKETS, "bucket {b} out of range for {v}");
            prev = b;
        }
        // Every value is strictly below its bucket's upper bound.
        for v in (0..10_000u64).chain([1 << 33, u64::MAX - 1]) {
            assert!(v < bucket_upper(bucket_of(v)), "v={v}");
        }
    }

    #[test]
    fn bucket_width_is_within_one_eighth() {
        for v in 8u64..100_000 {
            let upper = bucket_upper(bucket_of(v));
            assert!(
                (upper - 1) as f64 <= v as f64 * 1.125,
                "bucket for {v} too wide (upper {upper})"
            );
        }
    }

    #[test]
    fn quantiles_bound_known_distributions() {
        let h = AtomicHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.max(), 1000);
        assert_eq!(s.sum(), 500_500);
        let p50 = s.quantile(0.5);
        assert!((500..=563).contains(&p50), "p50={p50}");
        let p99 = s.quantile(0.99);
        assert!((990..=1000).contains(&p99), "p99={p99}");
        assert_eq!(s.quantile(1.0), 1000);
        assert!(s.quantile(0.0) >= 1);
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_and_single() {
        let h = AtomicHistogram::new();
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
        h.record(42);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 42.min(s.max()));
        assert_eq!(s.max(), 42);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = AtomicHistogram::new();
        let b = AtomicHistogram::new();
        let all = AtomicHistogram::new();
        for v in 0..500u64 {
            let target = if v % 2 == 0 { &a } else { &b };
            target.record(v * 3);
            all.record(v * 3);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let want = all.snapshot();
        assert_eq!(merged.count(), want.count());
        assert_eq!(merged.sum(), want.sum());
        assert_eq!(merged.max(), want.max());
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), want.quantile(q), "q={q}");
        }
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = AtomicHistogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
        assert_eq!(h.snapshot().max(), 39_999);
    }
}
