//! The zero-copy read path: [`ArchiveView`] answers queries straight from
//! serialized archive bytes.
//!
//! [`NeaTSCompressed::from_bytes`](crate::NeaTSCompressed::from_bytes) fully
//! materialises owned `Vec`s — an O(archive) allocation and copy — before
//! the first query can run. A serving process handling point lookups over
//! many archives cannot afford that per open. `ArchiveView::open` instead
//! validates the container frame (checksum + structural invariants) *once*
//! and then answers `at(k)`, `range(..)`, scans and the aggregate queries
//! directly over the borrowed `&[u8]`, with no heap allocation proportional
//! to the archive: the succinct structures are read through the borrowed
//! views of [`succinct::views`], whose rank/select directories are persisted
//! in the archive rather than rebuilt.
//!
//! Query semantics are equal to the owned types **by differential testing**
//! (`tests/view_differential.rs`), not merely by construction: every answer
//! from a view is property-tested against the owned structure decoded from
//! the same bytes, for lossless and lossy archives alike.

use crate::aggregate::{fragment_model_extremes, fragment_model_sum, Estimate};
use crate::fit::{model_value, Fragment, Kind, Params};
use crate::serial::{self, ArchiveFlavor, Section};
use std::ops::Range;
use succinct::{
    BitBufView, BitVectorView, EliasFanoIterView, EliasFanoView, OnesIterView, PackedVecView,
    U64sView, WaveletMatrixView, WireError, WireReader,
};

/// Borrowed fragment-start index `S` in either representation (mirrors the
/// owned `StartIndex` of [`crate::layout`]).
#[derive(Clone, Debug)]
enum StartIndexView<'a> {
    Ef(EliasFanoView<'a>),
    Bv(BitVectorView<'a>),
}

impl<'a> StartIndexView<'a> {
    /// Index of the fragment covering position `k`.
    #[inline]
    fn fragment_of(&self, k: usize) -> usize {
        match self {
            StartIndexView::Ef(ef) => ef.rank_leq(k as u64) - 1,
            StartIndexView::Bv(bv) => bv.rank1(k + 1) - 1,
        }
    }

    /// Start position of fragment `i`.
    #[inline]
    fn start_of(&self, i: usize) -> usize {
        match self {
            StartIndexView::Ef(ef) => ef.get(i) as usize,
            StartIndexView::Bv(bv) => bv.select1(i).expect("fragment index in range"),
        }
    }

    /// Number of fragments indexed.
    fn len(&self) -> usize {
        match self {
            StartIndexView::Ef(ef) => ef.len(),
            StartIndexView::Bv(bv) => bv.count_ones(),
        }
    }

    /// Streaming iterator over all fragment starts in order.
    fn iter(&self) -> StartIterView<'a> {
        match self {
            StartIndexView::Ef(ef) => StartIterView::Ef(ef.iter()),
            StartIndexView::Bv(bv) => StartIterView::Bv(bv.iter_ones()),
        }
    }
}

/// Streaming fragment-start walk over either `S` representation.
enum StartIterView<'a> {
    Ef(EliasFanoIterView<'a>),
    Bv(OnesIterView<'a>),
}

impl Iterator for StartIterView<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        match self {
            StartIterView::Ef(it) => it.next().map(|v| v as usize),
            StartIterView::Bv(it) => it.next(),
        }
    }
}

/// A zero-copy view over a serialized archive of either flavor.
///
/// ```
/// use neats_core::{ArchiveView, NeaTS};
/// use timeseries::TimeSeries;
///
/// let ts = TimeSeries::from_values((0..2000).map(|k| k * k / 40).collect());
/// let bytes = NeaTS::compress(&ts).to_bytes();
/// let view = ArchiveView::open(&bytes).unwrap();
/// assert_eq!(view.at(1234), ts.values()[1234]);
/// let mut window = Vec::new();
/// view.range(100..164, &mut window);
/// assert_eq!(window, &ts.values()[100..164]);
/// ```
#[derive(Clone, Debug)]
pub enum ArchiveView<'a> {
    /// A lossless archive (models + corrections).
    Lossless(LosslessView<'a>),
    /// A lossy archive (models only, ε-bounded).
    Lossy(LossyView<'a>),
}

impl<'a> ArchiveView<'a> {
    /// Opens an archive produced by
    /// [`NeaTSCompressed::to_bytes`](crate::NeaTSCompressed::to_bytes) or
    /// [`NeaTSLossy::to_bytes`](crate::NeaTSLossy::to_bytes): verifies the
    /// frame checksum, validates every structural invariant the query
    /// algorithms rely on, and borrows all payloads in place.
    pub fn open(data: &'a [u8]) -> Result<Self, WireError> {
        Ok(Self::open_with_sections(data)?.0)
    }

    /// [`Self::open`], additionally returning the frame's section table —
    /// one parse and one checksum pass serve both (the `neats stat` path).
    pub fn open_with_sections(data: &'a [u8]) -> Result<(Self, Vec<Section>), WireError> {
        let (flavor, sections, payload) = serial::parse_frame(data)?;
        let mut r = WireReader::new(payload);
        let view = match flavor {
            ArchiveFlavor::Lossless => ArchiveView::Lossless(LosslessView::read(&mut r)?),
            ArchiveFlavor::Lossy => ArchiveView::Lossy(LossyView::read(&mut r)?),
        };
        if !r.is_exhausted() {
            return Err(WireError::Corrupt("trailing bytes"));
        }
        Ok((view, sections))
    }

    /// Number of data points represented.
    pub fn len(&self) -> usize {
        match self {
            ArchiveView::Lossless(v) => v.len(),
            ArchiveView::Lossy(v) => v.len(),
        }
    }

    /// Whether the archive covers no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Which representation the archive holds.
    pub fn flavor(&self) -> ArchiveFlavor {
        match self {
            ArchiveView::Lossless(_) => ArchiveFlavor::Lossless,
            ArchiveView::Lossy(_) => ArchiveFlavor::Lossy,
        }
    }

    /// Number of fragments.
    pub fn fragment_count(&self) -> usize {
        match self {
            ArchiveView::Lossless(v) => v.fragment_count(),
            ArchiveView::Lossy(v) => v.fragment_count(),
        }
    }

    /// The global positivity shift stored in the header.
    pub fn shift(&self) -> i64 {
        match self {
            ArchiveView::Lossless(v) => v.shift(),
            ArchiveView::Lossy(v) => v.shift(),
        }
    }

    /// The value at position `k`: exact for lossless archives, the ε-bounded
    /// approximation for lossy ones.
    pub fn at(&self, k: usize) -> i64 {
        match self {
            ArchiveView::Lossless(v) => v.get(k),
            ArchiveView::Lossy(v) => v.approximate(k),
        }
    }

    /// Appends the values in `range` to `out` (one fragment rank, then a
    /// sequential scan).
    pub fn range(&self, range: Range<usize>, out: &mut Vec<i64>) {
        match self {
            ArchiveView::Lossless(v) => v.scan_range(range.start, range.len(), out),
            ArchiveView::Lossy(v) => v.scan_range(range.start, range.len(), out),
        }
    }

    /// Materialises the whole series (decompression for lossless archives,
    /// reconstruction for lossy ones).
    pub fn materialize(&self) -> Vec<i64> {
        match self {
            ArchiveView::Lossless(v) => v.decompress(),
            ArchiveView::Lossy(v) => v.reconstruct(),
        }
    }

    /// Approximate range sum from the learned functions only, with a
    /// guaranteed error bound.
    pub fn sum_range_estimate(&self, start: usize, count: usize) -> Estimate {
        match self {
            ArchiveView::Lossless(v) => v.sum_range_estimate(start, count),
            ArchiveView::Lossy(v) => v.sum_range_estimate(start, count),
        }
    }

    /// Exact range sum of the archive's values (the stored values for
    /// lossless archives, the ε-bounded approximations for lossy ones), as
    /// `i128` to avoid overflow. Used by the multi-series store to push sums
    /// down to individual segments and stitch across their boundaries.
    pub fn sum_range_exact(&self, start: usize, count: usize) -> i128 {
        match self {
            ArchiveView::Lossless(v) => v.sum_range_exact(start, count),
            ArchiveView::Lossy(v) => v.sum_range_exact(start, count),
        }
    }

    /// Exact minimum and maximum over `[start, start + count)` of the
    /// archive's values (`None` for an empty range). Like
    /// [`Self::sum_range_exact`], this is the segment-local aggregate the
    /// store's cross-segment pushdown folds over.
    pub fn min_max_range_exact(&self, start: usize, count: usize) -> Option<(i64, i64)> {
        match self {
            ArchiveView::Lossless(v) => v.min_max_range_exact(start, count),
            ArchiveView::Lossy(v) => v.min_max_range_exact(start, count),
        }
    }

    /// Per-kind fragment counts.
    pub fn kind_histogram(&self) -> Vec<(Kind, usize)> {
        match self {
            ArchiveView::Lossless(v) => v.kind_histogram(),
            ArchiveView::Lossy(v) => v.kind_histogram(),
        }
    }

    /// The lossless view, if this archive is lossless.
    pub fn as_lossless(&self) -> Option<&LosslessView<'a>> {
        match self {
            ArchiveView::Lossless(v) => Some(v),
            ArchiveView::Lossy(_) => None,
        }
    }

    /// The lossy view, if this archive is lossy.
    pub fn as_lossy(&self) -> Option<&LossyView<'a>> {
        match self {
            ArchiveView::Lossy(v) => Some(v),
            ArchiveView::Lossless(_) => None,
        }
    }
}

/// Zero-copy counterpart of [`crate::NeaTSCompressed`]: the full lossless
/// query surface over borrowed bytes.
#[derive(Clone, Debug)]
pub struct LosslessView<'a> {
    n: usize,
    shift: i64,
    starts: StartIndexView<'a>,
    widths: PackedVecView<'a>,
    offsets: EliasFanoView<'a>,
    corrections: BitBufView<'a>,
    kinds: WaveletMatrixView<'a>,
    /// Distinct kinds in use (≤ 11 entries — not archive-proportional).
    kind_table: Vec<Kind>,
    /// Per kind-table entry: borrowed concatenated parameter words.
    params: Vec<U64sView<'a>>,
    origin_deltas: PackedVecView<'a>,
}

impl<'a> LosslessView<'a> {
    /// Parses and validates the lossless payload — the same invariants as
    /// the owned `read_wire`, checked through the borrowed views.
    fn read(r: &mut WireReader<'a>) -> Result<Self, WireError> {
        let n = r.read_len()?;
        let shift = r.i64()?;
        let starts = match r.u8()? {
            0 => StartIndexView::Ef(EliasFanoView::read(r)?),
            1 => StartIndexView::Bv(BitVectorView::read(r)?),
            _ => return Err(WireError::Corrupt("start index tag")),
        };
        let widths = PackedVecView::read(r)?;
        let offsets = EliasFanoView::read(r)?;
        let corrections = BitBufView::read(r)?;
        let kinds = WaveletMatrixView::read(r)?;
        let kind_table = serial::read_kind_table(r)?;
        let params = serial::read_params_ref(r, &kind_table)?;
        let origin_deltas = PackedVecView::read(r)?;

        // Rank/select directories first, so the structural loop below (and
        // every later query) probes in bounds.
        match &starts {
            StartIndexView::Ef(ef) => ef.validate()?,
            StartIndexView::Bv(bv) => bv.validate()?,
        }
        offsets.validate()?;
        kinds.validate()?;

        let m = widths.len();
        if starts.len() != m || kinds.len() != m || origin_deltas.len() != m {
            return Err(WireError::Corrupt("fragment count mismatch"));
        }
        if offsets.len() != m + 1 {
            return Err(WireError::Corrupt("offsets length"));
        }
        if m > 0 && offsets.get(m) as usize > corrections.len() {
            return Err(WireError::Corrupt("corrections overflow"));
        }
        // Every point must be covered by a fragment and vice versa: a
        // crafted archive with n > 0 but m == 0 would make fragment_of
        // underflow on the first query.
        if (m == 0) != (n == 0) {
            return Err(WireError::Corrupt("fragment count vs series length"));
        }
        // In BitVector rank mode the index is one bit per position; a
        // shorter vector would send rank1(k + 1) out of bounds.
        if let StartIndexView::Bv(bv) = &starts {
            if bv.len() != n {
                return Err(WireError::Corrupt("start bitvector length"));
            }
        }
        // Kind symbols: per-symbol ranks at m give the counts in O(σ·log σ);
        // they sum to m iff no out-of-table symbol occurs anywhere.
        let mut total_syms = 0usize;
        for (sym, &kind) in kind_table.iter().enumerate() {
            let count = kinds.rank(sym as u8, m);
            if params[sym].len() != count * kind.param_count() {
                return Err(WireError::Corrupt("params length"));
            }
            total_syms += count;
        }
        if total_syms != m {
            return Err(WireError::Corrupt("kind symbol"));
        }
        // Fragment geometry: one streaming pass over starts and offsets
        // (no per-fragment select), mirroring the owned reader's checks.
        let mut starts_it = starts.iter();
        let mut offsets_it = offsets.iter();
        let mut cur_start = starts_it.next();
        let mut o_prev = offsets_it.next().unwrap_or(0) as usize;
        for i in 0..m {
            let start = cur_start.expect("length checked above");
            if i == 0 && start != 0 {
                return Err(WireError::Corrupt("first fragment start"));
            }
            if start >= n {
                return Err(WireError::Corrupt("start beyond series"));
            }
            cur_start = starts_it.next();
            let end = cur_start.unwrap_or(n);
            if end <= start || end > n {
                return Err(WireError::Corrupt("fragment bounds"));
            }
            let w = widths.get(i) as usize;
            if w > 64 {
                return Err(WireError::Corrupt("correction width"));
            }
            let o_next = offsets_it.next().expect("length checked above") as usize;
            if o_next < o_prev || o_next - o_prev != (end - start) * w {
                return Err(WireError::Corrupt("offset stride"));
            }
            o_prev = o_next;
            if origin_deltas.get(i) as usize > start {
                return Err(WireError::Corrupt("origin delta"));
            }
        }
        Ok(Self {
            n,
            shift,
            starts,
            widths,
            offsets,
            corrections,
            kinds,
            kind_table,
            params,
            origin_deltas,
        })
    }

    /// Number of data points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The global positivity shift stored in the header.
    pub fn shift(&self) -> i64 {
        self.shift
    }

    /// Number of fragments `m`.
    pub fn fragment_count(&self) -> usize {
        self.widths.len()
    }

    /// Index of the fragment covering position `k`.
    pub fn fragment_index_of(&self, k: usize) -> usize {
        debug_assert!(k < self.n);
        self.starts.fragment_of(k)
    }

    /// The correction bit width `B[i]` of fragment `i`.
    pub fn correction_width_of(&self, i: usize) -> usize {
        self.widths.get(i) as usize
    }

    /// Reconstructs the fragment descriptor for fragment `i`.
    pub fn fragment(&self, i: usize) -> Fragment {
        let start = self.starts.start_of(i);
        let end = if i + 1 < self.fragment_count() { self.starts.start_of(i + 1) } else { self.n };
        let (sym, rank) = self.kinds.access_rank(i);
        let kind = self.kind_table[sym as usize];
        let params = self.params_of(sym, rank);
        let origin = start - self.origin_deltas.get(i) as usize;
        Fragment { kind, params, start, end, origin }
    }

    #[inline]
    fn params_of(&self, sym: u8, rank: usize) -> Params {
        let kind = self.kind_table[sym as usize];
        let pc = kind.param_count();
        let base = rank * pc;
        let arr = &self.params[sym as usize];
        Params {
            m: f64::from_bits(arr.get(base)),
            b: f64::from_bits(arr.get(base + 1)),
            extra: if pc == 3 { f64::from_bits(arr.get(base + 2)) } else { 0.0 },
        }
    }

    /// Reads the correction for position `k` of fragment `i` starting at
    /// `start`.
    #[inline]
    fn correction(&self, i: usize, start: usize, k: usize) -> i64 {
        let w = self.widths.get(i) as usize;
        if w == 0 {
            return 0;
        }
        let o = self.offsets.get(i) as usize + (k - start) * w;
        let bias = 1u64 << (w - 1);
        self.corrections.get_bits(o, w).wrapping_sub(bias) as i64
    }

    /// Per-kind fragment counts.
    pub fn kind_histogram(&self) -> Vec<(Kind, usize)> {
        let m = self.fragment_count();
        self.kind_table
            .iter()
            .enumerate()
            .map(|(sym, &kind)| (kind, self.kinds.rank(sym as u8, m)))
            .collect()
    }

    /// Algorithm 3: random access to the value at position `k`.
    pub fn get(&self, k: usize) -> i64 {
        debug_assert!(k < self.n);
        let i = self.starts.fragment_of(k);
        let start = self.starts.start_of(i);
        let (sym, rank) = self.kinds.access_rank(i);
        let params = self.params_of(sym, rank);
        let kind = self.kind_table[sym as usize];
        let origin = start - self.origin_deltas.get(i) as usize;
        let frag = Fragment { kind, params, start, end: self.n, origin };
        model_value(&frag, k, self.shift).wrapping_add(self.correction(i, start, k))
    }

    /// Range query: one rank to locate the first fragment, then a sequential
    /// scan across fragments.
    pub fn scan_range(&self, start: usize, count: usize, out: &mut Vec<i64>) {
        if count == 0 {
            return;
        }
        debug_assert!(start + count <= self.n);
        let end = start + count;
        let mut i = self.starts.fragment_of(start);
        let mut pos = start;
        while pos < end {
            let frag = self.fragment(i);
            let to = frag.end.min(end);
            let w = self.widths.get(i) as usize;
            let o0 = self.offsets.get(i) as usize + (pos - frag.start) * w;
            self.emit_loop_dispatch(&frag, pos, to, w, o0, out);
            pos = to;
            i += 1;
        }
    }

    /// Algorithm 2: full decompression, fragment by fragment, with all
    /// cursors streaming (no per-fragment select/rank machinery).
    pub fn decompress(&self) -> Vec<i64> {
        let m = self.fragment_count();
        let mut out = Vec::with_capacity(self.n);
        let mut ranks = vec![0usize; self.kind_table.len()];
        let mut o = 0usize;
        let mut starts = self.starts.iter();
        let mut start = starts.next().unwrap_or(0);
        for i in 0..m {
            let end = starts.next().unwrap_or(self.n);
            let sym = self.kinds.access(i);
            let kind = self.kind_table[sym as usize];
            let params = self.params_of(sym, ranks[sym as usize]);
            ranks[sym as usize] += 1;
            let origin = start - self.origin_deltas.get(i) as usize;
            let frag = Fragment { kind, params, start, end, origin };
            let w = self.widths.get(i) as usize;
            self.emit_loop_dispatch(&frag, start, end, w, o, &mut out);
            o += (end - start) * w;
            start = end;
        }
        out
    }

    /// Kind-dispatched emit over `[from, to)` reading `w`-bit corrections
    /// starting at bit `o0` (mirrors the owned hot loop).
    fn emit_loop_dispatch(
        &self,
        frag: &Fragment,
        from: usize,
        to: usize,
        w: usize,
        o0: usize,
        out: &mut Vec<i64>,
    ) {
        let p = frag.params;
        macro_rules! dispatch {
            ($kind:expr) => {
                self.emit_loop(|u| $kind.eval(p, u), frag, from, to, w, o0, out)
            };
        }
        match frag.kind {
            Kind::Linear => dispatch!(Kind::Linear),
            Kind::Quadratic => dispatch!(Kind::Quadratic),
            Kind::Exponential => dispatch!(Kind::Exponential),
            Kind::Sqrt => dispatch!(Kind::Sqrt),
            Kind::Logarithmic => dispatch!(Kind::Logarithmic),
            Kind::Power => dispatch!(Kind::Power),
            Kind::QuadOffset => dispatch!(Kind::QuadOffset),
            Kind::QuadLinear => dispatch!(Kind::QuadLinear),
            Kind::CubicLinear => dispatch!(Kind::CubicLinear),
            Kind::CubicQuad => dispatch!(Kind::CubicQuad),
            Kind::Gaussian => dispatch!(Kind::Gaussian),
        }
    }

    /// The monomorphised emit loop shared by all kinds; `o0` is the bit
    /// offset of the first correction to read. Identical arithmetic to the
    /// owned loop — correction words are read through the unaligned view.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn emit_loop<F: Fn(f64) -> f64>(
        &self,
        eval: F,
        frag: &Fragment,
        from: usize,
        to: usize,
        w: usize,
        o0: usize,
        out: &mut Vec<i64>,
    ) {
        let shift_sub = if frag.kind.log_domain() { self.shift } else { 0 };
        let origin = frag.origin;
        let base = out.len();
        out.resize(base + (to - from), 0);
        let slice = &mut out[base..];
        for (j, v) in slice.iter_mut().enumerate() {
            let f = eval((from + j - origin + 1) as f64);
            *v = crate::fit::floor_to_i64(f).wrapping_sub(shift_sub);
        }
        if w > 0 {
            let bias = 1u64 << (w - 1);
            let words = self.corrections.words();
            let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
            let mut word_idx = o0 / 64;
            let mut bit = o0 % 64;
            let mut cur = words.get(word_idx);
            for v in &mut out[base..] {
                let mut raw = cur >> bit;
                if bit + w > 64 {
                    raw |= words.get(word_idx + 1) << (64 - bit);
                }
                *v = v.wrapping_add((raw & mask).wrapping_sub(bias) as i64);
                bit += w;
                if bit >= 64 {
                    bit -= 64;
                    word_idx += 1;
                    cur = if word_idx < words.len() { words.get(word_idx) } else { 0 };
                }
            }
        }
    }

    /// Exact range sum (scan-based), as `i128` to avoid overflow.
    pub fn sum_range_exact(&self, start: usize, count: usize) -> i128 {
        let mut out = Vec::with_capacity(count);
        self.scan_range(start, count, &mut out);
        out.iter().map(|&v| v as i128).sum()
    }

    /// Exact range minimum and maximum (scan-based); `None` when `count` is
    /// zero.
    pub fn min_max_range_exact(&self, start: usize, count: usize) -> Option<(i64, i64)> {
        if count == 0 {
            return None;
        }
        let mut out = Vec::with_capacity(count);
        self.scan_range(start, count, &mut out);
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for &v in &out {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }

    /// Approximate range sum from the learned functions only (no correction
    /// reads), bit-identical to the owned estimate.
    pub fn sum_range_estimate(&self, start: usize, count: usize) -> Estimate {
        if count == 0 {
            return Estimate { value: 0.0, max_error: 0.0 };
        }
        debug_assert!(start + count <= self.n);
        let end = start + count;
        let mut i = self.fragment_index_of(start);
        let mut pos = start;
        let mut value = 0.0f64;
        let mut max_error = 0.0f64;
        while pos < end {
            let frag = self.fragment(i);
            let to = frag.end.min(end);
            value += fragment_model_sum(&frag, pos, to, self.shift);
            let w = self.correction_width_of(i);
            let bias = if w == 0 { 0.0 } else { (1u64 << (w - 1)) as f64 };
            max_error += (to - pos) as f64 * (bias + 1.0);
            pos = to;
            i += 1;
        }
        Estimate { value, max_error }
    }

    /// Approximate range mean with the same guarantee, scaled by `1/count`.
    pub fn mean_range_estimate(&self, start: usize, count: usize) -> Estimate {
        let s = self.sum_range_estimate(start, count);
        let n = count.max(1) as f64;
        Estimate { value: s.value / n, max_error: s.max_error / n }
    }

    /// Approximate range minimum and maximum from the learned functions
    /// only, each with a guaranteed error bound.
    pub fn min_max_range_estimate(&self, start: usize, count: usize) -> (Estimate, Estimate) {
        assert!(count > 0, "min/max of an empty range is undefined");
        debug_assert!(start + count <= self.n);
        let end = start + count;
        let mut i = self.fragment_index_of(start);
        let mut pos = start;
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        let mut bound = 0.0f64;
        while pos < end {
            let frag = self.fragment(i);
            let to = frag.end.min(end);
            let (flo, fhi) = fragment_model_extremes(&frag, pos, to, self.shift);
            lo = lo.min(flo);
            hi = hi.max(fhi);
            let w = self.correction_width_of(i);
            let bias = if w == 0 { 0.0 } else { (1u64 << (w - 1)) as f64 };
            bound = bound.max(bias);
            pos = to;
            i += 1;
        }
        (
            Estimate { value: lo as f64, max_error: bound },
            Estimate { value: hi as f64, max_error: bound },
        )
    }
}

/// Zero-copy counterpart of [`crate::NeaTSLossy`]: the ε-bounded query
/// surface over borrowed bytes.
#[derive(Clone, Debug)]
pub struct LossyView<'a> {
    n: usize,
    shift: i64,
    eps: u64,
    starts: EliasFanoView<'a>,
    kinds: WaveletMatrixView<'a>,
    kind_table: Vec<Kind>,
    params: Vec<U64sView<'a>>,
    origin_deltas: PackedVecView<'a>,
}

impl<'a> LossyView<'a> {
    /// Parses and validates the lossy payload — the same invariants as the
    /// owned `read_wire`, checked through the borrowed views.
    fn read(r: &mut WireReader<'a>) -> Result<Self, WireError> {
        let n = r.read_len()?;
        let shift = r.i64()?;
        let eps = r.u64()?;
        let starts = EliasFanoView::read(r)?;
        let kinds = WaveletMatrixView::read(r)?;
        let kind_table = serial::read_kind_table(r)?;
        let params = serial::read_params_ref(r, &kind_table)?;
        let origin_deltas = PackedVecView::read(r)?;
        starts.validate()?;
        kinds.validate()?;
        let m = starts.len();
        if kinds.len() != m || origin_deltas.len() != m {
            return Err(WireError::Corrupt("fragment count mismatch"));
        }
        // See the lossless reader: n and m must be zero together, or
        // fragment_of underflows on a crafted archive.
        if (m == 0) != (n == 0) {
            return Err(WireError::Corrupt("fragment count vs series length"));
        }
        let mut total_syms = 0usize;
        for (sym, &kind) in kind_table.iter().enumerate() {
            let count = kinds.rank(sym as u8, m);
            if params[sym].len() != count * kind.param_count() {
                return Err(WireError::Corrupt("params length"));
            }
            total_syms += count;
        }
        if total_syms != m {
            return Err(WireError::Corrupt("kind symbol"));
        }
        let mut prev = 0usize;
        for (i, s) in starts.iter().enumerate() {
            let s = s as usize;
            if (i == 0 && s != 0) || (i > 0 && s <= prev) || s >= n {
                return Err(WireError::Corrupt("fragment starts"));
            }
            if origin_deltas.get(i) as usize > s {
                return Err(WireError::Corrupt("origin delta"));
            }
            prev = s;
        }
        Ok(Self { n, shift, eps, starts, kinds, kind_table, params, origin_deltas })
    }

    /// Number of data points represented.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the approximation covers no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The error bound the approximation was built under.
    pub fn eps(&self) -> u64 {
        self.eps
    }

    /// The global positivity shift stored in the header.
    pub fn shift(&self) -> i64 {
        self.shift
    }

    /// Number of fragments.
    pub fn fragment_count(&self) -> usize {
        self.origin_deltas.len()
    }

    /// Index of the fragment covering position `k`.
    pub fn fragment_index_of(&self, k: usize) -> usize {
        debug_assert!(k < self.n);
        self.starts.rank_leq(k as u64) - 1
    }

    /// Reconstructs the fragment descriptor for fragment `i`.
    pub fn fragment(&self, i: usize) -> Fragment {
        let start = self.starts.get(i) as usize;
        let end = if i + 1 < self.fragment_count() {
            self.starts.get(i + 1) as usize
        } else {
            self.n
        };
        let sym = self.kinds.access(i);
        let kind = self.kind_table[sym as usize];
        let params = self.params_of(sym, self.kinds.rank(sym, i));
        let origin = start - self.origin_deltas.get(i) as usize;
        Fragment { kind, params, start, end, origin }
    }

    #[inline]
    fn params_of(&self, sym: u8, rank: usize) -> Params {
        let pc = self.kind_table[sym as usize].param_count();
        let base = rank * pc;
        let arr = &self.params[sym as usize];
        Params {
            m: f64::from_bits(arr.get(base)),
            b: f64::from_bits(arr.get(base + 1)),
            extra: if pc == 3 { f64::from_bits(arr.get(base + 2)) } else { 0.0 },
        }
    }

    /// The approximated value at position `k` (random access).
    pub fn approximate(&self, k: usize) -> i64 {
        debug_assert!(k < self.n);
        let i = self.starts.rank_leq(k as u64) - 1;
        let frag = self.fragment(i);
        model_value(&frag, k, self.shift)
    }

    /// Per-kind fragment counts.
    pub fn kind_histogram(&self) -> Vec<(Kind, usize)> {
        let m = self.fragment_count();
        self.kind_table
            .iter()
            .enumerate()
            .map(|(sym, &kind)| (kind, self.kinds.rank(sym as u8, m)))
            .collect()
    }

    /// Appends the approximated values in `[start, start + count)` to `out`:
    /// one rank, then a sequential fragment walk.
    pub fn scan_range(&self, start: usize, count: usize, out: &mut Vec<i64>) {
        if count == 0 {
            return;
        }
        debug_assert!(start + count <= self.n);
        let end = start + count;
        let mut i = self.fragment_index_of(start);
        let mut pos = start;
        while pos < end {
            let frag = self.fragment(i);
            let to = frag.end.min(end);
            for k in pos..to {
                out.push(model_value(&frag, k, self.shift));
            }
            pos = to;
            i += 1;
        }
    }

    /// Materialises the whole approximated series (sequential walk).
    pub fn reconstruct(&self) -> Vec<i64> {
        let m = self.fragment_count();
        let mut out = Vec::with_capacity(self.n);
        let mut ranks = vec![0usize; self.kind_table.len()];
        let mut starts = self.starts.iter();
        let mut start = starts.next().map(|v| v as usize).unwrap_or(0);
        for i in 0..m {
            let end = starts.next().map(|v| v as usize).unwrap_or(self.n);
            let sym = self.kinds.access(i);
            let kind = self.kind_table[sym as usize];
            let params = self.params_of(sym, ranks[sym as usize]);
            ranks[sym as usize] += 1;
            let origin = start - self.origin_deltas.get(i) as usize;
            let frag = Fragment { kind, params, start, end, origin };
            for k in start..end {
                out.push(model_value(&frag, k, self.shift));
            }
            start = end;
        }
        out
    }

    /// Streaming fold over the approximated values in
    /// `[start, start + count)`: one rank, then a fragment walk evaluating
    /// the models directly — no allocation.
    fn fold_range<A>(&self, start: usize, count: usize, mut acc: A, f: impl Fn(A, i64) -> A) -> A {
        if count == 0 {
            return acc;
        }
        debug_assert!(start + count <= self.n);
        let end = start + count;
        let mut i = self.fragment_index_of(start);
        let mut pos = start;
        while pos < end {
            let frag = self.fragment(i);
            let to = frag.end.min(end);
            for k in pos..to {
                acc = f(acc, model_value(&frag, k, self.shift));
            }
            pos = to;
            i += 1;
        }
        acc
    }

    /// Exact range sum of the ε-bounded approximations, as `i128` to avoid
    /// overflow (a streaming fragment walk, no allocation).
    pub fn sum_range_exact(&self, start: usize, count: usize) -> i128 {
        self.fold_range(start, count, 0i128, |acc, v| acc + v as i128)
    }

    /// Exact range minimum and maximum of the ε-bounded approximations;
    /// `None` when `count` is zero (a streaming fragment walk, no
    /// allocation).
    pub fn min_max_range_exact(&self, start: usize, count: usize) -> Option<(i64, i64)> {
        self.fold_range(start, count, None, |acc: Option<(i64, i64)>, v| match acc {
            Some((lo, hi)) => Some((lo.min(v), hi.max(v))),
            None => Some((v, v)),
        })
    }

    /// Approximate range sum from the lossy model: error bound
    /// `count·(ε+2)`, bit-identical to the owned estimate.
    pub fn sum_range_estimate(&self, start: usize, count: usize) -> Estimate {
        if count == 0 {
            return Estimate { value: 0.0, max_error: 0.0 };
        }
        debug_assert!(start + count <= self.n);
        let end = start + count;
        let mut i = self.fragment_index_of(start);
        let mut pos = start;
        let mut value = 0.0f64;
        while pos < end {
            let frag = self.fragment(i);
            let to = frag.end.min(end);
            value += fragment_model_sum(&frag, pos, to, self.shift);
            pos = to;
            i += 1;
        }
        Estimate { value, max_error: count as f64 * (self.eps as f64 + 2.0) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NeaTS, RankMode};
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use timeseries::{CompressedSeries, TimeSeries};

    fn walk(n: usize, seed: u64) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v = 0i64;
        TimeSeries::from_values((0..n).map(|_| { v += rng.random_range(-40..41); v }).collect())
    }

    #[test]
    fn lossless_view_answers_match_owned() {
        let ts = walk(3000, 1);
        for mode in [RankMode::EliasFano, RankMode::BitVector] {
            let c = NeaTS::builder().rank_mode(mode).build(&ts);
            let bytes = c.to_bytes();
            let view = ArchiveView::open(&bytes).unwrap();
            assert_eq!(view.len(), c.len());
            assert_eq!(view.fragment_count(), c.fragment_count());
            for k in 0..ts.len() {
                assert_eq!(view.at(k), c.get(k), "{mode:?} at({k})");
            }
            assert_eq!(view.materialize(), c.decompress(), "{mode:?}");
        }
    }

    #[test]
    fn lossy_view_answers_match_owned() {
        let ts = walk(2000, 2);
        let l = NeaTS::builder().build_lossy(&ts, 25);
        let bytes = l.to_bytes();
        let view = ArchiveView::open(&bytes).unwrap();
        let lossy = view.as_lossy().unwrap();
        assert_eq!(lossy.eps(), 25);
        for k in 0..ts.len() {
            assert_eq!(view.at(k), l.approximate(k), "at({k})");
        }
        assert_eq!(view.materialize(), l.reconstruct());
    }

    #[test]
    fn empty_archive_opens() {
        let c = NeaTS::compress(&TimeSeries::from_values(vec![]));
        let bytes = c.to_bytes();
        let view = ArchiveView::open(&bytes).unwrap();
        assert!(view.is_empty());
        assert_eq!(view.materialize(), Vec::<i64>::new());
    }

    #[test]
    fn view_range_matches_slice() {
        let ts = walk(2000, 3);
        let bytes = NeaTS::compress(&ts).to_bytes();
        let view = ArchiveView::open(&bytes).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..60 {
            let s = rng.random_range(0..ts.len());
            let l = rng.random_range(0..=(ts.len() - s).min(400));
            let mut out = Vec::new();
            view.range(s..s + l, &mut out);
            assert_eq!(out, &ts.values()[s..s + l], "range [{s}, {})", s + l);
        }
    }
}
