//! Time series with explicit (non-contiguous) timestamps.
//!
//! The paper stores only values, noting (footnote 5) that real timestamps
//! "form an increasing sequence of integers that can be easily mapped to
//! 1, …, n via monotone minimal perfect hash functions or compressed rank
//! data structures: … the latter take more space but enable range queries
//! over timestamps". This module implements that second option: the
//! timestamp column is Elias-Fano coded (≈ 2 + log(u/n) bits per stamp) and
//! composed with a NeaTS-compressed value column, giving point lookups and
//! time-interval queries directly on compressed data.

use crate::layout::NeaTSCompressed;
use crate::NeaTSBuilder;
use succinct::EliasFano;
use timeseries::{CompressedSeries, TimeSeries};

/// A NeaTS-compressed series with an Elias-Fano timestamp index.
///
/// ```
/// use neats_core::{NeaTS, TimestampedNeaTS};
/// use timeseries::TimeSeries;
///
/// let stamps: Vec<u64> = (0..100).map(|i| 1_700_000_000 + i * 60).collect();
/// let values = TimeSeries::from_values((0..100).map(|k| 20 + k % 5).collect());
/// let table = TimestampedNeaTS::compress(&stamps, &values, &NeaTS::builder()).unwrap();
/// assert_eq!(table.get_at(1_700_000_060), Some(21));
/// let mut hour = Vec::new();
/// table.range_by_time(1_700_000_000, 1_700_003_600, &mut hour);
/// assert_eq!(hour.len(), 61);
/// ```
#[derive(Clone, Debug)]
pub struct TimestampedNeaTS {
    /// First timestamp, subtracted before Elias-Fano coding so the universe
    /// is the stamp *span*, not its absolute magnitude.
    base: u64,
    timestamps: EliasFano,
    values: NeaTSCompressed,
}

/// Errors from [`TimestampedNeaTS::compress`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimestampError {
    /// Timestamps must strictly increase (paper Definition 1).
    NotStrictlyIncreasing {
        /// Position of the first out-of-order timestamp.
        index: usize,
    },
    /// Timestamp and value columns differ in length.
    LengthMismatch {
        /// Length of the timestamp column.
        timestamps: usize,
        /// Length of the value column.
        values: usize,
    },
}

impl std::fmt::Display for TimestampError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimestampError::NotStrictlyIncreasing { index } => {
                write!(f, "timestamp at index {index} does not increase")
            }
            TimestampError::LengthMismatch { timestamps, values } => {
                write!(f, "{timestamps} timestamps vs {values} values")
            }
        }
    }
}

impl std::error::Error for TimestampError {}

impl TimestampedNeaTS {
    /// Compresses a `(timestamps, values)` pair; timestamps must strictly
    /// increase.
    pub fn compress(
        timestamps: &[u64],
        values: &TimeSeries,
        builder: &NeaTSBuilder,
    ) -> Result<Self, TimestampError> {
        if timestamps.len() != values.len() {
            return Err(TimestampError::LengthMismatch {
                timestamps: timestamps.len(),
                values: values.len(),
            });
        }
        for (i, w) in timestamps.windows(2).enumerate() {
            if w[1] <= w[0] {
                return Err(TimestampError::NotStrictlyIncreasing { index: i + 1 });
            }
        }
        let base = timestamps.first().copied().unwrap_or(0);
        let rebased: Vec<u64> = timestamps.iter().map(|&t| t - base).collect();
        Ok(Self { base, timestamps: EliasFano::new(&rebased), values: builder.build(values) })
    }

    /// Number of data points.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total compressed size (timestamp index + value column).
    pub fn size_in_bytes(&self) -> usize {
        self.timestamps.size_in_bytes() + self.values.size_in_bytes()
    }

    /// The timestamp of the `i`-th point.
    pub fn timestamp(&self, i: usize) -> u64 {
        self.base + self.timestamps.get(i)
    }

    /// The value of the `i`-th point.
    pub fn value(&self, i: usize) -> i64 {
        self.values.get(i)
    }

    /// The value recorded exactly at timestamp `t`, if any.
    pub fn get_at(&self, t: u64) -> Option<i64> {
        if t < self.base {
            return None;
        }
        let r = self.timestamps.rank_leq(t - self.base);
        if r == 0 || self.timestamps.get(r - 1) != t - self.base {
            return None;
        }
        Some(self.values.get(r - 1))
    }

    /// Index of the first point with timestamp ≥ `t`.
    pub fn lower_bound(&self, t: u64) -> usize {
        if t <= self.base {
            return 0;
        }
        self.timestamps.rank_leq(t - self.base - 1)
    }

    /// Appends all `(timestamp, value)` pairs with timestamp in
    /// `[t_lo, t_hi]` — the fundamental time-interval query of §I, resolved
    /// as one timestamp rank plus a value scan.
    pub fn range_by_time(&self, t_lo: u64, t_hi: u64, out: &mut Vec<(u64, i64)>) {
        if t_hi < t_lo || self.is_empty() {
            return;
        }
        if t_hi < self.base {
            return;
        }
        let first = self.lower_bound(t_lo);
        let end = self.timestamps.rank_leq(t_hi - self.base);
        if first >= end {
            return;
        }
        let mut values = Vec::with_capacity(end - first);
        self.values.scan_range(first, end - first, &mut values);
        out.reserve(end - first);
        for (off, v) in values.into_iter().enumerate() {
            out.push((self.base + self.timestamps.get(first + off), v));
        }
    }

    /// The underlying compressed value column.
    pub fn values(&self) -> &NeaTSCompressed {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NeaTS;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn build(n: usize, seed: u64) -> (Vec<u64>, TimeSeries, TimestampedNeaTS) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 1_600_000_000u64; // epoch-style stamps with gaps
        let timestamps: Vec<u64> = (0..n)
            .map(|_| {
                t += rng.random_range(1..120);
                t
            })
            .collect();
        let mut v = 500i64;
        let values = TimeSeries::from_values(
            (0..n).map(|_| { v += rng.random_range(-5..6); v }).collect(),
        );
        let c = TimestampedNeaTS::compress(&timestamps, &values, &NeaTS::builder()).unwrap();
        (timestamps, values, c)
    }

    #[test]
    fn point_lookup_by_timestamp() {
        let (timestamps, values, c) = build(2000, 1);
        for i in (0..2000).step_by(97) {
            assert_eq!(c.get_at(timestamps[i]), Some(values.values()[i]));
        }
        // A gap timestamp yields None.
        let gap = timestamps[10] + 1;
        if !timestamps.contains(&gap) {
            assert_eq!(c.get_at(gap), None);
        }
        assert_eq!(c.get_at(0), None);
    }

    #[test]
    fn time_interval_query_matches_filter() {
        let (timestamps, values, c) = build(3000, 2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let a = rng.random_range(0..timestamps.len());
            let b = rng.random_range(a..timestamps.len());
            let (t_lo, t_hi) = (timestamps[a], timestamps[b]);
            let mut got = Vec::new();
            c.range_by_time(t_lo, t_hi, &mut got);
            let expected: Vec<(u64, i64)> = timestamps
                .iter()
                .zip(values.values())
                .filter(|(&t, _)| t >= t_lo && t <= t_hi)
                .map(|(&t, &v)| (t, v))
                .collect();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn empty_interval_and_out_of_range() {
        let (timestamps, _, c) = build(100, 4);
        let mut out = Vec::new();
        c.range_by_time(10, 5, &mut out); // inverted
        assert!(out.is_empty());
        c.range_by_time(0, timestamps[0] - 1, &mut out); // before first
        assert!(out.is_empty());
        c.range_by_time(*timestamps.last().unwrap() + 1, u64::MAX, &mut out);
        assert!(out.is_empty());
        c.range_by_time(0, u64::MAX, &mut out); // everything
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn rejects_bad_input() {
        let values = TimeSeries::from_values(vec![1, 2, 3]);
        let err = TimestampedNeaTS::compress(&[5, 5, 6], &values, &NeaTS::builder()).unwrap_err();
        assert_eq!(err, TimestampError::NotStrictlyIncreasing { index: 1 });
        let err = TimestampedNeaTS::compress(&[1, 2], &values, &NeaTS::builder()).unwrap_err();
        assert!(matches!(err, TimestampError::LengthMismatch { .. }));
    }

    #[test]
    fn timestamp_index_is_compact() {
        let (_, _, c) = build(10_000, 5);
        // EF on ~minute-spaced epoch stamps: ~2 + log(avg gap) ≈ 9 bits/stamp.
        let ts_bits = 8.0 * c.timestamps.size_in_bytes() as f64 / 10_000.0;
        assert!(ts_bits < 16.0, "{ts_bits} bits per timestamp");
    }
}
