//! Algorithm 1: partitioning a time series into fragments, each associated
//! with a nonlinear ε-approximation, minimising the encoded bit size.
//!
//! The paper models the problem as a shortest path on a DAG with one node per
//! data point (plus a sink): every fragment `T[i, j−1]` that some pair
//! `(f, ε) ∈ F × E` can ε-approximate contributes the edge `(i, j)` *and all
//! of its prefix and suffix edges*, weighted by the encoded size
//! `w_{f,ε}(i, j) = (j − i)·⌈log(2ε+1)⌉ + κ_f`. Instead of materialising the
//! graph, the algorithm sweeps nodes left to right keeping, per pair, only
//! the fragment overlapping the current node, splitting it into prefix and
//! suffix edges on the fly. Total time O(|F|·|E|·n).
//!
//! ## Two-stage parallel execution
//!
//! The dominant cost — running `MakeApproximation` for every pair at every
//! tiling position — depends only on `values`, never on the DP state: the
//! sweep fits a new fragment for pair `(f, ε)` at node `k` precisely when
//! the pair's previous fragment ends at or before `k`, so the fragments a
//! pair contributes are exactly its greedy tiling of the series.
//! [`partition`] exploits this by splitting Algorithm 1 into
//!
//! 1. **stage 1** — compute each pair's greedy fragment list, with the pairs
//!    fanned out across threads ([`crate::parallel`]) over a shared
//!    [`FitView`] (the hoisted f64 view of the values), and
//! 2. **stage 2** — a cheap sequential sweep that replays the prefix/suffix
//!    edge relaxations from the precomputed lists.
//!
//! The result is bit-identical to the original one-pass sweep, which is kept
//! as [`partition_reference`] and asserted equivalent in the test suite.

use crate::fit::{longest_fragment, longest_fragment_in, FitView, Fragment, Kind};
use crate::parallel::{effective_threads, parallel_map_indexed};
use succinct::bits_for_residual_bound;

/// A `(kind, ε)` pair considered by the partitioner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pair {
    /// Function family.
    pub kind: Kind,
    /// Error bound.
    pub eps: u64,
}

/// Configuration of the partitioning algorithm.
#[derive(Clone, Debug)]
pub struct PartitionConfig {
    /// The `(f, ε)` pairs to consider (the paper's F × E, or a model-selected
    /// subset).
    pub pairs: Vec<Pair>,
    /// Global positivity shift for log-domain kinds (see
    /// [`positivity_shift`]).
    pub shift: i64,
    /// If `true` (lossless NeaTS) edge weights include `(j−i)·⌈log(2ε+1)⌉`
    /// bits of corrections; if `false` (lossy NeaTS-L) only the function
    /// parameters are charged.
    pub lossless: bool,
    /// Per-fragment metadata bits beyond the raw parameters (the paper's
    /// "small metadata": kind tag, start, offsets). Charged into κ_f.
    pub overhead_bits: u64,
    /// Worker threads for stage 1 of [`partition`]. `0` means automatic:
    /// the `NEATS_THREADS` environment variable if set, otherwise all
    /// available cores. The choice never affects the output — the
    /// partitioner is bit-deterministic across thread counts.
    pub threads: usize,
}

impl PartitionConfig {
    /// Lossless configuration over the cross product `kinds × epsilons`.
    pub fn lossless(kinds: &[Kind], epsilons: &[u64], shift: i64) -> Self {
        let pairs = kinds
            .iter()
            .flat_map(|&kind| epsilons.iter().map(move |&eps| Pair { kind, eps }))
            .collect();
        Self { pairs, shift, lossless: true, overhead_bits: DEFAULT_OVERHEAD_BITS, threads: 0 }
    }

    /// Lossy configuration with a single ε (paper §III-B, "Partitioning for
    /// lossy compression").
    pub fn lossy(kinds: &[Kind], eps: u64, shift: i64) -> Self {
        let pairs = kinds.iter().map(|&kind| Pair { kind, eps }).collect();
        Self { pairs, shift, lossless: false, overhead_bits: DEFAULT_OVERHEAD_BITS, threads: 0 }
    }

    /// Sets the stage-1 worker thread count (see [`Self::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// κ_f for a pair: parameter storage plus fixed metadata.
    fn kappa(&self, kind: Kind) -> u64 {
        kind.param_count() as u64 * 64 + self.overhead_bits
    }

    /// Bits per correction for a pair.
    fn correction_width(&self, eps: u64) -> u64 {
        if self.lossless {
            bits_for_residual_bound(eps) as u64
        } else {
            0
        }
    }
}

/// Default per-fragment metadata charge: Elias-Fano start + offset entries,
/// packed width, kind tag, origin delta — about a machine word.
pub const DEFAULT_OVERHEAD_BITS: u64 = 64;

/// The paper's positivity shift (footnote 2): a constant `s` such that
/// `y + s − ε ≥ 1` for every value and every ε in use, enabling log-domain
/// transforms. Zero when the data is already sufficiently positive.
pub fn positivity_shift(values: &[i64], max_eps: u64) -> i64 {
    match values.iter().min() {
        Some(&min) => (max_eps as i64 + 1).saturating_sub(min).max(0),
        None => 0,
    }
}

/// The paper's default error-bound set `E = {0, 2¹, 2², …, 2^⌈log Δ⌉}`
/// (§III-B complexity analysis).
pub fn default_epsilons(delta: u64) -> Vec<u64> {
    let mut eps = vec![0u64];
    if delta > 1 {
        let top = 64 - (delta - 1).leading_zeros(); // ⌈log₂ Δ⌉
        eps.extend((1..=top).map(|i| 1u64 << i));
    }
    eps
}

/// An incoming shortest-path edge recorded for reconstruction.
///
/// Deliberately tiny (12 bytes): the fitted parameters are *not* stored per
/// node — fitting is deterministic, so the backtrack refits the `m ≪ n`
/// winning fragments from their origins instead, keeping the O(n) `prev`
/// array compact.
#[derive(Clone, Copy, Debug)]
struct PrevEdge {
    from: u32,
    origin: u32,
    /// Index into `config.pairs`.
    pair: u32,
}

/// Result of [`partition`]: the chosen fragments plus their ε bounds.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Fragments tiling `[0, n)` in order.
    pub fragments: Vec<Fragment>,
    /// The ε bound each fragment was fitted under (parallel to `fragments`).
    pub epsilons: Vec<u64>,
    /// Total cost of the shortest path in bits (the optimisation objective).
    pub cost_bits: u64,
}

/// Stage 1: the greedy tiling pair `(f, ε)` contributes to the sweep — the
/// exact sequence of fragment spans the reference sweep fits for that pair.
///
/// A fragment is fit at node `k` precisely when the previous one ends at or
/// before `k`; when the transform is undefined at `k` (fit returns `None`)
/// the sweep retries at `k + 1`. Both behaviours are reproduced here, so
/// each span's `start` records where the successful fit happened and gaps
/// encode the `None` stretches.
///
/// Only `(start, end)` spans are kept — 8 bytes per fragment. The DP never
/// needs the fitted parameters (edge weights depend on span length alone),
/// and noisy configurations produce millions of plan fragments, so storing
/// whole [`Fragment`]s here would cost hundreds of MB of allocation
/// traffic. The backtrack refits the few winners instead.
fn pair_plan(view: &FitView<'_>, pair: Pair) -> Vec<(u32, u32)> {
    let n = view.len();
    let mut plan = Vec::new();
    let mut k = 0usize;
    while k < n {
        match longest_fragment_in(view, k, pair.kind, pair.eps) {
            Some(f) => {
                debug_assert!(f.end > k && f.origin == k);
                plan.push((k as u32, f.end as u32));
                k = f.end;
            }
            None => k += 1,
        }
    }
    plan
}

/// Runs Algorithm 1 and returns the space-minimising partition.
///
/// This is the two-stage execution (see the module docs): per-pair greedy
/// fragment lists are computed in parallel over `config.threads` workers,
/// then a sequential DP sweep replays the edge relaxations. Output is
/// bit-identical to [`partition_reference`] for every thread count.
///
/// # Panics
/// Panics if `config.pairs` is empty, or if no pair can fit some position
/// (which cannot happen when `config.shift` comes from [`positivity_shift`]).
pub fn partition(values: &[i64], config: &PartitionConfig) -> Partition {
    assert!(!config.pairs.is_empty(), "need at least one (kind, eps) pair");
    let n = values.len();
    if n == 0 {
        return Partition { fragments: Vec::new(), epsilons: Vec::new(), cost_bits: 0 };
    }
    assert!(n < u32::MAX as usize, "series too long for u32 node ids");

    // Stage 1: per-pair greedy tilings, fanned out across threads.
    let with_log = config.pairs.iter().any(|p| p.kind.log_domain());
    let view = FitView::new(values, config.shift, with_log);
    let threads = effective_threads(config.threads);
    let plans: Vec<Vec<(u32, u32)>> =
        parallel_map_indexed(config.pairs.len(), threads, |pi| pair_plan(&view, config.pairs[pi]));

    // Stage 2: the sequential shortest-path sweep, replaying each pair's
    // span list instead of fitting inline.
    let mut dist = vec![u64::MAX; n + 1];
    let mut prev: Vec<Option<PrevEdge>> = vec![None; n + 1];
    dist[0] = 0;

    // Per-pair live span (the edge overlapping the sweep node).
    let mut live: Vec<Option<(u32, u32)>> = vec![None; config.pairs.len()];
    let mut cursor = vec![0usize; config.pairs.len()];
    let weights: Vec<(u64, u64)> = config
        .pairs
        .iter()
        .map(|p| (config.correction_width(p.eps), config.kappa(p.kind)))
        .collect();

    for k in 0..n {
        for pi in 0..config.pairs.len() {
            let needs_new = live[pi].is_none_or(|(_, end)| end as usize <= k);
            if needs_new {
                // The sweep would fit at node k; the plan has that fragment
                // iff the fit succeeded (its start is exactly k).
                live[pi] = match plans[pi].get(cursor[pi]) {
                    Some(&(s, e)) if s as usize == k => {
                        cursor[pi] += 1;
                        Some((s, e))
                    }
                    _ => None,
                };
            } else if let Some((s, _)) = live[pi] {
                // Relax the prefix edge (start, k); stage-1 fragments are
                // fit at their own start, so the origin is the start.
                let (cw, kappa) = weights[pi];
                relax(&mut dist, &mut prev, s as usize, k, cw, kappa, pi as u32, s);
            }
        }
        for pi in 0..config.pairs.len() {
            if let Some((s, e)) = live[pi] {
                // Relax the suffix edge (k, end) — the full edge when
                // k == start.
                let (cw, kappa) = weights[pi];
                relax(&mut dist, &mut prev, k, e as usize, cw, kappa, pi as u32, s);
            }
        }
    }

    backtrack(n, &dist, &prev, &config.pairs, |origin, pair| {
        longest_fragment_in(&view, origin, pair.kind, pair.eps)
    })
}

/// The original inline one-pass sweep of Algorithm 1, kept as the executable
/// specification the two-stage [`partition`] is tested bit-identical
/// against (and as the "point 0" measured by the perf baseline harness).
pub fn partition_reference(values: &[i64], config: &PartitionConfig) -> Partition {
    assert!(!config.pairs.is_empty(), "need at least one (kind, eps) pair");
    let n = values.len();
    if n == 0 {
        return Partition { fragments: Vec::new(), epsilons: Vec::new(), cost_bits: 0 };
    }
    assert!(n < u32::MAX as usize, "series too long for u32 node ids");

    let mut dist = vec![u64::MAX; n + 1];
    let mut prev: Vec<Option<PrevEdge>> = vec![None; n + 1];
    dist[0] = 0;

    // Per-pair live fragment (the edge overlapping the sweep node).
    let mut live: Vec<Option<Fragment>> = vec![None; config.pairs.len()];
    // Cached per-pair constants.
    let weights: Vec<(u64, u64)> = config
        .pairs
        .iter()
        .map(|p| (config.correction_width(p.eps), config.kappa(p.kind)))
        .collect();

    for k in 0..n {
        for (pi, pair) in config.pairs.iter().enumerate() {
            let needs_new = live[pi].is_none_or(|f| f.end <= k);
            if needs_new {
                // A new fragment starts at the sweep node.
                live[pi] = longest_fragment(values, k, pair.kind, pair.eps, config.shift);
            } else if let Some(f) = live[pi] {
                // Relax the prefix edge (f.start, k).
                let (cw, kappa) = weights[pi];
                relax(&mut dist, &mut prev, f.start, k, cw, kappa, pi as u32, f.origin as u32);
            }
        }
        for (pi, _) in config.pairs.iter().enumerate() {
            if let Some(f) = live[pi] {
                // Relax the suffix edge (k, f.end) — the full edge when
                // k == f.start.
                let (cw, kappa) = weights[pi];
                relax(&mut dist, &mut prev, k, f.end, cw, kappa, pi as u32, f.origin as u32);
            }
        }
    }

    backtrack(n, &dist, &prev, &config.pairs, |origin, pair| {
        longest_fragment(values, origin, pair.kind, pair.eps, config.shift)
    })
}

/// Reads the shortest path backwards (paper lines 21–26), refitting each
/// winning edge's function from its origin to recover the parameters
/// (fitting is deterministic, so this reproduces the exact params the sweep
/// saw without having stored them per node).
fn backtrack(
    n: usize,
    dist: &[u64],
    prev: &[Option<PrevEdge>],
    pairs: &[Pair],
    refit: impl Fn(usize, Pair) -> Option<Fragment>,
) -> Partition {
    let mut fragments = Vec::new();
    let mut epsilons = Vec::new();
    let mut k = n;
    while k != 0 {
        let e = prev[k].unwrap_or_else(|| panic!("node {k} unreachable: no pair covers it"));
        let pair = pairs[e.pair as usize];
        let fitted = refit(e.origin as usize, pair)
            .expect("refit of an edge the sweep fitted successfully");
        debug_assert_eq!(fitted.origin, e.origin as usize);
        debug_assert!(fitted.end >= k, "refit shorter than the recorded edge");
        fragments.push(Fragment {
            kind: pair.kind,
            params: fitted.params,
            start: e.from as usize,
            end: k,
            origin: e.origin as usize,
        });
        epsilons.push(pair.eps);
        k = e.from as usize;
    }
    fragments.reverse();
    epsilons.reverse();
    Partition { fragments, epsilons, cost_bits: dist[n] }
}

#[allow(clippy::too_many_arguments)]
#[inline]
fn relax(
    dist: &mut [u64],
    prev: &mut [Option<PrevEdge>],
    a: usize,
    b: usize,
    cw: u64,
    kappa: u64,
    pair: u32,
    origin: u32,
) {
    if a >= b || dist[a] == u64::MAX {
        return;
    }
    let w = (b - a) as u64 * cw + kappa;
    let cand = dist[a] + w;
    if cand < dist[b] {
        dist[b] = cand;
        prev[b] = Some(PrevEdge { from: a as u32, origin, pair });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::max_abs_residual;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn check_partition(values: &[i64], part: &Partition, shift: i64) {
        // Tiles [0, n) exactly.
        assert_eq!(part.fragments.len(), part.epsilons.len());
        if values.is_empty() {
            assert!(part.fragments.is_empty());
            return;
        }
        assert_eq!(part.fragments[0].start, 0);
        assert_eq!(part.fragments.last().unwrap().end, values.len());
        for w in part.fragments.windows(2) {
            assert_eq!(w[0].end, w[1].start, "gap or overlap");
        }
        // Every fragment respects its ε (±1 floor/float slack; the layout
        // widens correction cells when needed).
        for (f, &eps) in part.fragments.iter().zip(&part.epsilons) {
            let r = max_abs_residual(values, f, shift);
            assert!(r <= eps + 1, "fragment {:?} residual {r} > eps {eps}", f.kind);
            assert!(f.origin <= f.start, "origin after start");
        }
    }

    #[test]
    fn empty_series() {
        let cfg = PartitionConfig::lossless(&[Kind::Linear], &[0, 2], 0);
        let p = partition(&[], &cfg);
        assert!(p.fragments.is_empty());
        assert_eq!(p.cost_bits, 0);
    }

    #[test]
    fn single_value() {
        let cfg = PartitionConfig::lossless(&[Kind::Linear], &[0], 0);
        let p = partition(&[42], &cfg);
        check_partition(&[42], &p, 0);
        assert_eq!(p.fragments.len(), 1);
    }

    #[test]
    fn exact_line_single_fragment_eps0() {
        let values: Vec<i64> = (0..1000).map(|k| 5 * k - 17).collect();
        let cfg = PartitionConfig::lossless(&[Kind::Linear], &[0], 0);
        let p = partition(&values, &cfg);
        check_partition(&values, &p, 0);
        assert_eq!(p.fragments.len(), 1, "an exact line is one fragment");
        // Cost: κ only (0-bit corrections).
        assert_eq!(p.cost_bits, 2 * 64 + DEFAULT_OVERHEAD_BITS);
    }

    #[test]
    fn positivity_shift_values() {
        assert_eq!(positivity_shift(&[5, 10], 2), 0);
        assert_eq!(positivity_shift(&[0, 10], 2), 3);
        assert_eq!(positivity_shift(&[-7], 4), 12);
        assert_eq!(positivity_shift(&[], 4), 0);
        assert_eq!(positivity_shift(&[3], 2), 0);
        assert_eq!(positivity_shift(&[2], 2), 1);
    }

    #[test]
    fn default_epsilons_follow_paper() {
        assert_eq!(default_epsilons(1), vec![0]);
        assert_eq!(default_epsilons(2), vec![0, 2]);
        assert_eq!(default_epsilons(5), vec![0, 2, 4, 8]); // ⌈log₂ 5⌉ = 3
        assert_eq!(default_epsilons(1024), vec![0, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]);
    }

    #[test]
    fn partition_cost_never_worse_than_single_pair_greedy() {
        // Optimality sanity: the DP with pairs {(linear, ε)} must cost no more
        // than the greedy minimal-fragment partition with the same pair.
        let mut rng = StdRng::seed_from_u64(1);
        let values: Vec<i64> = {
            let mut v = 0i64;
            (0..500).map(|_| { v += rng.random_range(-10..11); v }).collect()
        };
        for eps in [0u64, 2, 8] {
            let cfg = PartitionConfig::lossless(&[Kind::Linear], &[eps], 0);
            let p = partition(&values, &cfg);
            check_partition(&values, &p, 0);
            let greedy = crate::fit::greedy_partition(&values, Kind::Linear, eps, 0);
            let cw = bits_for_residual_bound(eps) as u64;
            let greedy_cost: u64 = greedy
                .iter()
                .map(|f| (f.len() as u64) * cw + 2 * 64 + DEFAULT_OVERHEAD_BITS)
                .sum();
            assert!(
                p.cost_bits <= greedy_cost,
                "eps={eps}: dp {} > greedy {greedy_cost}",
                p.cost_bits
            );
        }
    }

    #[test]
    fn dp_beats_greedy_on_crafted_input() {
        // A long line followed by a parabola: the multi-kind DP should choose
        // linear for the first part and quadratic for the second, costing less
        // than either kind alone.
        let mut values: Vec<i64> = (0..300).map(|k| 2 * k + 5).collect();
        values.extend((0..300).map(|k| 600 + k * k / 3));
        let shift = 0;
        let both = PartitionConfig::lossless(&[Kind::Linear, Kind::Quadratic], &[0, 2], shift);
        let lin_only = PartitionConfig::lossless(&[Kind::Linear], &[0, 2], shift);
        let p_both = partition(&values, &both);
        let p_lin = partition(&values, &lin_only);
        check_partition(&values, &p_both, shift);
        check_partition(&values, &p_lin, shift);
        assert!(p_both.cost_bits <= p_lin.cost_bits);
        let kinds_used: std::collections::HashSet<_> =
            p_both.fragments.iter().map(|f| f.kind).collect();
        assert!(kinds_used.contains(&Kind::Quadratic), "quadratic unused: {kinds_used:?}");
    }

    #[test]
    fn multi_eps_choice_adapts_to_noise_level() {
        // First half: exact line (wants ε = 0). Second half: noisy line
        // (wants larger ε). The DP should not pay big corrections everywhere.
        let mut rng = StdRng::seed_from_u64(9);
        let mut values: Vec<i64> = (0..400).map(|k| 3 * k).collect();
        values.extend((0..400).map(|k| 1200 + 3 * k + rng.random_range(-50..51)));
        let cfg = PartitionConfig::lossless(&[Kind::Linear], &[0, 2, 8, 32, 64], 0);
        let p = partition(&values, &cfg);
        check_partition(&values, &p, 0);
        // The clean prefix should be covered by few fragments with tiny ε.
        let first = &p.fragments[0];
        assert!(first.len() >= 300, "clean prefix fragmented: len {}", first.len());
        assert!(p.epsilons[0] <= 2, "clean prefix got eps {}", p.epsilons[0]);
    }

    #[test]
    fn lossy_config_charges_only_parameters() {
        let values: Vec<i64> = (0..100).map(|k| k * k).collect();
        let cfg = PartitionConfig::lossy(&[Kind::Linear, Kind::Quadratic], 3, 0);
        let p = partition(&values, &cfg);
        check_partition(&values, &p, 0);
        // cost = Σ κ_f, no correction term
        let expected: u64 = p
            .fragments
            .iter()
            .map(|f| f.kind.param_count() as u64 * 64 + DEFAULT_OVERHEAD_BITS)
            .sum();
        assert_eq!(p.cost_bits, expected);
    }

    #[test]
    fn log_domain_kinds_with_shift() {
        let mut rng = StdRng::seed_from_u64(33);
        let values: Vec<i64> = {
            let mut v = -50i64;
            (0..300).map(|_| { v += rng.random_range(-3..5); v }).collect()
        };
        let epsilons = [0u64, 2, 8];
        let shift = positivity_shift(&values, 8);
        let cfg = PartitionConfig::lossless(
            &[Kind::Linear, Kind::Exponential, Kind::Power, Kind::Gaussian],
            &epsilons,
            shift,
        );
        let p = partition(&values, &cfg);
        check_partition(&values, &p, shift);
    }

    #[test]
    fn suffix_edges_preserve_origin() {
        // Force a situation where suffix edges matter and verify origins are
        // recorded (origin ≤ start with correct residuals, already asserted
        // in check_partition on every test).
        let mut rng = StdRng::seed_from_u64(13);
        let values: Vec<i64> = {
            let mut v = 0i64;
            (0..600).map(|i| {
                if i % 97 == 0 { v += rng.random_range(-200..200); }
                v += rng.random_range(-2..3);
                v
            }).collect()
        };
        let cfg = PartitionConfig::lossless(
            &Kind::NEATS_DEFAULT,
            &[0, 2, 8],
            positivity_shift(&values, 8),
        );
        let p = partition(&values, &cfg);
        check_partition(&values, &p, cfg.shift);
    }
}
