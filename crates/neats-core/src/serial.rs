//! Persistence of compressed series: the versioned, checksummed container
//! frame shared by the owned (`to_bytes` / `from_bytes`) and the zero-copy
//! ([`crate::view::ArchiveView`]) read paths.
//!
//! ## Container frame (version 2)
//!
//! ```text
//! u64  magic            "NeaTSFRM" (little-endian)
//! u64  version          2
//! u8   flavor           0 = lossless, 1 = lossy
//! u64  section_count    9 (lossless) or 6 (lossy)
//! 2·u64 per section     (offset, length) into the payload, contiguous from 0
//! u64  payload_len
//! u64  checksum         CRC-64/XZ over every preceding byte + the payload
//! …    payload          the flavor's sections, concatenated
//! ```
//!
//! The checksum covers the whole header (everything before the checksum
//! field) *and* the payload, so any single-byte corruption anywhere in an
//! archive is rejected deterministically (CRC-64 detects every error burst
//! shorter than 64 bits). Truncations are rejected by the length fields.
//! The section table lets tools (`neats stat`) report the layout breakdown
//! without decoding, and reserves room for section-level evolution.
//!
//! Deserialisation is *validating*: beyond the checksum, every structural
//! invariant the query algorithms rely on is re-checked, so even a crafted
//! buffer with a correct checksum can never cause a panic or out-of-bounds
//! read.

use crate::fit::Kind;
use crate::layout::NeaTSCompressed;
use crate::lossy::NeaTSLossy;
use succinct::{Crc64, U64sView, WireError, WireReader, WireWriter};

/// Container magic: the ASCII bytes `NeaTSFRM`, read as a little-endian u64.
pub(crate) const FRAME_MAGIC: u64 = u64::from_le_bytes(*b"NeaTSFRM");
/// Current container version.
pub(crate) const FRAME_VERSION: u64 = 2;

/// Which compressed representation an archive holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArchiveFlavor {
    /// A [`NeaTSCompressed`] archive (models + corrections, lossless).
    Lossless,
    /// A [`NeaTSLossy`] archive (models only, ε-bounded).
    Lossy,
}

impl ArchiveFlavor {
    fn tag(self) -> u8 {
        match self {
            ArchiveFlavor::Lossless => 0,
            ArchiveFlavor::Lossy => 1,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ArchiveFlavor::Lossless => "lossless",
            ArchiveFlavor::Lossy => "lossy",
        }
    }

    /// The fixed section names of this flavor's payload, in order.
    pub fn section_names(self) -> &'static [&'static str] {
        match self {
            ArchiveFlavor::Lossless => &[
                "header",
                "starts",
                "widths",
                "offsets",
                "corrections",
                "kinds",
                "kind-table",
                "params",
                "origin-deltas",
            ],
            ArchiveFlavor::Lossy => {
                &["header", "starts", "kinds", "kind-table", "params", "origin-deltas"]
            }
        }
    }
}

/// One entry of the container's section table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Section {
    /// Fixed per-flavor section name (see [`ArchiveFlavor::section_names`]).
    pub name: &'static str,
    /// Byte offset into the payload.
    pub offset: usize,
    /// Section length in bytes.
    pub len: usize,
}

/// A payload writer that records section boundaries as it goes.
pub(crate) struct SectionWriter {
    pub(crate) w: WireWriter,
    marks: Vec<usize>,
}

impl SectionWriter {
    pub(crate) fn new() -> Self {
        Self { w: WireWriter::new(), marks: Vec::new() }
    }

    /// Ends the current section at the writer's position.
    pub(crate) fn mark(&mut self) {
        self.marks.push(self.w.len());
    }
}

/// Wraps a recorded payload into the container frame.
pub(crate) fn frame(flavor: ArchiveFlavor, payload: SectionWriter) -> Vec<u8> {
    let SectionWriter { w, marks } = payload;
    let payload_bytes = w.finish();
    debug_assert_eq!(marks.len(), flavor.section_names().len());
    debug_assert_eq!(marks.last().copied().unwrap_or(0), payload_bytes.len());
    let mut h = WireWriter::new();
    h.u64(FRAME_MAGIC);
    h.u64(FRAME_VERSION);
    h.u8(flavor.tag());
    h.u64(marks.len() as u64);
    let mut prev = 0usize;
    for &m in &marks {
        h.u64(prev as u64);
        h.u64((m - prev) as u64);
        prev = m;
    }
    h.u64(payload_bytes.len() as u64);
    let mut crc = Crc64::new();
    crc.update(h.as_slice());
    crc.update(&payload_bytes);
    h.u64(crc.finish());
    let mut out = h.finish();
    out.extend_from_slice(&payload_bytes);
    out
}

/// Validates the container frame of `data` and returns its flavor, section
/// table, and payload slice. Performs no allocation proportional to the
/// archive; the CRC pass is one sequential read.
pub(crate) fn parse_frame(data: &[u8]) -> Result<(ArchiveFlavor, Vec<Section>, &[u8]), WireError> {
    let mut r = WireReader::new(data);
    if r.u64()? != FRAME_MAGIC {
        return Err(WireError::Corrupt("bad container magic"));
    }
    if r.u64()? != FRAME_VERSION {
        return Err(WireError::Corrupt("unsupported container version"));
    }
    let flavor = match r.u8()? {
        0 => ArchiveFlavor::Lossless,
        1 => ArchiveFlavor::Lossy,
        _ => return Err(WireError::Corrupt("unknown archive flavor")),
    };
    let names = flavor.section_names();
    if r.read_len()? != names.len() {
        return Err(WireError::Corrupt("section count"));
    }
    let mut sections = Vec::with_capacity(names.len());
    let mut expect_off = 0usize;
    for &name in names {
        let offset = r.read_len()?;
        let len = r.read_len()?;
        if offset != expect_off {
            return Err(WireError::Corrupt("section table not contiguous"));
        }
        expect_off = offset.checked_add(len).ok_or(WireError::Corrupt("section table overflow"))?;
        sections.push(Section { name, offset, len });
    }
    let payload_len = r.read_len()?;
    if payload_len != expect_off {
        return Err(WireError::Corrupt("section table does not cover payload"));
    }
    let header_end = r.pos();
    let stored = r.u64()?;
    if r.remaining() < payload_len {
        return Err(WireError::Truncated);
    }
    if r.remaining() > payload_len {
        return Err(WireError::Corrupt("trailing bytes"));
    }
    let payload = &data[data.len() - payload_len..];
    let mut crc = Crc64::new();
    crc.update(&data[..header_end]);
    crc.update(payload);
    if crc.finish() != stored {
        return Err(WireError::Corrupt("checksum mismatch"));
    }
    Ok((flavor, sections, payload))
}

/// Reads an archive's flavor and section table without decoding the payload
/// (for tooling that only inspects the frame; `neats stat` uses
/// [`crate::view::ArchiveView::open_with_sections`] to get the view and the
/// table from a single parse). The checksum is still verified.
pub fn frame_info(data: &[u8]) -> Result<(ArchiveFlavor, Vec<Section>), WireError> {
    let (flavor, sections, _) = parse_frame(data)?;
    Ok((flavor, sections))
}

pub(crate) fn write_kind_table(w: &mut WireWriter, table: &[Kind]) {
    w.u64(table.len() as u64);
    for &k in table {
        w.u8(k as u8);
    }
}

pub(crate) fn read_kind_table(r: &mut WireReader<'_>) -> Result<Vec<Kind>, WireError> {
    let n = r.read_len()?;
    if n > Kind::ALL.len() {
        return Err(WireError::Corrupt("kind table too large"));
    }
    (0..n)
        .map(|_| Kind::from_tag(r.u8()?).ok_or(WireError::Corrupt("unknown kind tag")))
        .collect()
}

pub(crate) fn write_params(w: &mut WireWriter, params: &[Vec<u64>]) {
    w.u64(params.len() as u64);
    for p in params {
        w.u64_slice(p);
    }
}

/// Borrowed read of the per-kind parameter arrays: one [`U64sView`] per kind
/// table entry, validated for arity.
pub(crate) fn read_params_ref<'a>(
    r: &mut WireReader<'a>,
    kind_table: &[Kind],
) -> Result<Vec<U64sView<'a>>, WireError> {
    let n = r.read_len()?;
    if n != kind_table.len() {
        return Err(WireError::Corrupt("params arity"));
    }
    let mut out = Vec::with_capacity(n);
    for &kind in kind_table {
        let p = r.u64s_ref()?;
        if !p.len().is_multiple_of(kind.param_count()) {
            return Err(WireError::Corrupt("params not a multiple of arity"));
        }
        out.push(p);
    }
    Ok(out)
}

pub(crate) fn read_params(
    r: &mut WireReader<'_>,
    kind_table: &[Kind],
) -> Result<Vec<Vec<u64>>, WireError> {
    // Route through the borrowed reader; the owned path materialises once.
    Ok(read_params_ref(r, kind_table)?.into_iter().map(|p| p.to_vec()).collect())
}

impl NeaTSCompressed {
    /// Serialises the compressed series into a self-contained, checksummed
    /// container frame (see the module docs for the layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut sw = SectionWriter::new();
        self.write_wire(&mut sw);
        frame(ArchiveFlavor::Lossless, sw)
    }

    /// Deserialises a buffer produced by [`Self::to_bytes`], verifying the
    /// checksum and validating all structural invariants.
    pub fn from_bytes(data: &[u8]) -> Result<Self, WireError> {
        let (flavor, _, payload) = parse_frame(data)?;
        if flavor != ArchiveFlavor::Lossless {
            return Err(WireError::Corrupt("not a lossless archive"));
        }
        let mut r = WireReader::new(payload);
        let v = Self::read_wire(&mut r)?;
        if !r.is_exhausted() {
            return Err(WireError::Corrupt("trailing bytes"));
        }
        Ok(v)
    }
}

impl NeaTSLossy {
    /// Serialises the lossy representation into the container frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut sw = SectionWriter::new();
        self.write_wire(&mut sw);
        frame(ArchiveFlavor::Lossy, sw)
    }

    /// Deserialises a buffer produced by [`Self::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<Self, WireError> {
        let (flavor, _, payload) = parse_frame(data)?;
        if flavor != ArchiveFlavor::Lossy {
            return Err(WireError::Corrupt("not a lossy archive"));
        }
        let mut r = WireReader::new(payload);
        let v = Self::read_wire(&mut r)?;
        if !r.is_exhausted() {
            return Err(WireError::Corrupt("trailing bytes"));
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::ArchiveView;
    use crate::NeaTS;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use timeseries::{CompressedSeries, TimeSeries};

    fn walk(n: usize, seed: u64) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v = 0i64;
        TimeSeries::from_values((0..n).map(|_| { v += rng.random_range(-25..26); v }).collect())
    }

    #[test]
    fn lossless_roundtrip_through_bytes() {
        let ts = walk(3000, 1);
        let c = NeaTS::compress(&ts);
        let bytes = c.to_bytes();
        let back = NeaTSCompressed::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), c.len());
        assert_eq!(back.decompress(), ts.values());
        for k in (0..ts.len()).step_by(61) {
            assert_eq!(back.get(k), ts.values()[k]);
        }
        // The bytes round-trip unchanged through the container frame.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn lossless_bytes_are_close_to_reported_size() {
        let ts = walk(20_000, 2);
        let c = NeaTS::compress(&ts);
        let bytes = c.to_bytes().len();
        let reported = c.size_in_bytes();
        // The wire format adds per-structure length prefixes and the frame
        // header only.
        assert!(bytes < reported * 13 / 10, "wire {bytes} vs reported {reported}");
    }

    #[test]
    fn lossy_roundtrip_through_bytes() {
        let ts = walk(2000, 3);
        let l = NeaTS::builder().build_lossy(&ts, 40);
        let bytes = l.to_bytes();
        let back = NeaTSLossy::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), l.len());
        assert_eq!(back.eps(), 40);
        assert_eq!(back.reconstruct(), l.reconstruct());
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn wrong_flavor_rejected() {
        let ts = walk(100, 4);
        let c = NeaTS::compress(&ts);
        let l = NeaTS::builder().build_lossy(&ts, 5);
        // Swapped formats must be rejected up front.
        assert!(NeaTSCompressed::from_bytes(&l.to_bytes()).is_err());
        assert!(NeaTSLossy::from_bytes(&c.to_bytes()).is_err());
    }

    #[test]
    fn frame_info_reports_the_section_table() {
        let ts = walk(800, 12);
        let bytes = NeaTS::compress(&ts).to_bytes();
        let (flavor, sections) = frame_info(&bytes).unwrap();
        assert_eq!(flavor, ArchiveFlavor::Lossless);
        assert_eq!(sections.len(), ArchiveFlavor::Lossless.section_names().len());
        assert_eq!(sections[0].name, "header");
        assert_eq!(sections[0].offset, 0);
        // Sections tile the payload contiguously.
        let mut expect = 0usize;
        for s in &sections {
            assert_eq!(s.offset, expect);
            expect += s.len;
        }
        let lossy = NeaTS::builder().build_lossy(&ts, 9).to_bytes();
        let (flavor, sections) = frame_info(&lossy).unwrap();
        assert_eq!(flavor, ArchiveFlavor::Lossy);
        assert_eq!(sections.len(), ArchiveFlavor::Lossy.section_names().len());
    }

    #[test]
    fn truncation_never_panics() {
        let ts = walk(500, 5);
        let bytes = NeaTS::compress(&ts).to_bytes();
        for cut in (0..bytes.len()).step_by(7) {
            assert!(NeaTSCompressed::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
            assert!(ArchiveView::open(&bytes[..cut]).is_err(), "view cut {cut}");
        }
        let lossy = NeaTS::builder().build_lossy(&ts, 16).to_bytes();
        for cut in (0..lossy.len()).step_by(7) {
            assert!(NeaTSLossy::from_bytes(&lossy[..cut]).is_err(), "lossy cut {cut}");
            assert!(ArchiveView::open(&lossy[..cut]).is_err(), "lossy view cut {cut}");
        }
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        // CRC-64 over header + payload: every single-byte corruption must be
        // rejected by *both* read paths — exhaustively, not probabilistically.
        let ts = walk(400, 6);
        let bytes = NeaTS::compress(&ts).to_bytes();
        for pos in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 1 << (pos % 8);
            assert!(NeaTSCompressed::from_bytes(&corrupted).is_err(), "owned accepted flip at {pos}");
            assert!(ArchiveView::open(&corrupted).is_err(), "view accepted flip at {pos}");
        }
    }

    #[test]
    fn random_bitflips_are_rejected_lossy_too() {
        let ts = walk(400, 6);
        let l = NeaTS::builder().build_lossy(&ts, 12);
        let bytes = l.to_bytes();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..300 {
            let mut corrupted = bytes.clone();
            let pos = rng.random_range(0..corrupted.len());
            corrupted[pos] ^= 1 << rng.random_range(0..8);
            assert!(NeaTSLossy::from_bytes(&corrupted).is_err(), "flip at {pos} accepted");
            assert!(ArchiveView::open(&corrupted).is_err(), "view flip at {pos} accepted");
        }
    }

    /// Byte offset of the frame's checksum field.
    fn crc_offset(bytes: &[u8]) -> usize {
        let count = u64::from_le_bytes(bytes[17..25].try_into().unwrap()) as usize;
        25 + count * 16 + 8
    }

    /// Recomputes and rewrites the frame checksum after a payload patch, so
    /// tests can exercise *crafted* (checksum-valid) archives rather than
    /// merely corrupt ones.
    fn repack_with_valid_crc(bytes: &mut [u8]) {
        let off = crc_offset(bytes);
        let mut crc = succinct::Crc64::new();
        crc.update(&bytes[..off]);
        crc.update(&bytes[off + 8..]);
        let v = crc.finish();
        bytes[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Overwrites the `n` header field (first payload u64) and re-checksums.
    fn patch_n(bytes: &mut [u8], n: u64) {
        let payload = crc_offset(bytes) + 8;
        bytes[payload..payload + 8].copy_from_slice(&n.to_le_bytes());
        repack_with_valid_crc(bytes);
    }

    #[test]
    fn crafted_checksum_valid_archives_are_rejected() {
        // A valid checksum is no license to trust the payload: structural
        // validation must still reject archives whose header lies. These are
        // the cases where only the n/m and bitvector-length cross-checks
        // stand between a crafted file and a query-time panic.

        // m == 0 but n > 0 (lossless, Elias-Fano mode).
        let mut crafted = NeaTS::compress(&TimeSeries::from_values(vec![])).to_bytes();
        patch_n(&mut crafted, 1000);
        assert!(NeaTSCompressed::from_bytes(&crafted).is_err(), "owned accepted n>0, m=0");
        assert!(ArchiveView::open(&crafted).is_err(), "view accepted n>0, m=0");

        // m == 0 but n > 0 (lossy).
        let mut crafted =
            NeaTS::builder().build_lossy(&TimeSeries::from_values(vec![]), 5).to_bytes();
        patch_n(&mut crafted, 1000);
        assert!(NeaTSLossy::from_bytes(&crafted).is_err(), "lossy owned accepted n>0, m=0");
        assert!(ArchiveView::open(&crafted).is_err(), "lossy view accepted n>0, m=0");

        // BitVector rank mode with n larger than the start bitvector: the
        // single constant fragment has correction width 0, so every stride
        // check passes and only the bitvector-length check can reject it.
        let ts = TimeSeries::from_values(vec![42; 500]);
        let c = NeaTS::builder()
            .rank_mode(crate::RankMode::BitVector)
            .kinds(&[Kind::Linear])
            .epsilons(&[0])
            .build(&ts);
        let mut crafted = c.to_bytes();
        patch_n(&mut crafted, 505);
        assert!(NeaTSCompressed::from_bytes(&crafted).is_err(), "owned accepted short start bv");
        assert!(ArchiveView::open(&crafted).is_err(), "view accepted short start bv");

        // Sanity: the patch helper itself round-trips an unpatched archive.
        let mut untouched = c.to_bytes();
        repack_with_valid_crc(&mut untouched);
        assert!(ArchiveView::open(&untouched).is_ok());
    }

    #[test]
    fn empty_series_serialises() {
        let ts = TimeSeries::from_values(vec![]);
        let c = NeaTS::compress(&ts);
        let back = NeaTSCompressed::from_bytes(&c.to_bytes()).unwrap();
        assert!(back.is_empty());
    }
}
