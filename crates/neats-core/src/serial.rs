//! Persistence of compressed series: `to_bytes` / `from_bytes` for
//! [`NeaTSCompressed`] and [`NeaTSLossy`], built on the succinct crate's
//! validating wire format.
//!
//! The paper positions NeaTS as the long-term storage format for historical
//! time series; a storage format that cannot be written to disk is not one.
//! The encoding is versioned with a magic header so future layout changes
//! stay detectable.

use crate::fit::Kind;
use crate::layout::NeaTSCompressed;
use crate::lossy::NeaTSLossy;
use succinct::{WireError, WireReader, WireWriter};

/// Magic + version prefix of the lossless format.
const MAGIC_LOSSLESS: u64 = 0x4E65_6154_5300_0001; // "NeaTS", v1
/// Magic + version prefix of the lossy format.
const MAGIC_LOSSY: u64 = 0x4E65_6154_534C_0001; // "NeaTSL", v1

pub(crate) fn write_kind_table(w: &mut WireWriter, table: &[Kind]) {
    w.u64(table.len() as u64);
    for &k in table {
        w.u8(k as u8);
    }
}

pub(crate) fn read_kind_table(r: &mut WireReader<'_>) -> Result<Vec<Kind>, WireError> {
    let n = r.read_len()?;
    if n > Kind::ALL.len() {
        return Err(WireError::Corrupt("kind table too large"));
    }
    (0..n)
        .map(|_| Kind::from_tag(r.u8()?).ok_or(WireError::Corrupt("unknown kind tag")))
        .collect()
}

pub(crate) fn write_params(w: &mut WireWriter, params: &[Vec<u64>]) {
    w.u64(params.len() as u64);
    for p in params {
        w.u64_slice(p);
    }
}

pub(crate) fn read_params(
    r: &mut WireReader<'_>,
    kind_table: &[Kind],
) -> Result<Vec<Vec<u64>>, WireError> {
    let n = r.read_len()?;
    if n != kind_table.len() {
        return Err(WireError::Corrupt("params arity"));
    }
    let mut out = Vec::with_capacity(n);
    for &kind in kind_table {
        let p = r.u64_vec()?;
        if p.len() % kind.param_count() != 0 {
            return Err(WireError::Corrupt("params not a multiple of arity"));
        }
        out.push(p);
    }
    Ok(out)
}

impl NeaTSCompressed {
    /// Serialises the compressed series to a self-contained byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u64(MAGIC_LOSSLESS);
        self.write_wire(&mut w);
        w.finish()
    }

    /// Deserialises a buffer produced by [`Self::to_bytes`], validating all
    /// structural invariants.
    pub fn from_bytes(data: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(data);
        if r.u64()? != MAGIC_LOSSLESS {
            return Err(WireError::Corrupt("bad magic/version"));
        }
        let v = Self::read_wire(&mut r)?;
        if !r.is_exhausted() {
            return Err(WireError::Corrupt("trailing bytes"));
        }
        Ok(v)
    }
}

impl NeaTSLossy {
    /// Serialises the lossy representation to a self-contained byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u64(MAGIC_LOSSY);
        self.write_wire(&mut w);
        w.finish()
    }

    /// Deserialises a buffer produced by [`Self::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(data);
        if r.u64()? != MAGIC_LOSSY {
            return Err(WireError::Corrupt("bad magic/version"));
        }
        let v = Self::read_wire(&mut r)?;
        if !r.is_exhausted() {
            return Err(WireError::Corrupt("trailing bytes"));
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NeaTS;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use timeseries::{CompressedSeries, TimeSeries};

    fn walk(n: usize, seed: u64) -> TimeSeries {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v = 0i64;
        TimeSeries::from_values((0..n).map(|_| { v += rng.random_range(-25..26); v }).collect())
    }

    #[test]
    fn lossless_roundtrip_through_bytes() {
        let ts = walk(3000, 1);
        let c = NeaTS::compress(&ts);
        let bytes = c.to_bytes();
        let back = NeaTSCompressed::from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), c.len());
        assert_eq!(back.decompress(), ts.values());
        for k in (0..ts.len()).step_by(61) {
            assert_eq!(back.get(k), ts.values()[k]);
        }
    }

    #[test]
    fn lossless_bytes_are_close_to_reported_size() {
        let ts = walk(20_000, 2);
        let c = NeaTS::compress(&ts);
        let bytes = c.to_bytes().len();
        let reported = c.size_in_bytes();
        // The wire format adds per-structure length prefixes only.
        assert!(bytes < reported * 13 / 10, "wire {bytes} vs reported {reported}");
    }

    #[test]
    fn lossy_roundtrip_through_bytes() {
        let ts = walk(2000, 3);
        let l = NeaTS::builder().build_lossy(&ts, 40);
        let back = NeaTSLossy::from_bytes(&l.to_bytes()).unwrap();
        assert_eq!(back.len(), l.len());
        assert_eq!(back.eps(), 40);
        assert_eq!(back.reconstruct(), l.reconstruct());
    }

    #[test]
    fn wrong_magic_rejected() {
        let ts = walk(100, 4);
        let c = NeaTS::compress(&ts);
        let l = NeaTS::builder().build_lossy(&ts, 5);
        // Swapped formats must be rejected up front.
        assert!(NeaTSCompressed::from_bytes(&l.to_bytes()).is_err());
        assert!(NeaTSLossy::from_bytes(&c.to_bytes()).is_err());
    }

    #[test]
    fn truncation_never_panics() {
        let ts = walk(500, 5);
        let bytes = NeaTS::compress(&ts).to_bytes();
        for cut in (0..bytes.len()).step_by(7) {
            assert!(NeaTSCompressed::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn bitflip_is_rejected_or_consistent() {
        // Any single-bit corruption must either be rejected or still produce
        // a structurally valid object (never a panic / OOB).
        let ts = walk(400, 6);
        let c = NeaTS::compress(&ts);
        let bytes = c.to_bytes();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let mut corrupted = bytes.clone();
            let pos = rng.random_range(0..corrupted.len());
            corrupted[pos] ^= 1 << rng.random_range(0..8);
            if let Ok(back) = NeaTSCompressed::from_bytes(&corrupted) {
                // decoding succeeded: operations must not panic
                if !back.is_empty() {
                    let _ = back.get(back.len() / 2);
                }
            }
        }
    }

    #[test]
    fn empty_series_serialises() {
        let ts = TimeSeries::from_values(vec![]);
        let c = NeaTS::compress(&ts);
        let back = NeaTSCompressed::from_bytes(&c.to_bytes()).unwrap();
        assert!(back.is_empty());
    }
}
