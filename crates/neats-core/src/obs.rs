//! Workspace-wide observability: a metrics registry with Prometheus text
//! exposition, and a per-request trace layer (stage spans + a fixed-size
//! lock-free ring of recent requests).
//!
//! Every crate in the stack records into the same three primitives:
//!
//! * **[`Registry`]** — named counter / gauge / histogram families. A
//!   registration hands back a cheap typed handle (`Arc<AtomicU64>` or
//!   `Arc<AtomicHistogram>`); the hot path touches only that atomic, never
//!   a lock. The registry's own `Mutex` is taken at registration and render
//!   time only. Derived values (cache hit counts, head sizes, uptime) are
//!   registered as closures evaluated at scrape time.
//! * **Stage spans** — a thread-local timer splitting one request into the
//!   pipeline stages ([`Stage`]: parse → route → cache → decode → render →
//!   write). Attribution is *self-time*: entering a nested stage pauses the
//!   outer one, so the per-stage numbers decompose the total instead of
//!   double-counting. When no span is active on the thread, a stage mark is
//!   one thread-local flag check — the store and ingest layers can leave
//!   their marks in place unconditionally.
//! * **[`TraceRing`]** — a fixed-size ring of completed-request records
//!   (all-atomic slots, seqlock-style torn-read detection, no locks and no
//!   per-record allocation). The serving layer renders it at
//!   `GET /debug/requests` and feeds the slow-query log from it.
//!
//! Everything is std-only and wait-free on the hot path, matching the rest
//! of the workspace.

use crate::histogram::{bucket_upper, AtomicHistogram};
use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// What a metric family renders as in the Prometheus `# TYPE` line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One sample's backing value.
enum Value {
    Owned(Arc<AtomicU64>),
    Computed(Box<dyn Fn() -> f64 + Send + Sync>),
    Histogram(Arc<AtomicHistogram>),
}

struct Sample {
    /// Pre-rendered label set, e.g. `endpoint="query"` (empty for none).
    labels: String,
    value: Value,
}

struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    samples: Vec<Sample>,
}

/// A registry of named metric families, rendered as Prometheus text
/// exposition format 0.0.4 by [`Registry::render`].
///
/// Families are identified by name; registering the same name again with a
/// different label set appends a sample to the existing family (the kind
/// must match, the first `help` wins). Registration order is render order.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

/// Renders a label set like `endpoint="query",shard="3"` (caller supplies
/// pairs; values are escaped per the exposition format).
fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&self, name: &str, help: &str, kind: MetricKind, labels: &[(&str, &str)], value: Value) {
        let mut families = self.families.lock().expect("registry lock");
        let sample = Sample { labels: render_labels(labels), value };
        if let Some(f) = families.iter_mut().find(|f| f.name == name) {
            assert_eq!(f.kind, kind, "metric {name} re-registered with a different kind");
            f.samples.push(sample);
            return;
        }
        families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            samples: vec![sample],
        });
    }

    /// Registers a counter and returns its handle (bump with `fetch_add`).
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<AtomicU64> {
        let c = Arc::new(AtomicU64::new(0));
        self.counter_shared(name, help, labels, Arc::clone(&c));
        c
    }

    /// Registers an existing atomic as a counter sample — the pattern that
    /// lets `/stats` and `/metrics` read the *same* memory.
    pub fn counter_shared(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        counter: Arc<AtomicU64>,
    ) {
        self.push(name, help, MetricKind::Counter, labels, Value::Owned(counter));
    }

    /// Registers a counter whose value is computed at scrape time (for
    /// monotone values owned by another structure, e.g. cache hit counts).
    pub fn counter_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.push(
            name,
            help,
            MetricKind::Counter,
            labels,
            Value::Computed(Box::new(move || f() as f64)),
        );
    }

    /// Registers a gauge and returns its handle (`store`/`fetch_add`).
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<AtomicU64> {
        let g = Arc::new(AtomicU64::new(0));
        self.gauge_shared(name, help, labels, Arc::clone(&g));
        g
    }

    /// Registers an existing atomic as a gauge sample.
    pub fn gauge_shared(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        gauge: Arc<AtomicU64>,
    ) {
        self.push(name, help, MetricKind::Gauge, labels, Value::Owned(gauge));
    }

    /// Registers a gauge computed at scrape time.
    pub fn gauge_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        self.push(name, help, MetricKind::Gauge, labels, Value::Computed(Box::new(f)));
    }

    /// Registers a histogram and returns its handle.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<AtomicHistogram> {
        let h = Arc::new(AtomicHistogram::new());
        self.histogram_shared(name, help, labels, Arc::clone(&h));
        h
    }

    /// Registers an existing histogram as a sample of family `name`.
    pub fn histogram_shared(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        hist: Arc<AtomicHistogram>,
    ) {
        self.push(name, help, MetricKind::Histogram, labels, Value::Histogram(hist));
    }

    /// Renders the whole registry as Prometheus text exposition (0.0.4):
    /// one `# HELP`/`# TYPE` block per family, histograms as cumulative
    /// `_bucket{le=…}` lines over the *non-empty* buckets plus `+Inf`,
    /// `_sum` and `_count`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let families = self.families.lock().expect("registry lock");
        for f in families.iter() {
            let _ = writeln!(out, "# HELP {} {}", f.name, f.help);
            let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind.as_str());
            for s in &f.samples {
                match &s.value {
                    Value::Owned(v) => {
                        render_sample(&mut out, &f.name, "", &s.labels, None, v.load(Ordering::Relaxed) as f64);
                    }
                    Value::Computed(f_val) => {
                        render_sample(&mut out, &f.name, "", &s.labels, None, f_val());
                    }
                    Value::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cum = 0u64;
                        for (i, &c) in snap.buckets().iter().enumerate() {
                            if c == 0 {
                                continue;
                            }
                            cum += c;
                            // Bucket `i` holds integer samples `< bucket_upper(i)`,
                            // i.e. `≤ bucket_upper(i) − 1`: that inclusive bound is
                            // the Prometheus `le`.
                            let le = (bucket_upper(i) - 1).to_string();
                            render_sample(&mut out, &f.name, "_bucket", &s.labels, Some(&le), cum as f64);
                        }
                        render_sample(&mut out, &f.name, "_bucket", &s.labels, Some("+Inf"), snap.count() as f64);
                        render_sample(&mut out, &f.name, "_sum", &s.labels, None, snap.sum() as f64);
                        render_sample(&mut out, &f.name, "_count", &s.labels, None, snap.count() as f64);
                    }
                }
            }
        }
        out
    }
}

/// Writes one exposition line: `name[suffix]{labels[,le="…"]} value`.
fn render_sample(
    out: &mut String,
    name: &str,
    suffix: &str,
    labels: &str,
    le: Option<&str>,
    value: f64,
) {
    out.push_str(name);
    out.push_str(suffix);
    let le_part = le.map(|b| (if labels.is_empty() { "" } else { "," }, b));
    if !labels.is_empty() || le_part.is_some() {
        out.push('{');
        out.push_str(labels);
        if let Some((sep, bound)) = le_part {
            let _ = write!(out, "{sep}le=\"{bound}\"");
        }
        out.push('}');
    }
    // Counters and bucket counts are integers; computed gauges may not be.
    if value.fract() == 0.0 && value.abs() < 9.0e15 {
        let _ = writeln!(out, " {}", value as i64);
    } else {
        let _ = writeln!(out, " {value}");
    }
}

// ---------------------------------------------------------------------------
// Stage spans
// ---------------------------------------------------------------------------

/// The request pipeline stages a [`TraceRing`] record breaks time into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// HTTP head/body parsing.
    Parse = 0,
    /// Request routing and endpoint execution *outside* the finer stages
    /// below (self-time — nested stages pause this one).
    Route = 1,
    /// Segment-view cache lookup (hit probe + insert).
    Cache = 2,
    /// Segment open: checksum + structural validation on a cache miss.
    Decode = 3,
    /// Response body rendering from decoded values.
    Render = 4,
    /// Write path: WAL append on live ingestion.
    Write = 5,
}

/// Number of [`Stage`] variants (length of every per-stage array).
pub const STAGE_COUNT: usize = 6;

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; STAGE_COUNT] =
        [Stage::Parse, Stage::Route, Stage::Cache, Stage::Decode, Stage::Render, Stage::Write];

    /// The short name used in `/debug/requests` JSON keys (`<name>_us`).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Route => "route",
            Stage::Cache => "cache",
            Stage::Decode => "decode",
            Stage::Render => "render",
            Stage::Write => "write",
        }
    }
}

/// Maximum stage nesting depth (route → cache/decode/render is 2; 8 leaves
/// headroom without growing the thread-local).
const MAX_STAGE_DEPTH: usize = 8;

struct SpanState {
    /// Per-stage accumulated self-time, nanoseconds.
    acc: [u64; STAGE_COUNT],
    /// Open stage stack (indices into `acc`).
    stack: [u8; MAX_STAGE_DEPTH],
    depth: usize,
    /// When the stage on top of the stack last started accumulating.
    last_switch: Instant,
}

thread_local! {
    /// Fast inactive check: a stage mark on a thread with no active span
    /// costs exactly this load.
    static SPAN_ACTIVE: Cell<bool> = const { Cell::new(false) };
    static SPAN: RefCell<SpanState> = RefCell::new(SpanState {
        acc: [0; STAGE_COUNT],
        stack: [0; MAX_STAGE_DEPTH],
        depth: 0,
        last_switch: Instant::now(),
    });
}

/// Begins (or resets) this thread's span: stage accumulators are zeroed and
/// subsequent [`stage`] marks attribute into it until [`span_take`].
pub fn span_begin() {
    SPAN_ACTIVE.with(|a| a.set(true));
    SPAN.with(|s| {
        let mut s = s.borrow_mut();
        s.acc = [0; STAGE_COUNT];
        s.depth = 0;
    });
}

/// Begins a span only if none is active (lets a handler called directly —
/// without the serving layer's `span_begin` — still produce a trace).
pub fn span_ensure() {
    if !SPAN_ACTIVE.with(|a| a.get()) {
        span_begin();
    }
}

/// Whether this thread currently has an active span.
pub fn span_active() -> bool {
    SPAN_ACTIVE.with(|a| a.get())
}

/// Ends this thread's span and returns the per-stage self-time breakdown in
/// nanoseconds, or `None` if no span was active. Open stage guards (there
/// should be none at request completion) stop accumulating.
pub fn span_take() -> Option<[u64; STAGE_COUNT]> {
    if !SPAN_ACTIVE.with(|a| a.get()) {
        return None;
    }
    SPAN_ACTIVE.with(|a| a.set(false));
    Some(SPAN.with(|s| s.borrow().acc))
}

/// An RAII stage timer from [`stage`]; the stage stops accumulating (and
/// its parent resumes) when the guard drops.
pub struct StageGuard {
    entered: bool,
}

/// Marks the start of `stage` on this thread's active span; time until the
/// returned guard drops is attributed to it (pausing any enclosing stage).
/// A no-op — one thread-local flag check, no clock read — when no span is
/// active, so library code can mark stages unconditionally.
pub fn stage(stage: Stage) -> StageGuard {
    if !SPAN_ACTIVE.with(|a| a.get()) {
        return StageGuard { entered: false };
    }
    let now = Instant::now();
    SPAN.with(|s| {
        let mut s = s.borrow_mut();
        if s.depth >= MAX_STAGE_DEPTH {
            return; // over-deep nesting: drop the mark rather than corrupt
        }
        if s.depth > 0 {
            let top = s.stack[s.depth - 1] as usize;
            s.acc[top] += now.duration_since(s.last_switch).as_nanos() as u64;
        }
        let depth = s.depth;
        s.stack[depth] = stage as u8;
        s.depth += 1;
        s.last_switch = now;
    });
    StageGuard { entered: true }
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        if !self.entered || !SPAN_ACTIVE.with(|a| a.get()) {
            return;
        }
        let now = Instant::now();
        SPAN.with(|s| {
            let mut s = s.borrow_mut();
            if s.depth == 0 {
                return;
            }
            let top = s.stack[s.depth - 1] as usize;
            s.acc[top] += now.duration_since(s.last_switch).as_nanos() as u64;
            s.depth -= 1;
            s.last_switch = now;
        });
    }
}

// ---------------------------------------------------------------------------
// Trace ring
// ---------------------------------------------------------------------------

/// Bytes of request path stored per trace record (longer paths truncate).
pub const TRACE_PATH_BYTES: usize = 64;
const PATH_WORDS: usize = TRACE_PATH_BYTES / 8;

/// One ring slot. Every field is an atomic, so a torn concurrent write can
/// at worst produce an inconsistent *record* (detected and skipped via the
/// sequence word) — never undefined behavior and never a lock.
struct TraceSlot {
    /// `0` empty; odd = write in progress; even = record `seq/2` committed.
    seq: AtomicU64,
    ts_unix_us: AtomicU64,
    total_ns: AtomicU64,
    status: AtomicU64,
    slow: AtomicU64,
    stage_ns: [AtomicU64; STAGE_COUNT],
    path_len: AtomicU64,
    path: [AtomicU64; PATH_WORDS],
}

impl TraceSlot {
    fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            ts_unix_us: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            status: AtomicU64::new(0),
            slow: AtomicU64::new(0),
            stage_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            path_len: AtomicU64::new(0),
            path: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// One completed-request record read back from a [`TraceRing`].
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// Monotone record number (global across the ring).
    pub seq: u64,
    /// Completion time, microseconds since the Unix epoch.
    pub ts_unix_us: u64,
    /// Total request time, nanoseconds (sum of stages + unattributed).
    pub total_ns: u64,
    /// HTTP status the request was answered with.
    pub status: u16,
    /// Whether the request crossed the slow-query threshold.
    pub slow: bool,
    /// Per-stage self-time, nanoseconds, indexed by [`Stage`].
    pub stage_ns: [u64; STAGE_COUNT],
    /// Request path + query (truncated to [`TRACE_PATH_BYTES`]).
    pub path: String,
}

/// A fixed-size lock-free ring of the most recent [`TraceEntry`] records.
///
/// Memory is bounded at construction: `capacity` slots ×
/// `size_of::<TraceSlot>()` (≈ 144 bytes each), allocated once. Recording
/// performs no allocation and takes no lock; concurrent writers may race
/// for a slot, in which case the later record wins and the torn loser is
/// skipped by readers.
pub struct TraceRing {
    slots: Box<[TraceSlot]>,
    next: AtomicUsize,
}

impl TraceRing {
    /// A ring of `capacity` slots; `0` disables recording entirely.
    pub fn new(capacity: usize) -> Self {
        Self {
            slots: (0..capacity).map(|_| TraceSlot::new()).collect(),
            next: AtomicUsize::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Whether recording does anything (`capacity > 0`).
    pub fn enabled(&self) -> bool {
        !self.slots.is_empty()
    }

    /// Records one completed request. Allocation-free and lock-free; a
    /// no-op on a disabled ring.
    pub fn record(
        &self,
        path: &str,
        status: u16,
        total_ns: u64,
        slow: bool,
        stage_ns: &[u64; STAGE_COUNT],
    ) {
        if self.slots.is_empty() {
            return;
        }
        let n = self.next.fetch_add(1, Ordering::Relaxed) as u64;
        let slot = &self.slots[(n as usize) % self.slots.len()];
        // Seqlock write protocol: odd while in progress, even when done.
        // The fence keeps the field stores from being reordered before the
        // odd marker, so readers can detect an in-progress write. Two
        // *writers* racing for one slot (more than `capacity` requests in
        // flight at once) can still interleave fields — a garbled debug
        // record, never UB; size the ring above the request concurrency.
        slot.seq.store(2 * n + 1, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::SeqCst);
        let ts = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        slot.ts_unix_us.store(ts, Ordering::Relaxed);
        slot.total_ns.store(total_ns, Ordering::Relaxed);
        slot.status.store(status as u64, Ordering::Relaxed);
        slot.slow.store(slow as u64, Ordering::Relaxed);
        for (a, &v) in slot.stage_ns.iter().zip(stage_ns) {
            a.store(v, Ordering::Relaxed);
        }
        let bytes = path.as_bytes();
        let len = bytes.len().min(TRACE_PATH_BYTES);
        slot.path_len.store(len as u64, Ordering::Relaxed);
        for (w, word) in slot.path.iter().enumerate() {
            let mut packed = 0u64;
            for b in 0..8 {
                let i = w * 8 + b;
                if i < len {
                    packed |= (bytes[i] as u64) << (8 * b);
                }
            }
            word.store(packed, Ordering::Relaxed);
        }
        slot.seq.store(2 * n + 2, Ordering::Release);
    }

    /// Reads back every committed record, newest first. Records being
    /// overwritten concurrently are skipped (seqlock re-check), so this is
    /// safe to call from any thread at any time.
    pub fn entries(&self) -> Vec<TraceEntry> {
        let mut out = Vec::new();
        if self.slots.is_empty() {
            return out;
        }
        let next = self.next.load(Ordering::Relaxed) as u64;
        let cap = self.slots.len() as u64;
        let oldest = next.saturating_sub(cap);
        // Walk from the most recent record backwards.
        let mut n = next;
        while n > oldest {
            n -= 1;
            let slot = &self.slots[(n as usize) % self.slots.len()];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq != 2 * n + 2 {
                continue; // empty, in-progress, or already overwritten
            }
            let mut stage_ns = [0u64; STAGE_COUNT];
            for (v, a) in stage_ns.iter_mut().zip(&slot.stage_ns) {
                *v = a.load(Ordering::Relaxed);
            }
            let len = (slot.path_len.load(Ordering::Relaxed) as usize).min(TRACE_PATH_BYTES);
            let mut bytes = [0u8; TRACE_PATH_BYTES];
            for (w, word) in slot.path.iter().enumerate() {
                bytes[w * 8..w * 8 + 8].copy_from_slice(&word.load(Ordering::Relaxed).to_le_bytes());
            }
            let entry = TraceEntry {
                seq: n,
                ts_unix_us: slot.ts_unix_us.load(Ordering::Relaxed),
                total_ns: slot.total_ns.load(Ordering::Relaxed),
                status: slot.status.load(Ordering::Relaxed) as u16,
                slow: slot.slow.load(Ordering::Relaxed) != 0,
                stage_ns,
                path: String::from_utf8_lossy(&bytes[..len]).into_owned(),
            };
            // Seqlock read re-check: a writer may have started on this slot
            // while we copied it.
            std::sync::atomic::fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) == 2 * n + 2 {
                out.push(entry);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_render() {
        let reg = Registry::new();
        let c = reg.counter("neats_test_total", "Test counter.", &[]);
        c.fetch_add(3, Ordering::Relaxed);
        let g = reg.gauge("neats_test_depth", "Test gauge.", &[("shard", "0")]);
        g.store(7, Ordering::Relaxed);
        reg.gauge_fn("neats_test_ratio", "Computed gauge.", &[], || 0.25);
        let text = reg.render();
        assert!(text.contains("# HELP neats_test_total Test counter.\n"), "{text}");
        assert!(text.contains("# TYPE neats_test_total counter\n"), "{text}");
        assert!(text.contains("\nneats_test_total 3\n") || text.starts_with("neats_test_total 3\n") || text.contains("neats_test_total 3\n"), "{text}");
        assert!(text.contains("neats_test_depth{shard=\"0\"} 7\n"), "{text}");
        assert!(text.contains("neats_test_ratio 0.25\n"), "{text}");
    }

    #[test]
    fn same_family_accumulates_samples_once() {
        let reg = Registry::new();
        let a = reg.counter("neats_multi_total", "Multi.", &[("endpoint", "a")]);
        let b = reg.counter("neats_multi_total", "Multi.", &[("endpoint", "b")]);
        a.fetch_add(1, Ordering::Relaxed);
        b.fetch_add(2, Ordering::Relaxed);
        let text = reg.render();
        assert_eq!(text.matches("# TYPE neats_multi_total counter").count(), 1, "{text}");
        assert!(text.contains("neats_multi_total{endpoint=\"a\"} 1\n"), "{text}");
        assert!(text.contains("neats_multi_total{endpoint=\"b\"} 2\n"), "{text}");
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("neats_lat_ns", "Latency.", &[]);
        for v in [1u64, 1, 5, 1000] {
            h.record(v);
        }
        let text = reg.render();
        assert!(text.contains("# TYPE neats_lat_ns histogram"), "{text}");
        assert!(text.contains("neats_lat_ns_bucket{le=\"1\"} 2\n"), "{text}");
        assert!(text.contains("neats_lat_ns_bucket{le=\"5\"} 3\n"), "{text}");
        assert!(text.contains("neats_lat_ns_bucket{le=\"+Inf\"} 4\n"), "{text}");
        assert!(text.contains("neats_lat_ns_sum 1007\n"), "{text}");
        assert!(text.contains("neats_lat_ns_count 4\n"), "{text}");
        // Cumulative counts are monotone in le order.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("neats_lat_ns_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "{line}");
            last = v;
        }
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new();
        reg.gauge_fn("neats_info", "Info.", &[("path", "a\"b\\c")], || 1.0);
        assert!(reg.render().contains("neats_info{path=\"a\\\"b\\\\c\"} 1\n"));
    }

    #[test]
    fn span_self_time_decomposes() {
        span_begin();
        {
            let _route = stage(Stage::Route);
            std::thread::sleep(std::time::Duration::from_millis(4));
            {
                let _cache = stage(Stage::Cache);
                std::thread::sleep(std::time::Duration::from_millis(4));
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let acc = span_take().expect("span active");
        assert!(span_take().is_none(), "span must deactivate");
        // Route self-time excludes the nested cache stage.
        assert!(acc[Stage::Cache as usize] >= 3_000_000, "{acc:?}");
        assert!(acc[Stage::Route as usize] >= 5_000_000, "{acc:?}");
        assert!(
            acc[Stage::Route as usize] < acc[Stage::Route as usize] + acc[Stage::Cache as usize],
            "{acc:?}"
        );
        assert_eq!(acc[Stage::Write as usize], 0);
    }

    #[test]
    fn stage_without_span_is_noop() {
        assert!(!span_active());
        let _g = stage(Stage::Decode);
        drop(_g);
        assert!(span_take().is_none());
    }

    #[test]
    fn ring_keeps_most_recent_and_truncates_paths() {
        let ring = TraceRing::new(4);
        let stages = [1, 2, 3, 4, 5, 6];
        for i in 0..10u64 {
            let long = format!("/q/series-{i}-{}", "x".repeat(100));
            ring.record(&long, 200, i * 1000, i % 2 == 0, &stages);
        }
        let entries = ring.entries();
        assert_eq!(entries.len(), 4);
        // Newest first.
        assert_eq!(entries[0].seq, 9);
        assert_eq!(entries[3].seq, 6);
        for e in &entries {
            assert_eq!(e.path.len(), TRACE_PATH_BYTES);
            assert!(e.path.starts_with("/q/series-"), "{}", e.path);
            assert_eq!(e.stage_ns, stages);
            assert_eq!(e.status, 200);
        }
    }

    #[test]
    fn disabled_ring_is_inert() {
        let ring = TraceRing::new(0);
        assert!(!ring.enabled());
        ring.record("/x", 200, 1, false, &[0; STAGE_COUNT]);
        assert!(ring.entries().is_empty());
    }

    #[test]
    fn concurrent_ring_records_stay_wellformed() {
        let ring = TraceRing::new(8);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let ring = &ring;
                s.spawn(move || {
                    for i in 0..500u64 {
                        ring.record(&format!("/t/{t}/{i}"), 200, i, false, &[i; STAGE_COUNT]);
                    }
                });
            }
        });
        for e in ring.entries() {
            // Reader/writer races are filtered by the seqlock re-check;
            // records that survive carry plausible fields. (Two *writers*
            // racing one slot may interleave — so cross-field equality is
            // not asserted here, only well-formedness.)
            assert!(e.path.starts_with("/t/"), "{}", e.path);
            assert_eq!(e.status, 200);
            assert!(e.total_ns < 500);
        }
    }
}
