//! The LeaTS and SNeaTS variants (paper §IV-C1).
//!
//! * **LeaTS** restricts Algorithm 1 to linear functions only — ~5× faster
//!   compression for a slightly worse ratio.
//! * **SNeaTS** runs a model-selection pass on a prefix sample of the data,
//!   keeps only the top-k most-used `(f, ε)` pairs, and partitions the full
//!   series with that reduced set — ~13× faster for a modestly worse ratio.

use crate::fit::Kind;
use crate::partition::{partition, Pair, PartitionConfig};

/// Model-selection policy for SNeaTS.
#[derive(Clone, Copy, Debug)]
pub struct ModelSelection {
    /// Fraction of the series (prefix) used as the selection sample.
    pub sample_fraction: f64,
    /// Number of `(f, ε)` pairs retained.
    pub top_k: usize,
}

impl Default for ModelSelection {
    /// The paper's setting: "picks the top-5 most-used pairs in the first
    /// 10% of the dataset".
    fn default() -> Self {
        Self { sample_fraction: 0.10, top_k: 5 }
    }
}

/// Runs the selection pass: partitions a prefix sample with the full pair
/// set and returns the `top_k` pairs ranked by the number of data points
/// they cover in the sample's optimal partition.
pub fn select_pairs(
    values: &[i64],
    kinds: &[Kind],
    epsilons: &[u64],
    shift: i64,
    policy: ModelSelection,
    threads: usize,
) -> Vec<Pair> {
    let all = PartitionConfig::lossless(kinds, epsilons, shift).with_threads(threads);
    let sample_len = ((values.len() as f64 * policy.sample_fraction) as usize)
        .clamp(1.min(values.len()), values.len());
    if sample_len == 0 {
        return all.pairs;
    }
    let part = partition(&values[..sample_len], &all);
    let mut usage: Vec<(Pair, usize)> = Vec::new();
    for (frag, &eps) in part.fragments.iter().zip(&part.epsilons) {
        let pair = Pair { kind: frag.kind, eps };
        match usage.iter_mut().find(|(p, _)| *p == pair) {
            Some((_, count)) => *count += frag.len(),
            None => usage.push((pair, frag.len())),
        }
    }
    usage.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
    usage.truncate(policy.top_k.max(1));
    usage.into_iter().map(|(p, _)| p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::default_epsilons;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn series(n: usize) -> Vec<i64> {
        let mut rng = StdRng::seed_from_u64(8);
        let mut v = 1000i64;
        (0..n).map(|_| { v += rng.random_range(-4..5); v }).collect()
    }

    #[test]
    fn selects_at_most_top_k_pairs() {
        let values = series(5000);
        let eps = default_epsilons(200);
        let pairs =
            select_pairs(&values, &Kind::NEATS_DEFAULT, &eps, 0, ModelSelection::default(), 1);
        assert!(!pairs.is_empty());
        assert!(pairs.len() <= 5, "got {} pairs", pairs.len());
    }

    #[test]
    fn selected_pairs_come_from_the_pool() {
        let values = series(3000);
        let eps = [0u64, 2, 8, 32];
        let pairs = select_pairs(
            &values,
            &[Kind::Linear, Kind::Quadratic],
            &eps,
            0,
            ModelSelection { sample_fraction: 0.2, top_k: 3 },
            2,
        );
        for p in &pairs {
            assert!([Kind::Linear, Kind::Quadratic].contains(&p.kind));
            assert!(eps.contains(&p.eps));
        }
    }

    #[test]
    fn tiny_series_does_not_panic() {
        let pairs = select_pairs(&[5], &[Kind::Linear], &[0, 2], 0, ModelSelection::default(), 1);
        assert!(!pairs.is_empty());
    }
}
